module kwsearch

go 1.22
