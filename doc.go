// Package kwsearch reproduces the system landscape of the ICDE 2011
// tutorial "Keyword-based Search and Exploration on Databases" (Chen, Wang,
// Liu): keyword search over relational and XML data with the structural
// disambiguation, keyword cleaning, query processing and result analysis
// techniques the tutorial surveys, each implemented from scratch on
// substrates in this module.
//
// Start with internal/core for the search façade, DESIGN.md for the module
// map and experiment index, and EXPERIMENTS.md for the reproduced results.
package kwsearch
