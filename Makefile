# Convenience targets; verify.sh is the canonical sequence.

.PHONY: verify verify-short build test race lint lint-fix bench bench-plan obs-bench

verify:
	./verify.sh

verify-short:
	./verify.sh -short

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/parallel/... ./internal/stream/... ./internal/cn/... \
		./internal/cache/... ./internal/exec/... ./internal/lca/... ./internal/obs/... \
		./internal/resilience/... ./internal/core/... ./internal/server/... \
		./internal/analysis/... ./internal/plan/...

lint:
	go run ./cmd/kwslint ./...

lint-fix:
	go run ./cmd/kwslint -fix ./...

bench:
	go run ./cmd/benchrunner

bench-plan:
	go test -bench 'PlanCache|Enumerate' -benchmem -run zz ./internal/plan/

obs-bench:
	go test -bench ObsSuiteOverhead -benchmem -run zz .
	go run ./cmd/benchrunner -obs-overhead
