# Convenience targets; verify.sh is the canonical sequence.

.PHONY: verify verify-short build test race lint bench

verify:
	./verify.sh

verify-short:
	./verify.sh -short

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./internal/parallel/... ./internal/stream/... ./internal/cn/... \
		./internal/cache/... ./internal/exec/... ./internal/lca/... ./internal/obs/... \
		./internal/resilience/... ./internal/core/... ./internal/server/...

lint:
	go run ./cmd/kwslint ./...

bench:
	go run ./cmd/benchrunner
