// Exploration scenario: the result-analysis half of the tutorial — faceted
// navigation over a result set, result differentiation tables, aggregate
// table analysis, text-cube cells, query forms, and Keyword++ query
// rewriting over an entity table.
package main

import (
	"fmt"

	"kwsearch/internal/aggregate"
	"kwsearch/internal/dataset"
	"kwsearch/internal/diff"
	"kwsearch/internal/facet"
	"kwsearch/internal/forms"
	"kwsearch/internal/relstore"
	"kwsearch/internal/rewrite"
	"kwsearch/internal/schemagraph"
)

func main() {
	// --- Faceted navigation over the events table -------------------------
	db := dataset.EventsDB()
	tbl := db.Table("event")
	log := []facet.LogQuery{
		{Conds: []facet.Condition{{Attr: "state", Value: relstore.String("TX")}}, Count: 6},
		{Conds: []facet.Condition{{Attr: "state", Value: relstore.String("MI")}}, Count: 5},
		{Conds: []facet.Condition{{Attr: "month", Value: relstore.String("Dec")}}, Count: 2},
	}
	tree := facet.Build(tbl, tbl.Tuples(), []string{"month", "state"}, nil, log, facet.Options{})
	fmt.Printf("facet tree: root facet %q, expected navigation cost %.2f\n", tree.Root.Attr, tree.Cost)
	for _, c := range tree.Root.Children {
		fmt.Printf("  %s -> %d rows (p_proc %.2f)\n", c.Cond, len(c.Rows), c.PProc)
	}

	// --- Table analysis: aggregate keyword query ---------------------------
	fmt.Println("\nminimal group-bys for {pool, motorcycle, american food} over (month, state):")
	for _, cell := range aggregate.MinimalGroupBys(tbl, tbl.Tuples(), []string{"month", "state"},
		[]string{"pool", "motorcycle", "american food"}) {
		fmt.Printf("  %s\n", cell)
	}

	// --- Text cube over the laptops ----------------------------------------
	var docs []aggregate.Doc
	for _, r := range dataset.Laptops() {
		docs = append(docs, aggregate.Doc{
			Dims: map[string]string{"Brand": r.Brand, "Model": r.Model, "CPU": r.CPU, "OS": r.OS},
			Text: r.Description,
		})
	}
	fmt.Println("\ntext-cube cells for 'powerful laptop' (min support 2):")
	for _, c := range aggregate.TopCells(docs, []string{"Brand", "Model", "CPU", "OS"},
		[]string{"powerful", "laptop"}, 2, 4) {
		fmt.Printf("  {%s} support=%d relevance=%.2f\n", c, c.Support, c.Relevance)
	}

	// --- Result differentiation --------------------------------------------
	rs := []diff.ResultFeatures{
		{Name: "ICDE 2000", Features: []diff.Feature{
			{Type: "conf:year", Value: "2000"},
			{Type: "paper:title", Value: "OLAP"},
			{Type: "paper:title", Value: "data mining"},
			{Type: "paper:title", Value: "query"},
		}},
		{Name: "ICDE 2010", Features: []diff.Feature{
			{Type: "conf:year", Value: "2010"},
			{Type: "paper:title", Value: "cloud"},
			{Type: "paper:title", Value: "search"},
			{Type: "paper:title", Value: "query"},
		}},
	}
	table := diff.StrongLocalOptimal(rs, 3)
	fmt.Printf("\ncomparison table (DoD %d):\n", diff.DoD(table))
	for i, sel := range table.Selected {
		fmt.Printf("  %s:", rs[i].Name)
		for _, f := range sel {
			fmt.Printf(" %s=%s", f.Type, f.Value)
		}
		fmt.Println()
	}

	// --- Query forms over the bibliography ----------------------------------
	bib := dataset.WidomBib()
	g := schemagraph.FromDB(bib)
	fs := forms.Generate(bib, g, forms.GenerateOptions{MaxTables: 3})
	sel := forms.NewSelector(bib, fs)
	fmt.Println("\ntop forms for 'widom xml':")
	for _, rf := range sel.Select([]string{"widom", "xml"}, 3) {
		fmt.Printf("  %-28s score %.2f  group %s\n", rf.Form, rf.Score, rf.Group)
	}

	// --- Keyword++ rewriting over the product table -------------------------
	ip := rewrite.NewInterpreter(dataset.Products(), "product",
		[]string{"brand"}, []string{"screen"})
	tr := ip.Translate("ibm laptop")
	fmt.Println("\nKeyword++ translation of 'ibm laptop':")
	for _, p := range tr.Predicates {
		fmt.Printf("  predicate %s = %s (KL %.2f)\n", p.Attr, p.Value, p.Divergence)
	}
	for _, o := range tr.OrderBy {
		dir := "DESC"
		if o.Ascending {
			dir = "ASC"
		}
		fmt.Printf("  ORDER BY %s %s (EMD %.2f)\n", o.Attr, dir, o.EMD)
	}
	fmt.Printf("  LIKE terms: %v\n", tr.LikeTerms)
}
