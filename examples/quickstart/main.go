// Quickstart: build a tiny bibliography database, run one keyword query,
// print the top answers. This is the smallest end-to-end use of the
// library's public façade.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/relstore"
)

func main() {
	// 1. Declare a schema: authors write papers.
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "author",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
			{Name: "name", Type: relstore.KindString, Text: true},
		},
		Key: "aid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "paper",
		Columns: []relstore.Column{
			{Name: "pid", Type: relstore.KindInt},
			{Name: "title", Type: relstore.KindString, Text: true},
		},
		Key: "pid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "write",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
			{Name: "pid", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "aid", RefTable: "author", RefColumn: "aid"},
			{Column: "pid", RefTable: "paper", RefColumn: "pid"},
		},
	})

	// 2. Load a few rows.
	authors := []string{"Jennifer Widom", "Jeffrey Ullman", "Serge Abiteboul"}
	for i, name := range authors {
		db.MustInsert("author", map[string]relstore.Value{
			"aid": relstore.Int(int64(i)), "name": relstore.String(name),
		})
	}
	papers := []string{"Querying XML streams", "Datalog in practice", "Semistructured data"}
	for i, title := range papers {
		db.MustInsert("paper", map[string]relstore.Value{
			"pid": relstore.Int(int64(i)), "title": relstore.String(title),
		})
	}
	for _, w := range [][2]int64{{0, 0}, {1, 1}, {2, 2}, {0, 2}} {
		db.MustInsert("write", map[string]relstore.Value{
			"aid": relstore.Int(w[0]), "pid": relstore.Int(w[1]),
		})
	}

	// 3. Search. The engine enumerates candidate networks (join trees),
	// evaluates them, and ranks the joining trees of tuples. Query is
	// context-first: cancellation and the per-request Deadline propagate
	// into every evaluation stage, and a deadline that expires
	// mid-evaluation returns the certified prefix with Partial set
	// instead of an error.
	engine := core.NewRelational(db)
	resp, err := engine.Query(context.Background(), core.Request{
		Query: "Widom XML", TopK: 5, Deadline: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	if resp.Partial {
		fmt.Println("(deadline expired: showing the certified prefix)")
	}
	fmt.Println("Q: Widom XML")
	for i, r := range resp.Results {
		fmt.Printf("%d. %s\n", i+1, r)
		for j, tp := range r.Tuples {
			table := db.Table(r.CN.Nodes[j].Table)
			fmt.Printf("   %-8s %s\n", tp.Table, tp.Text(table.Schema))
		}
	}
}
