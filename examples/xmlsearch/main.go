// XML scenario: SLCA/ELCA search over documents, XSeek return-node
// inference, XReal return-type inference, query-biased snippets and
// describable result clustering — the XML half of the tutorial in one run.
package main

import (
	"fmt"

	"kwsearch/internal/cluster"
	"kwsearch/internal/dataset"
	"kwsearch/internal/lca"
	"kwsearch/internal/snippet"
	"kwsearch/internal/xmltree"
	"kwsearch/internal/xreal"
	"kwsearch/internal/xseek"
)

func main() {
	// --- SLCA vs ELCA on the conf document -------------------------------
	conf := dataset.ConfDemoXML()
	ix := xmltree.NewIndex(conf)
	terms := []string{"paper", "mark"}
	fmt.Printf("Q = %v on the conf document\n", terms)
	fmt.Println("SLCA results:")
	for _, n := range lca.SLCA(ix, terms) {
		fmt.Printf("  %s (%s)\n", n.LabelPath(), n.Dewey)
	}
	fmt.Println("ELCA results:")
	for _, n := range lca.ELCAStack(ix, terms) {
		fmt.Printf("  %s (%s)\n", n.LabelPath(), n.Dewey)
	}

	// --- XSeek return nodes ----------------------------------------------
	cats := xseek.Classify(conf)
	qa := xseek.AnalyzeQuery(conf, terms)
	fmt.Printf("\nXSeek: return labels %v, predicates %v\n", qa.ReturnLabels, qa.Predicates)
	for _, r := range lca.SLCA(ix, terms) {
		for _, rn := range xseek.InferReturnNodes(conf, cats, qa, r) {
			kind := "implicit entity"
			if rn.Explicit {
				kind = "explicit"
			}
			fmt.Printf("  return %s (%s): %q\n", rn.Node.LabelPath(), kind, xmltree.SubtreeText(rn.Node))
		}
	}

	// --- XReal return-type inference on the generated bibliography --------
	bib := xmltree.NewIndex(dataset.BibXML(dataset.DefaultBibConfig()))
	fmt.Println("\nXReal return types for Q = [keyword search] on generated bib:")
	for i, ts := range xreal.InferReturnType(bib, []string{"keyword", "search"}, xreal.DefaultOptions()) {
		if i == 3 {
			break
		}
		fmt.Printf("  %-24s %.3f\n", ts.Path, ts.Score)
	}

	// --- Snippets and describable clustering over the auctions ------------
	auctions := dataset.AuctionsXML()
	var results []cluster.Result
	for _, n := range auctions.Root.Children {
		results = append(results, cluster.Result{Root: n})
	}
	q := []string{"auction", "seller", "buyer", "tom"}
	fmt.Printf("\nQ = %v on the auctions document\n", q)
	for _, c := range cluster.ByRole(results, q) {
		fmt.Printf("cluster %s\n", cluster.Describe(c))
		for _, r := range c.Results {
			items := snippet.Generate(r.Root, q, 3)
			fmt.Printf("  %s:", r.Root.Label)
			for _, it := range items {
				fmt.Printf(" %s=%s", it.Label, it.Value)
			}
			fmt.Println()
		}
	}
}
