// Interpretation scenario: the structured-query inference side of the
// tutorial — SUITS/IQP interpretations over relational data, probabilistic
// XPath generation over XML, QUnit retrieval, D-reachability pruning,
// distinct-core communities, and keyword search over a tuple stream.
package main

import (
	"fmt"

	"kwsearch/internal/cn"
	"kwsearch/internal/community"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/forms"
	"kwsearch/internal/interp"
	"kwsearch/internal/invindex"
	"kwsearch/internal/reach"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/stream"
	"kwsearch/internal/xpathgen"
)

func main() {
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	ix := invindex.FromDB(db)

	// --- Structured interpretations of a keyword query ---------------------
	in := interp.New(db, nil)
	fmt.Println("interpretations of 'widom xml':")
	for _, it := range in.Interpret("widom xml", 3) {
		fmt.Printf("  %s\n", it)
	}

	// --- Probabilistic XPath over the XML view -----------------------------
	tr := dataset.BibXML(dataset.DefaultBibConfig())
	fmt.Println("\nXPath interpretations of 'keyword search' over the XML bib:")
	for i, sc := range xpathgen.Generate(tr, []string{"keyword", "search"}, 3) {
		fmt.Printf("  %d. %.4f  %s (%d results)\n", i+1, sc.Prob, sc.Query, len(sc.Results))
	}

	// --- QUnits -------------------------------------------------------------
	f := &forms.Form{Tables: []string{"author", "paper", "write"}}
	units := forms.MaterializeQUnits(db, g, f, 0)
	fmt.Printf("\n%d author-paper QUnits; retrieval for 'widom xml':\n", len(units))
	for _, h := range forms.SearchQUnits(units, []string{"widom", "xml"}, 3) {
		fmt.Printf("  %.2f  %s\n", h.Score, h.QUnit.Text)
	}

	// --- D-reachability pruning + communities over Seltzer ------------------
	sdb := dataset.SeltzerBerkeley()
	sg := datagraph.FromDB(sdb, nil)
	six := invindex.FromDB(sdb)
	terms := []string{"seltzer", "berkeley"}
	groups := make([][]datagraph.NodeID, len(terms))
	for i, t := range terms {
		for _, d := range six.Docs(t) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
	}
	rix := reach.Build(sdb, sg, 1)
	pruned, n := rix.PruneSeeds(groups, terms)
	fmt.Printf("\nreachability pruning at D=1: removed %d hopeless seed(s)\n", n)
	for _, c := range community.DistinctCore(sg, pruned, 3, 0) {
		fmt.Printf("  community core %v: %d centers, cost %.0f\n", c.Core, len(c.Centers), c.Cost)
	}

	// --- Streaming search ----------------------------------------------------
	ev := cn.NewEvaluator(db, ix, []string{"widom", "xml"})
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write"},
	})
	mesh := stream.NewMesh(db, []string{"widom", "xml"}, cns)
	fmt.Println("\nstreaming the bibliography tuple by tuple:")
	for _, name := range db.TableNames() {
		for _, tp := range db.Table(name).Tuples() {
			for _, r := range mesh.Arrive(tp) {
				fmt.Printf("  emitted on %s#%d arrival: %s\n", tp.Table, tp.ID, r.CN)
			}
		}
	}
}
