// DBLP scenario: the full relational pipeline on a generated bibliography —
// noisy query cleaning, candidate-network search under both the monotone
// IR score and SPARK's non-monotonic score, graph search for comparison,
// and data-cloud refinement suggestions.
package main

import (
	"context"
	"fmt"
	"log"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/refine"
)

func main() {
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	engine := core.NewRelational(db)
	fmt.Printf("dataset: %v\n\n", db.Stats())

	// A misspelled, selective query (SPARK's bound works best when the
	// keywords are selective; see EXPERIMENTS.md E18).
	raw := "steinr tre"
	cleaned := engine.Cleaner.Clean(raw)
	fmt.Printf("cleaning %q -> %s\n\n", raw, cleaned)

	for _, sem := range []core.Semantics{core.CandidateNetworks, core.SparkNetworks, core.DistinctRoot} {
		resp, err := engine.Query(context.Background(), core.Request{
			Query: raw, TopK: 3, Semantics: sem, Clean: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-3 under %s semantics:\n", sem)
		for i, r := range resp.Results {
			fmt.Printf("  %d. %s\n", i+1, r)
		}
		fmt.Println()
	}

	// Refinement: which terms summarize the result neighbourhood?
	terms := cleaned.Tokens()
	ix := invindex.FromDB(db)
	docs := ix.Intersect(terms)
	cloud := refine.DataCloud(ix, docs, terms, nil, 8)
	fmt.Println("data cloud (suggested refinements):")
	for _, ts := range cloud {
		fmt.Printf("  %-16s %.2f\n", ts.Term, ts.Score)
	}

	co := refine.FrequentCoTerms(ix, terms, 5)
	fmt.Println("\nfrequent co-occurring terms (no result generation):")
	for _, ts := range co {
		fmt.Printf("  %-16s df=%g\n", ts.Term, ts.Score)
	}
}
