// Package steiner computes group Steiner trees on data graphs — the
// "results as trees" semantics of slide 30. The exact algorithm is the
// dynamic program over (vertex, keyword-subset) states of DPBF (Ding et al.
// ICDE'07): optimal for the top-1 group Steiner tree and tractable for a
// fixed number of keywords (the problem is NP-hard in general, slide 112).
package steiner

import (
	"container/heap"
	"context"
	"sort"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/resilience"
)

// Tree is a Steiner tree: a root, the undirected edges chosen, and the
// total edge cost.
type Tree struct {
	Root  datagraph.NodeID
	Edges [][2]datagraph.NodeID
	Cost  float64
}

// Nodes returns the distinct nodes of the tree, sorted.
func (t *Tree) Nodes() []datagraph.NodeID {
	seen := map[datagraph.NodeID]bool{t.Root: true}
	for _, e := range t.Edges {
		seen[e[0]] = true
		seen[e[1]] = true
	}
	out := make([]datagraph.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// state is a DP state: the best-known tree rooted at node covering mask.
type state struct {
	node datagraph.NodeID
	mask uint32
}

type entry struct {
	st   state
	cost float64
}

type entryHeap []entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// provenance records how a state was reached, for tree reconstruction.
type provenance struct {
	// kind: 0 seed, 1 edge growth from (child,mask), 2 merge of
	// (node,maskA) and (node,maskB).
	kind  uint8
	child datagraph.NodeID
	maskA uint32
	maskB uint32
}

// GroupSteiner returns the minimum-cost tree connecting at least one node
// from every group (the Group Steiner Tree, Li et al. WWW'01). ok is false
// when no connecting tree exists or groups is empty/has an empty group.
// Complexity is O(3^l·n + 2^l·(n log n + m)) for l groups — exact for the
// small l keyword queries have.
func GroupSteiner(g *datagraph.Graph, groups [][]datagraph.NodeID) (*Tree, bool) {
	t, ok, _ := GroupSteinerCtx(context.Background(), g, groups)
	return t, ok
}

// steinerCtxCheckStride is how many heap pops run between cancellation
// checks in GroupSteinerCtx.
const steinerCtxCheckStride = 64

// GroupSteinerCtx is GroupSteiner with cancellation and fault injection
// (resilience.StageSteinerPop) checked every steinerCtxCheckStride heap
// pops. A cancelled search returns (nil, false) with ctx's error: the
// tree is exact or absent, never approximate, so there is no meaningful
// partial answer to salvage.
func GroupSteinerCtx(ctx context.Context, g *datagraph.Graph, groups [][]datagraph.NodeID) (*Tree, bool, error) {
	inj := resilience.From(ctx)
	l := len(groups)
	if l == 0 || l > 20 {
		return nil, false, nil
	}
	for _, grp := range groups {
		if len(grp) == 0 {
			return nil, false, nil
		}
	}
	full := (uint32(1) << uint(l)) - 1

	cost := map[state]float64{}
	prov := map[state]provenance{}
	h := &entryHeap{}

	relax := func(st state, c float64, p provenance) {
		if cur, ok := cost[st]; !ok || c < cur {
			cost[st] = c
			prov[st] = p
			heap.Push(h, entry{st: st, cost: c})
		}
	}

	for i, grp := range groups {
		for _, n := range grp {
			relax(state{node: n, mask: 1 << uint(i)}, 0, provenance{kind: 0})
		}
	}

	// maskStates indexes settled states by node for the merge transition.
	settled := map[state]bool{}
	byNode := map[datagraph.NodeID][]uint32{}

	for pops := 0; h.Len() > 0; pops++ {
		if pops%steinerCtxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			if err := inj.At(ctx, resilience.StageSteinerPop); err != nil {
				return nil, false, err
			}
		}
		e := heap.Pop(h).(entry)
		if settled[e.st] || e.cost > cost[e.st] {
			continue
		}
		settled[e.st] = true
		if e.st.mask == full {
			return reconstruct(e.st, cost, prov), true, nil
		}
		// Edge growth: lift the tree to a neighbour.
		for _, edge := range g.Neighbors(e.st.node) {
			relax(state{node: edge.To, mask: e.st.mask}, e.cost+edge.Weight,
				provenance{kind: 1, child: e.st.node, maskA: e.st.mask})
		}
		// Tree merge: combine with settled disjoint masks at this node.
		for _, other := range byNode[e.st.node] {
			if other&e.st.mask != 0 {
				continue
			}
			merged := state{node: e.st.node, mask: e.st.mask | other}
			relax(merged, e.cost+cost[state{node: e.st.node, mask: other}],
				provenance{kind: 2, maskA: e.st.mask, maskB: other})
		}
		byNode[e.st.node] = append(byNode[e.st.node], e.st.mask)
	}
	return nil, false, nil
}

func reconstruct(goal state, cost map[state]float64, prov map[state]provenance) *Tree {
	t := &Tree{Root: goal.node, Cost: cost[goal]}
	var walk func(st state)
	walk = func(st state) {
		p := prov[st]
		switch p.kind {
		case 0:
			return
		case 1:
			t.Edges = append(t.Edges, [2]datagraph.NodeID{st.node, p.child})
			walk(state{node: p.child, mask: p.maskA})
		case 2:
			walk(state{node: st.node, mask: p.maskA})
			walk(state{node: st.node, mask: p.maskB})
		}
	}
	walk(goal)
	return t
}

// SteinerCost returns the cost of the minimum tree spanning the given
// terminal nodes exactly (each terminal its own group) — the classic
// Steiner tree the slide-30 example contrasts with the group variant.
func SteinerCost(g *datagraph.Graph, terminals []datagraph.NodeID) (float64, bool) {
	groups := make([][]datagraph.NodeID, len(terminals))
	for i, t := range terminals {
		groups[i] = []datagraph.NodeID{t}
	}
	t, ok := GroupSteiner(g, groups)
	if !ok {
		return 0, false
	}
	return t.Cost, true
}
