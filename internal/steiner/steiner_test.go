package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kwsearch/internal/datagraph"
)

// slide30Graph builds the slide-30 example: nodes a=0,b=1,c=2,d=3 with
// a-b:5, b-c:2, b-d:3, a-c:6, a-d:7. Keywords: k1@a, k2@c, k3@d.
func slide30Graph() *datagraph.Graph {
	g := datagraph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 3)
	g.AddEdge(0, 2, 6)
	g.AddEdge(0, 3, 7)
	return g
}

// TestSlide30GST reproduces E3: the top-1 group Steiner tree is
// a(b(c,d)) with cost 5+2+3 = 10, beating the direct star a(c,d) = 13.
func TestSlide30GST(t *testing.T) {
	g := slide30Graph()
	groups := [][]datagraph.NodeID{{0}, {2}, {3}}
	tree, ok := GroupSteiner(g, groups)
	if !ok {
		t.Fatal("no GST found")
	}
	if tree.Cost != 10 {
		t.Fatalf("GST cost = %v, want 10 (a-b, b-c, b-d)", tree.Cost)
	}
	nodes := tree.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("tree nodes = %v, want a,b,c,d", nodes)
	}
	if len(tree.Edges) != 3 {
		t.Fatalf("tree edges = %v, want 3", tree.Edges)
	}
}

// TestGroupChoosesCheapestMember: with k2 matching both c and a cheaper
// node, the GST picks the cheaper member (that is what makes it a *group*
// Steiner tree).
func TestGroupChoosesCheapestMember(t *testing.T) {
	g := datagraph.New(4)
	g.AddEdge(0, 1, 10) // expensive member
	g.AddEdge(0, 2, 1)  // cheap member
	g.AddEdge(0, 3, 1)
	tree, ok := GroupSteiner(g, [][]datagraph.NodeID{{0}, {1, 2}, {3}})
	if !ok {
		t.Fatal("no GST")
	}
	if tree.Cost != 2 {
		t.Fatalf("cost = %v, want 2 (via node 2, not node 1)", tree.Cost)
	}
}

func TestSingleGroupIsZeroCost(t *testing.T) {
	g := datagraph.New(3)
	g.AddEdge(0, 1, 1)
	tree, ok := GroupSteiner(g, [][]datagraph.NodeID{{1}})
	if !ok || tree.Cost != 0 {
		t.Fatalf("single group should cost 0, got %+v ok=%v", tree, ok)
	}
	if len(tree.Nodes()) != 1 {
		t.Errorf("tree should be the single node")
	}
}

func TestDisconnectedReturnsFalse(t *testing.T) {
	g := datagraph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, ok := GroupSteiner(g, [][]datagraph.NodeID{{0}, {3}}); ok {
		t.Fatal("disconnected groups must fail")
	}
	if _, ok := GroupSteiner(g, nil); ok {
		t.Fatal("empty group list must fail")
	}
	if _, ok := GroupSteiner(g, [][]datagraph.NodeID{{0}, {}}); ok {
		t.Fatal("empty group must fail")
	}
}

func TestTwoGroupsEqualsShortestPath(t *testing.T) {
	// For two singleton groups the GST is the shortest path.
	g := datagraph.New(5)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 2, 1)
	tree, ok := GroupSteiner(g, [][]datagraph.NodeID{{0}, {2}})
	if !ok {
		t.Fatal("no GST")
	}
	dist := g.Dijkstra(0, datagraph.Inf)
	if tree.Cost != dist[2] {
		t.Fatalf("2-group GST cost %v != shortest path %v", tree.Cost, dist[2])
	}
}

func TestSteinerCostMatchesGST(t *testing.T) {
	g := slide30Graph()
	c, ok := SteinerCost(g, []datagraph.NodeID{0, 2, 3})
	if !ok || c != 10 {
		t.Fatalf("SteinerCost = %v ok=%v, want 10", c, ok)
	}
}

// Property: on random connected graphs with 2 groups, GST cost equals the
// min over members of pairwise shortest-path distance.
func TestTwoGroupGSTMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := datagraph.New(n)
		// Ring for connectivity plus chords.
		for i := 0; i < n; i++ {
			g.AddEdge(datagraph.NodeID(i), datagraph.NodeID((i+1)%n), 0.5+rng.Float64()*4)
		}
		for i := 0; i < n/2; i++ {
			g.AddEdge(datagraph.NodeID(rng.Intn(n)), datagraph.NodeID(rng.Intn(n)), 0.5+rng.Float64()*4)
		}
		g1 := []datagraph.NodeID{datagraph.NodeID(rng.Intn(n))}
		g2 := []datagraph.NodeID{datagraph.NodeID(rng.Intn(n)), datagraph.NodeID(rng.Intn(n))}
		tree, ok := GroupSteiner(g, [][]datagraph.NodeID{g1, g2})
		if !ok {
			return false
		}
		dist := g.Dijkstra(g1[0], datagraph.Inf)
		want := math.Inf(1)
		for _, m := range g2 {
			if dist[m] < want {
				want = dist[m]
			}
		}
		return math.Abs(tree.Cost-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reconstructed tree's edge costs sum to the reported cost
// and the tree connects all groups.
func TestTreeReconstructionConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := datagraph.New(n)
		type edgeKey struct{ a, b datagraph.NodeID }
		weights := map[edgeKey]float64{}
		addEdge := func(a, b datagraph.NodeID, w float64) {
			if a > b {
				a, b = b, a
			}
			if cur, ok := weights[edgeKey{a, b}]; ok && cur <= w {
				return
			}
			weights[edgeKey{a, b}] = w
		}
		for i := 0; i < n; i++ {
			addEdge(datagraph.NodeID(i), datagraph.NodeID((i+1)%n), float64(1+rng.Intn(5)))
		}
		for i := 0; i < n; i++ {
			addEdge(datagraph.NodeID(rng.Intn(n)), datagraph.NodeID(rng.Intn(n)), float64(1+rng.Intn(5)))
		}
		for k, w := range weights {
			if k.a != k.b {
				g.AddEdge(k.a, k.b, w)
			}
		}
		groups := [][]datagraph.NodeID{
			{datagraph.NodeID(rng.Intn(n))},
			{datagraph.NodeID(rng.Intn(n))},
			{datagraph.NodeID(rng.Intn(n))},
		}
		tree, ok := GroupSteiner(g, groups)
		if !ok {
			return false
		}
		sum := 0.0
		for _, e := range tree.Edges {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			w, ok := weights[edgeKey{a, b}]
			if !ok {
				return false
			}
			sum += w
		}
		if math.Abs(sum-tree.Cost) > 1e-9 {
			return false
		}
		// Every group must touch the tree.
		inTree := map[datagraph.NodeID]bool{}
		for _, nd := range tree.Nodes() {
			inTree[nd] = true
		}
		for _, grp := range groups {
			hit := false
			for _, m := range grp {
				if inTree[m] {
					hit = true
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
