package steiner

import (
	"context"
	"errors"
	"testing"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/resilience"
)

// TestGroupSteinerCtxCancelled: a cancelled context aborts the DP with
// ctx's error and no tree — the result is exact or absent, never partial.
func TestGroupSteinerCtxCancelled(t *testing.T) {
	g := slide30Graph()
	groups := [][]datagraph.NodeID{{0}, {2}, {3}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, ok, err := GroupSteinerCtx(ctx, g, groups)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if ok || tr != nil {
		t.Fatalf("cancelled search returned a tree (%v, ok=%v)", tr, ok)
	}
}

// TestGroupSteinerCtxInjectedFault: an armed StageSteinerPop fault aborts
// the DP with the injected error.
func TestGroupSteinerCtxInjectedFault(t *testing.T) {
	boom := errors.New("injected pop fault")
	in := resilience.NewInjector(1).Arm(resilience.StageSteinerPop, resilience.Fault{Err: boom})
	ctx := resilience.WithInjector(context.Background(), in)
	tr, ok, err := GroupSteinerCtx(ctx, slide30Graph(), [][]datagraph.NodeID{{0}, {2}, {3}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if ok || tr != nil {
		t.Fatalf("faulted search returned a tree (%v, ok=%v)", tr, ok)
	}
}

// TestGroupSteinerCtxUninterruptedMatches: with a live context the ctx
// variant finds the slide-30 optimum exactly like GroupSteiner.
func TestGroupSteinerCtxUninterruptedMatches(t *testing.T) {
	tr, ok, err := GroupSteinerCtx(context.Background(), slide30Graph(), [][]datagraph.NodeID{{0}, {2}, {3}})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if tr.Cost != 10 {
		t.Fatalf("cost = %v, want 10", tr.Cost)
	}
}
