// Package banks implements the BANKS family of graph keyword-search
// algorithms: BANKS I backward (equi-distance) expanding search (Bhalotia
// et al. ICDE'02) and BANKS II bidirectional search with spreading
// activation (Kacholia et al. VLDB'05), both under the distinct-root
// semantics of slide 31: an answer is a root r with
// cost(r) = Σᵢ dist(r, Sᵢ).
package banks

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/fmath"
	"kwsearch/internal/obs"
	"kwsearch/internal/resilience"
)

// banksCtxCheckStride is how many expansion-loop iterations run between
// cancellation checks: the per-iteration work (one heap pop plus
// neighbour relaxations) is small, so checking every iteration would put
// a synchronized load on the hot path for nothing.
const banksCtxCheckStride = 64

// Answer is one distinct-root result: the root, its distance to the
// nearest member of each keyword group, the matched member per group, and
// the total cost.
type Answer struct {
	Root    datagraph.NodeID
	Dists   []float64
	Matches []datagraph.NodeID
	Cost    float64
	// Paths holds, per group, the node path from Root to Matches[i].
	Paths [][]datagraph.NodeID
}

// Stats reports the work a search performed, for the E16 comparison.
type Stats struct {
	// Expansions counts heap pops that expanded a node's neighbours.
	Expansions int
	// Touched counts distinct (group, node) distance entries created.
	Touched int
}

// Record annotates sp with the search's work counters (no-op on a nil
// span), so a traced query shows how much of the graph the expansion
// visited.
func (s Stats) Record(sp *obs.Span) {
	sp.SetAttr("expansions", s.Expansions)
	sp.SetAttr("touched", s.Touched)
}

// Options bounds a search.
type Options struct {
	// K is the number of answers wanted.
	K int
	// MaxExpansions caps total expansions (0 = unlimited). With a cap the
	// search may return fewer or suboptimal answers; both algorithms treat
	// it as a work budget.
	MaxExpansions int
}

// iterator is one per-group Dijkstra expansion ("backward" from the
// keyword matches toward potential roots).
type iterator struct {
	group  int
	dist   map[datagraph.NodeID]float64
	parent map[datagraph.NodeID]datagraph.NodeID
	origin map[datagraph.NodeID]datagraph.NodeID // which group member reached the node
	h      *nodeHeap
}

type nodeEntry struct {
	node datagraph.NodeID
	dist float64
	prio float64 // expansion priority (equals dist for BANKS I)
}

type nodeHeap []nodeEntry

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeEntry)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func newIterator(group int, members []datagraph.NodeID) *iterator {
	it := &iterator{
		group:  group,
		dist:   map[datagraph.NodeID]float64{},
		parent: map[datagraph.NodeID]datagraph.NodeID{},
		origin: map[datagraph.NodeID]datagraph.NodeID{},
		h:      &nodeHeap{},
	}
	for _, m := range members {
		it.dist[m] = 0
		it.origin[m] = m
		heap.Push(it.h, nodeEntry{node: m, dist: 0, prio: 0})
	}
	return it
}

// frontier returns the smallest pending distance, or +Inf when exhausted.
func (it *iterator) frontier() float64 {
	for it.h.Len() > 0 {
		top := (*it.h)[0]
		if top.dist > it.dist[top.node] {
			heap.Pop(it.h)
			continue
		}
		return top.dist
	}
	return math.Inf(1)
}

// step pops and expands the next node; returns the node and false when
// exhausted.
func (it *iterator) step(g *datagraph.Graph, stats *Stats, prioFn func(n datagraph.NodeID, d float64) float64) (datagraph.NodeID, bool) {
	for it.h.Len() > 0 {
		e := heap.Pop(it.h).(nodeEntry)
		if e.dist > it.dist[e.node] {
			continue
		}
		stats.Expansions++
		for _, edge := range g.Neighbors(e.node) {
			nd := e.dist + edge.Weight
			if cur, ok := it.dist[edge.To]; !ok || nd < cur {
				if !ok {
					stats.Touched++
				}
				it.dist[edge.To] = nd
				it.parent[edge.To] = e.node
				it.origin[edge.To] = it.origin[e.node]
				prio := nd
				if prioFn != nil {
					prio = prioFn(edge.To, nd)
				}
				heap.Push(it.h, nodeEntry{node: edge.To, dist: nd, prio: prio})
			}
		}
		return e.node, true
	}
	return 0, false
}

// collect assembles the Answer rooted at r if every iterator reached r.
func collect(its []*iterator, r datagraph.NodeID) (Answer, bool) {
	a := Answer{Root: r, Dists: make([]float64, len(its)),
		Matches: make([]datagraph.NodeID, len(its)), Paths: make([][]datagraph.NodeID, len(its))}
	for i, it := range its {
		d, ok := it.dist[r]
		if !ok {
			return Answer{}, false
		}
		a.Dists[i] = d
		a.Matches[i] = it.origin[r]
		a.Cost += d
		// Path root -> member follows parent pointers (which point toward
		// the member, since expansion started there).
		path := []datagraph.NodeID{r}
		cur := r
		for cur != it.origin[r] {
			p, ok := it.parent[cur]
			if !ok {
				break
			}
			cur = p
			path = append(path, cur)
		}
		a.Paths[i] = path
	}
	return a, true
}

// search is the shared engine: prioFn selects BANKS I (nil: pure
// equi-distance) or BANKS II (activation-scaled priorities). Cancellation
// (checked every banksCtxCheckStride iterations, along with the
// resilience.StageBanksExpand injector) stops the expansion and returns
// the answers completed so far as a best-effort partial set — unlike the
// top-k pipelines there is no bound structure to certify a prefix, so
// partial BANKS answers may be suboptimal, exactly as under a
// MaxExpansions budget.
func search(ctx context.Context, g *datagraph.Graph, groups [][]datagraph.NodeID, opts Options, prioFn func(it *iterator) func(datagraph.NodeID, float64) float64) ([]Answer, Stats, error) {
	var stats Stats
	inj := resilience.From(ctx)
	var stopped error
	if opts.K <= 0 {
		opts.K = 10
	}
	its := make([]*iterator, len(groups))
	reachedBy := map[datagraph.NodeID]int{}
	for i, grp := range groups {
		if len(grp) == 0 {
			return nil, stats, nil
		}
		its[i] = newIterator(i, grp)
		stats.Touched += len(grp)
	}
	for _, it := range its {
		for n := range it.dist {
			reachedBy[n]++
		}
	}

	// Candidate roots are re-collected whenever inspected: distances can
	// still improve while the search runs (especially under the
	// activation-ordered BANKS II expansion), so answers are built from
	// the live distance maps rather than snapshotted.
	candidates := map[datagraph.NodeID]bool{}
	buildAnswers := func() []Answer {
		out := make([]Answer, 0, len(candidates))
		for r := range candidates {
			if a, ok := collect(its, r); ok {
				out = append(out, a)
			}
		}
		sort.Slice(out, func(a, b int) bool {
			if !fmath.Eq(out[a].Cost, out[b].Cost) {
				return out[a].Cost < out[b].Cost
			}
			return out[a].Root < out[b].Root
		})
		return out
	}
	// Roots complete from the seeds alone (single-node answers).
	for n, c := range reachedBy {
		if c == len(groups) {
			candidates[n] = true
		}
	}

	for iter := 0; ; iter++ {
		if iter%banksCtxCheckStride == 0 {
			stopped = ctx.Err()
			if stopped == nil {
				stopped = inj.At(ctx, resilience.StageBanksExpand)
			}
			if stopped != nil {
				break
			}
		}
		if opts.MaxExpansions > 0 && stats.Expansions >= opts.MaxExpansions {
			break
		}
		// Pick the iterator to advance: smallest frontier (equi-distance).
		best, bestVal := -1, math.Inf(1)
		for i, it := range its {
			f := it.frontier()
			if f < bestVal {
				best, bestVal = i, f
			}
		}
		if best < 0 {
			break // all exhausted
		}
		// Sound stopping rule, valid only for the pure Dijkstra order
		// (prioFn == nil), where each iterator's frontier is its minimum
		// pending distance: a root not yet discovered is still unpopped in
		// at least one iterator i, so its final cost is at least
		// frontier_i >= min_i frontier_i. Candidate costs only shrink, so
		// comparing against the current k-th is conservative.
		if prioFn == nil && len(candidates) >= opts.K {
			cur := buildAnswers()
			lb := math.Inf(1)
			for _, it := range its {
				if f := it.frontier(); f < lb {
					lb = f
				}
			}
			if len(cur) >= opts.K && cur[opts.K-1].Cost <= lb {
				break
			}
		}
		var pf func(datagraph.NodeID, float64) float64
		if prioFn != nil {
			pf = prioFn(its[best])
		}
		node, ok := its[best].step(g, &stats, pf)
		if !ok {
			continue
		}
		// The popped node now has a final distance for this iterator; if
		// all iterators have reached it, it is a candidate root.
		complete := true
		for _, it := range its {
			if _, ok := it.dist[node]; !ok {
				complete = false
				break
			}
		}
		if complete {
			candidates[node] = true
		}
	}

	answers := buildAnswers()
	if len(answers) > opts.K {
		answers = answers[:opts.K]
	}
	return answers, stats, stopped
}

// BackwardSearch is BANKS I: concurrent equi-distance backward expansion
// from every keyword group. With no expansion cap the returned top-k is
// exact for the distinct-root cost.
func BackwardSearch(g *datagraph.Graph, groups [][]datagraph.NodeID, opts Options) ([]Answer, Stats) {
	as, st, _ := BackwardSearchCtx(context.Background(), g, groups, opts)
	return as, st
}

// BackwardSearchCtx is BackwardSearch with cancellation and fault
// injection (resilience.StageBanksExpand) checked at expansion
// boundaries. When ctx ends mid-search the answers completed so far come
// back with ctx's error — best-effort partials, like an exhausted
// MaxExpansions budget.
func BackwardSearchCtx(ctx context.Context, g *datagraph.Graph, groups [][]datagraph.NodeID, opts Options) ([]Answer, Stats, error) {
	return search(ctx, g, groups, opts, nil)
}

// BidirectionalSearch is BANKS II-style search: expansion order is scaled
// by spreading activation, penalizing high-degree hubs (the key idea of
// Kacholia et al. VLDB'05 — do not flood the graph through hubs). It is a
// heuristic, as in the paper: expansion is label-correcting rather than
// dist-ordered, so the exact early-stop rule does not apply and the search
// runs to its expansion budget (or exhaustion, where its answers converge
// to BackwardSearch's). Its value shows under tight budgets on hub-heavy
// graphs, where good answers surface before the hubs are expanded.
func BidirectionalSearch(g *datagraph.Graph, groups [][]datagraph.NodeID, opts Options) ([]Answer, Stats) {
	as, st, _ := BidirectionalSearchCtx(context.Background(), g, groups, opts)
	return as, st
}

// BidirectionalSearchCtx is BidirectionalSearch with cancellation and
// fault injection checked at expansion boundaries; see BackwardSearchCtx
// for the partial-answer semantics (already heuristic here, so a partial
// set degrades gracefully).
func BidirectionalSearchCtx(ctx context.Context, g *datagraph.Graph, groups [][]datagraph.NodeID, opts Options) ([]Answer, Stats, error) {
	prioFn := func(it *iterator) func(datagraph.NodeID, float64) float64 {
		return func(n datagraph.NodeID, d float64) float64 {
			// Activation decays with degree: hubs spread little activation,
			// so they are expanded late.
			deg := float64(g.Degree(n))
			if deg < 1 {
				deg = 1
			}
			return d * (1 + math.Log(1+deg))
		}
	}
	return search(ctx, g, groups, opts, prioFn)
}
