package banks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
)

// groupsFor resolves keyword groups over a relational DB's data graph.
func groupsFor(db interface {
	NumTuples() int
}, ix *invindex.Index, terms []string) [][]datagraph.NodeID {
	groups := make([][]datagraph.NodeID, len(terms))
	for i, t := range terms {
		for _, d := range ix.Docs(t) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
	}
	return groups
}

// TestSeltzerBerkeley reproduces E1 (slide 7): the scattered tuples
// student "Margo Seltzer" and project "Berkeley DB" / university
// "UC Berkeley" are assembled into one connected answer.
func TestSeltzerBerkeley(t *testing.T) {
	db := dataset.SeltzerBerkeley()
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	groups := groupsFor(db, ix, []string{"seltzer", "berkeley"})
	if len(groups[0]) != 1 || len(groups[1]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	answers, _ := BackwardSearch(g, groups, Options{K: 3})
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	best := answers[0]
	// The best answer connects Seltzer to Berkeley at distance 1:
	// student(Seltzer) -> university(UC Berkeley), rooted at either.
	if best.Cost != 1 {
		t.Fatalf("best cost = %v, want 1", best.Cost)
	}
	// The root's tuple must be on the student-university path.
	root := db.TupleByID(int32ToTupleID(best.Root))
	if root == nil {
		t.Fatalf("root resolves to nothing")
	}
	if root.Table != "student" && root.Table != "university" {
		t.Errorf("best root in table %s, want student or university", root.Table)
	}
	// A second, distinct assembly exists through Berkeley DB participation
	// (student -> participation -> project), cost 2.
	foundProject := false
	for _, a := range answers {
		tp := db.TupleByID(int32ToTupleID(a.Root))
		for _, m := range a.Matches {
			mt := db.TupleByID(int32ToTupleID(m))
			if mt != nil && mt.Table == "project" {
				foundProject = true
			}
		}
		_ = tp
	}
	if !foundProject {
		t.Errorf("no answer assembled the Berkeley DB project")
	}
}

func int32ToTupleID(n datagraph.NodeID) relstore.TupleID { return relstore.TupleID(n) }

func TestAnswerPathsAreValid(t *testing.T) {
	db := dataset.SeltzerBerkeley()
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	groups := groupsFor(db, ix, []string{"seltzer", "berkeley"})
	answers, _ := BackwardSearch(g, groups, Options{K: 5})
	for _, a := range answers {
		for i, p := range a.Paths {
			if len(p) == 0 || p[0] != a.Root {
				t.Fatalf("path %v does not start at root %v", p, a.Root)
			}
			if p[len(p)-1] != a.Matches[i] {
				t.Fatalf("path %v does not end at match %v", p, a.Matches[i])
			}
			// Consecutive path nodes must be graph-adjacent.
			for j := 0; j+1 < len(p); j++ {
				adj := false
				for _, e := range g.Neighbors(p[j]) {
					if e.To == p[j+1] {
						adj = true
					}
				}
				if !adj {
					t.Fatalf("path hop %v-%v not adjacent", p[j], p[j+1])
				}
			}
		}
	}
}

// bruteForceTopCost computes the exact distinct-root best cost by running
// full Dijkstra from every group.
func bruteForceTopCost(g *datagraph.Graph, groups [][]datagraph.NodeID) float64 {
	dists := make([]map[datagraph.NodeID]float64, len(groups))
	for i, grp := range groups {
		min := map[datagraph.NodeID]float64{}
		for _, m := range grp {
			for n, d := range g.Dijkstra(m, datagraph.Inf) {
				if cur, ok := min[n]; !ok || d < cur {
					min[n] = d
				}
			}
		}
		dists[i] = min
	}
	best := math.Inf(1)
	for n := range dists[0] {
		cost := 0.0
		ok := true
		for _, dm := range dists {
			d, has := dm[n]
			if !has {
				ok = false
				break
			}
			cost += d
		}
		if ok && cost < best {
			best = cost
		}
	}
	return best
}

func randomGraphAndGroups(seed int64) (*datagraph.Graph, [][]datagraph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	n := 8 + rng.Intn(25)
	g := datagraph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(datagraph.NodeID(i), datagraph.NodeID((i+1)%n), float64(1+rng.Intn(4)))
	}
	for i := 0; i < n/2; i++ {
		g.AddEdge(datagraph.NodeID(rng.Intn(n)), datagraph.NodeID(rng.Intn(n)), float64(1+rng.Intn(4)))
	}
	l := 2 + rng.Intn(2)
	groups := make([][]datagraph.NodeID, l)
	for i := range groups {
		sz := 1 + rng.Intn(3)
		for j := 0; j < sz; j++ {
			groups[i] = append(groups[i], datagraph.NodeID(rng.Intn(n)))
		}
	}
	return g, groups
}

// Property: BANKS I top-1 cost equals the brute-force distinct-root
// optimum.
func TestBackwardSearchExactTop1(t *testing.T) {
	f := func(seed int64) bool {
		g, groups := randomGraphAndGroups(seed)
		answers, _ := BackwardSearch(g, groups, Options{K: 1})
		want := bruteForceTopCost(g, groups)
		if len(answers) == 0 {
			return math.IsInf(want, 1)
		}
		return math.Abs(answers[0].Cost-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: run to exhaustion, BANKS II finds the same top-1 cost as
// BANKS I (the activation order changes work, not the converged result).
func TestBidirectionalMatchesBackwardAtExhaustion(t *testing.T) {
	f := func(seed int64) bool {
		g, groups := randomGraphAndGroups(seed)
		k := 3
		a1, _ := BackwardSearch(g, groups, Options{K: k})
		a2, _ := BidirectionalSearch(g, groups, Options{K: k})
		if len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if math.Abs(a1[i].Cost-a2[i].Cost) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExpansionBudget(t *testing.T) {
	g, groups := randomGraphAndGroups(42)
	_, stats := BackwardSearch(g, groups, Options{K: 100, MaxExpansions: 5})
	if stats.Expansions > 5 {
		t.Fatalf("budget exceeded: %d", stats.Expansions)
	}
}

func TestEmptyGroupYieldsNoAnswers(t *testing.T) {
	g := datagraph.New(3)
	g.AddEdge(0, 1, 1)
	answers, _ := BackwardSearch(g, [][]datagraph.NodeID{{0}, {}}, Options{K: 2})
	if answers != nil {
		t.Fatalf("answers = %v, want nil", answers)
	}
}

func TestSingleNodeAnswer(t *testing.T) {
	// Node 0 matches both keywords: cost-0 answer rooted at it.
	g := datagraph.New(2)
	g.AddEdge(0, 1, 1)
	answers, _ := BackwardSearch(g, [][]datagraph.NodeID{{0}, {0}}, Options{K: 1})
	if len(answers) != 1 || answers[0].Cost != 0 || answers[0].Root != 0 {
		t.Fatalf("answers = %+v", answers)
	}
}

// TestHubGraphWorkAdvantage demonstrates the E16 shape: on a hub-and-spoke
// graph, activation-aware BANKS II expands fewer nodes than BANKS I before
// finding the best answer under a tight budget.
func TestHubGraphWorkAdvantage(t *testing.T) {
	// A hub (node 0) with many spokes; keywords sit on two adjacent
	// low-degree chain nodes far from the hub.
	const spokes = 300
	g := datagraph.New(spokes + 5)
	for i := 1; i <= spokes; i++ {
		g.AddEdge(0, datagraph.NodeID(i), 1)
	}
	// Chain: hub - c1 - c2 - c3 - c4 with keywords at c3 and c4.
	c1, c2, c3, c4 := datagraph.NodeID(spokes+1), datagraph.NodeID(spokes+2), datagraph.NodeID(spokes+3), datagraph.NodeID(spokes+4)
	g.AddEdge(0, c1, 1)
	g.AddEdge(c1, c2, 1)
	g.AddEdge(c2, c3, 1)
	g.AddEdge(c3, c4, 1)
	groups := [][]datagraph.NodeID{{c3}, {c4}}

	// Under a tight budget, the activation order finds the chain answer
	// without needing to expand the hub's spokes.
	const budget = 12
	a2, s2 := BidirectionalSearch(g, groups, Options{K: 1, MaxExpansions: budget})
	if len(a2) == 0 || a2[0].Cost != 1 {
		t.Fatalf("BANKS II under budget: answers=%v stats=%+v", a2, s2)
	}
	if s2.Expansions > budget {
		t.Fatalf("budget exceeded: %d", s2.Expansions)
	}
	// Exact search agrees on the answer.
	a1, _ := BackwardSearch(g, groups, Options{K: 1})
	if len(a1) == 0 || a1[0].Cost != 1 {
		t.Fatalf("BANKS I: %v", a1)
	}
}
