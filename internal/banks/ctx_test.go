package banks

import (
	"context"
	"errors"
	"testing"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/resilience"
)

// TestBackwardSearchCtxCancelled: a cancelled context stops the expansion
// at the next stride boundary and returns whatever answers had completed,
// with ctx's error — the same degraded mode as an exhausted expansion
// budget.
func TestBackwardSearchCtxCancelled(t *testing.T) {
	db := dataset.SeltzerBerkeley()
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	groups := groupsFor(db, ix, []string{"seltzer", "berkeley"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := BackwardSearchCtx(ctx, g, groups, Options{K: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestBanksCtxInjectedFault: an armed StageBanksExpand fault interrupts
// both search variants with the injected error.
func TestBanksCtxInjectedFault(t *testing.T) {
	boom := errors.New("injected expand fault")
	db := dataset.SeltzerBerkeley()
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	groups := groupsFor(db, ix, []string{"seltzer", "berkeley"})
	for name, f := range map[string]func(context.Context) error{
		"backward": func(ctx context.Context) error {
			_, _, err := BackwardSearchCtx(ctx, g, groups, Options{K: 3})
			return err
		},
		"bidirectional": func(ctx context.Context) error {
			_, _, err := BidirectionalSearchCtx(ctx, g, groups, Options{K: 3})
			return err
		},
	} {
		in := resilience.NewInjector(1).Arm(resilience.StageBanksExpand, resilience.Fault{Err: boom})
		if err := f(resilience.WithInjector(context.Background(), in)); !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want injected fault", name, err)
		}
	}
}

// TestBackwardSearchCtxUninterruptedMatches: with a live context the ctx
// variant is the same search.
func TestBackwardSearchCtxUninterruptedMatches(t *testing.T) {
	db := dataset.SeltzerBerkeley()
	ix := invindex.FromDB(db)
	g := datagraph.FromDB(db, nil)
	groups := groupsFor(db, ix, []string{"seltzer", "berkeley"})
	want, _ := BackwardSearch(g, groups, Options{K: 3})
	got, _, err := BackwardSearchCtx(context.Background(), g, groups, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d answers, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Root != want[i].Root || got[i].Cost != want[i].Cost {
			t.Fatalf("answer %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}
