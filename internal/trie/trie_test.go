package trie

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

var tokens = []string{"sigact", "sigmod", "sigweb", "sigir", "srivastava", "search", "sigmod"}

func TestPrefixRange(t *testing.T) {
	tr := New(tokens)
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6 (dedup)", tr.Len())
	}
	lo, hi, ok := tr.PrefixRange("sig")
	if !ok {
		t.Fatalf("PrefixRange(sig) not found")
	}
	got := []string{}
	for r := lo; r < hi; r++ {
		got = append(got, tr.Token(r))
	}
	want := []string{"sigact", "sigir", "sigmod", "sigweb"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("range tokens = %v, want %v", got, want)
	}
	if _, _, ok := tr.PrefixRange("zzz"); ok {
		t.Errorf("absent prefix should not be found")
	}
	// Whole-token prefix works too.
	if lo, hi, ok := tr.PrefixRange("sigmod"); !ok || hi-lo != 1 {
		t.Errorf("PrefixRange(sigmod) = [%d,%d) ok=%v", lo, hi, ok)
	}
	// Empty prefix covers everything.
	if lo, hi, _ := tr.PrefixRange(""); lo != 0 || hi != tr.Len() {
		t.Errorf("empty prefix range = [%d,%d)", lo, hi)
	}
}

func TestCompleteAndRank(t *testing.T) {
	tr := New(tokens)
	if got := tr.Complete("s", 2); !reflect.DeepEqual(got, []string{"search", "sigact"}) {
		t.Errorf("Complete limit = %v", got)
	}
	if got := tr.Complete("sr", 0); !reflect.DeepEqual(got, []string{"srivastava"}) {
		t.Errorf("Complete = %v", got)
	}
	if tr.Rank("sigmod") < 0 {
		t.Errorf("Rank(sigmod) missing")
	}
	if tr.Rank("sig") != -1 {
		t.Errorf("Rank of non-token prefix must be -1")
	}
	if !tr.HasPrefix("sri") || tr.HasPrefix("xyz") {
		t.Errorf("HasPrefix broken")
	}
	if tr.Token(-1) != "" || tr.Token(99) != "" {
		t.Errorf("Token out of range should be empty")
	}
}

func TestFuzzyComplete(t *testing.T) {
	tr := New(tokens)
	// "sigmmod" is one edit away from prefix of "sigmod".
	got := tr.FuzzyComplete("sigmmod", 1, 0)
	found := false
	for _, g := range got {
		if g == "sigmod" {
			found = true
		}
	}
	if !found {
		t.Errorf("FuzzyComplete(sigmmod,1) = %v, want sigmod included", got)
	}
	// Zero edits degrades to exact Complete.
	if got := tr.FuzzyComplete("sig", 0, 0); len(got) != 4 {
		t.Errorf("FuzzyComplete 0 edits = %v", got)
	}
	// Results are sorted and deduplicated.
	got = tr.FuzzyComplete("si", 1, 0)
	if !sort.StringsAreSorted(got) {
		t.Errorf("fuzzy results not sorted: %v", got)
	}
	seen := map[string]bool{}
	for _, g := range got {
		if seen[g] {
			t.Errorf("duplicate in fuzzy results: %v", got)
		}
		seen[g] = true
	}
}

// Property: Complete(prefix) returns exactly the sorted tokens having the
// prefix.
func TestCompleteMatchesFilter(t *testing.T) {
	f := func(words []string, prefixSeed string) bool {
		clean := make([]string, 0, len(words))
		for _, w := range words {
			if len(w) > 12 {
				w = w[:12]
			}
			if w != "" {
				clean = append(clean, strings.ToLower(w))
			}
		}
		prefix := strings.ToLower(prefixSeed)
		if len(prefix) > 4 {
			prefix = prefix[:4]
		}
		tr := New(clean)
		got := tr.Complete(prefix, 0)
		want := map[string]bool{}
		for _, w := range clean {
			if strings.HasPrefix(w, prefix) {
				want[w] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, g := range got {
			if !want[g] {
				return false
			}
		}
		return sort.StringsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank ranges are consistent — Token(Rank(w)) == w for every
// inserted token.
func TestRankRoundTrip(t *testing.T) {
	tr := New(tokens)
	for _, w := range tokens {
		r := tr.Rank(w)
		if r < 0 || tr.Token(r) != w {
			t.Errorf("rank round trip failed for %q: rank=%d token=%q", w, r, tr.Token(r))
		}
	}
}
