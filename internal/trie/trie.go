// Package trie implements a byte trie with prefix ranges over the sorted
// token list — the structure TASTIER-style type-ahead search uses: every
// trie node corresponds to a contiguous range of token ranks, so prefix
// matching becomes a range check (slides 72-73).
package trie

import "sort"

type node struct {
	children map[byte]*node
	// leafRank is the rank of the complete token ending here, or -1.
	leafRank int
	// lo, hi delimit the half-open rank range [lo, hi) of tokens below
	// this node, assigned by Build.
	lo, hi int
}

func newNode() *node {
	return &node{children: make(map[byte]*node), leafRank: -1}
}

// Trie holds a frozen set of tokens with rank ranges.
type Trie struct {
	root   *node
	tokens []string // sorted; index = rank
	built  bool
}

// New builds a trie over the given tokens (deduplicated, sorted
// internally).
func New(tokens []string) *Trie {
	dedup := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		if t != "" {
			dedup[t] = true
		}
	}
	sorted := make([]string, 0, len(dedup))
	for t := range dedup {
		sorted = append(sorted, t)
	}
	sort.Strings(sorted)

	tr := &Trie{root: newNode(), tokens: sorted}
	for rank, tok := range sorted {
		cur := tr.root
		for i := 0; i < len(tok); i++ {
			b := tok[i]
			next, ok := cur.children[b]
			if !ok {
				next = newNode()
				cur.children[b] = next
			}
			cur = next
		}
		cur.leafRank = rank
	}
	tr.assignRanges(tr.root, 0)
	tr.built = true
	return tr
}

// assignRanges walks in sorted order assigning [lo, hi) token-rank ranges.
// Because tokens were inserted from a sorted list, a node's subtree covers
// a contiguous rank interval.
func (tr *Trie) assignRanges(n *node, next int) int {
	n.lo = next
	if n.leafRank >= 0 {
		next++
	}
	// Children in byte order gives sorted traversal.
	keys := make([]int, 0, len(n.children))
	for b := range n.children {
		keys = append(keys, int(b))
	}
	sort.Ints(keys)
	for _, b := range keys {
		next = tr.assignRanges(n.children[byte(b)], next)
	}
	n.hi = next
	return next
}

// Len returns the number of distinct tokens.
func (tr *Trie) Len() int { return len(tr.tokens) }

// Token returns the token with the given rank.
func (tr *Trie) Token(rank int) string {
	if rank < 0 || rank >= len(tr.tokens) {
		return ""
	}
	return tr.tokens[rank]
}

// Rank returns the rank of an exact token, or -1.
func (tr *Trie) Rank(token string) int {
	n := tr.walk(token)
	if n == nil {
		return -1
	}
	return n.leafRank
}

// PrefixRange returns the half-open rank range [lo, hi) of tokens with the
// given prefix; ok is false when no token has the prefix.
func (tr *Trie) PrefixRange(prefix string) (lo, hi int, ok bool) {
	n := tr.walk(prefix)
	if n == nil || n.lo == n.hi {
		return 0, 0, false
	}
	return n.lo, n.hi, true
}

// Complete returns up to limit tokens having the prefix, in sorted order.
// limit <= 0 means no limit.
func (tr *Trie) Complete(prefix string, limit int) []string {
	lo, hi, ok := tr.PrefixRange(prefix)
	if !ok {
		return nil
	}
	if limit > 0 && hi-lo > limit {
		hi = lo + limit
	}
	out := make([]string, hi-lo)
	copy(out, tr.tokens[lo:hi])
	return out
}

// HasPrefix reports whether any token has the given prefix.
func (tr *Trie) HasPrefix(prefix string) bool {
	_, _, ok := tr.PrefixRange(prefix)
	return ok
}

func (tr *Trie) walk(s string) *node {
	cur := tr.root
	for i := 0; i < len(s); i++ {
		next, ok := cur.children[s[i]]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// FuzzyComplete returns tokens within edit distance maxEdits of the prefix
// (extending auto-completion to tolerate errors, Chaudhuri & Kaushik
// SIGMOD'09): a token matches if some prefix of it is within maxEdits edits
// of the query prefix. Results are sorted; limit <= 0 means no limit.
func (tr *Trie) FuzzyComplete(prefix string, maxEdits, limit int) []string {
	if maxEdits <= 0 {
		return tr.Complete(prefix, limit)
	}
	m := len(prefix)
	seen := map[int]bool{}
	var ranks []int

	// Standard trie-NFA traversal with per-node edit-distance rows.
	type frame struct {
		n   *node
		row []int
	}
	row0 := make([]int, m+1)
	for i := range row0 {
		row0[i] = i
	}
	stack := []frame{{tr.root, row0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// If the distance at the full prefix is within budget, every token
		// below this node completes a fuzzy match of the prefix.
		if f.row[m] <= maxEdits {
			for r := f.n.lo; r < f.n.hi; r++ {
				if !seen[r] {
					seen[r] = true
					ranks = append(ranks, r)
				}
			}
			continue
		}
		// Prune when the entire row exceeds the budget.
		min := f.row[0]
		for _, v := range f.row {
			if v < min {
				min = v
			}
		}
		if min > maxEdits {
			continue
		}
		for b, child := range f.n.children {
			next := make([]int, m+1)
			next[0] = f.row[0] + 1
			for i := 1; i <= m; i++ {
				cost := 1
				if prefix[i-1] == b {
					cost = 0
				}
				next[i] = minInt(next[i-1]+1, f.row[i]+1, f.row[i-1]+cost)
			}
			stack = append(stack, frame{child, next})
		}
	}
	sort.Ints(ranks)
	if limit > 0 && len(ranks) > limit {
		ranks = ranks[:limit]
	}
	out := make([]string, len(ranks))
	for i, r := range ranks {
		out[i] = tr.tokens[r]
	}
	return out
}

func minInt(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
