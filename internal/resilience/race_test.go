package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kwsearch/internal/obs"
)

// TestGateConcurrentStress hammers one gate from many goroutines under
// -race: the admitted count in flight must never exceed the limit, and
// every outcome must be admit, shed, or a typed deadline error.
func TestGateConcurrentStress(t *testing.T) {
	const limit, queue, goroutines = 4, 8, 64
	iters := 200
	if testing.Short() {
		iters = 20
	}
	g := NewGate(limit, queue)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				release, err := g.Acquire(ctx)
				if err == nil {
					n := inFlight.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					inFlight.Add(-1)
					release()
				} else if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrDeadlineExceeded) {
					t.Errorf("unexpected Acquire error: %v", err)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Fatalf("in-flight peak %d exceeded limit %d", p, limit)
	}
	if g.Queued() != 0 {
		t.Fatalf("Queued = %d after drain, want 0", g.Queued())
	}
}

// TestGateQueuedGaugeReturnsToZero is the regression test for the
// queued-gauge publish race: under a churn burst of racing acquirers
// (admissions, sheds and queue timeouts all interleaving), the
// "admission.queued" gauge must agree with the true queue depth — 0 —
// once the burst drains. The pre-fix Set(Load()) publish could land a
// stale value after the final decrement and leave the gauge non-zero.
func TestGateQueuedGaugeReturnsToZero(t *testing.T) {
	const limit, queue, goroutines = 2, 8, 32
	bursts := 50
	if testing.Short() {
		bursts = 5
	}
	reg := obs.NewRegistry()
	g := NewGate(limit, queue)
	g.Instrument(reg)
	gauge := reg.Gauge("admission.queued")
	for b := 0; b < bursts; b++ {
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				if i%3 == 0 {
					// A third of the churn expires while queued, so the
					// timeout decrement path races the admit path too.
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*100*time.Microsecond)
					defer cancel()
				}
				release, err := g.Acquire(ctx)
				if err == nil {
					release()
				}
			}(i)
		}
		wg.Wait()
		if v := gauge.Value(); v != 0 {
			t.Fatalf("burst %d: admission.queued = %d after drain, want 0", b, v)
		}
		if q := g.Queued(); q != 0 {
			t.Fatalf("burst %d: Queued() = %d after drain, want 0", b, q)
		}
	}
}

// TestInjectorConcurrentStress arms and hits one injector from many
// goroutines under -race; hit counting must stay exact.
func TestInjectorConcurrentStress(t *testing.T) {
	const goroutines = 16
	iters := 500
	if testing.Short() {
		iters = 50
	}
	in := NewInjector(3).Arm("s", Fault{Prob: 0.1, Err: errors.New("boom")})
	ctx := WithInjector(context.Background(), in)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				_ = Inject(ctx, "s")
			}
		}()
	}
	wg.Wait()
	if got := in.Hits("s"); got != goroutines*iters {
		t.Fatalf("Hits = %d, want %d", got, goroutines*iters)
	}
}
