package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Stage names the pipeline points the engine calls Inject at. Tests arm
// faults against these constants; keeping them here (rather than as
// string literals at each call site) makes the set greppable and stable.
const (
	// StageAdmit fires after admission, before any pipeline work.
	StageAdmit = "core.admit"
	// StageEnumerate fires once per frontier CN during enumeration.
	StageEnumerate = "cn.enumerate"
	// StageEval fires once per candidate-network job in the exec worker
	// pool, before the join work for that CN starts.
	StageEval = "exec.eval"
	// StagePipeline fires once per driver-tuple advance of the serial
	// Global Pipeline evaluation.
	StagePipeline = "cn.pipeline"
	// StageSLCARange fires periodically inside each SLCA range worker.
	StageSLCARange = "lca.range"
	// StageBanksExpand fires periodically inside the BANKS expansion loop.
	StageBanksExpand = "banks.expand"
	// StageSteinerPop fires periodically inside the DPBF heap loop.
	StageSteinerPop = "steiner.pop"
)

// Fault describes what happens when an armed stage is hit: after the
// first After hits, every Every-th hit (0 or 1 = every hit) — or, when
// Prob is set, a seeded coin flip instead — sleeps Delay (abandoned early
// if the context is cancelled) and returns Err.
type Fault struct {
	// Delay is slept on each triggered hit; the sleep aborts (and the
	// context's error is returned) if the context ends first.
	Delay time.Duration
	// Err is returned on triggered hits (nil = delay only).
	Err error
	// After skips the first After hits entirely.
	After int
	// Every triggers every Every-th eligible hit; 0 and 1 mean every hit.
	Every int
	// Prob, when > 0, replaces the After/Every schedule with a Bernoulli
	// trial per hit using the injector's seeded source — still
	// reproducible for a fixed seed and hit order.
	Prob float64
}

// Injector is a deterministic fault-injection harness: stages are armed
// with Faults, and instrumented code calls Inject (or At) at iteration
// boundaries. A nil *Injector is inert, so production paths pay one nil
// check. Safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string]Fault
	hits   map[string]int
}

// NewInjector builds an injector whose probabilistic faults draw from a
// source seeded with seed (deterministic for a fixed seed).
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		faults: map[string]Fault{},
		hits:   map[string]int{},
	}
}

// Arm installs (or replaces) the fault at stage.
func (in *Injector) Arm(stage string, f Fault) *Injector {
	if in == nil {
		return in
	}
	in.mu.Lock()
	in.faults[stage] = f
	in.mu.Unlock()
	return in
}

// Disarm removes the fault at stage (hit counting continues).
func (in *Injector) Disarm(stage string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	delete(in.faults, stage)
	in.mu.Unlock()
}

// Hits returns how many times stage was reached (armed or not).
func (in *Injector) Hits(stage string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[stage]
}

// At records a hit at stage and applies its armed fault, if any: the
// delay is slept context-aware, then the fault's error (or the context's,
// if the sleep was interrupted) is returned. Nil injectors no-op.
func (in *Injector) At(ctx context.Context, stage string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[stage]++
	f, armed := in.faults[stage]
	trigger := false
	if armed {
		switch {
		case f.Prob > 0:
			trigger = in.rng.Float64() < f.Prob
		default:
			n := in.hits[stage] - f.After
			every := f.Every
			if every <= 1 {
				every = 1
			}
			trigger = n > 0 && n%every == 0
		}
	}
	in.mu.Unlock()
	if !trigger {
		return nil
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return f.Err
}

// injectorKey is the context key the injector travels under.
type injectorKey struct{}

// WithInjector returns a context carrying in; the engine's pipeline
// stages retrieve it with From and hit it at their iteration boundaries.
func WithInjector(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, injectorKey{}, in)
}

// From extracts the context's injector, nil when absent. Extract once per
// query (a context value lookup walks the context chain), then use the
// nil-safe methods in loops.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(injectorKey{}).(*Injector)
	return in
}

// Inject is the one-shot convenience for cold paths: From + At.
func Inject(ctx context.Context, stage string) error {
	return From(ctx).At(ctx, stage)
}
