package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"kwsearch/internal/obs"
)

func TestTypedErrorsSatisfyErrorsIs(t *testing.T) {
	if !errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Errorf("ErrDeadlineExceeded must wrap context.DeadlineExceeded")
	}
	if errors.Is(ErrOverloaded, context.DeadlineExceeded) {
		t.Errorf("ErrOverloaded must not match deadline")
	}
	if got := AsTyped(context.DeadlineExceeded); !errors.Is(got, ErrDeadlineExceeded) {
		t.Errorf("AsTyped(DeadlineExceeded) = %v", got)
	}
	if got := AsTyped(context.Canceled); got != context.Canceled {
		t.Errorf("AsTyped(Canceled) = %v, want identity", got)
	}
}

func TestGateAdmitsUpToLimit(t *testing.T) {
	g := NewGate(2, 0)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Third concurrent acquisition with no queue room sheds immediately.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third Acquire = %v, want ErrOverloaded", err)
	}
	r1()
	r1() // release is idempotent: double release must not free a second slot
	r3, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	r2()
}

func TestGateQueueAdmitsWhenSlotFrees(t *testing.T) {
	g := NewGate(1, 1)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		admitted <- err
	}()
	// Give the waiter time to enqueue, then free the slot.
	deadline := time.Now().Add(time.Second)
	for g.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Queued() != 1 {
		t.Fatalf("Queued = %d, want 1", g.Queued())
	}
	r1()
	if err := <-admitted; err != nil {
		t.Fatalf("queued Acquire = %v, want admitted", err)
	}
}

func TestGateQueuedAcquireHonorsDeadline(t *testing.T) {
	g := NewGate(1, 4)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.Acquire(ctx)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Acquire = %v, want ErrDeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("deadline ignored: waited %v", waited)
	}
	if g.Queued() != 0 {
		t.Errorf("Queued = %d after timeout, want 0", g.Queued())
	}
}

// expiredContext returns a context whose deadline is already in the
// past; context.WithDeadline cancels it synchronously, so Err() is
// non-nil by the time it is returned.
func expiredContext(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	t.Cleanup(cancel)
	if ctx.Err() == nil {
		t.Fatal("context with past deadline not synchronously expired")
	}
	return ctx
}

// TestGateRejectsDoneContextOnFastPath is the regression test for the
// ctx-fidelity bug: a context that is already cancelled or expired must
// never be admitted, even when a slot is free.
func TestGateRejectsDoneContextOnFastPath(t *testing.T) {
	g := NewGate(2, 4)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire(cancelled) = %v, want context.Canceled", err)
	}
	if _, err := g.Acquire(expiredContext(t)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Acquire(expired) = %v, want ErrDeadlineExceeded", err)
	}

	// The rejected acquisitions must not have leaked slots or queue
	// positions: both slots are still admittable.
	if g.Queued() != 0 {
		t.Fatalf("Queued = %d after rejections, want 0", g.Queued())
	}
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second slot unavailable after done-ctx rejections: %v", err)
	}
	r1()
	r2()
}

// TestGateFullQueueDoneContextKeepsTypedError pins the shed-vs-deadline
// precedence: when the queue is full AND the context is already done,
// the caller gets its context's typed error, not ErrOverloaded — the
// query was dead before the gate could shed it.
func TestGateFullQueueDoneContextKeepsTypedError(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(1, 0)
	g.Instrument(reg)
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r()
	// Queue has no room; a live ctx sheds...
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("live ctx on full queue = %v, want ErrOverloaded", err)
	}
	// ...but an expired one reports the deadline, and a cancelled one the
	// cancellation.
	if _, err := g.Acquire(expiredContext(t)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired ctx on full queue = %v, want ErrDeadlineExceeded", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx on full queue = %v, want context.Canceled", err)
	}
	s := reg.Snapshot()
	if s.Counters["admission.deadline"] != 1 {
		t.Errorf("admission.deadline = %d, want 1", s.Counters["admission.deadline"])
	}
	// One genuine shed plus one cancellation-as-shed.
	if s.Counters["admission.shed"] != 2 {
		t.Errorf("admission.shed = %d, want 2", s.Counters["admission.shed"])
	}
}

func TestGateInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGate(1, 0)
	g.Instrument(reg)
	r, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatal(err)
	}
	r()
	s := reg.Snapshot()
	if s.Counters["admission.admitted"] != 1 || s.Counters["admission.shed"] != 1 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Histograms["admission.wait_us"].Count != 1 {
		t.Errorf("wait histogram = %+v", s.Histograms["admission.wait_us"])
	}
}

func TestInjectorSchedule(t *testing.T) {
	boom := errors.New("boom")
	in := NewInjector(1).Arm("s", Fault{Err: boom, After: 2, Every: 2})
	ctx := context.Background()
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, in.At(ctx, "s") != nil)
	}
	// After=2 skips hits 1-2; Every=2 then fires on hits 4, 6, 8.
	want := []bool{false, false, false, true, false, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: triggered=%v, want %v (all %v)", i+1, got[i], want[i], got)
		}
	}
	if in.Hits("s") != 8 {
		t.Errorf("Hits = %d, want 8", in.Hits("s"))
	}
}

func TestInjectorSeededProbIsDeterministic(t *testing.T) {
	boom := errors.New("boom")
	run := func(seed int64) []bool {
		in := NewInjector(seed).Arm("s", Fault{Err: boom, Prob: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, in.At(context.Background(), "s") != nil)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at hit %d", i)
		}
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("Prob=0.5 fired %d/%d times", fired, len(a))
	}
}

func TestInjectorDelayAbortsOnCancel(t *testing.T) {
	in := NewInjector(1).Arm("s", Fault{Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.At(ctx, "s") }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("At = %v, want Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("injected delay ignored cancellation")
	}
}

func TestInjectorNilAndContextPlumbing(t *testing.T) {
	var nilIn *Injector
	if err := nilIn.At(context.Background(), "s"); err != nil {
		t.Fatalf("nil injector At = %v", err)
	}
	nilIn.Arm("s", Fault{})
	nilIn.Disarm("s")
	if nilIn.Hits("s") != 0 {
		t.Fatal("nil injector counted hits")
	}
	if From(context.Background()) != nil {
		t.Fatal("From(empty ctx) != nil")
	}
	in := NewInjector(7)
	ctx := WithInjector(context.Background(), in)
	if From(ctx) != in {
		t.Fatal("From did not round-trip the injector")
	}
	if err := Inject(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	if in.Hits("s") != 1 {
		t.Errorf("Hits = %d, want 1", in.Hits("s"))
	}
}

func TestInjectorDisarm(t *testing.T) {
	boom := errors.New("boom")
	in := NewInjector(1).Arm("s", Fault{Err: boom})
	if err := in.At(context.Background(), "s"); !errors.Is(err, boom) {
		t.Fatalf("armed At = %v", err)
	}
	in.Disarm("s")
	if err := in.At(context.Background(), "s"); err != nil {
		t.Fatalf("disarmed At = %v", err)
	}
	if in.Hits("s") != 2 {
		t.Errorf("Hits = %d, want 2", in.Hits("s"))
	}
}
