// Package resilience is the engine's robustness layer: typed overload and
// deadline errors, an admission-control gate that bounds concurrent query
// execution and sheds load when a queue limit is hit, and a deterministic
// fault-injection harness used by tests to pin cancellation, timeout and
// partial-result behaviour at named pipeline stages.
//
// The package is stdlib-only. Everything is context-first: the gate's
// Acquire respects the caller's deadline, the injector travels inside a
// context.Context so faults reach the deepest evaluation loops without
// widening any signature, and injected delays abort the moment the
// context is cancelled.
package resilience

import (
	"context"
	"errors"
	"fmt"
)

// ErrOverloaded is returned when admission control sheds a query: the
// engine is at its concurrency limit and the wait queue is full. Callers
// should retry later (or against another replica); the query did not run.
var ErrOverloaded = errors.New("kwsearch: overloaded, query shed")

// ErrDeadlineExceeded is returned when a query's deadline expired before
// it was admitted, and is the typed cause behind partial responses. It
// wraps context.DeadlineExceeded, so errors.Is matches either sentinel.
var ErrDeadlineExceeded = fmt.Errorf("kwsearch: deadline exceeded: %w", context.DeadlineExceeded)

// AsTyped maps a context error to the package's typed sentinels:
// context.DeadlineExceeded becomes ErrDeadlineExceeded; anything else is
// returned unchanged (context.Canceled stays itself — a caller that
// cancelled does not need a softer name for what it did).
func AsTyped(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return err
}
