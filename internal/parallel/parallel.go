// Package parallel implements parallel keyword-query computing over
// candidate networks (Qin et al. VLDB'10, slides 129-133): CNs share
// sub-expressions, a shared execution graph carries per-node cost
// estimates, and jobs are partitioned across cores either naively (largest
// job to the lightest core) or sharing-aware (largest job to the core
// where its shared prefixes are already materialized).
package parallel

import (
	"sort"
	"sync"

	"kwsearch/internal/cn"
	"kwsearch/internal/fmath"
)

// Job is one CN with its cost decomposition: Prefixes[i] identifies the
// sub-CN induced by the first i+1 nodes (the construction-order prefixes
// the enumerator grows, which is exactly where CNs overlap), and
// PrefixCosts[i] is the cumulative estimated cost of materializing it.
type Job struct {
	CN          *cn.CN
	Prefixes    []string
	PrefixCosts []float64
}

// Cost returns the full evaluation cost estimate of the job.
func (j Job) Cost() float64 {
	if len(j.PrefixCosts) == 0 {
		return 0
	}
	return j.PrefixCosts[len(j.PrefixCosts)-1]
}

// Decompose derives a Job from a CN: prefix identities are canonical
// strings of the induced sub-CNs; costs estimate each join step by the
// joining tuple-set size.
func Decompose(c *cn.CN, ev *cn.Evaluator) Job {
	j := Job{CN: c}
	cum := 0.0
	for i := range c.Nodes {
		sub := &cn.CN{Nodes: append([]cn.NodeSpec(nil), c.Nodes[:i+1]...)}
		for _, e := range c.Edges {
			if e.A <= i && e.B <= i {
				sub.Edges = append(sub.Edges, e)
			}
		}
		size := float64(len(ev.KeywordSet(c.Nodes[i].Table)))
		if c.Nodes[i].Free {
			size = float64(len(ev.FreeSet(c.Nodes[i].Table)))
		}
		cum += 1 + size
		j.Prefixes = append(j.Prefixes, sub.Canonical())
		j.PrefixCosts = append(j.PrefixCosts, cum)
	}
	return j
}

// Assignment maps each worker to its jobs and reports the estimated
// per-worker load.
type Assignment struct {
	Jobs  [][]Job
	Loads []float64
}

// Makespan is the maximum worker load — the quantity both partitioners
// minimize.
func (a Assignment) Makespan() float64 {
	m := 0.0
	for _, l := range a.Loads {
		if l > m {
			m = l
		}
	}
	return m
}

func sortJobsByCost(jobs []Job) []Job {
	// Equal-cost jobs tie-break on the canonical CN string: with a plain
	// stable sort, worker placement of equal-cost jobs depends on the
	// caller's input order, which silently changes which prefixes are
	// co-located (and thus how much shared-prefix reuse the executor
	// gets) between runs. The canonical tie-break makes Assign a pure
	// function of the job *set*. Costs and canonical keys are memoized
	// up front: recomputing them inside the comparator made Assign a
	// measurable slice of both the per-query and the cold-plan profiles.
	costs := make([]float64, len(jobs))
	keys := make([]string, len(jobs))
	idx := make([]int, len(jobs))
	for i, j := range jobs {
		costs[i] = j.Cost()
		keys[i] = j.CN.Canonical()
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if !fmath.Eq(costs[idx[a]], costs[idx[b]]) {
			return costs[idx[a]] > costs[idx[b]]
		}
		return keys[idx[a]] < keys[idx[b]]
	})
	out := make([]Job, len(jobs))
	for i, j := range idx {
		out[i] = jobs[j]
	}
	return out
}

// Assign is the canonical partitioning entry point of the execution
// layer: sharing-aware placement (slide 132) with the deterministic
// equal-cost tie-break, so the same job set always lands on the same
// workers regardless of enumeration order.
func Assign(jobs []Job, workers int) Assignment {
	return SharingAwarePartition(jobs, workers)
}

// NaivePartition assigns the largest job to the currently lightest core
// (slide 131), charging every job its full cost.
func NaivePartition(jobs []Job, workers int) Assignment {
	if workers < 1 {
		workers = 1
	}
	a := Assignment{Jobs: make([][]Job, workers), Loads: make([]float64, workers)}
	for _, j := range sortJobsByCost(jobs) {
		best := 0
		for w := 1; w < workers; w++ {
			if a.Loads[w] < a.Loads[best] {
				best = w
			}
		}
		a.Jobs[best] = append(a.Jobs[best], j)
		a.Loads[best] += j.Cost()
	}
	return a
}

// SharingAwarePartition assigns the largest job to the core with the
// lightest *resulting* load, where a job's marginal cost on a core is its
// full cost minus the cost of the longest prefix already materialized
// there (slide 132: update the cost of the remaining jobs).
func SharingAwarePartition(jobs []Job, workers int) Assignment {
	if workers < 1 {
		workers = 1
	}
	a := Assignment{Jobs: make([][]Job, workers), Loads: make([]float64, workers)}
	have := make([]map[string]float64, workers) // prefix -> materialized cost
	for w := range have {
		have[w] = map[string]float64{}
	}
	marginal := func(j Job, w int) float64 {
		saved := 0.0
		for i, p := range j.Prefixes {
			if c, ok := have[w][p]; ok && c >= j.PrefixCosts[i] {
				if j.PrefixCosts[i] > saved {
					saved = j.PrefixCosts[i]
				}
			}
		}
		return j.Cost() - saved
	}
	for _, j := range sortJobsByCost(jobs) {
		best, bestLoad := 0, a.Loads[0]+marginal(j, 0)
		for w := 1; w < workers; w++ {
			if l := a.Loads[w] + marginal(j, w); l < bestLoad {
				best, bestLoad = w, l
			}
		}
		a.Jobs[best] = append(a.Jobs[best], j)
		a.Loads[best] = bestLoad
		for i, p := range j.Prefixes {
			if a := j.PrefixCosts[i]; have[best][p] < a {
				have[best][p] = a
			}
		}
	}
	return a
}

// ExecuteDataParallel evaluates every CN with data-level parallelism
// (slide 133's remedy for extremely skewed CN costs): each CN's driver
// keyword-node tuple list is split into `workers` chunks, and workers
// evaluate disjoint driver ranges of every CN, so even a single dominant
// CN spreads across cores. Results match Execute's.
func ExecuteDataParallel(ev *cn.Evaluator, jobs []Job, workers int) []cn.Result {
	if workers < 1 {
		workers = 1
	}
	var all []*cn.CN
	for _, j := range jobs {
		all = append(all, j.CN)
	}
	ev.Prewarm(all)

	var mu sync.Mutex
	var out []cn.Result
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []cn.Result
			for _, j := range jobs {
				driver := driverNode(j.CN)
				if driver < 0 {
					if w == 0 {
						local = append(local, ev.EvaluateCN(j.CN)...)
					}
					continue
				}
				set := ev.KeywordSet(j.CN.Nodes[driver].Table)
				for i := w; i < len(set); i += workers {
					local = append(local, ev.EvaluateCNWith(j.CN, driver, set[i])...)
				}
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return out
}

// driverNode picks the first keyword node of c, or -1.
func driverNode(c *cn.CN) int {
	kw := c.KeywordNodes()
	if len(kw) == 0 {
		return -1
	}
	return kw[0]
}

// Execute evaluates the assigned CNs with one goroutine per worker and
// merges their results — the actual parallel evaluation behind E19's
// wall-clock measurements.
func Execute(ev *cn.Evaluator, a Assignment) []cn.Result {
	var all []*cn.CN
	for _, jobs := range a.Jobs {
		for _, j := range jobs {
			all = append(all, j.CN)
		}
	}
	ev.Prewarm(all) // evaluation is read-only afterwards
	var mu sync.Mutex
	var out []cn.Result
	var wg sync.WaitGroup
	for _, jobs := range a.Jobs {
		if len(jobs) == 0 {
			continue
		}
		wg.Add(1)
		go func(jobs []Job) {
			defer wg.Done()
			var local []cn.Result
			for _, j := range jobs {
				local = append(local, ev.EvaluateCN(j.CN)...)
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}(jobs)
	}
	wg.Wait()
	return out
}
