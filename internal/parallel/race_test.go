package parallel

import (
	"sync"
	"testing"
)

// TestConcurrentDecomposeDeterministic stresses the documented read-only
// contract of Decompose and SharingAwarePartition: many goroutines
// decompose the same CNs against one shared Evaluator and partition
// them, and every goroutine must observe bit-identical prefixes, costs
// and makespans. Run with -race to catch hidden memoization writes.
func TestConcurrentDecomposeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	ev, ref, cns := setup(t)
	refAssign := SharingAwarePartition(ref, 4)

	const goroutines = 8
	const rounds = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				jobs := make([]Job, len(cns))
				for i, c := range cns {
					jobs[i] = Decompose(c, ev)
				}
				for i := range jobs {
					if len(jobs[i].Prefixes) != len(ref[i].Prefixes) {
						t.Errorf("job %d: %d prefixes, want %d", i, len(jobs[i].Prefixes), len(ref[i].Prefixes))
						return
					}
					for k := range jobs[i].Prefixes {
						if jobs[i].Prefixes[k] != ref[i].Prefixes[k] {
							t.Errorf("job %d prefix %d diverged", i, k)
							return
						}
						if jobs[i].PrefixCosts[k] != ref[i].PrefixCosts[k] {
							t.Errorf("job %d cost %d diverged: %v vs %v", i, k, jobs[i].PrefixCosts[k], ref[i].PrefixCosts[k])
							return
						}
					}
				}
				a := SharingAwarePartition(jobs, 4)
				if a.Makespan() != refAssign.Makespan() {
					t.Errorf("makespan diverged: %v vs %v", a.Makespan(), refAssign.Makespan())
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentEvaluationAfterPrewarm stresses the Prewarm contract:
// after one Prewarm, EvaluateCN from many goroutines must be read-only.
// This is exactly what Execute and ExecuteDataParallel rely on; -race
// verifies there is no lazy cache write left on the evaluation path.
func TestConcurrentEvaluationAfterPrewarm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	ev, jobs, cns := setup(t)
	ev.Prewarm(cns)

	want := 0
	for _, c := range cns {
		want += len(ev.EvaluateCN(c))
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := 0
			for _, c := range cns {
				got += len(ev.EvaluateCN(c))
			}
			if got != want {
				t.Errorf("concurrent evaluation produced %d results, want %d", got, want)
			}
		}()
	}
	wg.Wait()

	// The parallel executors themselves, once more under the detector.
	a := SharingAwarePartition(jobs, 4)
	if got := len(Execute(ev, a)); got != want {
		t.Fatalf("Execute produced %d results, want %d", got, want)
	}
	if got := len(ExecuteDataParallel(ev, jobs, 4)); got != want {
		t.Fatalf("ExecuteDataParallel produced %d results, want %d", got, want)
	}
}
