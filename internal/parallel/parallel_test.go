package parallel

import (
	"sort"
	"testing"

	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/schemagraph"
)

func setup(t *testing.T) (*cn.Evaluator, []Job, []*cn.CN) {
	t.Helper()
	db := dataset.DBLP(dataset.DBLPConfig{
		Authors: 60, Papers: 150, Conferences: 5, AuthorsPerPaper: 2,
		CitesPerPaper: 1, TitleTermCount: 3, ExtraVocab: 30, Seed: 17,
	})
	ix := invindex.FromDB(db)
	ev := cn.NewEvaluator(db, ix, []string{"keyword", "search"})
	g := schemagraph.FromDB(db)
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	})
	if len(cns) < 4 {
		t.Fatalf("too few CNs: %d", len(cns))
	}
	jobs := make([]Job, len(cns))
	for i, c := range cns {
		jobs[i] = Decompose(c, ev)
	}
	return ev, jobs, cns
}

func TestDecompose(t *testing.T) {
	ev, jobs, _ := setup(t)
	_ = ev
	for _, j := range jobs {
		if len(j.Prefixes) != j.CN.Size() {
			t.Fatalf("prefixes = %d for CN size %d", len(j.Prefixes), j.CN.Size())
		}
		// Costs are strictly increasing (each step adds >= 1).
		for i := 1; i < len(j.PrefixCosts); i++ {
			if j.PrefixCosts[i] <= j.PrefixCosts[i-1] {
				t.Fatalf("prefix costs not increasing: %v", j.PrefixCosts)
			}
		}
		// The full-CN prefix is the CN's own canonical form.
		if j.Prefixes[len(j.Prefixes)-1] != j.CN.Canonical() {
			t.Fatalf("last prefix != canonical CN")
		}
	}
	// CNs genuinely share prefixes (the premise of sharing-aware
	// partitioning).
	count := map[string]int{}
	for _, j := range jobs {
		for _, p := range j.Prefixes {
			count[p]++
		}
	}
	shared := 0
	for _, c := range count {
		if c > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Errorf("no shared prefixes across CNs")
	}
}

func TestPartitionsCoverAllJobs(t *testing.T) {
	_, jobs, _ := setup(t)
	for name, a := range map[string]Assignment{
		"naive":   NaivePartition(jobs, 3),
		"sharing": SharingAwarePartition(jobs, 3),
	} {
		n := 0
		for _, js := range a.Jobs {
			n += len(js)
		}
		if n != len(jobs) {
			t.Errorf("%s: assigned %d of %d jobs", name, n, len(jobs))
		}
		if a.Makespan() <= 0 {
			t.Errorf("%s: makespan = %v", name, a.Makespan())
		}
	}
}

// TestSharingAwareNoWorse is the E19 shape: accounting for shared prefixes
// never increases the makespan estimate.
func TestSharingAwareNoWorse(t *testing.T) {
	_, jobs, _ := setup(t)
	for _, workers := range []int{1, 2, 4} {
		naive := NaivePartition(jobs, workers)
		sharing := SharingAwarePartition(jobs, workers)
		if sharing.Makespan() > naive.Makespan()+1e-9 {
			t.Errorf("workers=%d: sharing-aware makespan %v exceeds naive %v",
				workers, sharing.Makespan(), naive.Makespan())
		}
	}
}

func TestExecuteMatchesSequential(t *testing.T) {
	ev, jobs, cns := setup(t)
	var want []float64
	for _, c := range cns {
		for _, r := range ev.EvaluateCN(c) {
			want = append(want, r.Score)
		}
	}
	sort.Float64s(want)
	for _, workers := range []int{1, 4} {
		a := SharingAwarePartition(jobs, workers)
		got := Execute(ev, a)
		scores := make([]float64, len(got))
		for i, r := range got {
			scores[i] = r.Score
		}
		sort.Float64s(scores)
		if len(scores) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(scores), len(want))
		}
		for i := range want {
			if scores[i] != want[i] {
				t.Fatalf("workers=%d: result scores differ", workers)
			}
		}
	}
}

func TestSingleWorkerDegenerate(t *testing.T) {
	_, jobs, _ := setup(t)
	a := NaivePartition(jobs, 0) // clamps to 1
	if len(a.Jobs) != 1 {
		t.Fatalf("workers clamped incorrectly: %d", len(a.Jobs))
	}
	total := 0.0
	for _, j := range jobs {
		total += j.Cost()
	}
	if a.Makespan() != total {
		t.Errorf("single-worker makespan %v != total %v", a.Makespan(), total)
	}
}

func TestExecuteDataParallelMatchesSequential(t *testing.T) {
	ev, jobs, cns := setup(t)
	var want []float64
	for _, c := range cns {
		for _, r := range ev.EvaluateCN(c) {
			want = append(want, r.Score)
		}
	}
	sort.Float64s(want)
	for _, workers := range []int{1, 3, 8} {
		got := ExecuteDataParallel(ev, jobs, workers)
		scores := make([]float64, len(got))
		for i, r := range got {
			scores[i] = r.Score
		}
		sort.Float64s(scores)
		if len(scores) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(scores), len(want))
		}
		for i := range want {
			if scores[i] != want[i] {
				t.Fatalf("workers=%d: result scores differ", workers)
			}
		}
	}
}

// TestAssignDeterministicUnderPermutation is the equal-cost tie-break
// fix: Assign must produce identical worker placement for any input
// permutation of the same job set, so shared-prefix co-location (and
// everything downstream that keys off it) is stable across runs.
func TestAssignDeterministicUnderPermutation(t *testing.T) {
	_, jobs, _ := setup(t)
	ref := Assign(jobs, 4)
	refKeys := assignmentKeys(ref)

	// A few deterministic permutations, including reversal (which flips
	// the relative order of every equal-cost pair).
	perms := [][]Job{reversed(jobs), rotated(jobs, 1), rotated(jobs, len(jobs)/2)}
	for pi, perm := range perms {
		got := Assign(perm, 4)
		if got.Makespan() != ref.Makespan() {
			t.Fatalf("perm %d: makespan %v != %v", pi, got.Makespan(), ref.Makespan())
		}
		gotKeys := assignmentKeys(got)
		for w := range refKeys {
			if len(gotKeys[w]) != len(refKeys[w]) {
				t.Fatalf("perm %d worker %d: %d jobs, want %d", pi, w, len(gotKeys[w]), len(refKeys[w]))
			}
			for i := range refKeys[w] {
				if gotKeys[w][i] != refKeys[w][i] {
					t.Fatalf("perm %d worker %d job %d: %q != %q", pi, w, i, gotKeys[w][i], refKeys[w][i])
				}
			}
		}
	}
}

// assignmentKeys renders each worker's job list as canonical CN strings.
func assignmentKeys(a Assignment) [][]string {
	out := make([][]string, len(a.Jobs))
	for w, js := range a.Jobs {
		for _, j := range js {
			out[w] = append(out[w], j.CN.Canonical())
		}
	}
	return out
}

func reversed(jobs []Job) []Job {
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[len(jobs)-1-i] = j
	}
	return out
}

func rotated(jobs []Job, by int) []Job {
	out := append([]Job(nil), jobs[by:]...)
	return append(out, jobs[:by]...)
}
