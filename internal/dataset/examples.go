package dataset

import "kwsearch/internal/relstore"

// SeltzerBerkeley builds the slide-7 database: University, Student,
// Project and Participation tuples that are scattered but collectively
// answer Q = "Seltzer, Berkeley" through joins (the "expected surprise").
func SeltzerBerkeley() *relstore.DB {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "university",
		Columns: []relstore.Column{
			{Name: "uid", Type: relstore.KindInt},
			{Name: "uname", Type: relstore.KindString, Text: true},
		},
		Key: "uid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "student",
		Columns: []relstore.Column{
			{Name: "sid", Type: relstore.KindInt},
			{Name: "sname", Type: relstore.KindString, Text: true},
			{Name: "uid", Type: relstore.KindInt},
		},
		Key: "sid",
		ForeignKeys: []relstore.ForeignKey{
			{Column: "uid", RefTable: "university", RefColumn: "uid"},
		},
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "project",
		Columns: []relstore.Column{
			{Name: "pid", Type: relstore.KindInt},
			{Name: "pname", Type: relstore.KindString, Text: true},
		},
		Key: "pid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "participation",
		Columns: []relstore.Column{
			{Name: "pid", Type: relstore.KindInt},
			{Name: "sid", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "pid", RefTable: "project", RefColumn: "pid"},
			{Column: "sid", RefTable: "student", RefColumn: "sid"},
		},
	})

	db.MustInsert("university", map[string]relstore.Value{
		"uid": relstore.Int(12), "uname": relstore.String("UC Berkeley"),
	})
	db.MustInsert("student", map[string]relstore.Value{
		"sid": relstore.Int(6055), "sname": relstore.String("Margo Seltzer"),
		"uid": relstore.Int(12),
	})
	db.MustInsert("project", map[string]relstore.Value{
		"pid": relstore.Int(5), "pname": relstore.String("Berkeley DB"),
	})
	db.MustInsert("participation", map[string]relstore.Value{
		"pid": relstore.Int(5), "sid": relstore.Int(6055),
	})
	// Distractors so the query is not trivially the whole database.
	db.MustInsert("university", map[string]relstore.Value{
		"uid": relstore.Int(13), "uname": relstore.String("MIT"),
	})
	db.MustInsert("student", map[string]relstore.Value{
		"sid": relstore.Int(7001), "sname": relstore.String("Alan Kay"),
		"uid": relstore.Int(13),
	})
	db.MustInsert("project", map[string]relstore.Value{
		"pid": relstore.Int(6), "pname": relstore.String("System R"),
	})
	db.MustInsert("participation", map[string]relstore.Value{
		"pid": relstore.Int(6), "sid": relstore.Int(7001),
	})
	return db
}

// WidomBib builds a tiny author–write–paper instance matching the CN
// example of slide 28 (Q = "Widom, XML"): Widom the author, papers with XML
// in the title, plus co-author rows so the larger CNs are non-empty.
func WidomBib() *relstore.DB {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "author",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
			{Name: "name", Type: relstore.KindString, Text: true},
		},
		Key: "aid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "paper",
		Columns: []relstore.Column{
			{Name: "pid", Type: relstore.KindInt},
			{Name: "title", Type: relstore.KindString, Text: true},
		},
		Key: "pid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "write",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
			{Name: "pid", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "aid", RefTable: "author", RefColumn: "aid"},
			{Column: "pid", RefTable: "paper", RefColumn: "pid"},
		},
	})
	db.MustInsert("author", map[string]relstore.Value{"aid": relstore.Int(1), "name": relstore.String("Jennifer Widom")})
	db.MustInsert("author", map[string]relstore.Value{"aid": relstore.Int(2), "name": relstore.String("Jeffrey Ullman")})
	db.MustInsert("author", map[string]relstore.Value{"aid": relstore.Int(3), "name": relstore.String("Serge Abiteboul")})
	db.MustInsert("paper", map[string]relstore.Value{"pid": relstore.Int(10), "title": relstore.String("Querying XML streams")})
	db.MustInsert("paper", map[string]relstore.Value{"pid": relstore.Int(11), "title": relstore.String("Datalog evaluation")})
	db.MustInsert("paper", map[string]relstore.Value{"pid": relstore.Int(12), "title": relstore.String("XML schema validation")})
	db.MustInsert("write", map[string]relstore.Value{"aid": relstore.Int(1), "pid": relstore.Int(10)})
	db.MustInsert("write", map[string]relstore.Value{"aid": relstore.Int(1), "pid": relstore.Int(11)})
	db.MustInsert("write", map[string]relstore.Value{"aid": relstore.Int(2), "pid": relstore.Int(11)})
	db.MustInsert("write", map[string]relstore.Value{"aid": relstore.Int(2), "pid": relstore.Int(12)})
	db.MustInsert("write", map[string]relstore.Value{"aid": relstore.Int(3), "pid": relstore.Int(10)})
	db.MustInsert("write", map[string]relstore.Value{"aid": relstore.Int(3), "pid": relstore.Int(12)})
	return db
}

// EventRow mirrors the slide-165 events table used by the table-analysis
// experiment (E10).
type EventRow struct {
	Month, State, City, Event, Description string
}

// Events returns the seven rows of the slide-16/165 example exactly.
func Events() []EventRow {
	return []EventRow{
		{"Dec", "TX", "Houston", "US Open Pool", "Best of 19, ranking"},
		{"Dec", "TX", "Dallas", "Cowboy's dream run", "Motorcycle, beer"},
		{"Dec", "TX", "Austin", "SPAM Museum party", "Classical American food"},
		{"Oct", "MI", "Detroit", "Motorcycle Rallies", "Tournament, round robin"},
		{"Dec", "MI", "Flint", "Michigan Pool Exhibition", "Non-ranking, 2 days"},
		{"Sep", "MI", "Lansing", "American Food history", "The best food from USA"},
		{"Dec", "MI", "Detroit", "Motorcycle winter show", "Dealers and demos"},
	}
}

// EventsDB loads Events into a single-table database.
func EventsDB() *relstore.DB {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "event",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.KindInt},
			{Name: "month", Type: relstore.KindString},
			{Name: "state", Type: relstore.KindString},
			{Name: "city", Type: relstore.KindString},
			{Name: "event", Type: relstore.KindString, Text: true},
			{Name: "description", Type: relstore.KindString, Text: true},
		},
		Key: "id",
	})
	for i, r := range Events() {
		db.MustInsert("event", map[string]relstore.Value{
			"id":          relstore.Int(int64(i)),
			"month":       relstore.String(r.Month),
			"state":       relstore.String(r.State),
			"city":        relstore.String(r.City),
			"event":       relstore.String(r.Event),
			"description": relstore.String(r.Description),
		})
	}
	return db
}

// LaptopRow mirrors the slide-166 text-cube table (E14).
type LaptopRow struct {
	Brand, Model, CPU, OS, Description string
}

// Laptops returns the slide-166/167 rows exactly.
func Laptops() []LaptopRow {
	return []LaptopRow{
		{"Acer", "AOA110", "1.6GHz", "Win 7", "lightweight laptop with powerful design"},
		{"Acer", "AOA110", "1.7GHz", "Win 7", "powerful processor for a laptop"},
		{"ASUS", "EEE PC", "1.7GHz", "Win Vista", "large disk powerful laptop value"},
		{"ASUS", "EEE PC", "1.6GHz", "Win Vista", "large disk budget laptop"},
	}
}

// Products returns the slide-95 entity table for the Keyword++ rewriting
// experiment (E9), padded with enough rows that distribution statistics are
// meaningful.
func Products() *relstore.DB {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "product",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.KindInt},
			{Name: "name", Type: relstore.KindString, Text: true},
			{Name: "brand", Type: relstore.KindString},
			{Name: "screen", Type: relstore.KindFloat},
			{Name: "description", Type: relstore.KindString, Text: true},
		},
		Key: "id",
	})
	rows := []struct {
		name, brand string
		screen      float64
		desc        string
	}{
		{"ThinkPad T60", "Lenovo", 14, "The IBM laptop for small business"},
		{"ThinkPad X40", "Lenovo", 12, "This notebook is ultraportable"},
		{"ThinkPad X60", "Lenovo", 12, "IBM heritage business laptop"},
		{"ThinkPad T43", "Lenovo", 14, "durable IBM classic laptop"},
		{"Latitude D620", "Dell", 14, "business laptop"},
		{"Latitude X1", "Dell", 12, "light business laptop"},
		{"Inspiron 6400", "Dell", 15, "home laptop large screen"},
		{"Pavilion dv6", "HP", 15, "entertainment laptop"},
		{"Pavilion tx1000", "HP", 12, "convertible laptop"},
		{"MacBook", "Apple", 13, "aluminium laptop"},
		{"MacBook Pro", "Apple", 15, "professional laptop"},
		{"Satellite A105", "Toshiba", 15, "value laptop"},
		{"Portege R500", "Toshiba", 12, "ultralight laptop"},
		{"Aspire One", "Acer", 10, "netbook small laptop"},
		{"TravelMate", "Acer", 14, "travel laptop"},
	}
	for i, r := range rows {
		db.MustInsert("product", map[string]relstore.Value{
			"id":          relstore.Int(int64(i)),
			"name":        relstore.String(r.name),
			"brand":       relstore.String(r.brand),
			"screen":      relstore.Float(r.screen),
			"description": relstore.String(r.desc),
		})
	}
	return db
}
