// Package dataset builds the synthetic corpora the experiments run on:
// a DBLP-style relational database, IMDB/bibliography-style XML documents,
// product-entity tables and query logs. Everything is seeded and
// deterministic so experiment tables are reproducible. These generators are
// the substitution for the proprietary datasets (DBLP, IMDB, product
// catalogs, query logs) used by the systems the tutorial surveys.
package dataset

import (
	"fmt"
	"math/rand"
)

// TitleTerms is the topical vocabulary paper titles draw from. It
// deliberately contains the terms the tutorial's examples use so worked
// examples and generated data share one vocabulary.
var TitleTerms = []string{
	"keyword", "search", "database", "query", "processing", "xml", "graph",
	"steiner", "tree", "ranking", "top-k", "index", "join", "optimization",
	"semantics", "schema", "relational", "semistructured", "proximity",
	"snippet", "cluster", "facet", "form", "cloud", "scalability",
	"olap", "mining", "stream", "parallel", "distributed", "probabilistic",
	"rdf", "spatial", "workflow", "entity", "extraction", "integration",
	"completion", "refinement", "rewriting", "cleaning", "ambiguity",
	"inference", "structure", "candidate", "network", "expansion",
	"bidirectional", "lca", "slca", "elca", "dewey", "authority", "pagerank",
	"tfidf", "vector", "correlation", "entropy", "evaluation", "benchmark",
	"axiom", "consistency", "monotonicity", "precision", "recall",
	"datalog", "view", "materialized", "cache", "adaptive", "selectivity",
	"cardinality", "histogram", "sketch", "sampling", "compression",
	"transaction", "concurrency", "recovery", "partition", "replication",
	"skyline", "aggregate", "cube", "warehouse", "provenance", "privacy",
}

// FirstNames and LastNames generate author names; the names appearing in
// the tutorial's examples are included.
var FirstNames = []string{
	"john", "mary", "wei", "yi", "ziyang", "margo", "jennifer", "jeffrey",
	"david", "surajit", "gautam", "divesh", "jim", "michael", "hector",
	"rakesh", "christos", "jiawei", "philip", "laura", "anhai", "alon",
}

// LastNames generate author surnames, paired with FirstNames.
var LastNames = []string{
	"widom", "ullman", "seltzer", "dewitt", "chen", "wang", "liu", "lin",
	"chaudhuri", "das", "srivastava", "gray", "stonebraker", "garcia",
	"agrawal", "faloutsos", "han", "yu", "haas", "doan", "halevy", "mark",
}

// ConferenceNames seed conference rows.
var ConferenceNames = []string{
	"sigmod", "vldb", "icde", "edbt", "cikm", "www", "kdd", "sigir",
	"pods", "cidr",
}

// zipfTerm draws a term index with a Zipfian distribution so the generated
// corpora exhibit the skewed term frequencies real text has.
type zipfTerm struct {
	z     *rand.Zipf
	terms []string
}

func newZipfTerm(rng *rand.Rand, terms []string, extra int) zipfTerm {
	all := append([]string(nil), terms...)
	for i := 0; i < extra; i++ {
		all = append(all, fmt.Sprintf("term%04d", i))
	}
	return zipfTerm{
		z:     rand.NewZipf(rng, 1.3, 2, uint64(len(all)-1)),
		terms: all,
	}
}

func (zt zipfTerm) draw() string { return zt.terms[zt.z.Uint64()] }

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }
