package dataset

import (
	"fmt"
	"math/rand"

	"kwsearch/internal/relstore"
)

// DBLPConfig sizes the synthetic bibliography database.
type DBLPConfig struct {
	Authors         int
	Papers          int
	Conferences     int
	AuthorsPerPaper int // mean; actual count is 1..2*mean-1
	CitesPerPaper   int // mean outgoing citations
	TitleTermCount  int // terms per title
	ExtraVocab      int // synthetic terms appended to TitleTerms
	Seed            int64
}

// DefaultDBLPConfig returns a laptop-scale default (a few thousand tuples).
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Authors:         400,
		Papers:          1000,
		Conferences:     10,
		AuthorsPerPaper: 2,
		CitesPerPaper:   2,
		TitleTermCount:  4,
		ExtraVocab:      200,
		Seed:            1,
	}
}

// DBLPSchema creates the five bibliography tables in db:
//
//	author(aid, name)
//	conference(cid, name, year)
//	paper(pid, title, cid)
//	write(aid, pid)
//	cite(citing, cited)
//
// This is the schema graph the tutorial's relational examples use
// (A ↔ W ↔ P, P → C, P ↔ Cite ↔ P).
func DBLPSchema(db *relstore.DB) {
	db.MustCreateTable(&relstore.TableSchema{
		Name: "author",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
			{Name: "name", Type: relstore.KindString, Text: true},
		},
		Key: "aid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "conference",
		Columns: []relstore.Column{
			{Name: "cid", Type: relstore.KindInt},
			{Name: "name", Type: relstore.KindString, Text: true},
			{Name: "year", Type: relstore.KindInt},
		},
		Key: "cid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "paper",
		Columns: []relstore.Column{
			{Name: "pid", Type: relstore.KindInt},
			{Name: "title", Type: relstore.KindString, Text: true},
			{Name: "cid", Type: relstore.KindInt},
		},
		Key: "pid",
		ForeignKeys: []relstore.ForeignKey{
			{Column: "cid", RefTable: "conference", RefColumn: "cid"},
		},
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "write",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
			{Name: "pid", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "aid", RefTable: "author", RefColumn: "aid"},
			{Column: "pid", RefTable: "paper", RefColumn: "pid"},
		},
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "cite",
		Columns: []relstore.Column{
			{Name: "citing", Type: relstore.KindInt},
			{Name: "cited", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "citing", RefTable: "paper", RefColumn: "pid"},
			{Column: "cited", RefTable: "paper", RefColumn: "pid"},
		},
	})
}

// DBLP generates a synthetic bibliography database per cfg.
func DBLP(cfg DBLPConfig) *relstore.DB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zt := newZipfTerm(rng, TitleTerms, cfg.ExtraVocab)
	db := relstore.NewDB()
	DBLPSchema(db)

	for i := 0; i < cfg.Authors; i++ {
		name := fmt.Sprintf("%s %s", pick(rng, FirstNames), pick(rng, LastNames))
		if i >= len(FirstNames)*len(LastNames) {
			name = fmt.Sprintf("%s%04d", name, i)
		}
		db.MustInsert("author", map[string]relstore.Value{
			"aid": relstore.Int(int64(i)), "name": relstore.String(name),
		})
	}
	for i := 0; i < cfg.Conferences; i++ {
		db.MustInsert("conference", map[string]relstore.Value{
			"cid":  relstore.Int(int64(i)),
			"name": relstore.String(ConferenceNames[i%len(ConferenceNames)]),
			"year": relstore.Int(int64(2000 + i%12)),
		})
	}
	for i := 0; i < cfg.Papers; i++ {
		title := ""
		for j := 0; j < cfg.TitleTermCount; j++ {
			if j > 0 {
				title += " "
			}
			title += zt.draw()
		}
		db.MustInsert("paper", map[string]relstore.Value{
			"pid":   relstore.Int(int64(i)),
			"title": relstore.String(title),
			"cid":   relstore.Int(int64(rng.Intn(cfg.Conferences))),
		})
	}
	// Writes: each paper gets 1..2*mean-1 distinct authors.
	for p := 0; p < cfg.Papers; p++ {
		n := 1
		if cfg.AuthorsPerPaper > 1 {
			n = 1 + rng.Intn(2*cfg.AuthorsPerPaper-1)
		}
		seen := map[int]bool{}
		for j := 0; j < n; j++ {
			a := rng.Intn(cfg.Authors)
			if seen[a] {
				continue
			}
			seen[a] = true
			db.MustInsert("write", map[string]relstore.Value{
				"aid": relstore.Int(int64(a)), "pid": relstore.Int(int64(p)),
			})
		}
	}
	// Citations, acyclic by construction (cite only earlier papers).
	for p := 1; p < cfg.Papers; p++ {
		n := rng.Intn(cfg.CitesPerPaper*2 + 1)
		seen := map[int]bool{}
		for j := 0; j < n; j++ {
			q := rng.Intn(p)
			if seen[q] {
				continue
			}
			seen[q] = true
			db.MustInsert("cite", map[string]relstore.Value{
				"citing": relstore.Int(int64(p)), "cited": relstore.Int(int64(q)),
			})
		}
	}
	return db
}
