package dataset

import (
	"testing"

	"kwsearch/internal/invindex"
	"kwsearch/internal/text"
)

func TestDBLPDeterministicAndSized(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.Authors, cfg.Papers, cfg.Conferences = 50, 120, 5
	a := DBLP(cfg)
	b := DBLP(cfg)
	if a.NumTuples() != b.NumTuples() {
		t.Fatalf("same seed produced different sizes: %d vs %d", a.NumTuples(), b.NumTuples())
	}
	if a.Table("author").Len() != 50 || a.Table("paper").Len() != 120 {
		t.Fatalf("stats = %v", a.Stats())
	}
	// Every write references existing author and paper.
	w := a.Table("write")
	for _, tp := range w.Tuples() {
		for _, fk := range w.Schema.ForeignKeys {
			if len(a.ForeignMatches(tp, fk)) != 1 {
				t.Fatalf("dangling FK in write: %+v", tp)
			}
		}
	}
	// Citations are acyclic by construction (cited < citing).
	c := a.Table("cite")
	for _, tp := range c.Tuples() {
		if tp.Values[1].Int >= tp.Values[0].Int {
			t.Fatalf("citation not backward: %+v", tp)
		}
	}
}

func TestDBLPTermSkew(t *testing.T) {
	db := DBLP(DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	// The Zipf head term must be much more frequent than the tail.
	dfs := []int{}
	for _, term := range ix.Terms() {
		dfs = append(dfs, ix.DF(term))
	}
	max, sum := 0, 0
	for _, d := range dfs {
		if d > max {
			max = d
		}
		sum += d
	}
	if max*len(dfs) < sum*3 {
		t.Errorf("vocabulary not skewed: max=%d avg=%f", max, float64(sum)/float64(len(dfs)))
	}
}

func TestSeltzerBerkeley(t *testing.T) {
	db := SeltzerBerkeley()
	ix := invindex.FromDB(db)
	if len(ix.Docs("seltzer")) != 1 || len(ix.Docs("berkeley")) != 2 {
		t.Fatalf("seltzer=%v berkeley=%v", ix.Docs("seltzer"), ix.Docs("berkeley"))
	}
	// No single tuple contains both keywords: the result must be assembled.
	if got := ix.Intersect([]string{"seltzer", "berkeley"}); got != nil {
		t.Fatalf("no single tuple should match both: %v", got)
	}
}

func TestWidomBib(t *testing.T) {
	db := WidomBib()
	ix := invindex.FromDB(db)
	if len(ix.Docs("widom")) != 1 {
		t.Errorf("widom docs = %v", ix.Docs("widom"))
	}
	if len(ix.Docs("xml")) != 2 {
		t.Errorf("xml docs = %v", ix.Docs("xml"))
	}
}

func TestEventsAndLaptops(t *testing.T) {
	if len(Events()) != 7 {
		t.Errorf("events = %d rows", len(Events()))
	}
	db := EventsDB()
	if db.Table("event").Len() != 7 {
		t.Errorf("eventsDB = %d rows", db.Table("event").Len())
	}
	if len(Laptops()) != 4 {
		t.Errorf("laptops = %d rows", len(Laptops()))
	}
	p := Products()
	if p.Table("product").Len() < 10 {
		t.Errorf("products too small")
	}
}

func TestConfXMLShape(t *testing.T) {
	tr := ConfXML()
	papers := tr.NodesByLabel("paper")
	if len(papers) != 2 {
		t.Fatalf("papers = %d", len(papers))
	}
	if tr.Root.Label != "conf" {
		t.Errorf("root = %s", tr.Root.Label)
	}
	demo := ConfDemoXML()
	if len(demo.NodesByLabel("demo")) != 1 {
		t.Errorf("demo tree wrong")
	}
}

func TestAuctionsXMLRoles(t *testing.T) {
	tr := AuctionsXML()
	// Tom appears in three distinct roles.
	roles := map[string]int{}
	for _, n := range tr.Nodes() {
		if text.Contains(n.Value, "tom") {
			roles[n.Label]++
		}
	}
	if len(roles) != 3 {
		t.Fatalf("tom roles = %v, want seller/buyer/auctioneer", roles)
	}
}

func TestBibXML(t *testing.T) {
	cfg := DefaultBibConfig()
	cfg.PapersPerVenue = 10
	tr := BibXML(cfg)
	confs := tr.NodesByLabel("conf")
	if len(confs) != cfg.Confs {
		t.Fatalf("confs = %d", len(confs))
	}
	papers := tr.NodesByLabel("paper")
	if len(papers) != (cfg.Confs+cfg.Journals)*cfg.PapersPerVenue {
		t.Fatalf("papers = %d", len(papers))
	}
	// Deterministic for a fixed seed.
	tr2 := BibXML(cfg)
	if tr.Len() != tr2.Len() {
		t.Errorf("not deterministic: %d vs %d", tr.Len(), tr2.Len())
	}
}

func TestKeywordTree(t *testing.T) {
	tr := KeywordTree(3, 3, map[string]int{"k0": 5, "k1": 40}, 7)
	count := func(term string) int {
		n := 0
		for _, node := range tr.Nodes() {
			if node.Value == term {
				n++
			}
		}
		return n
	}
	if count("k0") != 5 || count("k1") != 40 {
		t.Fatalf("match counts k0=%d k1=%d", count("k0"), count("k1"))
	}
}

func TestQueryLog(t *testing.T) {
	db := DBLP(DBLPConfig{Authors: 30, Papers: 80, Conferences: 4,
		AuthorsPerPaper: 2, CitesPerPaper: 1, TitleTermCount: 3, ExtraVocab: 20, Seed: 3})
	log := QueryLog(db, 50, 9)
	if len(log) != 50 {
		t.Fatalf("log size = %d", len(log))
	}
	seen := map[string]bool{}
	for _, e := range log {
		if len(e.Terms) == 0 || len(e.Terms) > 3 {
			t.Fatalf("bad query %v", e)
		}
		if e.Count < 1 {
			t.Fatalf("bad count %v", e)
		}
		key := ""
		for _, term := range e.Terms {
			key += term + "|"
		}
		if seen[key] {
			t.Fatalf("duplicate query %v", e.Terms)
		}
		seen[key] = true
	}
}
