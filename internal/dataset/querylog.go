package dataset

import (
	"math/rand"
	"sort"

	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
)

// LogEntry is one historical query with a hit count — the shape the
// facet-navigation, IQP and Keyword++ estimators consume.
type LogEntry struct {
	Terms []string
	Count int
}

// QueryLog synthesizes a query log of n distinct queries over the terms of
// db's inverted index, with Zipfian popularity. Queries have 1-3 terms
// drawn (biased) from frequent terms, so estimators see realistic skew.
func QueryLog(db *relstore.DB, n int, seed int64) []LogEntry {
	ix := invindex.FromDB(db)
	terms := ix.Terms()
	// Order terms by descending document frequency so the Zipf draw maps
	// rank 0 to the most frequent term.
	sort.SliceStable(terms, func(i, j int) bool { return ix.DF(terms[i]) > ix.DF(terms[j]) })
	if len(terms) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 2, uint64(len(terms)-1))
	cz := rand.NewZipf(rng, 1.5, 2, 50)

	seen := map[string]bool{}
	var out []LogEntry
	for len(out) < n {
		k := 1 + rng.Intn(3)
		q := make([]string, 0, k)
		used := map[string]bool{}
		for len(q) < k {
			t := terms[z.Uint64()]
			if !used[t] {
				used[t] = true
				q = append(q, t)
			}
		}
		sort.Strings(q)
		key := ""
		for _, t := range q {
			key += t + "\x00"
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, LogEntry{Terms: q, Count: 1 + int(cz.Uint64())})
	}
	return out
}
