package dataset

import (
	"fmt"
	"math/rand"

	"kwsearch/internal/xmltree"
)

// ConfXML builds the slide-32/33 tree used by the SLCA example:
//
//	conf
//	├── name: SIGMOD
//	├── year: 2007
//	├── paper
//	│   ├── title: keyword
//	│   └── author: Mark, author: Chen
//	└── paper
//	    ├── title: RDF
//	    └── author: Mark, author: Zhang
func ConfXML() *xmltree.Tree {
	b := xmltree.NewBuilder("conf")
	r := b.Root()
	b.Child(r, "name", "SIGMOD")
	b.Child(r, "year", "2007")
	p1 := b.Child(r, "paper", "")
	b.Child(p1, "title", "keyword")
	b.Child(p1, "author", "Mark")
	b.Child(p1, "author", "Chen")
	p2 := b.Child(r, "paper", "")
	b.Child(p2, "title", "RDF")
	b.Child(p2, "author", "Mark")
	b.Child(p2, "author", "Zhang")
	return b.Freeze()
}

// ConfDemoXML builds the slide-109 tree for the query-consistency axiom
// experiment: a SIGMOD conf with two papers and a demo, where the demo
// contains "Mark" but not "paper".
func ConfDemoXML() *xmltree.Tree {
	b := xmltree.NewBuilder("conf")
	r := b.Root()
	b.Child(r, "name", "SIGMOD")
	b.Child(r, "year", "2007")
	p1 := b.Child(r, "paper", "")
	b.Child(p1, "title", "keyword")
	b.Child(p1, "author", "Mark")
	b.Child(p1, "author", "Yang")
	p2 := b.Child(r, "paper", "")
	b.Child(p2, "title", "XML")
	b.Child(p2, "author", "Liu")
	b.Child(p2, "author", "Chen")
	d := b.Child(r, "demo", "")
	b.Child(d, "title", "Top-k")
	b.Child(d, "author", "Soliman")
	return b.Freeze()
}

// AuctionsXML builds the slide-161 auctions document for describable
// clustering: Tom appears as auctioneer, buyer and seller in different
// auctions.
func AuctionsXML() *xmltree.Tree {
	b := xmltree.NewBuilder("auctions")
	r := b.Root()

	a1 := b.Child(r, "closed_auction", "")
	b.Child(a1, "seller", "Bob")
	b.Child(a1, "buyer", "Mary")
	b.Child(a1, "auctioneer", "Tom")
	b.Child(a1, "price", "149.24")

	a2 := b.Child(r, "closed_auction", "")
	b.Child(a2, "seller", "Frank")
	b.Child(a2, "buyer", "Tom")
	b.Child(a2, "auctioneer", "Louis")
	b.Child(a2, "price", "750.30")

	a3 := b.Child(r, "open_auction", "")
	b.Child(a3, "seller", "Tom")
	b.Child(a3, "buyer", "Peter")
	b.Child(a3, "auctioneer", "Mark")
	b.Child(a3, "price", "350.00")

	a4 := b.Child(r, "closed_auction", "")
	b.Child(a4, "seller", "Tom")
	b.Child(a4, "buyer", "Mary")
	b.Child(a4, "auctioneer", "Louis")
	b.Child(a4, "price", "220.10")
	return b.Freeze()
}

// MovieXML builds the slide-27/36 IMDB fragment: movies with name/year/plot
// and a director, used by the label-path and XReal examples.
func MovieXML() *xmltree.Tree {
	b := xmltree.NewBuilder("imdb")
	r := b.Root()
	m1 := b.Child(r, "movie", "")
	b.Child(m1, "name", "shining")
	b.Child(m1, "year", "1980")
	b.Child(m1, "plot", "a writer in an empty hotel")
	m2 := b.Child(r, "movie", "")
	b.Child(m2, "name", "scoop")
	b.Child(m2, "year", "2006")
	b.Child(m2, "plot", "a journalism student")
	tv1 := b.Child(r, "tv", "")
	b.Child(tv1, "name", "Simpsons")
	b.Child(tv1, "plot", "a family in Springfield since 1980")
	tv2 := b.Child(r, "tv", "")
	b.Child(tv2, "name", "Friends")
	b.Child(tv2, "plot", "six friends in New York")
	d := b.Child(r, "director", "")
	b.Child(d, "name", "W Allen")
	b.Child(d, "DOB", "1935")
	return b.Freeze()
}

// BibConfig sizes the generated bibliography XML corpus.
type BibConfig struct {
	Confs           int
	Journals        int
	PapersPerVenue  int
	AuthorsPerPaper int
	TitleTermCount  int
	ExtraVocab      int
	Seed            int64
}

// DefaultBibConfig returns a laptop-scale default.
func DefaultBibConfig() BibConfig {
	return BibConfig{
		Confs:           8,
		Journals:        4,
		PapersPerVenue:  60,
		AuthorsPerPaper: 2,
		TitleTermCount:  4,
		ExtraVocab:      150,
		Seed:            1,
	}
}

// BibXML generates a bibliography document:
//
//	bib
//	├── conf*     (name, year, paper*)
//	├── journal*  (name, year, paper*)
//	└── paper has title, author*, and occasionally editor
//
// The conf/journal/editor split gives the XReal return-type and XBridge
// clustering experiments distinguishable contexts.
func BibXML(cfg BibConfig) *xmltree.Tree {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zt := newZipfTerm(rng, TitleTerms, cfg.ExtraVocab)
	b := xmltree.NewBuilder("bib")
	root := b.Root()

	addVenue := func(kind string, idx int) {
		v := b.Child(root, kind, "")
		name := ConferenceNames[idx%len(ConferenceNames)]
		if kind == "journal" {
			name = "tods"
			if idx%2 == 1 {
				name = "vldbj"
			}
		}
		b.Child(v, "name", name)
		b.Child(v, "year", fmt.Sprintf("%d", 2000+idx%12))
		for p := 0; p < cfg.PapersPerVenue; p++ {
			paper := b.Child(v, "paper", "")
			title := ""
			for j := 0; j < cfg.TitleTermCount; j++ {
				if j > 0 {
					title += " "
				}
				title += zt.draw()
			}
			b.Child(paper, "title", title)
			n := 1 + rng.Intn(cfg.AuthorsPerPaper*2-1)
			for a := 0; a < n; a++ {
				b.Child(paper, "author",
					fmt.Sprintf("%s %s", pick(rng, FirstNames), pick(rng, LastNames)))
			}
			if rng.Intn(4) == 0 {
				b.Child(paper, "editor",
					fmt.Sprintf("%s %s", pick(rng, FirstNames), pick(rng, LastNames)))
			}
		}
	}
	for i := 0; i < cfg.Confs; i++ {
		addVenue("conf", i)
	}
	for i := 0; i < cfg.Journals; i++ {
		addVenue("journal", i)
	}
	return b.Freeze()
}

// KeywordTree generates a random tree whose leaves carry terms k0..k(v-1)
// with the requested per-term match counts — the workload generator for the
// SLCA/ELCA algorithm benchmarks (E15, E20), where the shapes depend on
// |Smin| and |Smax|.
func KeywordTree(fanout, depth int, matchCounts map[string]int, seed int64) *xmltree.Tree {
	rng := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder("root")
	var leaves []*xmltree.Node
	var grow func(parent *xmltree.Node, d int)
	grow = func(parent *xmltree.Node, d int) {
		if d == 0 {
			leaves = append(leaves, parent)
			return
		}
		for i := 0; i < fanout; i++ {
			grow(b.Child(parent, fmt.Sprintf("n%d", d), ""), d-1)
		}
	}
	grow(b.Root(), depth)
	for term, count := range matchCounts {
		for i := 0; i < count; i++ {
			leaf := leaves[rng.Intn(len(leaves))]
			b.Child(leaf, "kw", term)
		}
	}
	return b.Freeze()
}
