// Package forms implements query-form generation and selection (slides
// 54-64): offline generation of skeleton templates with
// operator-specific predicate/output attributes ranked by queriability
// (Jayapandian & Jagadish PVLDB'08), and online keyword-to-form selection
// with schema-term substitution, IR ranking and two-level grouping (Chu et
// al. SIGMOD'09). QUnits (Nandi & Jagadish CIDR'09) correspond to forms
// with no user-fillable operators.
package forms

import (
	"fmt"
	"sort"
	"strings"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/invindex"
	"kwsearch/internal/rank"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/text"
)

// Attribute is one column attached to a form with a role.
type Attribute struct {
	Table, Column string
	Queriability  float64
}

// Form is one generated query form.
type Form struct {
	// Tables is the sorted skeleton (a connected set of relations).
	Tables []string
	// Selections, Outputs, OrderBy and Aggregates carry the
	// operator-specific attributes of slide 63.
	Selections []Attribute
	Outputs    []Attribute
	OrderBy    []Attribute
	Aggregates []Attribute
	// Queriability is the form's overall score.
	Queriability float64
}

// Skeleton renders the grouping key of slide 58's first level.
func (f *Form) Skeleton() string { return strings.Join(f.Tables, "-") }

// Class renders the query-class grouping key of slide 58's second level.
func (f *Form) Class() string {
	if len(f.Aggregates) > 0 {
		return "AGGR"
	}
	return "SELECT"
}

// String renders "author-paper-write [SELECT]".
func (f *Form) String() string { return fmt.Sprintf("%s [%s]", f.Skeleton(), f.Class()) }

// EntityQueriability scores each table by PageRank-style accessibility on
// the schema graph, with edge weights proportional to instance-level
// participation (slide 60: a node often reached while browsing is often
// queried).
func EntityQueriability(db *relstore.DB, g *schemagraph.Graph) map[string]float64 {
	tables := g.Tables()
	idx := map[string]int{}
	for i, t := range tables {
		idx[t] = i
	}
	dg := datagraph.New(len(tables))
	for _, e := range g.Edges() {
		w := participationWeight(db, e)
		dg.AddEdge(datagraph.NodeID(idx[e.From]), datagraph.NodeID(idx[e.To]), w)
	}
	scores := rank.Authority(dg, 0.85, 40)
	out := make(map[string]float64, len(tables))
	for i, t := range tables {
		out[t] = scores[i]
	}
	return out
}

// participationWeight estimates the fraction of referencing tuples with a
// resolvable reference — the generalized participation of slide 40/61.
func participationWeight(db *relstore.DB, e schemagraph.Edge) float64 {
	t := db.Table(e.From)
	ref := db.Table(e.To)
	if t == nil || ref == nil || t.Len() == 0 {
		return 0.5
	}
	ci := t.ColumnIndex(e.FromCol)
	if ci < 0 {
		return 0.5
	}
	n := 0
	for _, tp := range t.Tuples() {
		if !tp.Values[ci].IsNull() {
			n++
		}
	}
	w := float64(n) / float64(t.Len())
	if w == 0 {
		return 0.05
	}
	return w
}

// AttributeQueriability scores each (table, column) by its non-null
// occurrence ratio (slide 62: frequent attributes are important).
func AttributeQueriability(db *relstore.DB) map[[2]string]float64 {
	out := map[[2]string]float64{}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		if t.Len() == 0 {
			continue
		}
		for ci, col := range t.Schema.Columns {
			n := 0
			for _, tp := range t.Tuples() {
				if !tp.Values[ci].IsNull() {
					n++
				}
			}
			out[[2]string{name, col.Name}] = float64(n) / float64(t.Len())
		}
	}
	return out
}

// GenerateOptions tunes offline form generation.
type GenerateOptions struct {
	// MaxTables bounds skeleton size (default 3).
	MaxTables int
	// MaxForms keeps the top forms by queriability (0 = all).
	MaxForms int
}

// Generate enumerates connected skeletons up to MaxTables tables and
// attaches attributes by the operator-specific rules of slide 63:
// selective attributes → selections, text attributes → outputs,
// single-valued mandatory numerics → order-by, repeatable numerics →
// aggregates. Forms are ranked by the product of their tables' entity
// queriabilities (related entities are asked together, slide 61).
func Generate(db *relstore.DB, g *schemagraph.Graph, opts GenerateOptions) []*Form {
	if opts.MaxTables <= 0 {
		opts.MaxTables = 3
	}
	eq := EntityQueriability(db, g)
	aq := AttributeQueriability(db)

	// Enumerate connected table sets (BFS over the schema graph).
	seen := map[string]bool{}
	var sets [][]string
	var frontier [][]string
	for _, t := range g.Tables() {
		s := []string{t}
		frontier = append(frontier, s)
		sets = append(sets, s)
		seen[t] = true
	}
	for size := 1; size < opts.MaxTables; size++ {
		var next [][]string
		for _, s := range frontier {
			if len(s) != size {
				continue
			}
			for _, member := range s {
				for _, nb := range g.Neighbors(member) {
					if containsStr(s, nb) {
						continue
					}
					grown := append(append([]string(nil), s...), nb)
					sort.Strings(grown)
					key := strings.Join(grown, "-")
					if seen[key] {
						continue
					}
					seen[key] = true
					sets = append(sets, grown)
					next = append(next, grown)
				}
			}
		}
		frontier = next
	}

	var out []*Form
	for _, s := range sets {
		f := &Form{Tables: s, Queriability: 1}
		for _, tb := range s {
			f.Queriability *= eq[tb]
			t := db.Table(tb)
			if t == nil {
				continue
			}
			for _, col := range t.Schema.Columns {
				a := Attribute{Table: tb, Column: col.Name, Queriability: aq[[2]string{tb, col.Name}]}
				switch {
				case col.Text:
					// Text fields: informative outputs; selective text
					// (many distinct values) also makes good selections.
					f.Outputs = append(f.Outputs, a)
					if selectivity(t, col.Name) > 0.5 {
						f.Selections = append(f.Selections, a)
					}
				case col.Type == relstore.KindInt || col.Type == relstore.KindFloat:
					if a.Queriability == 1 { // mandatory: good for ORDER BY
						f.OrderBy = append(f.OrderBy, a)
					}
					f.Aggregates = append(f.Aggregates, a)
				}
			}
		}
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Queriability != out[j].Queriability {
			return out[i].Queriability > out[j].Queriability
		}
		return out[i].Skeleton() < out[j].Skeleton()
	})
	if opts.MaxForms > 0 && len(out) > opts.MaxForms {
		out = out[:opts.MaxForms]
	}
	return out
}

func selectivity(t *relstore.Table, column string) float64 {
	ci := t.ColumnIndex(column)
	if ci < 0 || t.Len() == 0 {
		return 0
	}
	distinct := map[relstore.Value]bool{}
	for _, tp := range t.Tuples() {
		distinct[tp.Values[ci]] = true
	}
	return float64(len(distinct)) / float64(t.Len())
}

func containsStr(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// Selector answers keyword queries with ranked, grouped forms (Chu et al.
// SIGMOD'09, slides 57-58).
type Selector struct {
	forms []*Form
	// formIx indexes each form's schema terms as one document.
	formIx *invindex.Index
	// dataIx indexes the database content for schema-term substitution.
	dataIx *invindex.Index
	db     *relstore.DB
}

// NewSelector indexes the forms for online selection.
func NewSelector(db *relstore.DB, forms []*Form) *Selector {
	s := &Selector{forms: forms, formIx: invindex.New(), dataIx: invindex.FromDB(db), db: db}
	for i, f := range forms {
		var b strings.Builder
		for _, tb := range f.Tables {
			b.WriteString(tb)
			b.WriteByte(' ')
		}
		for _, a := range append(append([]Attribute(nil), f.Selections...), f.Outputs...) {
			b.WriteString(a.Column)
			b.WriteByte(' ')
		}
		s.formIx.Add(invindex.DocID(i), b.String())
	}
	return s
}

// substitutions maps a data keyword to the tables whose content matches it
// (slide 57: "John, XML" also generates "Author, XML" etc.).
func (s *Selector) substitutions(term string) []string {
	var out []string
	for _, d := range s.dataIx.Docs(term) {
		tp := s.db.TupleByID(relstore.TupleID(d))
		if tp != nil && !containsStr(out, tp.Table) {
			out = append(out, tp.Table)
		}
	}
	sort.Strings(out)
	return out
}

// RankedForm is one selected form.
type RankedForm struct {
	Form  *Form
	Score float64
	// Group is the two-level grouping key "skeleton/class" of slide 58.
	Group string
}

// Select returns the top-k forms for the keyword query: each data keyword
// is replaced by its candidate table names, forms are scored with TF·IDF
// over their schema documents plus the form's queriability prior, and
// results carry their grouping keys.
func (s *Selector) Select(terms []string, k int) []RankedForm {
	var schemaTerms []string
	for _, raw := range terms {
		term := text.Normalize(raw)
		if term == "" {
			continue
		}
		if s.formIx.HasTerm(term) {
			schemaTerms = append(schemaTerms, term)
			continue
		}
		schemaTerms = append(schemaTerms, s.substitutions(term)...)
	}
	if len(schemaTerms) == 0 {
		return nil
	}
	var out []RankedForm
	for i, f := range s.forms {
		score := s.formIx.Score(schemaTerms, invindex.DocID(i))
		if score <= 0 {
			continue
		}
		out = append(out, RankedForm{
			Form:  f,
			Score: score * (1 + f.Queriability),
			Group: f.Skeleton() + "/" + f.Class(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Form.Skeleton() < out[j].Form.Skeleton()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// LogCoverage measures what fraction of a keyword query log the given
// forms can answer: a query is covered when some form's tables contain
// every query keyword's home table (the E24 measure).
func LogCoverage(s *Selector, forms []*Form, log [][]string) float64 {
	if len(log) == 0 {
		return 0
	}
	covered := 0
	for _, q := range log {
		// Home tables per term.
		ok := true
		var need [][]string
		for _, term := range q {
			subs := s.substitutions(text.Normalize(term))
			if len(subs) == 0 {
				ok = false
				break
			}
			need = append(need, subs)
		}
		if !ok {
			continue
		}
		for _, f := range forms {
			all := true
			for _, options := range need {
				hit := false
				for _, tb := range options {
					if containsStr(f.Tables, tb) {
						hit = true
						break
					}
				}
				if !hit {
					all = false
					break
				}
			}
			if all {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(log))
}
