package forms

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/schemagraph"
)

func TestMaterializeQUnits(t *testing.T) {
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	f := &Form{Tables: []string{"author", "paper", "write"}}
	units := MaterializeQUnits(db, g, f, 0)
	// Six write rows, each yielding one author-paper-write unit.
	if len(units) != 6 {
		t.Fatalf("units = %d, want 6", len(units))
	}
	for _, u := range units {
		if len(u.Tuples) != 3 {
			t.Fatalf("unit arity %d", len(u.Tuples))
		}
		if u.Text == "" {
			t.Fatalf("unit has no text")
		}
	}
	// Limit caps output.
	if got := MaterializeQUnits(db, g, f, 2); len(got) != 2 {
		t.Errorf("limit ignored: %d", len(got))
	}
	// Singleton skeleton: one unit per tuple.
	if got := MaterializeQUnits(db, g, &Form{Tables: []string{"author"}}, 0); len(got) != 3 {
		t.Errorf("author units = %d, want 3", len(got))
	}
	if got := MaterializeQUnits(db, g, &Form{}, 0); got != nil {
		t.Errorf("empty skeleton = %v", got)
	}
}

func TestSearchQUnits(t *testing.T) {
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	f := &Form{Tables: []string{"author", "paper", "write"}}
	units := MaterializeQUnits(db, g, f, 0)
	hits := SearchQUnits(units, []string{"widom", "xml"}, 5)
	if len(hits) != 1 {
		t.Fatalf("hits = %d, want 1 (Widom's XML streams unit)", len(hits))
	}
	if !strings.Contains(strings.ToLower(hits[0].QUnit.Text), "widom") {
		t.Errorf("hit text = %q", hits[0].QUnit.Text)
	}
	if hits[0].Score <= 0 {
		t.Errorf("score = %v", hits[0].Score)
	}
	if got := SearchQUnits(units, []string{"nosuch"}, 5); len(got) != 0 {
		t.Errorf("no-match search = %v", got)
	}
	// k caps results.
	all := SearchQUnits(units, []string{"xml"}, 1)
	if len(all) != 1 {
		t.Errorf("k cap ignored: %d", len(all))
	}
}
