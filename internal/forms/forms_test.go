package forms

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/schemagraph"
)

func setup(t *testing.T) (*Selector, []*Form) {
	t.Helper()
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	fs := Generate(db, g, GenerateOptions{MaxTables: 3})
	return NewSelector(db, fs), fs
}

func TestGenerateSkeletons(t *testing.T) {
	_, fs := setup(t)
	skels := map[string]bool{}
	for _, f := range fs {
		skels[f.Skeleton()] = true
		if f.Queriability <= 0 {
			t.Errorf("form %s queriability = %v", f, f.Queriability)
		}
	}
	for _, want := range []string{"author", "paper", "write", "author-write", "paper-write", "author-paper-write"} {
		if !skels[want] {
			t.Errorf("missing skeleton %s (have %v)", want, skels)
		}
	}
	// Disconnected author-paper (without write) must NOT appear.
	if skels["author-paper"] {
		t.Errorf("disconnected skeleton generated")
	}
}

func TestOperatorSpecificAttributes(t *testing.T) {
	_, fs := setup(t)
	for _, f := range fs {
		if f.Skeleton() != "author" {
			continue
		}
		// name: selective text → both selection and output.
		hasSel, hasOut := false, false
		for _, a := range f.Selections {
			if a.Column == "name" {
				hasSel = true
			}
		}
		for _, a := range f.Outputs {
			if a.Column == "name" {
				hasOut = true
			}
		}
		if !hasSel || !hasOut {
			t.Errorf("author.name should be selection and output: %+v", f)
		}
		// aid: mandatory numeric → order-by and aggregate.
		hasOrd, hasAgg := false, false
		for _, a := range f.OrderBy {
			if a.Column == "aid" {
				hasOrd = true
			}
		}
		for _, a := range f.Aggregates {
			if a.Column == "aid" {
				hasAgg = true
			}
		}
		if !hasOrd || !hasAgg {
			t.Errorf("author.aid should be order-by and aggregate: %+v", f)
		}
		if f.Class() != "AGGR" {
			t.Errorf("form with aggregates classes as %s", f.Class())
		}
	}
}

func TestEntityQueriabilityFavorsReferencedTables(t *testing.T) {
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	eq := EntityQueriability(db, g)
	if len(eq) != 3 {
		t.Fatalf("eq = %v", eq)
	}
	for tb, s := range eq {
		if s <= 0 {
			t.Errorf("queriability[%s] = %v", tb, s)
		}
	}
}

func TestAttributeQueriability(t *testing.T) {
	db := dataset.WidomBib()
	aq := AttributeQueriability(db)
	if aq[[2]string{"author", "name"}] != 1 {
		t.Errorf("fully populated attribute should score 1: %v", aq)
	}
}

// TestSlide57Selection: the data keyword "Widom" substitutes to the author
// table, so "widom xml" selects forms joining author and paper.
func TestSlide57Selection(t *testing.T) {
	sel, _ := setup(t)
	got := sel.Select([]string{"widom", "xml"}, 3)
	if len(got) == 0 {
		t.Fatal("no forms selected")
	}
	top := got[0]
	if !strings.Contains(top.Form.Skeleton(), "author") {
		t.Errorf("top form %s should involve author", top.Form)
	}
	if top.Group == "" || !strings.Contains(top.Group, "/") {
		t.Errorf("group key = %q", top.Group)
	}
	// Schema keywords work directly.
	got = sel.Select([]string{"author", "paper"}, 3)
	if len(got) == 0 {
		t.Fatal("schema-term query selected nothing")
	}
	if got := sel.Select([]string{"zzzz"}, 3); got != nil {
		t.Errorf("unmatched query selected %v", got)
	}
}

// TestE24LogCoverage: queriability-ranked forms cover the bulk of a
// synthetic keyword log.
func TestE24LogCoverage(t *testing.T) {
	db := dataset.WidomBib()
	g := schemagraph.FromDB(db)
	fs := Generate(db, g, GenerateOptions{MaxTables: 3})
	sel := NewSelector(db, fs)
	log := [][]string{
		{"widom"}, {"xml"}, {"widom", "xml"}, {"ullman", "datalog"},
		{"abiteboul", "schema"},
	}
	cov := LogCoverage(sel, fs, log)
	if cov < 0.8 {
		t.Errorf("coverage = %v, want >= 0.8", cov)
	}
	// With only the single-table author form, multi-table queries drop out.
	var authorOnly []*Form
	for _, f := range fs {
		if f.Skeleton() == "author" {
			authorOnly = append(authorOnly, f)
		}
	}
	cov2 := LogCoverage(sel, authorOnly, log)
	if cov2 >= cov {
		t.Errorf("restricted forms should cover less: %v vs %v", cov2, cov)
	}
}
