package forms

import (
	"sort"
	"strings"

	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/text"
)

// QUnit is one materialized "basic, independent semantic unit of
// information" (Nandi & Jagadish CIDR'09, slides 26 and 64): an instance
// of a form's skeleton — one tuple per table, joined — flattened into a
// retrievable document.
type QUnit struct {
	Form   *Form
	Tuples []*relstore.Tuple
	// Text concatenates the text columns of the member tuples; keyword
	// retrieval runs over it.
	Text string
}

// MaterializeQUnits joins the form's skeleton over the schema graph and
// returns up to limit instances (0 = all). Tables must form a connected
// set in g; disconnected skeletons yield nil.
func MaterializeQUnits(db *relstore.DB, g *schemagraph.Graph, f *Form, limit int) []QUnit {
	if len(f.Tables) == 0 {
		return nil
	}
	// Spanning join order: BFS within the skeleton.
	type step struct {
		table  string
		parent int // index into order; -1 for the root
		via    schemagraph.Edge
	}
	order := []step{{table: f.Tables[0], parent: -1}}
	placed := map[string]bool{f.Tables[0]: true}
	want := map[string]bool{}
	for _, t := range f.Tables {
		want[t] = true
	}
	for changed := true; changed; {
		changed = false
		for oi := 0; oi < len(order); oi++ {
			for _, e := range g.Adjacent(order[oi].table) {
				other := e.To
				if other == order[oi].table {
					other = e.From
				}
				if !want[other] || placed[other] {
					continue
				}
				placed[other] = true
				order = append(order, step{table: other, parent: oi, via: e})
				changed = true
			}
		}
	}
	if len(order) != len(f.Tables) {
		return nil // disconnected skeleton
	}

	var out []QUnit
	binding := make([]*relstore.Tuple, len(order))
	var rec func(oi int) bool // returns false to stop (limit reached)
	rec = func(oi int) bool {
		if oi == len(order) {
			q := QUnit{Form: f, Tuples: append([]*relstore.Tuple(nil), binding...)}
			var b strings.Builder
			for i, tp := range q.Tuples {
				t := db.Table(order[i].table)
				if s := tp.Text(t.Schema); s != "" {
					if b.Len() > 0 {
						b.WriteByte(' ')
					}
					b.WriteString(s)
				}
			}
			q.Text = b.String()
			out = append(out, q)
			return limit <= 0 || len(out) < limit
		}
		st := order[oi]
		var cands []*relstore.Tuple
		if st.parent < 0 {
			cands = db.Table(st.table).Tuples()
		} else {
			parent := binding[st.parent]
			pt := db.Table(order[st.parent].table)
			var fromCol, toCol string
			if st.via.From == order[st.parent].table {
				fromCol, toCol = st.via.FromCol, st.via.ToCol
			} else {
				fromCol, toCol = st.via.ToCol, st.via.FromCol
			}
			v := pt.Value(parent, fromCol)
			if v.IsNull() {
				return true
			}
			cands = db.Table(st.table).SelectEq(toCol, v)
		}
		for _, tp := range cands {
			binding[oi] = tp
			if !rec(oi + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// RankedQUnit is one retrieval answer over materialized QUnits.
type RankedQUnit struct {
	QUnit QUnit
	Score float64
}

// SearchQUnits retrieves QUnits matching every query term, ranked by
// TF·IDF over the QUnit documents — the "simpler interface" of slide 64:
// no bindings to fill, just keywords against materialized units.
func SearchQUnits(units []QUnit, terms []string, k int) []RankedQUnit {
	ix := invindex.New()
	for i, u := range units {
		ix.Add(invindex.DocID(i), u.Text)
	}
	norm := make([]string, 0, len(terms))
	for _, t := range terms {
		if n := text.Normalize(t); n != "" {
			norm = append(norm, n)
		}
	}
	docs := ix.Intersect(norm)
	out := make([]RankedQUnit, 0, len(docs))
	for _, d := range docs {
		out = append(out, RankedQUnit{
			QUnit: units[d],
			Score: ix.Score(norm, d),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
