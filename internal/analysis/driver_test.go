package analysis

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// driverModule builds a temp module with n packages, each containing a
// configurable number of renameRule violations, and returns the root and
// the package directories in input order.
func driverModule(t testing.TB, n int) (string, []string) {
	t.Helper()
	files := map[string]string{}
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("package p%d\n\nvar speling = %d\n", i, i)
		if i%2 == 1 {
			src += "\nfunc also() int { return speling }\n"
		}
		files[fmt.Sprintf("p%d/p.go", i)] = src
	}
	root := writeTestModule(t, files)
	dirs := make([]string, n)
	for i := 0; i < n; i++ {
		dirs[i] = filepath.Join(root, fmt.Sprintf("p%d", i))
	}
	return root, dirs
}

// flattenMessages projects results to comparable (dir, diagnostics)
// shape, dropping absolute positions.
func flattenMessages(results []DirResult) [][]string {
	out := make([][]string, len(results))
	for i, r := range results {
		msgs := []string{}
		for _, d := range r.Diags {
			msgs = append(msgs, fmt.Sprintf("%s:%d %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message))
		}
		out[i] = msgs
	}
	return out
}

// TestAnalyzeDirsParallelMatchesSerial pins the driver's core contract:
// parallel workers with private loaders produce exactly the serial
// result, in input order, regardless of completion order. Run under
// -race this also exercises the per-worker isolation for real.
func TestAnalyzeDirsParallelMatchesSerial(t *testing.T) {
	root, dirs := driverModule(t, 9)
	rule := []Rule{renameRule{from: "speling", to: "spelling"}}
	ctx := context.Background()

	serial := AnalyzeDirs(ctx, root, dirs, rule, 1)
	parallel := AnalyzeDirs(ctx, root, dirs, rule, 4)

	if len(serial) != len(dirs) || len(parallel) != len(dirs) {
		t.Fatalf("result counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(dirs))
	}
	for i := range dirs {
		if serial[i].Dir != dirs[i] || parallel[i].Dir != dirs[i] {
			t.Fatalf("result %d out of input order: serial %s, parallel %s, want %s", i, serial[i].Dir, parallel[i].Dir, dirs[i])
		}
	}
	if s, p := flattenMessages(serial), flattenMessages(parallel); !reflect.DeepEqual(s, p) {
		t.Fatalf("parallel diagnostics diverge from serial:\nserial:   %v\nparallel: %v", s, p)
	}
	// Odd packages have two violations, even ones one: spot-check the
	// diagnostics actually carry content.
	if n := len(serial[1].Diags); n != 2 {
		t.Fatalf("p1: got %d diagnostics, want 2", n)
	}
}

// TestAnalyzeDirsLoadErrorIsPerDirectory: one broken package must not
// poison its siblings.
func TestAnalyzeDirsLoadErrorIsPerDirectory(t *testing.T) {
	root, dirs := driverModule(t, 3)
	brokenRoot := writeTestModule(t, map[string]string{"broken/b.go": "package broken\n\nfunc { nope\n"})
	dirs = append(dirs, filepath.Join(brokenRoot, "broken"))

	results := AnalyzeDirs(context.Background(), root, dirs, []Rule{renameRule{from: "speling", to: "spelling"}}, 2)
	for i := 0; i < 3; i++ {
		if results[i].Err != nil {
			t.Errorf("healthy dir %s reported error: %v", dirs[i], results[i].Err)
		}
		if len(results[i].Diags) == 0 {
			t.Errorf("healthy dir %s reported no diagnostics", dirs[i])
		}
	}
	if results[3].Err == nil {
		t.Error("broken dir reported no error")
	}
}

// TestAnalyzeDirsCancelledContext: a cancelled context stops scheduling;
// every unanalyzed directory reports the context's error instead of
// silently vanishing from the results.
func TestAnalyzeDirsCancelledContext(t *testing.T) {
	root, dirs := driverModule(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	results := AnalyzeDirs(ctx, root, dirs, []Rule{renameRule{from: "speling", to: "spelling"}}, 2)
	if len(results) != len(dirs) {
		t.Fatalf("got %d results, want %d", len(results), len(dirs))
	}
	for i, r := range results {
		if r.Err == nil && len(r.Diags) == 0 {
			t.Errorf("result %d: neither error nor diagnostics after cancellation", i)
		}
	}
	cancelled := 0
	for _, r := range results {
		if r.Err != nil {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no directory reported the cancellation")
	}
}
