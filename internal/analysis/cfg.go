package analysis

import (
	"go/ast"
)

// Block is one basic block of a control-flow graph: a maximal run of
// statements (and control-carrying expressions) that executes without
// branching, followed by zero or more successor edges. Nodes appear in
// evaluation order; a non-exit block that no edge reaches is dead code
// (e.g. statements after a return).
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, 0 = entry).
	Index int
	// Nodes holds the block's statements and the control expressions
	// evaluated inside it (an if condition, a range statement's head).
	// Compound statements (if/for/switch/select) are not themselves
	// nodes — their pieces are distributed over the blocks they induce.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next.
	Succs []*Block
}

// CFG is an intra-procedural control-flow graph over one function body.
// It is deliberately lightweight: no φ-nodes, no expression-level
// ordering inside a statement, and function literals are not expanded —
// build a separate CFG per literal. Returns and panics edge to Exit;
// deferred calls are visible both as DeferStmt nodes where they are
// registered and in Deferred for exit-time reasoning.
type CFG struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single synthetic exit block every return/panic and the
	// fall-off-the-end path edge to. It holds no nodes.
	Exit *Block
	// Blocks lists every block, Entry first and Exit last.
	Blocks []*Block
	// Deferred collects the calls registered by DeferStmts anywhere in
	// the body, in source order. They run (in reverse) on every path to
	// Exit whether or not the registering block is on that path — a
	// conservative over-approximation rules must keep in mind.
	Deferred []*ast.CallExpr
}

// NewCFG builds the control-flow graph of body. The builder handles
// if/else, for (init/cond/post), range, switch and type switch (with
// fallthrough), select (one block per comm clause), labeled
// break/continue, goto, return, and treats panic(...) and os.Exit(...)
// expression statements as jumps to Exit.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*Block{}}
	b.cfg.Entry = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	exit := b.newBlock()
	b.cfg.Exit = exit
	// Retarget the placeholder exit edges recorded while building.
	for _, blk := range b.cfg.Blocks {
		for i, s := range blk.Succs {
			if s == sentinelExit {
				blk.Succs[i] = exit
			}
		}
	}
	b.edge(b.cur, exit) // fall off the end
	return b.cfg
}

// FindNode locates the top-level block node whose source range contains
// n, returning the block and that node. It returns (nil, nil) when n is
// not inside any block node (e.g. n is part of a function literal, whose
// body is not expanded into the enclosing CFG).
func (c *CFG) FindNode(n ast.Node) (*Block, ast.Node) {
	for _, blk := range c.Blocks {
		for _, bn := range blk.Nodes {
			if bn.Pos() <= n.Pos() && n.End() <= bn.End() {
				return blk, bn
			}
		}
	}
	return nil, nil
}

// sentinelExit stands in for the exit block during the build (the real
// exit is appended last so Blocks stays in rough source order).
var sentinelExit = &Block{Index: -1}

// frame is one enclosing breakable/continuable construct during the
// build: break jumps to brk; continue (loops only, cont != nil) to cont.
type frame struct {
	label string
	brk   *Block
	cont  *Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []frame
	labels map[string]*Block
	// fallthroughTarget is the next case clause's block while building a
	// switch clause body, nil elsewhere.
	fallthroughTarget *Block
	// pendingLabel names the label wrapping the next loop/switch/select
	// so labeled break/continue resolve to the right frame.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target and continues in a
// fresh (initially unreachable) block for any trailing dead code.
func (b *cfgBuilder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findFrame resolves a break/continue target: the innermost frame, or
// the innermost frame carrying the label. wantCont restricts the search
// to loop frames.
func (b *cfgBuilder) findFrame(label string, wantCont bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			elseEnd := b.cur
			after := b.newBlock()
			b.edge(thenEnd, after)
			b.edge(elseEnd, after)
			b.cur = after
		} else {
			after := b.newBlock()
			b.edge(cond, after)
			b.edge(thenEnd, after)
			b.cur = after
		}

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		b.frames = append(b.frames, frame{label: label, brk: after, cont: contTarget})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, contTarget)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		// The head holds the ranged operand and the key/value targets as
		// separate nodes — never the RangeStmt itself, whose source range
		// contains the body and would make FindNode resolve body
		// statements to the head block.
		b.add(s.X)
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, brk: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			b.edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(sentinelExit)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if f := b.findFrame(label, false); f != nil {
				b.jump(f.brk)
			} else {
				b.jump(sentinelExit)
			}
		case "continue":
			if f := b.findFrame(label, true); f != nil {
				b.jump(f.cont)
			} else {
				b.jump(sentinelExit)
			}
		case "goto":
			b.jump(b.labelBlock(label))
		case "fallthrough":
			if b.fallthroughTarget != nil {
				b.jump(b.fallthroughTarget)
			}
		}

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(s)
		if isNoReturnCall(s.X) {
			b.jump(sentinelExit)
		}

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Deferred = append(b.cfg.Deferred, s.Call)

	case nil:
		// nothing

	default:
		// AssignStmt, DeclStmt, GoStmt, IncDecStmt, SendStmt, EmptyStmt, ...
		b.add(s)
	}
}

// caseClauses builds the shared clause structure of switch and type
// switch: one block per clause, each edged from the head and into a
// common after-block, with fallthrough wired to the next clause.
func (b *cfgBuilder) caseClauses(label string, body *ast.BlockStmt) {
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, frame{label: label, brk: after})
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	savedFT := b.fallthroughTarget
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fallthroughTarget = blocks[i+1]
		} else {
			b.fallthroughTarget = nil
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallthroughTarget = savedFT
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// labelBlock returns (creating on first use) the block a label names, so
// forward gotos resolve before the labeled statement is reached.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// isNoReturnCall reports whether e is a call that never returns:
// panic(...), os.Exit(...), log.Fatal*(...), runtime.Goexit().
func isNoReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case id.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case id.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		case id.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}

// WalkShallow walks n in evaluation order like ast.Inspect but does not
// descend into function literals: their bodies execute on a different
// control path (or goroutine) and belong to their own CFG.
func WalkShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
