package analysis

import (
	"path/filepath"
	"testing"
)

// recorder wraps a real testing.TB but swallows Errorf, counting calls,
// so the meta-tests below can assert that RunFixtureTest DOES fail.
type recorder struct {
	testing.TB
	errors int
}

func (r *recorder) Helper()                                   {}
func (r *recorder) Errorf(format string, args ...interface{}) { r.errors++ }

// TestFixtureMultipleWantsOneLine: one `// want "a" "b"` comment expects
// two diagnostics on its line, and the harness matches each quoted
// string against a distinct diagnostic — the same finding cannot satisfy
// both.
func TestFixtureMultipleWantsOneLine(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"p/p.go": "package p\n\n" +
			"var speling, tpyo = 1, 2 // want \"speling should be\" \"tpyo should be\"\n",
	})
	RunFixtureTest(t, filepath.Join(root, "p"), []Rule{
		renameRule{from: "speling", to: "spelling"},
		renameRule{from: "tpyo", to: "typo"},
	})
}

// TestFixtureFailsWhenExpectedDiagnosticMissing: a want with no matching
// diagnostic must fail the fixture — this is what makes fixtures a real
// pin on rule behavior rather than decorative comments.
func TestFixtureFailsWhenExpectedDiagnosticMissing(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"p/p.go": "package p\n\n" +
			"var speling = 1 // want \"speling should be\" \"this never fires\"\n",
	})
	rec := &recorder{TB: t}
	RunFixtureTest(rec, filepath.Join(root, "p"), []Rule{renameRule{from: "speling", to: "spelling"}})
	if rec.errors != 1 {
		t.Fatalf("harness flagged %d failures, want exactly 1 (the unmatched want)", rec.errors)
	}
}

// TestFixtureFailsOnUnexpectedDiagnostic: the harness is two-sided — a
// diagnostic with no matching want also fails.
func TestFixtureFailsOnUnexpectedDiagnostic(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"p/p.go": "package p\n\nvar speling = 1\n",
	})
	rec := &recorder{TB: t}
	RunFixtureTest(rec, filepath.Join(root, "p"), []Rule{renameRule{from: "speling", to: "spelling"}})
	if rec.errors != 1 {
		t.Fatalf("harness flagged %d failures, want exactly 1 (the unexpected diagnostic)", rec.errors)
	}
}

// TestFixtureMultiRuleIgnoreList: one //lint:ignore directive naming
// several rules comma-separated suppresses each of them on the next
// line, and only them.
func TestFixtureMultiRuleIgnoreList(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"p/p.go": "package p\n\n" +
			"//lint:ignore rename-speling,rename-tpyo fixture exercises multi-rule ignore\n" +
			"var speling, tpyo, thrid = 1, 2, 3 // want \"thrid should be\"\n",
	})
	RunFixtureTest(t, filepath.Join(root, "p"), []Rule{
		renameRule{from: "speling", to: "spelling"},
		renameRule{from: "tpyo", to: "typo"},
		renameRule{from: "thrid", to: "third"},
	})
}

// TestFixtureWantOffset: `// want+N` anchors the expectation N lines
// below the comment, for diagnostics on declarations where a directly
// preceding comment would become documentation.
func TestFixtureWantOffset(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"p/p.go": "package p\n\n" +
			"// want+2 \"speling should be\"\n" +
			"\n" +
			"var speling = 1\n",
	})
	RunFixtureTest(t, filepath.Join(root, "p"), []Rule{renameRule{from: "speling", to: "spelling"}})
}
