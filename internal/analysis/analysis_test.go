package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoaderModuleDiscovery(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if ld.ModulePath != "kwsearch" {
		t.Fatalf("module path = %q, want kwsearch", ld.ModulePath)
	}
	if _, err := filepath.Abs(ld.ModuleRoot); err != nil {
		t.Fatalf("module root %q: %v", ld.ModuleRoot, err)
	}
}

func TestLoadDirTypeChecks(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ld.LoadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "kwsearch/internal/analysis" {
		t.Fatalf("path = %q", pkg.Path)
	}
	if pkg.Types == nil || pkg.Types.Name() != "analysis" {
		t.Fatalf("types package = %v", pkg.Types)
	}
	// The loader must resolve stdlib imports well enough to type
	// expressions: find some expression with a concrete type.
	typed := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if tv, ok := pkg.Info.Types[e]; ok && tv.Type != types.Typ[types.Invalid] {
					typed++
				}
			}
			return true
		})
	}
	if typed == 0 {
		t.Fatal("no expressions received types; import resolution is broken")
	}
}

func TestMatchDirsSkipsTestdata(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ld.MatchDirs([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	foundRules := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("MatchDirs returned a testdata dir: %s", d)
		}
		if filepath.Base(d) == "rules" {
			foundRules = true
		}
	}
	if !foundRules {
		t.Fatalf("MatchDirs missed the rules subpackage: %v", dirs)
	}
}

func TestImportPathOutsideModule(t *testing.T) {
	ld, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if got := ld.importPath(filepath.Join(ld.ModuleRoot, "internal", "analysis", "rules", "testdata", "src", "rand")); got != "" {
		t.Fatalf("testdata dir mapped to import path %q, want \"\"", got)
	}
	if got := ld.importPath(filepath.Dir(ld.ModuleRoot)); got != "" {
		t.Fatalf("dir above module mapped to %q, want \"\"", got)
	}
}
