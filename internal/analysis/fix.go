package analysis

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
)

// TextEdit is one byte-range replacement inside a single file: the
// source in [Pos, End) is replaced by NewText. Pos == End inserts.
// Rules build edits with token.Pos values; the framework resolves them
// to file offsets when the diagnostic is reported, so fixes survive
// crossing FileSet boundaries (the parallel driver gives every worker
// its own FileSet).
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string

	// Resolved location, filled in by Pass.ReportfFix.
	filename  string
	offset    int
	endOffset int
}

// SuggestedFix is a machine-applicable remediation attached to a
// Diagnostic: a set of non-overlapping edits that remove the finding.
// kwslint -fix applies fixes and gofmt-formats the result; a second run
// applies nothing because the first run's output no longer reports the
// diagnostic.
type SuggestedFix struct {
	// Message describes the change ("replace == with errors.Is").
	Message string
	Edits   []TextEdit
}

// resolve pins every edit to a concrete (filename, offset) range using
// the reporting pass's FileSet. It returns false when a position does
// not resolve or spans files.
func (f *SuggestedFix) resolve(fset *token.FileSet) bool {
	for i := range f.Edits {
		e := &f.Edits[i]
		lo := fset.Position(e.Pos)
		hi := fset.Position(e.End)
		if lo.Filename == "" || lo.Filename != hi.Filename || hi.Offset < lo.Offset {
			return false
		}
		e.filename, e.offset, e.endOffset = lo.Filename, lo.Offset, hi.Offset
	}
	return true
}

// FixResult is the outcome of ApplyFixes for one file.
type FixResult struct {
	Filename string
	// Edits is the number of text edits applied.
	Edits int
	// Content is the gofmt-formatted post-edit file content.
	Content []byte
}

// ApplyFixes computes the post-fix content of every file named by a
// diagnostic carrying a suggested fix. Edits are deduplicated (several
// diagnostics may propose the same change) and applied right-to-left;
// overlapping edits abort with an error rather than guess. Results come
// back sorted by filename; nothing is written to disk — that is the
// caller's decision (see WriteFixes).
func ApplyFixes(diags []Diagnostic) ([]FixResult, error) {
	type edit struct {
		lo, hi int
		text   string
	}
	perFile := map[string][]edit{}
	seen := map[string]bool{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			if e.filename == "" {
				return nil, fmt.Errorf("fix %q at %s: unresolved edit (not reported through ReportfFix?)", d.Fix.Message, d.Pos)
			}
			key := fmt.Sprintf("%s:%d:%d:%s", e.filename, e.offset, e.endOffset, e.NewText)
			if seen[key] {
				continue
			}
			seen[key] = true
			perFile[e.filename] = append(perFile[e.filename], edit{e.offset, e.endOffset, e.NewText})
		}
	}

	var out []FixResult
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].lo != edits[j].lo {
				return edits[i].lo > edits[j].lo
			}
			return edits[i].hi > edits[j].hi
		})
		for i := 1; i < len(edits); i++ {
			if edits[i].hi > edits[i-1].lo {
				return nil, fmt.Errorf("%s: overlapping fixes at offsets %d and %d; rerun after applying the first",
					file, edits[i].lo, edits[i-1].lo)
			}
		}
		for _, e := range edits {
			if e.hi > len(src) {
				return nil, fmt.Errorf("%s: edit range beyond EOF", file)
			}
			src = append(src[:e.lo], append([]byte(e.text), src[e.hi:]...)...)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return nil, fmt.Errorf("%s: fixes produce unparsable code: %w", file, err)
		}
		out = append(out, FixResult{Filename: file, Edits: len(edits), Content: formatted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Filename < out[j].Filename })
	return out, nil
}

// WriteFixes applies results to disk, preserving each file's mode.
func WriteFixes(results []FixResult) error {
	for _, r := range results {
		mode := os.FileMode(0o644)
		if st, err := os.Stat(r.Filename); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(r.Filename, r.Content, mode); err != nil {
			return err
		}
	}
	return nil
}
