package analysis

import (
	"context"
	"runtime"
	"sync"
)

// DirResult is the outcome of analyzing one package directory.
type DirResult struct {
	// Dir is the absolute package directory.
	Dir string
	// Path is the module-relative import path ("" outside the module).
	Path string
	// Diags are the surviving diagnostics, sorted by position.
	Diags []Diagnostic
	// Err reports a load failure (parse error, no Go files); Diags is
	// empty when set.
	Err error
}

// AnalyzeDirs loads and lints the given package directories with up to
// workers goroutines and returns one result per directory, in input
// order regardless of completion order, so output stays deterministic.
//
// Each worker owns a private Loader rooted at root: the stdlib loader's
// import cache and file set are not safe for concurrent use, and
// duplicating them per worker keeps packages fully independent — the
// small redundant stdlib re-check is paid in parallel and is far smaller
// than the per-package parse+typecheck it buys back. A cancelled ctx
// stops scheduling new directories; directories never analyzed report
// ctx.Err().
func AnalyzeDirs(ctx context.Context, root string, dirs []string, rules []Rule, workers int) []DirResult {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	results := make([]DirResult, len(dirs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ld *Loader
			for i := range jobs {
				res := DirResult{Dir: dirs[i]}
				if err := ctx.Err(); err != nil {
					res.Err = err
					results[i] = res
					continue
				}
				if ld == nil {
					l, err := NewLoader(root)
					if err != nil {
						res.Err = err
						results[i] = res
						continue
					}
					ld = l
				}
				pkg, err := ld.LoadDir(dirs[i])
				if err != nil {
					res.Err = err
					results[i] = res
					continue
				}
				res.Path = pkg.Path
				res.Diags = Run(pkg, rules)
				results[i] = res
			}
		}()
	}
	for i := range dirs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Workers are parked on the jobs channel, not mid-package:
			// stop feeding and mark everything unscheduled as cancelled.
			for j := i; j < len(dirs); j++ {
				results[j] = DirResult{Dir: dirs[j], Err: ctx.Err()}
			}
			close(jobs)
			wg.Wait()
			return results
		}
	}
	close(jobs)
	wg.Wait()
	return results
}
