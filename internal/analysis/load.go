package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready to be linted.
type Package struct {
	// Dir is the directory the package was loaded from.
	Dir string
	// Path is the module-relative import path ("" if Dir is outside the
	// module, e.g. a testdata fixture).
	Path string
	Fset *token.FileSet
	// Files are the parsed non-test Go files of Dir.
	Files []*ast.File
	// Types is the (possibly incomplete) type-checked package.
	Types *types.Package
	// Info holds expression types, definitions and uses for Files.
	Info *types.Info
	// TypeErrors collects type-checker complaints; the loader is lenient
	// so rules run even when an import could not be fully resolved.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-local imports resolve against the module root,
// everything else against GOROOT/src (with the GOROOT vendor directory as
// a fallback). Imports are checked without function bodies, so loading
// stays fast even when a package pulls in large stdlib dependencies.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset     *token.FileSet
	imported map[string]*types.Package
}

// NewLoader builds a Loader for the module containing dir, walking
// upwards until it finds go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module declaration in %s/go.mod", root)
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		imported:   map[string]*types.Package{},
	}, nil
}

// Fset returns the loader's shared file set (all loads share positions).
func (ld *Loader) Fset() *token.FileSet { return ld.fset }

// LoadDir parses and type-checks the non-test Go files of dir.
func (ld *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := build.ImportDir(abs, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", abs)
	}

	pkg := &Package{Dir: abs, Path: ld.importPath(abs), Fset: ld.fset, Files: files}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    ld,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	path := pkg.Path
	if path == "" {
		path = bp.Name
	}
	// Check is lenient: with Error set it keeps going and returns a
	// partially-complete package, which is all the rules need.
	tpkg, _ := conf.Check(path, ld.fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// importPath maps an absolute directory inside the module to its import
// path, or "" when the directory cannot be imported (outside the module
// or under a testdata directory).
func (ld *Loader) importPath(abs string) string {
	rel, err := filepath.Rel(ld.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return ld.ModulePath
	}
	for _, seg := range strings.Split(rel, "/") {
		if seg == "testdata" {
			return ""
		}
	}
	return ld.ModulePath + "/" + rel
}

// Import resolves an import path for the type checker: module-local
// packages from the module tree, everything else from GOROOT source.
// Dependencies are checked without function bodies and cached.
func (ld *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.imported[path]; ok {
		return pkg, nil
	}
	dir, err := ld.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         ld,
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // lenient: partial packages are fine
	}
	pkg, _ := conf.Check(path, ld.fset, files, nil)
	ld.imported[path] = pkg
	return pkg, nil
}

// resolveDir maps an import path to a source directory.
func (ld *Loader) resolveDir(path string) (string, error) {
	if path == ld.ModulePath {
		return ld.ModuleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, ld.ModulePath+"/"); ok {
		return filepath.Join(ld.ModuleRoot, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	for _, cand := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(cand); err == nil && st.IsDir() {
			return cand, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q (not module-local, not in GOROOT)", path)
}

// MatchDirs expands package patterns into package directories. A pattern
// ending in "/..." walks the tree below its prefix; any other pattern
// names a single directory. Directories named testdata or vendor and
// hidden/underscore directories are skipped, as are directories with no
// non-test Go files.
func (ld *Loader) MatchDirs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] && hasGoFiles(abs) {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return fs.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(pat)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
