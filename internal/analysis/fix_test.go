package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestModule materializes files (path -> content) under a fresh
// temp module root with its own go.mod, so the Loader resolves it
// independently of the enclosing repository.
func writeTestModule(t testing.TB, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module fixtest\n\ngo 1.21\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// loadTestDir loads one directory of the temp module.
func loadTestDir(t testing.TB, dir string) *Package {
	t.Helper()
	ld, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := ld.LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return pkg
}

// renameRule is the test rule of this file: it flags every identifier
// named from and suggests renaming it to to.
type renameRule struct{ from, to string }

func (r renameRule) Name() string { return "rename-" + r.from }
func (r renameRule) Doc() string  { return "test rule: rename " + r.from }
func (r renameRule) Check(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == r.from {
				p.ReportfFix(id.Pos(), &SuggestedFix{
					Message: "rename to " + r.to,
					Edits:   []TextEdit{{Pos: id.Pos(), End: id.End(), NewText: r.to}},
				}, "identifier %s should be %s", r.from, r.to)
			}
			return true
		})
	}
}

const misspelled = "package fixtest\n\nvar speling = 1\n\nfunc useIt() int { return speling }\n"

func TestApplyFixesRewritesAndConverges(t *testing.T) {
	root := writeTestModule(t, map[string]string{"p/p.go": misspelled})
	dir := filepath.Join(root, "p")
	rule := renameRule{from: "speling", to: "spelling"}

	diags := Run(loadTestDir(t, dir), []Rule{rule})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	results, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(results) != 1 || results[0].Edits != 2 {
		t.Fatalf("got %d results (edits %v), want 1 result with 2 edits", len(results), results)
	}
	content := string(results[0].Content)
	if strings.Contains(content, "speling") || !strings.Contains(content, "spelling") {
		t.Fatalf("fix did not rewrite:\n%s", content)
	}

	// Writing the fixes and re-analyzing converges: zero findings, and a
	// second ApplyFixes round has nothing to do — the -fix loop is
	// idempotent at the engine level.
	if err := WriteFixes(results); err != nil {
		t.Fatalf("WriteFixes: %v", err)
	}
	again := Run(loadTestDir(t, dir), []Rule{rule})
	if len(again) != 0 {
		t.Fatalf("after fix, got %d diagnostics, want 0: %v", len(again), again)
	}
	rerun, err := ApplyFixes(again)
	if err != nil || len(rerun) != 0 {
		t.Fatalf("second fix round: results %v, err %v; want none", rerun, err)
	}
}

func TestApplyFixesDeduplicatesIdenticalEdits(t *testing.T) {
	root := writeTestModule(t, map[string]string{"p/p.go": misspelled})
	dir := filepath.Join(root, "p")
	rule := renameRule{from: "speling", to: "spelling"}

	// Two analysis runs propose the same edits twice over; the fix
	// engine must collapse them instead of double-applying.
	pkg := loadTestDir(t, dir)
	diags := append(Run(pkg, []Rule{rule}), Run(pkg, []Rule{rule})...)
	results, err := ApplyFixes(diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	if len(results) != 1 || results[0].Edits != 2 {
		t.Fatalf("got %d results (edits %v), want 1 result with 2 deduplicated edits", len(results), results)
	}
}

// clobberRule proposes an edit spanning the whole var declaration, which
// overlaps renameRule's ident-level edit without being identical.
type clobberRule struct{}

func (clobberRule) Name() string { return "clobber" }
func (clobberRule) Doc() string  { return "test rule: conflicting edit" }
func (clobberRule) Check(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			p.ReportfFix(gd.Pos(), &SuggestedFix{
				Message: "rewrite declaration",
				Edits:   []TextEdit{{Pos: gd.Pos(), End: gd.End(), NewText: "var renamed = 1"}},
			}, "var decl rewritten")
		}
	}
}

func TestApplyFixesRejectsOverlappingEdits(t *testing.T) {
	root := writeTestModule(t, map[string]string{"p/p.go": misspelled})
	dir := filepath.Join(root, "p")

	diags := Run(loadTestDir(t, dir), []Rule{renameRule{from: "speling", to: "spelling"}, clobberRule{}})
	if _, err := ApplyFixes(diags); err == nil {
		t.Fatal("ApplyFixes accepted overlapping edits; want an error")
	} else if !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap error does not say so: %v", err)
	}
}

func TestApplyFixesRejectsUnresolvedEdits(t *testing.T) {
	// A fix fabricated outside Pass.report never went through resolve():
	// the engine must refuse it loudly rather than guess at offsets.
	d := Diagnostic{
		Pos:  token.Position{Filename: "x.go", Line: 1, Column: 1},
		Rule: "fabricated",
		Fix: &SuggestedFix{
			Message: "bogus",
			Edits:   []TextEdit{{Pos: 1, End: 2, NewText: "y"}},
		},
	}
	if _, err := ApplyFixes([]Diagnostic{d}); err == nil {
		t.Fatal("ApplyFixes accepted an unresolved edit; want an error")
	} else if !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("unresolved error does not say so: %v", err)
	}
}

// breakerRule suggests a fix that yields unparsable Go, which the fix
// engine must refuse (gofmt gate) instead of writing a broken file.
type breakerRule struct{}

func (breakerRule) Name() string { return "breaker" }
func (breakerRule) Doc() string  { return "test rule: syntactically invalid fix" }
func (breakerRule) Check(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "speling" {
				p.ReportfFix(id.Pos(), &SuggestedFix{
					Message: "break it",
					Edits:   []TextEdit{{Pos: id.Pos(), End: id.End(), NewText: "] not go ["}},
				}, "broken suggestion")
				return false
			}
			return true
		})
	}
}

func TestApplyFixesRejectsUnparsableResult(t *testing.T) {
	root := writeTestModule(t, map[string]string{"p/p.go": misspelled})
	dir := filepath.Join(root, "p")

	diags := Run(loadTestDir(t, dir), []Rule{breakerRule{}})
	if len(diags) == 0 {
		t.Fatal("breaker rule found nothing")
	}
	if _, err := ApplyFixes(diags); err == nil {
		t.Fatal("ApplyFixes accepted a fix producing invalid Go; want an error")
	}
}
