// Package analysis is a reusable stdlib-only static-analysis framework
// for this module: rules inspect type-checked packages and report
// position-accurate diagnostics, and `//lint:ignore rule reason`
// comments suppress individual findings. cmd/kwslint drives it over the
// whole tree; internal/analysis/rules holds the engine-specific rules.
//
// The framework deliberately uses only go/ast, go/parser, go/token and
// go/types (no golang.org/x/tools dependency) so it builds anywhere the
// Go toolchain does.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule is one static check. Check inspects the Pass's package and calls
// Pass.Reportf for each violation.
type Rule interface {
	// Name is the stable identifier used in diagnostics and in
	// `//lint:ignore name reason` suppression comments.
	Name() string
	// Doc is a one-line description shown by `kwslint -rules`.
	Doc() string
	// Check runs the rule over one package.
	Check(p *Pass)
}

// Diagnostic is one finding, positioned at a concrete file location.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	// Fix, when non-nil, is a machine-applicable remediation (see
	// SuggestedFix); kwslint -fix applies it.
	Fix *SuggestedFix
}

// String formats the diagnostic the way compilers do:
// path:line:col: message (rule).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Pass carries one type-checked package through a rule. The type
// information is best-effort: when an import could not be resolved the
// corresponding types degrade to invalid, and rules are expected to skip
// nodes they cannot type rather than guess.
type Pass struct {
	Fset *token.FileSet
	// Files holds the parsed non-test files of the package.
	Files []*ast.File
	// Path is the package's import path ("" for fixture loads by dir).
	Path string
	// Pkg is the type-checked package (never nil, possibly incomplete).
	Pkg *types.Package
	// Info carries the type-checker's results for expressions in Files.
	Info *types.Info

	rule      string
	diags     *[]Diagnostic
	ignores   []ignoreDirective
	reported  map[string]bool
	summaries *Summaries
}

// ignoreDirective is one parsed `//lint:ignore rules reason` comment: it
// suppresses the named rules (comma-separated, or "all") on the line it
// occupies and on the line directly below it.
type ignoreDirective struct {
	file  string
	line  int
	rules map[string]bool
}

// IgnorePrefix is the comment prefix of the suppression directive.
const IgnorePrefix = "lint:ignore"

// parseIgnores collects suppression directives from every comment in the
// pass's files.
func (p *Pass) parseIgnores() {
	p.ignores = nil
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// A directive without a reason is malformed; report it
					// so it cannot silently suppress anything.
					pos := p.Fset.Position(c.Pos())
					*p.diags = append(*p.diags, Diagnostic{
						Pos:     pos,
						Rule:    "lint-directive",
						Message: "malformed " + IgnorePrefix + " directive: want `//lint:ignore rule reason`",
					})
					continue
				}
				rules := map[string]bool{}
				for _, r := range strings.Split(fields[0], ",") {
					rules[r] = true
				}
				pos := p.Fset.Position(c.Pos())
				p.ignores = append(p.ignores, ignoreDirective{file: pos.Filename, line: pos.Line, rules: rules})
			}
		}
	}
}

// suppressed reports whether a diagnostic of rule at pos is covered by an
// ignore directive on the same line or the line immediately above.
func (p *Pass) suppressed(rule string, pos token.Position) bool {
	for _, ig := range p.ignores {
		if ig.file != pos.Filename {
			continue
		}
		if ig.line != pos.Line && ig.line != pos.Line-1 {
			continue
		}
		if ig.rules["all"] || ig.rules[rule] {
			return true
		}
	}
	return false
}

// Reportf records a diagnostic for the running rule at pos, unless a
// suppression directive covers it. Duplicate (position, rule, message)
// triples are coalesced so rules may re-visit nodes freely.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(pos, nil, format, args...)
}

// ReportfFix is Reportf with a suggested fix attached: kwslint -fix
// applies fix's edits, and the JSON output marks the finding fixable.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...interface{}) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *SuggestedFix, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.suppressed(p.rule, position) {
		return
	}
	if fix != nil && !fix.resolve(p.Fset) {
		fix = nil // unresolvable edits: keep the finding, drop the fix
	}
	d := Diagnostic{Pos: position, Rule: p.rule, Message: fmt.Sprintf(format, args...), Fix: fix}
	key := d.String()
	if p.reported[key] {
		return
	}
	p.reported[key] = true
	*p.diags = append(*p.diags, d)
}

// TypeOf returns the type of e, or nil when the checker could not
// determine one (e.g. because an import failed to resolve).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	t := p.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Most rules skip test code: tests may legitimately compare exact floats,
// use package-level rand, or spawn short-lived goroutines.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the rules over the package and returns the surviving
// diagnostics sorted by position.
func Run(pkg *Package, rules []Rule) []Diagnostic {
	var diags []Diagnostic
	p := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &diags,
		reported: map[string]bool{},
	}
	p.rule = "lint-directive"
	p.parseIgnores()
	for _, r := range rules {
		p.rule = r.Name()
		r.Check(p)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags
}
