package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncSummary records the caller-visible effects of one function or
// method, so rules can reason one call deep without going
// inter-procedural: which receiver-relative mutex paths it locks or
// unlocks, and whether it consults a context it receives.
type FuncSummary struct {
	// Name is the function's name (diagnostics only).
	Name string
	// LocksReceiver and UnlocksReceiver list receiver-relative selector
	// paths ("mu", "state.mu") of sync.Mutex/RWMutex values the function
	// Lock()s / Unlock()s anywhere in its body, including via defer.
	// RLock/RUnlock paths carry an "/R" suffix, matching LockPath.
	LocksReceiver   []string
	UnlocksReceiver []string
	// ConsultsCtx reports that the function reads its context parameter
	// (ctx.Err(), ctx.Done(), ctx.Deadline()) or passes it to a call.
	ConsultsCtx bool
}

// Summaries holds the per-package call-summary pass: one FuncSummary per
// function declaration, keyed by the *types.Func object so call sites
// resolve through Info.Uses.
type Summaries struct {
	funcs map[types.Object]*FuncSummary
}

// Of returns the summary for a called function object, or nil when the
// object is unknown (external package, type info missing).
func (s *Summaries) Of(obj types.Object) *FuncSummary {
	if s == nil || obj == nil {
		return nil
	}
	return s.funcs[obj]
}

// Summaries computes (once, lazily) the call summaries of every function
// declared in the pass's package.
func (p *Pass) Summaries() *Summaries {
	if p.summaries != nil {
		return p.summaries
	}
	s := &Summaries{funcs: map[types.Object]*FuncSummary{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var obj types.Object
			if p.Info != nil {
				obj = p.Info.Defs[fn.Name]
			}
			if obj == nil {
				continue
			}
			s.funcs[obj] = summarize(p, fn)
		}
	}
	p.summaries = s
	return s
}

// summarize computes one function's summary by a shallow lexical scan
// (function literals excluded: their effects happen on another control
// path, typically another goroutine).
func summarize(p *Pass, fn *ast.FuncDecl) *FuncSummary {
	sum := &FuncSummary{Name: fn.Name.Name}
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recv = fn.Recv.List[0].Names[0].Name
	}
	ctx := contextParamIdent(p, fn.Type)
	WalkShallow(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ctx != nil {
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && id.Name == ctx.Name {
					sum.ConsultsCtx = true
				}
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if ctx != nil {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctx.Name &&
				(sel.Sel.Name == "Err" || sel.Sel.Name == "Done" || sel.Sel.Name == "Deadline" || sel.Sel.Name == "Value") {
				sum.ConsultsCtx = true
			}
		}
		if recv == "" {
			return true
		}
		var verb string
		switch sel.Sel.Name {
		case "Lock", "RLock":
			verb = "lock"
		case "Unlock", "RUnlock":
			verb = "unlock"
		default:
			return true
		}
		path, ok := SelectorPath(sel.X)
		if !ok {
			return true
		}
		rel, ok := strings.CutPrefix(path, recv+".")
		if !ok {
			if path != recv {
				return true
			}
			rel = "" // the receiver itself embeds the mutex
		}
		if strings.HasPrefix(sel.Sel.Name, "R") {
			rel += "/R"
		}
		if verb == "lock" {
			sum.LocksReceiver = append(sum.LocksReceiver, rel)
		} else {
			sum.UnlocksReceiver = append(sum.UnlocksReceiver, rel)
		}
		return true
	})
	return sum
}

// SelectorPath flattens a chain of identifiers and field selections into
// a dotted path ("g.state.mu"). It fails (ok=false) on anything with
// computed parts — index expressions, calls, parenthesized trees — whose
// aliasing a syntactic path cannot capture.
func SelectorPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := SelectorPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// contextParamIdent returns the identifier of the first parameter whose
// type looks like context.Context (by type info when available, by
// syntax otherwise), or nil.
func contextParamIdent(p *Pass, ft *ast.FuncType) *ast.Ident {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextExpr(p, field.Type) || len(field.Names) == 0 {
			continue
		}
		return field.Names[0]
	}
	return nil
}

// isContextExpr reports whether expr denotes context.Context.
func isContextExpr(p *Pass, expr ast.Expr) bool {
	if t := p.TypeOf(expr); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}
