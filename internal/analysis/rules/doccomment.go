package rules

import (
	"go/ast"
	"go/token"

	"kwsearch/internal/analysis"
)

// DocComment flags exported package-level identifiers (functions,
// methods on exported types, types, consts, vars) that carry no doc
// comment. The engine's internal packages are its API surface for the
// rest of the module; undocumented exports rot fastest.
type DocComment struct {
	// Only restricts the rule to packages whose import path contains one
	// of these substrings (e.g. "internal/"); empty applies everywhere.
	Only []string
}

// Name implements analysis.Rule.
func (DocComment) Name() string { return "missing-doc-comment" }

// Doc implements analysis.Rule.
func (DocComment) Doc() string {
	return "exported identifiers of internal packages need doc comments"
}

// Check implements analysis.Rule.
func (r DocComment) Check(p *analysis.Pass) {
	if !pathMatches(p.Path, r.Only) {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				r.checkFunc(p, d)
			case *ast.GenDecl:
				r.checkGen(p, d)
			}
		}
	}
}

func (r DocComment) checkFunc(p *analysis.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || hasText(fn.Doc) {
		return
	}
	kind := "function"
	if fn.Recv != nil {
		// A method is part of the public surface only if its receiver
		// type is exported too.
		base := receiverBase(fn.Recv)
		if base == nil || !base.IsExported() {
			return
		}
		kind = "method"
	}
	p.Reportf(fn.Name.Pos(), "exported %s %s is missing a doc comment", kind, fn.Name.Name)
}

func (r DocComment) checkGen(p *analysis.Pass, gd *ast.GenDecl) {
	groupDoc := hasText(gd.Doc)
	for _, spec := range gd.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && !hasText(s.Doc) {
				p.Reportf(s.Name.Pos(), "exported type %s is missing a doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			// Trailing line comments count for const/var specs: that is
			// the idiomatic way to document enum-style groups.
			if groupDoc || hasText(s.Doc) || hasText(s.Comment) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					kind := "var"
					if gd.Tok == token.CONST {
						kind = "const"
					}
					p.Reportf(name.Pos(), "exported %s %s is missing a doc comment", kind, name.Name)
				}
			}
		}
	}
}

// receiverBase returns the identifier of the receiver's base type.
func receiverBase(recv *ast.FieldList) *ast.Ident {
	if len(recv.List) == 0 {
		return nil
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt
		default:
			return nil
		}
	}
}

// hasText reports whether a comment group contains any content.
func hasText(cg *ast.CommentGroup) bool { return cg != nil && len(cg.Text()) > 0 }
