// Package rules holds the kwslint rule set: engine-specific static
// checks for determinism (map iteration, random seeding, float
// comparisons), concurrency hygiene (goroutine joins, lock copies) and
// API documentation. Each rule lives in its own file with a golden
// fixture under testdata/src/<rule>/.
package rules

import (
	"go/ast"
	"go/types"
	"strings"

	"kwsearch/internal/analysis"
)

// Default is the rule set cmd/kwslint runs over the module. The
// float-equality rule is scoped to the ranking-sensitive packages the
// paper's reproduced numbers depend on; the doc-comment rule to the
// library packages under internal/.
func Default() []analysis.Rule {
	return []analysis.Rule{
		MapRange{},
		Rand{},
		Goroutine{},
		MutexValue{},
		SpanLeak{},
		CtxFirst{Packages: []string{
			"internal/exec", "internal/cn", "internal/lca",
			"internal/banks", "internal/steiner", "internal/core",
			"internal/server", "cmd/kwsd",
			"internal/analysis", "cmd/kwslint",
			"internal/plan", "internal/obs",
			"internal/shard",
		}},
		FloatEq{Packages: []string{"internal/rank", "internal/cn", "internal/banks"}},
		DocComment{Only: []string{"internal/"}},
		AtomicSetLoad{},
		CtxDrop{},
		LockHold{},
		ErrSentinel{},
		WgAdd{},
	}
}

// pkgNameOf returns the import path of the package an identifier refers
// to, or "" if it is not a package name (or type info is missing).
func pkgNameOf(p *analysis.Pass, id *ast.Ident) string {
	if p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// importsPath reports whether file imports the given path (syntactic
// fallback for when type checking could not resolve the import).
func importsPath(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// fileOf returns the *ast.File of the pass containing pos.
func fileOf(p *analysis.Pass, node ast.Node) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= node.Pos() && node.Pos() <= f.FileEnd {
			return f
		}
	}
	return nil
}

// pathMatches reports whether the pass's package path contains any of
// the given substrings. An empty list matches everything, and an empty
// path (a fixture loaded by directory) always matches so scoped rules
// remain testable.
func pathMatches(path string, subs []string) bool {
	if len(subs) == 0 || path == "" {
		return true
	}
	for _, s := range subs {
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}
