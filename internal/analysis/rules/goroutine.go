package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"kwsearch/internal/analysis"
)

// Goroutine flags `go` statements in functions with no visible join: no
// sync.WaitGroup Add/Done/Wait, no channel operation (send, receive,
// close, select, range over a channel) anywhere in the enclosing
// function. A fire-and-forget goroutine in engine code either leaks or
// races with shutdown; the join must be visible where the goroutine is
// launched.
type Goroutine struct{}

// Name implements analysis.Rule.
func (Goroutine) Name() string { return "goroutine-without-waitgroup" }

// Doc implements analysis.Rule.
func (Goroutine) Doc() string {
	return "goroutines must have a visible join (WaitGroup or channel) in the launching function"
}

// Check implements analysis.Rule.
func (r Goroutine) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var gos []*ast.GoStmt
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					gos = append(gos, g)
				}
				return true
			})
			if len(gos) == 0 || hasJoinEvidence(p, fn.Body) {
				continue
			}
			for _, g := range gos {
				p.Reportf(g.Pos(), "goroutine has no visible join in %s: tie it to a sync.WaitGroup or a channel the caller drains", fn.Name.Name)
			}
		}
	}
}

// hasJoinEvidence scans a function body (including launched goroutine
// bodies) for anything that could coordinate goroutine completion.
func hasJoinEvidence(p *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if isWaitGroupMethod(p, fun) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroupMethod reports whether sel is Add/Done/Wait on a
// sync.WaitGroup (or on an unresolvable receiver, to stay lenient when
// type info is partial).
func isWaitGroupMethod(p *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return true // unknown receiver: assume coordination rather than flag
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
