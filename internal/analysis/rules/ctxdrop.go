package rules

import (
	"go/ast"
	"go/types"

	"kwsearch/internal/analysis"
)

// CtxDrop is the dataflow companion to CtxFirst: where CtxFirst asks
// "does this function take and touch a context at all", CtxDrop asks
// "does every path that blocks or admits work actually consult it
// first". It runs a forward must-analysis over the function's CFG with
// the abstract domain {ctx consulted on every path? yes/no} and flags:
//
//   - fast paths: a channel send/receive reached by a path on which the
//     context was never consulted, in a function that does consult it
//     elsewhere. This is the PR 5 Gate bug: Acquire's free-slot fast
//     path admitted already-cancelled queries because only the slow
//     (queue) path checked ctx.
//   - loops: a for/range whose body communicates on a channel but never
//     consults the context inside the loop, so cancellation cannot
//     interrupt the iteration.
//
// A channel operation inside a select that also has a ctx.Done() case is
// the cancellation idiom itself and never flagged. "Consult" means
// calling ctx.Err/Done/Deadline/Value or passing ctx to another call
// (including one whose package-local summary shows it consults its own
// context parameter).
type CtxDrop struct{}

// Name implements analysis.Rule.
func (CtxDrop) Name() string { return "ctxdrop" }

// Doc implements analysis.Rule.
func (CtxDrop) Doc() string {
	return "every path that blocks or admits work must consult ctx first: check ctx.Err() on fast paths and inside communicating loops"
}

// Check implements analysis.Rule.
func (r CtxDrop) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctx := ctxParamObject(p, fn.Type)
			if ctx == nil {
				continue
			}
			r.checkBody(p, ctx, fn.Body)
			// Worker goroutines and closures capture the same ctx; each
			// literal body is its own control-flow universe.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					r.checkBody(p, ctx, lit.Body)
				}
				return true
			})
		}
	}
}

// ctxObj identifies the context parameter: by type-checker object when
// available, by name otherwise.
type ctxObj struct {
	obj  types.Object
	name string
}

// ctxParamObject resolves the function's context.Context parameter.
func ctxParamObject(p *analysis.Pass, ft *ast.FuncType) *ctxObj {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextType(p, field.Type) || len(field.Names) == 0 {
			continue
		}
		id := field.Names[0]
		if id.Name == "_" {
			return nil
		}
		c := &ctxObj{name: id.Name}
		if p.Info != nil {
			c.obj = p.Info.Defs[id]
		}
		return c
	}
	return nil
}

// refersToCtx reports whether id is the context parameter.
func (c *ctxObj) refersTo(p *analysis.Pass, id *ast.Ident) bool {
	if c.obj != nil && p.Info != nil {
		return p.Info.Uses[id] == c.obj
	}
	return id.Name == c.name
}

// consultFact is the must-analysis domain: consulted is true only when
// every path from entry to this point consulted the context.
type consultFact bool

func (f consultFact) Equal(o analysis.Fact) bool { return f == o.(consultFact) }
func (f consultFact) Join(o analysis.Fact) analysis.Fact {
	return consultFact(bool(f) && bool(o.(consultFact)))
}

func (r CtxDrop) checkBody(p *analysis.Pass, ctx *ctxObj, body *ast.BlockStmt) {
	// Precondition: the body (or the function it belongs to) consults
	// ctx somewhere. A function that ignores its context entirely is
	// CtxFirst's finding, not a dropped fast path.
	if !r.consultsAnywhere(p, ctx, body) {
		return
	}
	guarded := guardedChannelOps(p, ctx, body)
	cfg := analysis.NewCFG(body)
	transfer := func(n ast.Node, in analysis.Fact) analysis.Fact {
		if bool(in.(consultFact)) {
			return in
		}
		if r.nodeConsults(p, ctx, n) {
			return consultFact(true)
		}
		return in
	}
	sol := analysis.Forward(cfg, consultFact(false), transfer)

	// Fast paths: channel ops reachable with consulted == false.
	for _, op := range channelOps(p, ctx, body) {
		if guarded[op.node] {
			continue
		}
		fact, ok := sol.Before(op.node)
		if !ok {
			continue // unreachable or inside a nested literal
		}
		if !bool(fact.(consultFact)) {
			p.Reportf(op.node.Pos(), "%s on a path that never consulted %s: a cancelled caller can still %s; check %s.Err() before the fast path",
				op.what, ctx.name, op.verb, ctx.name)
		}
	}

	// Loops: a communicating loop must consult ctx every iteration.
	analysis.WalkShallow(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		ops := channelOps(p, ctx, loopBody)
		unguardedOp := false
		for _, op := range ops {
			if !guarded[op.node] {
				unguardedOp = true
			}
		}
		if !unguardedOp {
			return true
		}
		if r.consultsAnywhere(p, ctx, loopBody) {
			return true
		}
		p.Reportf(n.Pos(), "loop communicates on channels but never consults %s: cancellation cannot interrupt it; check %s.Err() or select on %s.Done() each iteration",
			ctx.name, ctx.name, ctx.name)
		return true
	})
}

// chanOp is one channel communication relevant to the rule.
type chanOp struct {
	node ast.Node
	what string
	verb string
}

// channelOps collects channel sends and receives in body (shallow:
// nested function literals excluded), skipping receives from ctx.Done().
func channelOps(p *analysis.Pass, ctx *ctxObj, body ast.Node) []chanOp {
	var ops []chanOp
	analysis.WalkShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			ops = append(ops, chanOp{node: n, what: "channel send", verb: "be admitted"})
		case *ast.UnaryExpr:
			if n.Op.String() != "<-" {
				return true
			}
			if isCtxDoneCall(p, ctx, n.X) {
				return true
			}
			ops = append(ops, chanOp{node: n, what: "channel receive", verb: "block here"})
		}
		return true
	})
	return ops
}

// guardedChannelOps returns the channel operations appearing as comm
// clauses of a select that also selects on ctx.Done() — the cancellation
// idiom, exempt from flagging.
func guardedChannelOps(p *analysis.Pass, ctx *ctxObj, body ast.Node) map[ast.Node]bool {
	guarded := map[ast.Node]bool{}
	analysis.WalkShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDone := false
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if commReceivesDone(p, ctx, cc.Comm) {
				hasDone = true
			}
		}
		if !hasDone {
			return true
		}
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				continue
			}
			analysis.WalkShallow(cc.Comm, func(m ast.Node) bool {
				switch m.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					guarded[m] = true
				}
				return true
			})
		}
		return true
	})
	return guarded
}

// commReceivesDone reports whether a select comm statement receives from
// ctx.Done().
func commReceivesDone(p *analysis.Pass, ctx *ctxObj, comm ast.Stmt) bool {
	found := false
	if comm == nil {
		return false
	}
	analysis.WalkShallow(comm, func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op.String() == "<-" && isCtxDoneCall(p, ctx, ue.X) {
			found = true
		}
		return true
	})
	return found
}

// isCtxDoneCall reports whether e is ctx.Done().
func isCtxDoneCall(p *analysis.Pass, ctx *ctxObj, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && ctx.refersTo(p, id)
}

// nodeConsults reports whether the block node consults ctx: calls
// ctx.Err/Done/Deadline/Value or passes ctx to a call.
func (r CtxDrop) nodeConsults(p *analysis.Pass, ctx *ctxObj, n ast.Node) bool {
	found := false
	analysis.WalkShallow(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Err", "Done", "Deadline", "Value":
				if id, ok := sel.X.(*ast.Ident); ok && ctx.refersTo(p, id) {
					found = true
					return false
				}
			}
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && ctx.refersTo(p, id) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// consultsAnywhere reports whether any node in body consults ctx,
// including inside nested literals (a worker that selects on ctx.Done()
// counts for its parent's precondition).
func (r CtxDrop) consultsAnywhere(p *analysis.Pass, ctx *ctxObj, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if r.nodeConsults(p, ctx, n) {
			found = true
			return false
		}
		return true
	})
	return found
}
