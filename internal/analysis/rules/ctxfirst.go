package rules

import (
	"go/ast"
	"go/types"

	"kwsearch/internal/analysis"
)

// CtxFirst flags exported functions in the evaluation packages that do
// interruptible work — spawn goroutines, or loop over candidate
// networks — without being cancellable: they either take no
// context.Context at all, or take one and never consult it. The
// robustness layer only holds if every long-running stage checks its
// context at iteration boundaries; an exported entry point that ignores
// its context reintroduces unbounded work the caller cannot abort.
//
// In the serving packages it additionally flags HTTP handlers — any
// function taking an *http.Request — that mint a fresh
// context.Background() or context.TODO(): a handler that does not
// derive from the request's context severs the client-disconnect and
// deadline chain, so the engine keeps evaluating queries nobody is
// waiting for.
type CtxFirst struct {
	// Packages restricts the rule to packages whose import path contains
	// one of these substrings; empty applies it everywhere.
	Packages []string
}

// Name implements analysis.Rule.
func (CtxFirst) Name() string { return "ctx-first" }

// Doc implements analysis.Rule.
func (CtxFirst) Doc() string {
	return "exported functions that spawn goroutines or loop over CNs must accept and honor a context.Context; HTTP handlers must derive per-request contexts, not mint fresh ones"
}

// Check implements analysis.Rule.
func (r CtxFirst) Check(p *analysis.Pass) {
	if !pathMatches(p.Path, r.Packages) {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// HTTP handlers (exported or not — handlers usually aren't)
			// must thread the request's own context through to the
			// engine, never a freshly minted root.
			if httpRequestParam(p, fn.Type) != nil {
				reportFreshContexts(p, fn)
			}
			if !fn.Name.IsExported() {
				continue
			}
			what := interruptibleWork(p, fn.Body)
			if what == "" {
				continue
			}
			ctxParam := contextParam(p, fn.Type)
			if ctxParam == nil {
				p.Reportf(fn.Name.Pos(), "exported %s %s but takes no context.Context; long-running work must be cancellable", fn.Name.Name, what)
				continue
			}
			if ctxParam.Name == "_" || !identUsed(p, fn.Body, ctxParam) {
				p.Reportf(ctxParam.Pos(), "exported %s takes a context.Context but never consults it; check ctx at iteration boundaries or pass it on", fn.Name.Name)
			}
		}
	}
}

// interruptibleWork reports what makes the function body long-running
// enough to need a context: "spawns goroutines" for a GoStmt, "loops
// over candidate networks" for a range over a CN slice. Empty means
// neither.
func interruptibleWork(p *analysis.Pass, body *ast.BlockStmt) string {
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			what = "spawns goroutines"
		case *ast.RangeStmt:
			if rangesOverCNs(p, n) {
				what = "loops over candidate networks"
			}
		}
		return what == ""
	})
	return what
}

// rangesOverCNs reports whether the range statement iterates a slice (or
// array) whose element type is the candidate-network type CN, possibly
// behind a pointer.
func rangesOverCNs(p *analysis.Pass, rs *ast.RangeStmt) bool {
	t := p.TypeOf(rs.X)
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	if ptr, ok := elem.Underlying().(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	named, ok := elem.(*types.Named)
	return ok && named.Obj().Name() == "CN"
}

// contextParam returns the identifier of the first parameter whose type
// is context.Context, or nil if the signature has none.
func contextParam(p *analysis.Pass, ft *ast.FuncType) *ast.Ident {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextType(p, field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			// Anonymous context parameter: unusable by definition, so
			// return a stand-in the caller reports as unused.
			return ast.NewIdent("_")
		}
		return field.Names[0]
	}
	return nil
}

// isContextType reports whether expr denotes context.Context, by type
// information when available and syntactically otherwise.
func isContextType(p *analysis.Pass, expr ast.Expr) bool {
	if t := p.TypeOf(expr); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// httpRequestParam returns the identifier of the first parameter whose
// type is *http.Request (an HTTP handler's request), or nil.
func httpRequestParam(p *analysis.Pass, ft *ast.FuncType) *ast.Ident {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isHTTPRequestPtr(p, field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			return ast.NewIdent("_")
		}
		return field.Names[0]
	}
	return nil
}

// isHTTPRequestPtr reports whether expr denotes *http.Request, by type
// information when available and syntactically otherwise.
func isHTTPRequestPtr(p *analysis.Pass, expr ast.Expr) bool {
	star, ok := expr.(*ast.StarExpr)
	if !ok {
		return false
	}
	if t := p.TypeOf(star.X); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
		}
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Request" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "http"
}

// reportFreshContexts flags every context.Background() / context.TODO()
// call in an HTTP handler's body: handlers must derive from the
// request's context (r.Context()) so client disconnects and deadlines
// propagate into the engine.
func reportFreshContexts(p *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if path := pkgNameOf(p, id); path != "context" && !(path == "" && id.Name == "context") {
			return true
		}
		p.Reportf(call.Pos(), "HTTP handler %s mints context.%s(); derive from the request's context instead so disconnects and deadlines propagate", fn.Name.Name, sel.Sel.Name)
		return true
	})
}

// identUsed reports whether any identifier in body refers to the same
// object as param (per the type-checker's Uses map; falls back to a name
// match when type info is missing).
func identUsed(p *analysis.Pass, body *ast.BlockStmt, param *ast.Ident) bool {
	var obj types.Object
	if p.Info != nil {
		obj = p.Info.Defs[param]
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj != nil {
			if p.Info.Uses[id] == obj {
				used = true
			}
		} else if id.Name == param.Name && id != param {
			used = true
		}
		return !used
	})
	return used
}
