package rules

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"kwsearch/internal/analysis"
)

// ErrSentinel flags the two ways typed sentinel errors get mishandled
// once they travel through wrapping layers:
//
//   - comparing with == or != (err == ErrOverloaded): the comparison
//     fails the moment any layer wraps the sentinel with %w, which the
//     resilience package does deliberately (ErrDeadlineExceeded wraps
//     context.DeadlineExceeded). errors.Is unwraps; == does not.
//   - wrapping with %v or %s in fmt.Errorf when the argument is an
//     error: the cause is flattened to text and errors.Is/As can no
//     longer see it; %w preserves the chain.
//
// Both carry suggested fixes (kwslint -fix): the comparison becomes
// errors.Is(err, ErrX) (inserting the errors import when missing), and
// the verb becomes %w.
type ErrSentinel struct{}

// Name implements analysis.Rule.
func (ErrSentinel) Name() string { return "errsentinel" }

// Doc implements analysis.Rule.
func (ErrSentinel) Doc() string {
	return "compare sentinel errors with errors.Is, not ==/!=, and wrap causes with %w, not %v/%s"
}

// Check implements analysis.Rule.
func (r ErrSentinel) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				r.checkCompare(p, file, n)
			case *ast.CallExpr:
				r.checkWrap(p, n)
			}
			return true
		})
	}
}

// checkCompare flags err ==/!= ErrSentinel and suggests errors.Is.
func (r ErrSentinel) checkCompare(p *analysis.Pass, file *ast.File, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	var errSide, sentinelSide ast.Expr
	switch {
	case isSentinelExpr(p, be.Y) && isErrorType(p, be.X):
		errSide, sentinelSide = be.X, be.Y
	case isSentinelExpr(p, be.X) && isErrorType(p, be.Y):
		errSide, sentinelSide = be.Y, be.X
	default:
		return
	}
	neg := ""
	if be.Op == token.NEQ {
		neg = "!"
	}
	replacement := neg + "errors.Is(" + renderExpr(p.Fset, errSide) + ", " + renderExpr(p.Fset, sentinelSide) + ")"
	fix := &analysis.SuggestedFix{
		Message: "replace " + be.Op.String() + " with errors.Is",
		Edits:   []analysis.TextEdit{{Pos: be.Pos(), End: be.End(), NewText: replacement}},
	}
	if edit, ok := importErrorsEdit(file); ok {
		fix.Edits = append(fix.Edits, edit)
	}
	p.ReportfFix(be.Pos(), fix,
		"sentinel error compared with %s: wrapping breaks identity, use %serrors.Is(%s, %s)",
		be.Op, neg, renderExpr(p.Fset, errSide), renderExpr(p.Fset, sentinelSide))
}

// checkWrap flags fmt.Errorf verbs that flatten an error argument.
func (r ErrSentinel) checkWrap(p *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if path := pkgNameOf(p, id); path != "fmt" && !(path == "" && id.Name == "fmt") {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	raw := lit.Value // quoted source text; offsets map 1:1 onto file bytes
	if strings.Contains(raw, "%[") || strings.Contains(raw, "*") {
		return // indexed verbs / star widths reorder arguments; stay out
	}
	argIdx := 0
	for i := 0; i < len(raw); i++ {
		if raw[i] != '%' {
			continue
		}
		pct := i
		// Scan flags/width/precision to the verb letter.
		j := i + 1
		for j < len(raw) && strings.ContainsRune("+-# 0123456789.", rune(raw[j])) {
			j++
		}
		if j >= len(raw) {
			break
		}
		verb := raw[j]
		i = j
		if verb == '%' {
			continue
		}
		idx := argIdx
		argIdx++
		if verb != 'v' && verb != 's' {
			continue
		}
		if 1+idx >= len(call.Args) || !isErrorType(p, call.Args[1+idx]) {
			continue
		}
		start := lit.Pos() + token.Pos(pct) // the '%'
		end := lit.Pos() + token.Pos(j+1)   // past the verb
		fix := &analysis.SuggestedFix{
			Message: "wrap with %w",
			Edits:   []analysis.TextEdit{{Pos: start, End: end, NewText: "%w"}},
		}
		p.ReportfFix(start, fix,
			"fmt.Errorf flattens an error with %%%c: errors.Is/As lose the cause, wrap with %%w", verb)
	}
}

// isSentinelExpr reports whether e names a sentinel error: an identifier
// or selector whose terminal name starts with "Err" and whose type (when
// known) is an error.
func isSentinelExpr(p *analysis.Pass, e ast.Expr) bool {
	name := ""
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	// Exported ErrFoo, or unexported errFoo (uppercase 4th rune keeps
	// plain locals like err/err2 out).
	sentinelName := strings.HasPrefix(name, "Err") ||
		(strings.HasPrefix(name, "err") && len(name) > 3 && name[3] >= 'A' && name[3] <= 'Z')
	if !sentinelName {
		return false
	}
	if t := p.TypeOf(e); t != nil {
		return isErrorishType(t)
	}
	return true // fixture mode: the name shape already matched
}

// isErrorType reports whether e's type is error (or implements it).
// Without type info it accepts identifiers that look like errors.
func isErrorType(p *analysis.Pass, e ast.Expr) bool {
	if t := p.TypeOf(e); t != nil {
		return isErrorishType(t)
	}
	switch e := e.(type) {
	case *ast.Ident:
		return looksLikeErrName(e.Name)
	case *ast.SelectorExpr:
		return looksLikeErrName(e.Sel.Name)
	}
	return false
}

func looksLikeErrName(name string) bool {
	low := strings.ToLower(name)
	return low == "err" || strings.HasPrefix(low, "err") || strings.HasSuffix(low, "err")
}

// isErrorishType reports whether t is the error interface or a type
// implementing it.
func isErrorishType(t types.Type) bool {
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface) ||
		types.Identical(t, types.Universe.Lookup("error").Type())
}

// renderExpr prints an expression back to source text.
func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// importErrorsEdit returns the edit inserting an "errors" import into
// file, and false when the file already imports it. gofmt (applied by
// the fix engine) re-sorts the block afterwards.
func importErrorsEdit(file *ast.File) (analysis.TextEdit, bool) {
	if importsPath(file, "errors") {
		return analysis.TextEdit{}, false
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			return analysis.TextEdit{Pos: gd.Lparen + 1, End: gd.Lparen + 1, NewText: "\n\"errors\""}, true
		}
		// Single unparenthesized import: add a sibling declaration.
		return analysis.TextEdit{Pos: gd.End(), End: gd.End(), NewText: "\nimport \"errors\""}, true
	}
	// No imports at all: insert after the package clause.
	return analysis.TextEdit{Pos: file.Name.End(), End: file.Name.End(), NewText: "\n\nimport \"errors\""}, true
}
