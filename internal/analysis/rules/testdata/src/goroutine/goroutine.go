// Package fixture exercises the goroutine-without-waitgroup rule.
package fixture

import "sync"

// fireAndForget launches with no join anywhere: flagged.
func fireAndForget(work func()) {
	go work() // want "no visible join"
}

// fireAndForgetLiteral is the same with a function literal: flagged.
func fireAndForgetLiteral() {
	go func() {}() // want "no visible join"
}

// joinedByWaitGroup ties the goroutine to a WaitGroup: fine.
func joinedByWaitGroup(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// joinedByChannel hands back a channel the caller drains: fine.
func joinedByChannel() <-chan int {
	ch := make(chan int)
	go func() {
		ch <- 1
		close(ch)
	}()
	return ch
}

// joinedByReceive blocks on the goroutine's completion signal: fine.
func joinedByReceive(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}
