// Package resilience (fixture copy): the minimal sentinel and mapping
// definitions gate.go needs to type-check, mirroring the real package.
// The gate.go beside this file is the pre-fix version replayed verbatim
// from repository history for the would-have-caught tests.
package resilience

import (
	"context"
	"errors"
	"fmt"
)

// ErrOverloaded mirrors the real shed sentinel.
var ErrOverloaded = errors.New("kwsearch: overloaded, query shed")

// ErrDeadlineExceeded mirrors the real deadline sentinel.
var ErrDeadlineExceeded = fmt.Errorf("kwsearch: deadline exceeded: %w", context.DeadlineExceeded)

// AsTyped mirrors the real context-error mapping.
func AsTyped(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return err
}
