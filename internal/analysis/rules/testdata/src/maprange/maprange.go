// Package fixture exercises the nondeterministic-map-range rule.
package fixture

import "sort"

// emitUnsorted appends in map order with no later sort: flagged.
func emitUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "nondeterministic order"
		out = append(out, k)
	}
	return out
}

// sendUnsorted emits on a channel in map order: flagged.
func sendUnsorted(m map[string]int, ch chan string) {
	for k := range m { // want "nondeterministic order"
		ch <- k
	}
}

// emitThenSort collects then sorts before returning: fine.
func emitThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// emitThenHelperSort relies on a sort-named helper: fine.
func emitThenHelperSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(xs []string) { sort.Strings(xs) }

// aggregate only folds values, order-insensitively: fine.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// perKeyBuffer appends to a slice born inside the loop: fine.
func perKeyBuffer(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		var buf []int
		for _, v := range vs {
			buf = append(buf, v*2)
		}
		out[k] = buf
	}
	return out
}

// sliceRange is not a map range at all: fine.
func sliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
