package fixture

// This file exercises the ctx-first rule's HTTP-handler check: any
// function taking an *http.Request must derive per-request contexts
// from the request, never mint a fresh root.

import (
	"context"
	"net/http"
)

// engine stands in for the query engine handlers call into.
type engine struct{}

func (engine) query(ctx context.Context, q string) ([]CN, error) { return nil, ctx.Err() }

var eng engine

// HandlerMintsBackground severs the client-disconnect chain: flagged.
func HandlerMintsBackground(w http.ResponseWriter, r *http.Request) {
	_, _ = eng.query(context.Background(), r.URL.Query().Get("q")) // want "mints context.Background"
}

// HandlerMintsTODO is the same disease with a different name: flagged.
func HandlerMintsTODO(w http.ResponseWriter, r *http.Request) {
	_, _ = eng.query(context.TODO(), r.URL.Query().Get("q")) // want "mints context.TODO"
}

// handlerMintsUnexported shows the handler check covers unexported
// functions too — real handlers usually are: flagged.
func handlerMintsUnexported(w http.ResponseWriter, r *http.Request) {
	_, _ = eng.query(context.Background(), "q") // want "mints context.Background"
}

// HandlerDerives threads the request's own context through: fine.
func HandlerDerives(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 0)
	defer cancel()
	_, _ = eng.query(ctx, r.URL.Query().Get("q"))
}

// NotAHandler takes no *http.Request, so minting a root context here is
// outside this check's scope: fine.
func NotAHandler(q string) {
	_, _ = eng.query(context.Background(), q)
}
