// Package fixture exercises the ctx-first rule: exported functions that
// spawn goroutines or loop over candidate networks must accept a
// context.Context and actually consult it.
package fixture

import (
	"context"
	"sync"
)

// CN stands in for the engine's candidate-network type; the rule matches
// the named type, not the defining package.
type CN struct{ score float64 }

// SpawnsWithoutCtx launches workers with no way to stop them: flagged.
func SpawnsWithoutCtx(work []func()) { // want "takes no context.Context"
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(w)
	}
	wg.Wait()
}

// EvaluatesWithoutCtx loops over candidate networks uninterruptibly:
// flagged.
func EvaluatesWithoutCtx(cns []*CN) float64 { // want "takes no context.Context"
	total := 0.0
	for _, c := range cns {
		total += c.score
	}
	return total
}

// IgnoresItsCtx accepts a context but never consults it — the caller
// cannot cancel anything: flagged on the parameter.
func IgnoresItsCtx(ctx context.Context, cns []*CN) float64 { // want "never consults it"
	total := 0.0
	for _, c := range cns {
		total += c.score
	}
	return total
}

// HonorsItsCtx checks the context at iteration boundaries: fine.
func HonorsItsCtx(ctx context.Context, cns []*CN) (float64, error) {
	total := 0.0
	for _, c := range cns {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		total += c.score
	}
	return total, nil
}

// PassesItsCtxOn hands the context to the work it spawns: fine.
func PassesItsCtxOn(ctx context.Context, work func(context.Context)) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work(ctx)
	}()
	<-done
}

// unexportedLoop is internal plumbing whose caller already checked:
// skipped, the rule covers the exported surface only.
func unexportedLoop(cns []*CN) float64 {
	total := 0.0
	for _, c := range cns {
		total += c.score
	}
	return total
}

// SerialReference is a deliberately signature-stable baseline; the
// escape hatch documents why it stays context-free.
//
//lint:ignore ctx-first serial reference baseline kept signature-stable
func SerialReference(cns []*CN) float64 {
	total := 0.0
	for _, c := range cns {
		total += c.score
	}
	return total
}
