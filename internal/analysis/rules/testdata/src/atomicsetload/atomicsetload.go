// Package fixture exercises the atomicsetload rule: Set/Store of a value
// read from an atomic Load is either a lost-update read-modify-write
// (same object) or a stale publish (different objects).
package fixture

import "sync/atomic"

// Gauge mirrors the repo's obs.Gauge shape: a named struct directly
// wrapping an atomic — the rule must see through one level of wrapping.
type Gauge struct{ v atomic.Int64 }

// Set publishes an absolute value.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add applies a delta.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

type admission struct {
	queued      atomic.Int64
	queuedGauge Gauge
	depth       atomic.Int64
}

// MirrorByAbsoluteValue is the PR 5 queued-gauge race verbatim in shape:
// two goroutines can Load 1 and 2, then Store 2 and 1 in that order,
// freezing the gauge at a stale depth.
func (a *admission) MirrorByAbsoluteValue() {
	a.queuedGauge.Set(a.queued.Load()) // want "publishes a value read from"
}

// BumpLostUpdate is the classic same-object read-modify-write: racing
// writers both Load n and both Store n+1, losing one increment.
func (a *admission) BumpLostUpdate() {
	a.depth.Store(a.depth.Load() + 1) // want "non-atomic read-modify-write"
}

// StoreOnBareAtomic also fires when both sides are bare sync/atomic
// values rather than wrappers.
func (a *admission) StoreOnBareAtomic() {
	a.depth.Store(a.queued.Load()) // want "publishes a value read from"
}

// MirrorByDeltas is the correct repair: commutative Add deltas keep the
// mirror eventually exact under races. Silent.
func (a *admission) MirrorByDeltas() {
	a.queued.Add(1)
	a.queuedGauge.Add(1)
}

// AbsoluteStoreOfConstant has no atomic load feeding the store. Silent.
func (a *admission) AbsoluteStoreOfConstant() {
	a.queuedGauge.Set(0)
	a.depth.Store(42)
}

// CompareAndSwapLoop is the other correct repair shape. Silent: the
// Load feeds CompareAndSwap, not Set/Store.
func (a *admission) CompareAndSwapLoop() {
	for {
		old := a.depth.Load()
		if a.depth.CompareAndSwap(old, old+1) {
			return
		}
	}
}
