package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"kwsearch/internal/obs"
)

// Gate is an admission-control semaphore with a bounded wait queue: up to
// Limit queries run concurrently, up to MaxQueue more wait for a slot
// (respecting their context's deadline), and everything beyond that is
// shed immediately with ErrOverloaded. The zero Gate is not usable;
// construct with NewGate. All methods are safe for concurrent use.
type Gate struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64

	// Instrumentation (nil-safe, attached by Instrument).
	queuedGauge *obs.Gauge
	waitHist    *obs.Histogram
	admitted    *obs.Counter
	shed        *obs.Counter
	timedOut    *obs.Counter
}

// NewGate builds a gate admitting limit concurrent holders with at most
// maxQueue waiters. limit < 1 is clamped to 1; maxQueue < 0 to 0 (shed
// the moment all slots are busy).
func NewGate(limit, maxQueue int) *Gate {
	if limit < 1 {
		limit = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{slots: make(chan struct{}, limit), maxQueue: int64(maxQueue)}
}

// Instrument surfaces the gate's counters in reg: "admission.queued"
// (gauge: current waiters), "admission.wait_us" (histogram: time spent
// waiting for a slot, admitted acquisitions only), "admission.admitted",
// "admission.shed" and "admission.deadline" (counters). Call before
// concurrent use.
func (g *Gate) Instrument(reg *obs.Registry) {
	g.queuedGauge = reg.Gauge("admission.queued")
	g.waitHist = reg.Histogram("admission.wait_us")
	g.admitted = reg.Counter("admission.admitted")
	g.shed = reg.Counter("admission.shed")
	g.timedOut = reg.Counter("admission.deadline")
}

// Limit returns the gate's concurrency limit.
func (g *Gate) Limit() int { return cap(g.slots) }

// MaxQueue returns the gate's wait-queue capacity.
func (g *Gate) MaxQueue() int { return int(g.maxQueue) }

// Queued returns the current number of waiters.
func (g *Gate) Queued() int { return int(g.queued.Load()) }

// Acquire claims an execution slot, waiting (within ctx's deadline) while
// the queue has room. It returns a release function that must be called
// exactly once when the query finishes, or a typed error: ErrOverloaded
// when the wait queue is full, ErrDeadlineExceeded when ctx's deadline
// expired while queued, or context.Canceled when the caller gave up.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	start := time.Now()
	// A context that is already cancelled or expired must never be
	// admitted — and when it races a full queue, the caller's typed
	// context error wins over ErrOverloaded: the query was dead before
	// the gate could shed it.
	if err := ctx.Err(); err != nil {
		return nil, g.failTyped(err)
	}
	// Fast path: a free slot means no queueing at all.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Inc()
		g.waitHist.Observe(float64(time.Since(start).Microseconds()))
		return g.releaseFunc(), nil
	default:
	}
	// Slots busy: join the bounded queue or shed. The reservation is
	// optimistic (increment, then re-check) so two racing queries cannot
	// both sneak into the last queue position.
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Inc()
		return nil, ErrOverloaded
	}
	// The gauge mirrors the queue depth by deltas, not Set(Load()):
	// atomic adds commute, so racing acquirers cannot publish a stale
	// value out of order and the gauge provably returns to the true
	// depth (0 at quiescence) after any churn.
	g.queuedGauge.Add(1)
	select {
	case g.slots <- struct{}{}:
		g.queued.Add(-1)
		g.queuedGauge.Add(-1)
		g.admitted.Inc()
		g.waitHist.Observe(float64(time.Since(start).Microseconds()))
		return g.releaseFunc(), nil
	case <-ctx.Done():
		g.queued.Add(-1)
		g.queuedGauge.Add(-1)
		return nil, g.failTyped(ctx.Err())
	}
}

// failTyped maps a done context's error to the gate's typed sentinel and
// bumps the matching outcome counter: an expired deadline counts as a
// queue timeout, a cancellation as shed load.
func (g *Gate) failTyped(ctxErr error) error {
	err := AsTyped(ctxErr)
	if errors.Is(err, ErrDeadlineExceeded) {
		g.timedOut.Inc()
	} else {
		g.shed.Inc()
	}
	return err
}

// releaseFunc returns the idempotent slot release for one admission.
func (g *Gate) releaseFunc() func() {
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			<-g.slots
		}
	}
}
