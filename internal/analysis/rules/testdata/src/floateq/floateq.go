// Package fixture exercises the float-equality rule.
package fixture

// exactEq compares float64 with ==: flagged.
func exactEq(a, b float64) bool {
	return a == b // want "epsilon"
}

// exactNeq compares float32 with !=: flagged.
func exactNeq(a, b float32) bool {
	return a != b // want "epsilon"
}

// zeroGuard compares against a literal; still exact equality: flagged.
func zeroGuard(x float64) bool {
	return x == 0 // want "epsilon"
}

// ordered comparisons are fine.
func ordered(a, b float64) bool { return a < b }

// intEq is not a float comparison: fine.
func intEq(a, b int) bool { return a == b }

// stringEq is fine too.
func stringEq(a, b string) bool { return a == b }
