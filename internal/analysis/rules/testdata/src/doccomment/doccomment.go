// Package fixture exercises the missing-doc-comment rule. The want
// comments use the +N offset form with a blank separator line so that
// they do not themselves become doc comments of the declarations they
// test.
package fixture

// Documented is documented: fine.
type Documented struct{}

// want+2 "exported type Undocumented is missing a doc comment"

type Undocumented struct{}

// DocumentedFunc is documented: fine.
func DocumentedFunc() {}

// want+2 "exported function UndocumentedFunc is missing a doc comment"

func UndocumentedFunc() {}

// DocumentedMethod is documented: fine.
func (Documented) DocumentedMethod() {}

// want+2 "exported method UndocumentedMethod is missing a doc comment"

func (Documented) UndocumentedMethod() {}

// methodOnUnexported is not part of the public surface: fine.
func (u unexported) Exported() {}

type unexported struct{}

// want+2 "exported var UndocumentedVar is missing a doc comment"

var UndocumentedVar = 1

// DocumentedVar is documented: fine.
var DocumentedVar = 2

// Grouped consts under one group doc: fine.
const (
	// GroupedA is the first value.
	GroupedA = iota
	// GroupedB is the second.
	GroupedB
)

// EnumStyle demonstrates trailing-comment docs for value specs.
const (
	TrailingDocumented = 1 // TrailingDocumented is documented by this trailing comment.
)

// want+2 "exported const UndocumentedConst is missing a doc comment"

const UndocumentedConst = 3

// unexportedVar needs no doc: fine.
var unexportedVar = 4
