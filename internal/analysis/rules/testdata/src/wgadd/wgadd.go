// Package fixture exercises the wgadd rule: WaitGroup.Add inside the
// goroutine being counted races the matching Wait.
package fixture

import "sync"

// AddInsideGoroutine is the racy shape: the scheduler may run Wait
// before the goroutine body executes Add, so Wait returns early.
func AddInsideGoroutine(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		go func(f func()) {
			wg.Add(1) // want "races Wait"
			defer wg.Done()
			f()
		}(w)
	}
	wg.Wait()
}

// AddBeforeGo is the correct shape. Silent.
func AddBeforeGo(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(w)
	}
	wg.Wait()
}

// FieldWaitGroup: the rule sees through struct fields too.
type pool struct {
	wg sync.WaitGroup
}

// Spawn races exactly like the local-variable form.
func (p *pool) Spawn(f func()) {
	go func() {
		p.wg.Add(1) // want "races Wait"
		defer p.wg.Done()
		f()
	}()
}

// NestedOwnGroup: a goroutine that declares its own WaitGroup for an
// inner fan-out owns it — Add inside is fine. Silent.
func NestedOwnGroup(work []func()) {
	go func() {
		var inner sync.WaitGroup
		for _, w := range work {
			inner.Add(1)
			go func(f func()) {
				defer inner.Done()
				f()
			}(w)
		}
		inner.Wait()
	}()
}
