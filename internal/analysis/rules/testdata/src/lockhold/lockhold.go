// Package fixture exercises the lockhold rule: no parking on a channel,
// WaitGroup or timer while a mutex is provably held, and no return path
// that leaks a held lock.
package fixture

import (
	"errors"
	"sync"
	"time"
)

var errNotFound = errors.New("not found")

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
	ch    chan int
}

// SendWhileLocked parks on a channel send with mu held: every other
// locker stalls until some receiver drains the channel.
func (s *store) SendWhileLocked(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

// SleepWhileLocked naps with the lock. The deferred unlock does not
// release during the sleep, so it is still flagged.
func (s *store) SleepWhileLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
}

// WaitWhileLocked joins a WaitGroup with the lock held: if any counted
// goroutine needs mu to finish, this deadlocks.
func (s *store) WaitWhileLocked(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while s.mu is held"
}

// EarlyErrorPathLeaks takes the error path out with mu still held.
func (s *store) EarlyErrorPathLeaks(k string) (int, error) {
	s.mu.Lock()
	v, ok := s.items[k]
	if !ok {
		return 0, errNotFound // want "return with s.mu still held"
	}
	s.mu.Unlock()
	return v, nil
}

// DeferredUnlockIsFine: the canonical shape. Silent.
func (s *store) DeferredUnlockIsFine(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// ReadThenWriteEscalation: the RLock/RUnlock pair balances, the
// later write Lock leaks on the early return.
func (s *store) ReadThenWriteEscalation(grow bool) int {
	s.rw.RLock()
	n := len(s.items)
	s.rw.RUnlock()
	if grow {
		s.rw.Lock()
		return n // want "return with s.rw still held"
	}
	return n
}

// LockedOnOnePathOnly: held on only one incoming path, so the must
// analysis cannot prove the send blocks under the lock. Silent by
// design — lockhold trades this miss for zero false positives.
func (s *store) LockedOnOnePathOnly(b bool, v int) {
	if b {
		s.mu.Lock()
	}
	s.ch <- v
	if b {
		s.mu.Unlock()
	}
}

// unlockAll exists for its call summary: it unlocks the receiver's mu.
func (s *store) unlockAll() { s.mu.Unlock() }

// UsesHelperRelease releases through a helper; the one-call-deep summary
// clears the held bit, so the return is clean. Silent.
func (s *store) UsesHelperRelease(k string) int {
	s.mu.Lock()
	v := s.items[k]
	s.unlockAll()
	return v
}

// DeferredHelperRelease registers the helper release for exit: the held
// bit flips to deferred, certifying every return. Silent.
func (s *store) DeferredHelperRelease(k string) int {
	s.mu.Lock()
	defer s.unlockAll()
	return s.items[k]
}

// lockShard returns holding the lock by contract; functions with "lock"
// in the name are exempt from the return check.
func (s *store) lockShard() *store {
	s.mu.Lock()
	return s
}

type condStore struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// WaitForWork uses sync.Cond.Wait, which unlocks its own mutex while
// parked — the one blocking-while-locked pattern that is correct. Silent.
func (c *condStore) WaitForWork() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.n == 0 {
		c.cond.Wait()
	}
	c.n--
}
