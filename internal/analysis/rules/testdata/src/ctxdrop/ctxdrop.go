// Package fixture exercises the ctxdrop rule: in a function that does
// consult its context, every path that blocks or admits work must have
// consulted it first — fast paths and communicating loops included.
package fixture

import "context"

type gate struct {
	slots chan struct{}
}

// FastPathSkipsCtx is the PR 5 Gate.Acquire bug in miniature: the
// free-slot fast path admits without ever looking at ctx, so an
// already-cancelled query still grabs a slot.
func (g *gate) FastPathSkipsCtx(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}: // want "never consulted ctx"
		return nil
	default:
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ChecksErrFirst consults ctx before the fast path: silent.
func (g *gate) ChecksErrFirst(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DrainLoopIgnoresCtx checks ctx once at entry, then pumps forever: the
// loop body never consults ctx, so cancellation cannot interrupt it.
func DrainLoopIgnoresCtx(ctx context.Context, in <-chan int, out chan<- int) {
	if ctx.Err() != nil {
		return
	}
	for v := range in { // want "cancellation cannot interrupt"
		out <- v
	}
}

// DrainLoopGuarded selects on ctx.Done each iteration: silent.
func DrainLoopGuarded(ctx context.Context, in <-chan int, out chan<- int) {
	for v := range in {
		select {
		case out <- v:
		case <-ctx.Done():
			return
		}
	}
}

// DrainLoopErrCheck consults ctx.Err inside the loop body: silent (the
// send itself is reached only after a consult on every iteration).
func DrainLoopErrCheck(ctx context.Context, in <-chan int, out chan<- int) {
	for v := range in {
		if ctx.Err() != nil {
			return
		}
		out <- v
	}
}

// WorkerFastPath: a spawned worker captures ctx; its own fast path sends
// without consulting it even though its slow path does.
func WorkerFastPath(ctx context.Context, out chan<- int, fast bool) {
	go func() {
		if fast {
			out <- 1 // want "never consulted ctx"
			return
		}
		select {
		case out <- 2:
		case <-ctx.Done():
		}
	}()
}

// IgnoresCtxEntirely never consults ctx at all: that is ctxfirst's
// finding, not a dropped fast path. Silent here.
func IgnoresCtxEntirely(ctx context.Context, ch chan int) {
	ch <- 1
}

// PassesCtxDownstream consults by delegation: handing ctx to a callee
// counts, so the send after it is on a consulted path. Silent.
func PassesCtxDownstream(ctx context.Context, ch chan int, work func(context.Context) error) error {
	if err := work(ctx); err != nil {
		return err
	}
	ch <- 1
	return nil
}
