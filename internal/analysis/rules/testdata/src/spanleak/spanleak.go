// Package fixture exercises the span-leak rule with a local stand-in for
// the obs span API (the rule matches StartSpan/Child by name and result
// type, so the fixture needs no imports).
package fixture

// Span mimics obs.Span.
type Span struct{}

// StartSpan mimics obs.StartSpan.
func StartSpan(name string) *Span { return &Span{} }

// Child mimics (*obs.Span).Child.
func (s *Span) Child(name string) *Span { return &Span{} }

// End mimics (*obs.Span).End.
func (s *Span) End() {}

// LeakOnEarlyReturn ends the span on the happy path only: the error
// return escapes with the span still open.
func LeakOnEarlyReturn(fail bool) int {
	sp := StartSpan("work") // want "may escape without End"
	if fail {
		return -1
	}
	sp.End()
	return 0
}

// LeakChildNeverEnded starts a child span and forgets it entirely.
func LeakChildNeverEnded(parent *Span) {
	child := parent.Child("stage") // want "may escape without End"
	_ = child
}

// DeferredEnd is safe: defer covers every return.
func DeferredEnd(fail bool) int {
	sp := StartSpan("work")
	defer sp.End()
	if fail {
		return -1
	}
	return 0
}

// EndBeforeEveryReturn is safe without defer: each return is preceded by
// an End.
func EndBeforeEveryReturn(fail bool) int {
	sp := StartSpan("work")
	if fail {
		sp.End()
		return -1
	}
	sp.End()
	return 0
}

// HandoffToGoroutine is safe: the literal ends the span, which the
// lexical check accepts (the goroutine owns the span's lifetime).
func HandoffToGoroutine(parent *Span, join chan struct{}) {
	child := parent.Child("worker")
	go func() {
		child.End()
		close(join)
	}()
}

// leakInUnexported is outside the rule's scope (unexported): not flagged
// even though the span is never ended.
func leakInUnexported() {
	sp := StartSpan("work")
	_ = sp
}

// NotASpan uses an unrelated Child method: the result type is not *Span,
// so the rule ignores it.
func NotASpan(t *Tree) *Tree {
	n := t.Child("left")
	return n
}

// Tree is an unrelated type with a Child method.
type Tree struct{}

// Child returns a subtree, not a span.
func (t *Tree) Child(name string) *Tree { return &Tree{} }
