// Package fixture exercises the errsentinel rule: sentinel errors must
// be compared with errors.Is (wrapping breaks ==), and error causes must
// be wrapped with %w (wrapping with %v flattens the chain).
package fixture

import (
	"errors"
	"fmt"
)

// ErrOverloaded mirrors the resilience package's shed sentinel.
var ErrOverloaded = errors.New("overloaded")

// errShutdown is an unexported sentinel; the rule matches errX names too.
var errShutdown = errors.New("shutting down")

// CompareEq is the broken shape: the moment any layer wraps
// ErrOverloaded with %w, == stops matching.
func CompareEq(err error) bool {
	return err == ErrOverloaded // want "use errors.Is"
}

// CompareNeq flips the polarity; the fix is !errors.Is.
func CompareNeq(err error) bool {
	return err != ErrOverloaded // want "use !errors.Is"
}

// CompareReversed puts the sentinel on the left.
func CompareReversed(err error) bool {
	return errShutdown == err // want "use errors.Is"
}

// UsesErrorsIs is the correct form. Silent.
func UsesErrorsIs(err error) bool {
	return errors.Is(err, ErrOverloaded)
}

// NilChecksAreFine: nil is not a sentinel. Silent.
func NilChecksAreFine(err error) bool {
	return err == nil || err != nil
}

// WrapWithV flattens the cause to text: errors.Is can no longer see it.
func WrapWithV(err error) error {
	return fmt.Errorf("load shed: %v", err) // want "wrap with %w"
}

// WrapWithS is the same bug with the string verb.
func WrapWithS(err error) error {
	return fmt.Errorf("load shed: %s", err) // want "wrap with %w"
}

// WrapLaterArg: the error is not the first verb; the rule maps verbs to
// arguments positionally.
func WrapLaterArg(q string, err error) error {
	return fmt.Errorf("query %q failed: %v", q, err) // want "wrap with %w"
}

// WrapWithW is the correct form. Silent.
func WrapWithW(err error) error {
	return fmt.Errorf("load shed: %w", err)
}

// VOnNonError formats a plain value; nothing to preserve. Silent.
func VOnNonError(n int) error {
	return fmt.Errorf("bad arity: %v", n)
}

// PercentLiteral: %% is not a verb and must not shift argument mapping.
func PercentLiteral(err error) error {
	return fmt.Errorf("100%% shed: %v", err) // want "wrap with %w"
}
