// Package fixture exercises the unseeded-or-global-rand rule.
package fixture

import "math/rand"

// globalVar consumes shared package-level state: flagged.
var globalVar = rand.Intn(10) // want "seeded"

// badShuffle uses the global source: flagged.
func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "seeded"
}

// badSeed seeds the global source, which is still shared state: flagged.
func badSeed() {
	rand.Seed(42) // want "seeded"
}

// goodSeeded builds an explicit generator: fine.
func goodSeeded(seed int64, xs []int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(len(xs))
}

// goodThreaded takes the generator as a parameter; *rand.Rand as a type
// is fine, as is the Zipf constructor fed an explicit generator.
func goodThreaded(rng *rand.Rand) uint64 {
	z := rand.NewZipf(rng, 1.3, 2, 100)
	return z.Uint64()
}
