// Package fixture proves the //lint:ignore suppression directive: every
// violation below carries a directive, so running the full default rule
// set over this package must produce no diagnostics at all — except the
// deliberately malformed directive at the bottom, which must be reported
// rather than silently swallowed.
package fixture

import "math/rand"

//lint:ignore unseeded-or-global-rand directive on the line above suppresses
var fromGlobal = rand.Intn(10)

// inline demonstrates a same-line directive.
func inline() int {
	return rand.Intn(3) //lint:ignore unseeded-or-global-rand same-line directive suppresses
}

// multiRule demonstrates suppressing one rule of several with a
// comma-separated list.
func multiRule(m map[string]int, a, b float64) []string {
	var out []string
	//lint:ignore nondeterministic-map-range,float-equality comma list covers both rules
	for k := range m {
		out = append(out, k)
	}
	//lint:ignore float-equality exact comparison is intentional here
	if a == b {
		return nil
	}
	return out
}

// otherRule checks that a directive naming a different rule does NOT
// suppress; this finding must still surface.
func otherRule(a, b float64) bool {
	//lint:ignore nondeterministic-map-range wrong rule name, does not apply
	return a == b // want "epsilon"
}

// want+2 "malformed lint:ignore directive"

//lint:ignore float-equality
var missingReason = 1.0
