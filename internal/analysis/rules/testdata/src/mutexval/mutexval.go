// Package fixture exercises the mutex-by-value rule.
package fixture

import "sync"

// guarded is a struct that owns a lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds a lock-bearing struct by value.
type wrapper struct {
	g guarded
}

// rwGuarded owns an RWMutex.
type rwGuarded struct {
	mu sync.RWMutex
}

// valueReceiver copies the lock on every call: flagged.
func (g guarded) valueReceiver() int { return g.n } // want "copies sync.Mutex by value"

// pointerReceiver shares the lock: fine.
func (g *guarded) pointerReceiver() int { return g.n }

// byValueParam copies the lock at every call site: flagged.
func byValueParam(g guarded) int { return g.n } // want "copies sync.Mutex by value"

// nestedByValue copies a lock buried one struct deep: flagged.
func nestedByValue(w wrapper) int { return w.g.n } // want "copies sync.Mutex by value"

// rwByValue copies an RWMutex: flagged.
func rwByValue(r rwGuarded) { _ = r } // want "copies sync.RWMutex by value"

// byPointer shares the lock: fine.
func byPointer(g *guarded) int { return g.n }

// plainStruct has no lock: fine.
func plainStruct(s struct{ n int }) int { return s.n }
