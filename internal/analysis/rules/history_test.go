package rules

import (
	"path/filepath"
	"strings"
	"testing"

	"kwsearch/internal/analysis"
)

// The history fixtures replay repository bugs verbatim:
// testdata/src/history_gate_prefix holds the resilience Gate exactly as
// it shipped in the robustness-layer PR (queued gauge mirrored by
// Set(Load()), no entry ctx check, == on a wrapped sentinel), and
// history_gate_fixed holds the current repaired version. The tests here
// are the would-have-caught guarantee: each rule fires on the historical
// code and stays silent on the fix.

// historyRules are the rules distilled from the Gate's bug history.
var historyRules = []analysis.Rule{AtomicSetLoad{}, CtxDrop{}, ErrSentinel{}}

func runHistory(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	path := filepath.Join("testdata", "src", dir)
	ld, err := analysis.NewLoader(path)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := ld.LoadDir(path)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	return analysis.Run(pkg, historyRules)
}

// byRule buckets diagnostics by rule name.
func byRule(diags []analysis.Diagnostic) map[string][]analysis.Diagnostic {
	out := map[string][]analysis.Diagnostic{}
	for _, d := range diags {
		out[d.Rule] = append(out[d.Rule], d)
	}
	return out
}

// TestRulesCatchHistoricalGateBugs asserts each rule would have caught
// the bug it was distilled from, at the shape it actually shipped in.
func TestRulesCatchHistoricalGateBugs(t *testing.T) {
	got := byRule(runHistory(t, "history_gate_prefix"))

	// The queued-gauge race: g.queuedGauge.Set(g.queued.Load()) appears
	// twice (inline and in the deferred refresh closure); both are the
	// same stale-publish shape.
	if n := len(got["atomicsetload"]); n < 2 {
		t.Errorf("atomicsetload: got %d findings on the historical gate, want >= 2 (inline + deferred Set(Load()))", n)
	}
	for _, d := range got["atomicsetload"] {
		if !strings.Contains(d.Message, "queuedGauge") {
			t.Errorf("atomicsetload finding does not name the gauge: %s", d)
		}
	}

	// The admission bug: the free-slot fast path admitted queries whose
	// context was already cancelled, because only the queue path
	// consulted ctx.
	if n := len(got["ctxdrop"]); n != 1 {
		t.Fatalf("ctxdrop: got %d findings on the historical gate, want exactly 1 (the fast-path send): %v", n, got["ctxdrop"])
	}
	if d := got["ctxdrop"][0]; !strings.Contains(d.Message, "never consulted ctx") {
		t.Errorf("ctxdrop finding has unexpected message: %s", d)
	}

	// The sentinel comparison: err == ErrDeadlineExceeded on a sentinel
	// that deliberately wraps context.DeadlineExceeded.
	if n := len(got["errsentinel"]); n != 1 {
		t.Fatalf("errsentinel: got %d findings on the historical gate, want exactly 1: %v", n, got["errsentinel"])
	}
	if d := got["errsentinel"][0]; !strings.Contains(d.Message, "errors.Is") {
		t.Errorf("errsentinel finding has unexpected message: %s", d)
	}
}

// TestRulesSilentOnFixedGate is the other half of would-have-caught: the
// repaired Gate (ctx.Err() first, gauge mirrored by Add deltas,
// errors.Is on the sentinel) produces zero findings, so the rules
// describe the bugs, not the file.
func TestRulesSilentOnFixedGate(t *testing.T) {
	if diags := runHistory(t, "history_gate_fixed"); len(diags) != 0 {
		t.Errorf("fixed gate should be clean, got %d findings: %v", len(diags), diags)
	}
}
