package rules

import (
	"path/filepath"
	"testing"

	"kwsearch/internal/analysis"
)

func fixture(t *testing.T, dir string, rules ...analysis.Rule) {
	t.Helper()
	analysis.RunFixtureTest(t, filepath.Join("testdata", "src", dir), rules)
}

func TestMapRangeFixture(t *testing.T)   { fixture(t, "maprange", MapRange{}) }
func TestRandFixture(t *testing.T)       { fixture(t, "rand", Rand{}) }
func TestGoroutineFixture(t *testing.T)  { fixture(t, "goroutine", Goroutine{}) }
func TestMutexValueFixture(t *testing.T) { fixture(t, "mutexval", MutexValue{}) }
func TestFloatEqFixture(t *testing.T)    { fixture(t, "floateq", FloatEq{}) }
func TestDocCommentFixture(t *testing.T) { fixture(t, "doccomment", DocComment{}) }
func TestSpanLeakFixture(t *testing.T)   { fixture(t, "spanleak", SpanLeak{}) }
func TestCtxFirstFixture(t *testing.T)   { fixture(t, "ctxfirst", CtxFirst{}) }

func TestAtomicSetLoadFixture(t *testing.T) { fixture(t, "atomicsetload", AtomicSetLoad{}) }
func TestCtxDropFixture(t *testing.T)       { fixture(t, "ctxdrop", CtxDrop{}) }
func TestLockHoldFixture(t *testing.T)      { fixture(t, "lockhold", LockHold{}) }
func TestErrSentinelFixture(t *testing.T)   { fixture(t, "errsentinel", ErrSentinel{}) }
func TestWgAddFixture(t *testing.T)         { fixture(t, "wgadd", WgAdd{}) }

// TestSuppression runs the FULL default rule set over a fixture whose
// violations all carry //lint:ignore directives: the only expected
// diagnostics are the ones the fixture marks (a directive naming the
// wrong rule, and a malformed directive).
func TestSuppression(t *testing.T) { fixture(t, "suppress", Default()...) }

// recorder counts harness failures without failing the real test, so we
// can assert that a fixture DOES fail under the wrong rule set.
type recorder struct {
	testing.TB
	errors int
}

func (r *recorder) Helper()                                   {}
func (r *recorder) Errorf(format string, args ...interface{}) { r.errors++ }

// TestFixtureFailsWhenRuleDisabled is the guard the acceptance criteria
// ask for: every fixture carries want expectations, so running it with
// its rule disabled must produce failures, proving the fixtures actually
// pin rule behavior.
func TestFixtureFailsWhenRuleDisabled(t *testing.T) {
	for _, dir := range []string{
		"maprange", "rand", "goroutine", "mutexval", "floateq", "doccomment",
		"spanleak", "ctxfirst",
		"atomicsetload", "ctxdrop", "lockhold", "errsentinel", "wgadd",
	} {
		rec := &recorder{TB: t}
		analysis.RunFixtureTest(rec, filepath.Join("testdata", "src", dir), nil)
		if rec.errors == 0 {
			t.Errorf("fixture %s passed with no rules enabled; its wants pin nothing", dir)
		}
	}
}

// TestRuleNamesStable pins the rule names: suppression directives across
// the tree reference them literally, so renaming one silently un-ignores
// every site.
func TestRuleNamesStable(t *testing.T) {
	want := map[string]bool{
		"nondeterministic-map-range":  true,
		"unseeded-or-global-rand":     true,
		"goroutine-without-waitgroup": true,
		"mutex-by-value":              true,
		"float-equality":              true,
		"missing-doc-comment":         true,
		"span-leak":                   true,
		"ctx-first":                   true,
		"atomicsetload":               true,
		"ctxdrop":                     true,
		"lockhold":                    true,
		"errsentinel":                 true,
		"wgadd":                       true,
	}
	got := Default()
	if len(got) != len(want) {
		t.Fatalf("Default() has %d rules, want %d", len(got), len(want))
	}
	for _, r := range got {
		if !want[r.Name()] {
			t.Errorf("unexpected rule name %q", r.Name())
		}
		if r.Doc() == "" {
			t.Errorf("rule %q has no doc", r.Name())
		}
	}
}
