package rules

import (
	"go/ast"
	"go/types"

	"kwsearch/internal/analysis"
)

// Rand flags uses of package-level math/rand state. Dataset generators
// and samplers must thread a seeded *rand.Rand through the call path so
// every generated corpus and query log is reproducible; the package-level
// functions share a global, unseeded (pre-1.20 semantics) source that
// silently breaks that guarantee.
type Rand struct{}

// Name implements analysis.Rule.
func (Rand) Name() string { return "unseeded-or-global-rand" }

// Doc implements analysis.Rule.
func (Rand) Doc() string {
	return "thread a seeded *rand.Rand; package-level math/rand state is unseeded and shared"
}

// randConstructors are the math/rand selectors that are fine to use at
// package level: they build explicitly-seeded generators rather than
// consuming shared state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// randTypeNames lets the syntactic fallback (no type info) skip selectors
// used as types, e.g. *rand.Rand in a signature.
var randTypeNames = map[string]bool{
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"Zipf":     true,
	"PCG":      true,
	"ChaCha8":  true,
}

// Check implements analysis.Rule.
func (Rand) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		hasImport := importsPath(f, "math/rand") || importsPath(f, "math/rand/v2")
		if !hasImport {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch path := pkgNameOf(p, id); path {
			case "math/rand", "math/rand/v2":
				// Typed resolution: skip type names and constructors.
				if obj := p.Info.Uses[sel.Sel]; obj != nil {
					if _, isType := obj.(*types.TypeName); isType {
						return true
					}
				}
			case "":
				// No type info; fall back to the conventional name.
				if id.Name != "rand" {
					return true
				}
				if randTypeNames[sel.Sel.Name] {
					return true
				}
			default:
				return true // some other package
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "package-level %s.%s uses shared unseeded state; thread a seeded *rand.Rand instead", id.Name, sel.Sel.Name)
			return true
		})
	}
}
