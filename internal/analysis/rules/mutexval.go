package rules

import (
	"go/ast"
	"go/types"

	"kwsearch/internal/analysis"
)

// MutexValue flags function receivers and parameters declared with a
// non-pointer type that contains a sync.Mutex or sync.RWMutex (directly
// or through embedded structs and arrays). Copying such a value forks the
// lock: the copy guards nothing, and the race detector only catches the
// consequence, not the cause.
type MutexValue struct{}

// Name implements analysis.Rule.
func (MutexValue) Name() string { return "mutex-by-value" }

// Doc implements analysis.Rule.
func (MutexValue) Doc() string {
	return "receivers/parameters must not copy structs containing sync.Mutex or sync.RWMutex"
}

// Check implements analysis.Rule.
func (r MutexValue) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn.Recv != nil {
				r.checkFields(p, fn.Recv, "receiver")
			}
			if fn.Type.Params != nil {
				r.checkFields(p, fn.Type.Params, "parameter")
			}
		}
	}
}

func (r MutexValue) checkFields(p *analysis.Pass, fields *ast.FieldList, kind string) {
	for _, field := range fields.List {
		t := p.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if lock := lockInside(t, map[types.Type]bool{}); lock != "" {
			name := "_"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			p.Reportf(field.Pos(), "%s %s copies %s by value; use a pointer so the lock is shared", kind, name, lock)
		}
	}
}

// lockInside returns the name of a lock type reachable from t without
// pointer indirection, or "".
func lockInside(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
		return lockInside(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lock := lockInside(t.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInside(t.Elem(), seen)
	}
	return ""
}
