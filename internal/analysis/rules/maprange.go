package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kwsearch/internal/analysis"
)

// MapRange flags `for range` over a map whose body emits results (appends
// to a slice or sends on a channel) with no subsequent sort in the same
// function — the classic nondeterministic top-k tie-break: Go randomizes
// map iteration order, so emitted order differs run to run unless the
// keys or the collected results are sorted afterwards.
type MapRange struct{}

// Name implements analysis.Rule.
func (MapRange) Name() string { return "nondeterministic-map-range" }

// Doc implements analysis.Rule.
func (MapRange) Doc() string {
	return "map iteration that emits results must sort keys first or sort the results after"
}

// Check implements analysis.Rule.
func (r MapRange) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || p.IsTestFile(fn.Pos()) {
				continue
			}
			r.checkFunc(p, fn)
		}
	}
}

func (r MapRange) checkFunc(p *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if !bodyEmits(p, rs) {
			return true
		}
		if sortedAfter(fn.Body, rs.End()) {
			return true
		}
		p.Reportf(rs.For, "iteration over map %s emits results in nondeterministic order; sort the keys first or sort the output before returning", exprString(rs.X))
		return true
	})
}

// bodyEmits reports whether the loop body appends to a slice that
// outlives the iteration or sends on a channel — the operations whose
// observable order depends on map iteration order. Appends to a slice
// declared inside the loop (a fresh per-key buffer) and pure aggregation
// (summing, writing into another map) are order-insensitive and not
// flagged.
func bodyEmits(p *analysis.Pass, rs *ast.RangeStmt) bool {
	emits := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if appendTargetEscapes(p, rs, n.Args[0]) {
					emits = true
				}
			}
		case *ast.SendStmt:
			emits = true
		}
		return !emits
	})
	return emits
}

// appendTargetEscapes reports whether the first append argument refers to
// state that outlives one loop iteration: an identifier declared outside
// the range statement, or a selector/index into an outer structure.
// Fresh slices built per iteration (locals declared in the body, nil
// literals, nested appends) do not escape.
func appendTargetEscapes(p *analysis.Pass, rs *ast.RangeStmt, target ast.Expr) bool {
	switch t := target.(type) {
	case *ast.Ident:
		obj := objectOf(p, t)
		if obj == nil {
			return true // unresolved: assume it escapes rather than miss a bug
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	default:
		return false // fresh value: []T(nil), make(...), inner append(...)
	}
}

// objectOf resolves an identifier to its object via uses or defs.
func objectOf(p *analysis.Pass, id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// sortedAfter reports whether a sort-like call occurs in body after pos:
// a call into the sort or slices packages, or any function or method
// whose name starts with "sort" (sortResults-style local helpers).
func sortedAfter(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
				found = true
			}
			if isSortName(fun.Sel.Name) {
				found = true
			}
		case *ast.Ident:
			if isSortName(fun.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortName matches identifiers that conventionally perform a sort.
func isSortName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "sort")
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return "expression"
	}
}
