package rules

import (
	"go/ast"
	"go/types"

	"kwsearch/internal/analysis"
)

// WgAdd flags sync.WaitGroup.Add calls made inside the goroutine being
// counted: `go func() { wg.Add(1); ... }()` races the matching Wait —
// the scheduler may run Wait before the goroutine body executes Add, so
// Wait returns while work is still in flight. The Add must happen in the
// spawning goroutine, before the go statement.
//
// Add on a WaitGroup declared inside the literal itself is fine (a
// nested fan-out owns its own group), so the rule only fires when the
// WaitGroup is captured from an enclosing scope.
type WgAdd struct{}

// Name implements analysis.Rule.
func (WgAdd) Name() string { return "wgadd" }

// Doc implements analysis.Rule.
func (WgAdd) Doc() string {
	return "WaitGroup.Add inside the spawned goroutine races Wait; call Add before the go statement"
}

// Check implements analysis.Rule.
func (r WgAdd) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" || len(call.Args) != 1 {
					return true
				}
				if !isWaitGroup(p, sel.X) {
					return true
				}
				if definedWithin(p, sel.X, lit) {
					return true
				}
				p.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races Wait (Wait may return before this Add runs); Add before the go statement")
				return true
			})
			return true
		})
	}
}

// isWaitGroup reports whether expr's type is sync.WaitGroup (possibly
// behind a pointer), falling back to the conventional wg name when type
// information is missing.
func isWaitGroup(p *analysis.Pass, expr ast.Expr) bool {
	if t := p.TypeOf(expr); t != nil {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
	}
	path, ok := analysis.SelectorPath(expr)
	return ok && (path == "wg" || hasSuffixFold(path, ".wg"))
}

// definedWithin reports whether the root object of expr is declared
// inside the function literal (a locally owned WaitGroup, not a capture).
func definedWithin(p *analysis.Pass, expr ast.Expr, lit *ast.FuncLit) bool {
	root := expr
	for {
		sel, ok := root.(*ast.SelectorExpr)
		if !ok {
			break
		}
		root = sel.X
	}
	id, ok := root.(*ast.Ident)
	if !ok || p.Info == nil {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return lit.Pos() <= obj.Pos() && obj.Pos() <= lit.End()
}

// hasSuffixFold is strings.HasSuffix, ASCII case-insensitive.
func hasSuffixFold(s, suffix string) bool {
	if len(s) < len(suffix) {
		return false
	}
	tail := s[len(s)-len(suffix):]
	for i := 0; i < len(suffix); i++ {
		a, b := tail[i], suffix[i]
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}
