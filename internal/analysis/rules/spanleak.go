package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"kwsearch/internal/analysis"
)

// SpanLeak flags exported functions that start a trace span (an
// assignment from obs.StartSpan or a Child call) but can miss End() on an
// early return: no `defer sp.End()`, and some return statement after the
// start has no sp.End() between the start and itself. An unended span
// reports a zero duration and fails the tree's WellFormed check, so the
// leak shows up as corrupt traces far from the function that caused it.
//
// The check is lexical, not flow-sensitive: an End anywhere between the
// start and a return (including inside a function literal, e.g. a worker
// goroutine that ends its own span) satisfies it. That keeps the rule
// quiet on the deliberate hand-off patterns in internal/exec and
// internal/lca while still catching the common leak — an error-path
// return inserted after the span was started.
type SpanLeak struct{}

// Name implements analysis.Rule.
func (SpanLeak) Name() string { return "span-leak" }

// Doc implements analysis.Rule.
func (SpanLeak) Doc() string {
	return "a started span must be ended on every path: defer sp.End() or call End before each return"
}

// Check implements analysis.Rule.
func (r SpanLeak) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			r.checkFunc(p, fn)
		}
	}
}

// spanStart records one `sp := StartSpan(...)` / `sp := x.Child(...)`
// site inside a function.
type spanStart struct {
	name string
	pos  token.Pos
}

func (r SpanLeak) checkFunc(p *analysis.Pass, fn *ast.FuncDecl) {
	var starts []spanStart
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isSpanStart(p, call) {
			starts = append(starts, spanStart{name: id.Name, pos: as.Pos()})
		}
		return true
	})
	if len(starts) == 0 {
		return
	}

	// Gather, once per function: deferred End receivers, End call
	// positions per receiver name, return statements outside function
	// literals (a return inside a literal exits the literal, not fn),
	// and literal ranges.
	deferred := map[string]bool{}
	endPos := map[string][]token.Pos{}
	var returns []token.Pos
	var litRanges [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litRanges = append(litRanges, [2]token.Pos{n.Pos(), n.End()})
		case *ast.DeferStmt:
			if name, ok := endReceiver(n.Call); ok {
				deferred[name] = true
			}
		case *ast.CallExpr:
			if name, ok := endReceiver(n); ok {
				endPos[name] = append(endPos[name], n.Pos())
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, lr := range litRanges {
			if lr[0] <= pos && pos < lr[1] {
				return true
			}
		}
		return false
	}

	for _, st := range starts {
		if deferred[st.name] {
			continue
		}
		endedBetween := func(lo, hi token.Pos) bool {
			for _, e := range endPos[st.name] {
				if lo < e && e < hi {
					return true
				}
			}
			return false
		}
		leaky := token.NoPos
		sawReturn := false
		for _, ret := range returns {
			if ret <= st.pos || inLit(ret) || inLit(st.pos) != inLit(ret) {
				continue
			}
			sawReturn = true
			if !endedBetween(st.pos, ret) {
				leaky = ret
				break
			}
		}
		// A function (or literal) that falls off its end must still End
		// the span somewhere.
		if !sawReturn && leaky == token.NoPos && !endedBetween(st.pos, fn.Body.End()) {
			leaky = fn.Body.End()
		}
		if leaky != token.NoPos {
			p.Reportf(st.pos, "span %s started in %s may escape without End (line %d): defer %s.End() or end it before each return",
				st.name, fn.Name.Name, p.Fset.Position(leaky).Line, st.name)
		}
	}
}

// endReceiver returns the receiver identifier of a plain `<ident>.End()`
// call, and whether the call has that shape.
func endReceiver(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// isSpanStart reports whether call creates a span: a StartSpan call or a
// Child method call whose result type (when resolvable) is *Span.
func isSpanStart(p *analysis.Pass, call *ast.CallExpr) bool {
	named := false
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		named = fun.Name == "StartSpan"
	case *ast.SelectorExpr:
		named = fun.Sel.Name == "StartSpan" || fun.Sel.Name == "Child"
	}
	if !named {
		return false
	}
	t := p.TypeOf(call)
	if t == nil {
		return true // no type info: trust the name (fixture mode)
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	return ok && n.Obj().Name() == "Span"
}
