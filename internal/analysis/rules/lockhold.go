package rules

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"kwsearch/internal/analysis"
)

// lockBits is the per-mutex abstract state tracked by LockHold.
type lockBits uint8

const (
	lockHeld lockBits = 1 << iota
	// lockDeferred marks a registered `defer mu.Unlock()`: the lock is
	// still held, but provably released on every path to return.
	lockDeferred
)

// lockFact maps mutex selector paths ("s.mu", RLocks suffixed "/R") to
// their state. It is a must-analysis: Join keeps only mutexes in the
// same state on every incoming path, so "provably held" is exactly what
// survives. Facts are immutable — transfer copies before writing.
type lockFact map[string]lockBits

// Equal implements analysis.Fact.
func (f lockFact) Equal(o analysis.Fact) bool {
	g := o.(lockFact)
	if len(f) != len(g) {
		return false
	}
	for k, v := range f {
		if g[k] != v {
			return false
		}
	}
	return true
}

// Join implements analysis.Fact (intersection: must semantics).
func (f lockFact) Join(o analysis.Fact) analysis.Fact {
	g := o.(lockFact)
	out := lockFact{}
	for k, v := range f {
		if gv, ok := g[k]; ok {
			if merged := v & gv; merged != 0 {
				out[k] = merged
			}
		}
	}
	return out
}

func (f lockFact) with(k string, bits lockBits) lockFact {
	out := make(lockFact, len(f)+1)
	for k2, v2 := range f {
		out[k2] = v2
	}
	out[k] = out[k] | bits
	return out
}

func (f lockFact) without(k string) lockFact {
	if _, ok := f[k]; !ok {
		return f
	}
	out := make(lockFact, len(f))
	for k2, v2 := range f {
		if k2 != k {
			out[k2] = v2
		}
	}
	return out
}

// heldPaths lists the mutexes currently held (any state including a
// deferred release), sorted for deterministic messages.
func (f lockFact) heldPaths(requireNoDefer bool) []string {
	var out []string
	for k, v := range f {
		if v&lockHeld == 0 {
			continue
		}
		if requireNoDefer && v&lockDeferred != 0 {
			continue
		}
		out = append(out, strings.TrimSuffix(k, "/R"))
	}
	sort.Strings(out)
	return out
}

// LockHold runs a forward must-held dataflow over each function: Lock/
// RLock set the held bit for the receiver's selector path, Unlock/
// RUnlock clear it, defer Unlock marks a certified exit release, and a
// call into a same-package helper applies that helper's lock/unlock
// summary one level deep. It flags:
//
//   - a channel send/receive, select communication, WaitGroup.Wait or
//     time.Sleep executed while a mutex is provably held: the goroutine
//     can park indefinitely with the lock, stalling every other reader
//     and writer (sync.Cond.Wait is exempt — it owns this pattern).
//   - a return reached with a mutex provably held and no deferred
//     unlock: an early-error return that leaks the lock poisons the
//     whole process, the classic hand-found bug in span/stream cleanup.
//
// Functions whose name contains "lock" (LockedGet, lockShard) are
// exempt from the return check — returning locked is their contract.
type LockHold struct{}

// Name implements analysis.Rule.
func (LockHold) Name() string { return "lockhold" }

// Doc implements analysis.Rule.
func (LockHold) Doc() string {
	return "no blocking operation (channel op, Wait, Sleep) while a mutex is held, and no return path that leaks a held mutex"
}

// Check implements analysis.Rule.
func (r LockHold) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			r.checkBody(p, fn.Name.Name, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					r.checkBody(p, fn.Name.Name, lit.Body)
				}
				return true
			})
		}
	}
}

func (r LockHold) checkBody(p *analysis.Pass, fnName string, body *ast.BlockStmt) {
	// Cheap pre-scan: no Lock calls, no work to do.
	hasLock := false
	analysis.WalkShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && isMutexExpr(p, sel.X) {
				hasLock = true
			}
		}
		return !hasLock
	})
	if !hasLock {
		return
	}

	cfg := analysis.NewCFG(body)
	transfer := func(n ast.Node, in analysis.Fact) analysis.Fact {
		f := in.(lockFact)
		if ds, ok := n.(*ast.DeferStmt); ok {
			if key, verb := mutexCallKey(p, ds.Call); verb == "unlock" {
				if _, held := f[key]; held {
					f = f.with(key, lockDeferred)
				}
				return f
			}
			// A deferred helper whose summary unlocks: an exit-time
			// release, not an immediate one. Its lock effects (if any)
			// happen at exit too and are ignored.
			if sel, ok := ds.Call.Fun.(*ast.SelectorExpr); ok && p.Info != nil {
				if sum := p.Summaries().Of(p.Info.Uses[sel.Sel]); sum != nil {
					if base, ok := analysis.SelectorPath(sel.X); ok {
						for _, rel := range sum.UnlocksReceiver {
							key := joinLockPath(base, rel)
							if _, held := f[key]; held {
								f = f.with(key, lockDeferred)
							}
						}
					}
				}
			}
			return f
		}
		analysis.WalkShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			// defer handled above; no CallExpr under a DeferStmt node
			// reaches this walk.
			if key, verb := mutexCallKey(p, call); key != "" {
				switch verb {
				case "lock":
					f = f.with(key, lockHeld)
				case "unlock":
					f = f.without(key)
				}
				return true
			}
			f = r.applySummary(p, call, f)
			return true
		})
		return f
	}
	sol := analysis.Forward(cfg, lockFact{}, transfer)

	// Blocking operations while provably holding a lock.
	analysis.WalkShallow(body, func(n ast.Node) bool {
		what := blockingOp(p, n)
		if what == "" {
			return true
		}
		fact, ok := sol.Before(n)
		if !ok {
			return true
		}
		if held := fact.(lockFact).heldPaths(false); len(held) > 0 {
			p.Reportf(n.Pos(), "%s while %s is held: the goroutine can park with the lock and stall every other locker; release before blocking",
				what, strings.Join(held, ", "))
		}
		return true
	})

	// Return paths that leak a held mutex.
	if strings.Contains(strings.ToLower(fnName), "lock") {
		return
	}
	analysis.WalkShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		fact, ok := sol.Before(ret)
		if !ok {
			return true
		}
		if held := fact.(lockFact).heldPaths(true); len(held) > 0 {
			p.Reportf(ret.Pos(), "return with %s still held and no deferred unlock: this path leaks the lock",
				strings.Join(held, ", "))
		}
		return true
	})
}

// applySummary applies a same-package callee's lock/unlock effects one
// call deep: x.helper() where helper's summary unlocks receiver field
// "mu" clears "x.mu".
func (r LockHold) applySummary(p *analysis.Pass, call *ast.CallExpr, f lockFact) lockFact {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.Info == nil {
		return f
	}
	obj := p.Info.Uses[sel.Sel]
	sum := p.Summaries().Of(obj)
	if sum == nil {
		return f
	}
	base, ok := analysis.SelectorPath(sel.X)
	if !ok {
		return f
	}
	for _, rel := range sum.UnlocksReceiver {
		f = f.without(joinLockPath(base, rel))
	}
	for _, rel := range sum.LocksReceiver {
		f = f.with(joinLockPath(base, rel), lockHeld)
	}
	return f
}

// joinLockPath rebases a receiver-relative lock path ("mu", "mu/R")
// onto the caller's receiver expression ("s" -> "s.mu", "s.mu/R").
func joinLockPath(base, rel string) string {
	rel, isR := strings.CutSuffix(rel, "/R")
	key := base
	if rel != "" {
		key = base + "." + rel
	}
	if isR {
		key += "/R"
	}
	return key
}

// mutexCallKey classifies call as a mutex lock/unlock: it returns the
// selector-path key ("s.mu", read locks suffixed "/R") and "lock" or
// "unlock", or ("", "") when call is not a mutex operation.
func mutexCallKey(p *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	var verb string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		verb = "lock"
	case "Unlock", "RUnlock":
		verb = "unlock"
	default:
		return "", ""
	}
	if !isMutexExpr(p, sel.X) {
		return "", ""
	}
	key, ok := analysis.SelectorPath(sel.X)
	if !ok {
		return "", ""
	}
	if strings.HasPrefix(sel.Sel.Name, "R") {
		key += "/R"
	}
	return key, verb
}

// isMutexExpr reports whether expr's type is sync.Mutex or sync.RWMutex
// (directly, behind a pointer, or as the lock half of an embedding),
// falling back to mu-ish names without type information.
func isMutexExpr(p *analysis.Pass, expr ast.Expr) bool {
	if t := p.TypeOf(expr); t != nil {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
		}
		return false
	}
	path, ok := analysis.SelectorPath(expr)
	if !ok {
		return false
	}
	last := path
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		last = path[i+1:]
	}
	low := strings.ToLower(last)
	return low == "mu" || low == "mutex" || low == "lock" || strings.HasSuffix(low, "mu")
}

// blockingOp classifies a node that can park the goroutine: channel
// sends/receives (select comms included — holding a lock across any
// select arm blocks), WaitGroup.Wait and time.Sleep. sync.Cond.Wait is
// exempt: it unlocks its own mutex while parked.
func blockingOp(p *analysis.Pass, n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			return "channel receive"
		}
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		switch sel.Sel.Name {
		case "Wait":
			if isWaitGroup(p, sel.X) {
				return "WaitGroup.Wait"
			}
		case "Sleep":
			if id, ok := sel.X.(*ast.Ident); ok {
				if path := pkgNameOf(p, id); path == "time" || (path == "" && id.Name == "time") {
					return "time.Sleep"
				}
			}
		}
	}
	return ""
}
