package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"kwsearch/internal/analysis"
)

// FloatEq flags `==` and `!=` between floating-point expressions in the
// score-bearing packages. Scores are sums of per-tuple terms, and
// floating-point addition is not associative: two evaluation orders of
// the same result tree can differ in the last bit, so exact equality
// silently flips top-k tie-breaks. Comparisons must go through an
// epsilon helper (almostEq-style) instead.
type FloatEq struct {
	// Packages restricts the rule to packages whose import path contains
	// one of these substrings; empty applies it everywhere.
	Packages []string
}

// Name implements analysis.Rule.
func (FloatEq) Name() string { return "float-equality" }

// Doc implements analysis.Rule.
func (FloatEq) Doc() string {
	return "float score comparisons must use an epsilon helper, not == or !="
}

// Check implements analysis.Rule.
func (r FloatEq) Check(p *analysis.Pass) {
	if !pathMatches(p.Path, r.Packages) {
		return
	}
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p.TypeOf(be.X)) || isFloat(p.TypeOf(be.Y)) {
				p.Reportf(be.OpPos, "%s on floating-point values is brittle under reordering; compare with an epsilon helper", be.Op)
			}
			return true
		})
	}
}

// isFloat reports whether t is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
