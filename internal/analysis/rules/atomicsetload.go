package rules

import (
	"go/ast"
	"go/types"

	"kwsearch/internal/analysis"
)

// AtomicSetLoad flags Set/Store calls on an atomic (or atomic-backed)
// value whose argument reads another atomic via Load/Value: the
// read-then-publish pair is not one atomic operation, so two goroutines
// can interleave their loads and land their stores out of order,
// publishing a stale value that never self-corrects.
//
// This is the exact shape of the PR 5 queued-gauge race:
// g.queuedGauge.Set(g.queued.Load()) let a racing acquirer publish depth
// 1 after another had published 2, freezing the gauge at the stale
// value. Same-object Set(Load()) is the classic lost-update
// read-modify-write. Both repair the same way: mirror by commutative
// deltas (Add) or use CompareAndSwap.
type AtomicSetLoad struct{}

// Name implements analysis.Rule.
func (AtomicSetLoad) Name() string { return "atomicsetload" }

// Doc implements analysis.Rule.
func (AtomicSetLoad) Doc() string {
	return "Set/Store of a value read from an atomic Load is a racy read-modify-write or stale publish; use Add deltas or CompareAndSwap"
}

// Check implements analysis.Rule.
func (r AtomicSetLoad) Check(p *analysis.Pass) {
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Set" && sel.Sel.Name != "Store") {
				return true
			}
			if !atomicLike(p, sel.X) {
				return true
			}
			setPath, _ := analysis.SelectorPath(sel.X)
			for _, arg := range call.Args {
				load := findAtomicLoad(p, arg)
				if load == nil {
					continue
				}
				loadSel := load.Fun.(*ast.SelectorExpr)
				loadPath, _ := analysis.SelectorPath(loadSel.X)
				if setPath != "" && setPath == loadPath {
					p.Reportf(call.Pos(), "%s.%s(%s.%s()) is a non-atomic read-modify-write: racing writers lose updates; use Add or CompareAndSwap",
						setPath, sel.Sel.Name, loadPath, loadSel.Sel.Name)
				} else {
					p.Reportf(call.Pos(), "%s.%s publishes a value read from %s.%s: the load/store pair does not commute across goroutines, so a stale value can land last; mirror by Add deltas or CompareAndSwap",
						exprPath(sel.X), sel.Sel.Name, exprPath(loadSel.X), loadSel.Sel.Name)
				}
				break
			}
			return true
		})
	}
}

// findAtomicLoad returns the first Load()/Value() call on an atomic-like
// receiver inside e, not descending into function literals.
func findAtomicLoad(p *analysis.Pass, e ast.Expr) *ast.CallExpr {
	var out *ast.CallExpr
	analysis.WalkShallow(e, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Load" && sel.Sel.Name != "Value") {
			return true
		}
		if len(call.Args) != 0 {
			return true
		}
		if atomicLike(p, sel.X) {
			out = call
		}
		return true
	})
	return out
}

// atomicLike reports whether expr's type is a sync/atomic type, or a
// named type whose underlying struct directly wraps one (obs.Gauge,
// obs.Counter). With no type information (fixture mode) it falls back to
// trusting the Load/Set method-name shape.
func atomicLike(p *analysis.Pass, expr ast.Expr) bool {
	t := p.TypeOf(expr)
	if t == nil {
		return true // fixture mode: names already matched
	}
	return atomicType(t, 1)
}

// atomicType reports whether t is (or, up to depth levels of struct
// wrapping, contains only as its concurrency core) a sync/atomic type.
func atomicType(t types.Type, depth int) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	if depth == 0 {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if atomicType(st.Field(i).Type(), depth-1) {
			return true
		}
	}
	return false
}

// exprPath renders expr as a dotted path for diagnostics, degrading to
// "expression" when it has computed parts.
func exprPath(expr ast.Expr) string {
	if s, ok := analysis.SelectorPath(expr); ok {
		return s
	}
	return "expression"
}
