package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBody parses src as a function body wrapped in a file and
// returns the body and fileset.
func parseFuncBody(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the set of blocks reachable from the entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	_, body := parseFuncBody(t, "x := 1\ny := 2\n_ = x + y")
	c := NewCFG(body)
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry should fall through to exit")
	}
}

func TestCFGIfElse(t *testing.T) {
	_, body := parseFuncBody(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	c := NewCFG(body)
	r := reachable(c)
	if !r[c.Exit] {
		t.Fatalf("exit unreachable")
	}
	// Entry (decl + cond) must have two successors: then and else.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("cond successors = %d, want 2", len(c.Entry.Succs))
	}
}

func TestCFGReturnMakesDeadCode(t *testing.T) {
	_, body := parseFuncBody(t, "return\nx := 1\n_ = x")
	c := NewCFG(body)
	r := reachable(c)
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok && !r[b] {
				t.Fatalf("return block unreachable")
			}
			if as, ok := n.(*ast.AssignStmt); ok && r[b] {
				t.Fatalf("statement after return is reachable: %v", as)
			}
		}
	}
}

func TestCFGForLoop(t *testing.T) {
	_, body := parseFuncBody(t, `
s := 0
for i := 0; i < 10; i++ {
	s += i
	if s > 5 {
		break
	}
	if s == 2 {
		continue
	}
	s++
}
_ = s`)
	c := NewCFG(body)
	r := reachable(c)
	if !r[c.Exit] {
		t.Fatalf("exit unreachable through loop")
	}
	// There must be a back edge: some reachable block (not the head's
	// predecessor chain) with an edge to an earlier-indexed block.
	back := false
	for b := range r {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("no back edge in loop CFG")
	}
}

func TestCFGRangeAndLabeledBreak(t *testing.T) {
	_, body := parseFuncBody(t, `
sum := 0
outer:
for _, x := range []int{1, 2, 3} {
	for {
		sum += x
		break outer
	}
}
_ = sum`)
	c := NewCFG(body)
	if !reachable(c)[c.Exit] {
		t.Fatalf("labeled break does not reach exit")
	}
}

func TestCFGSelect(t *testing.T) {
	_, body := parseFuncBody(t, `
ch := make(chan int)
done := make(chan struct{})
select {
case ch <- 1:
	_ = ch
case <-done:
	return
default:
}
_ = ch`)
	c := NewCFG(body)
	// The select head (entry block) must fan out to 3 clause blocks.
	if got := len(c.Entry.Succs); got != 3 {
		t.Fatalf("select fan-out = %d, want 3", got)
	}
	// The send must be findable, and live in a clause block distinct
	// from entry.
	var send *ast.SendStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			send = s
		}
		return true
	})
	blk, top := c.FindNode(send)
	if blk == nil || blk == c.Entry {
		t.Fatalf("send not in a clause block (blk=%v)", blk)
	}
	if top != ast.Node(send) {
		t.Fatalf("FindNode top = %T, want *ast.SendStmt", top)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, body := parseFuncBody(t, `
x := 1
hits := 0
switch x {
case 1:
	hits++
	fallthrough
case 2:
	hits++
case 3:
	hits--
}
_ = hits`)
	c := NewCFG(body)
	if !reachable(c)[c.Exit] {
		t.Fatalf("switch does not reach exit")
	}
	// No default: the head must edge straight to the after-block too, so
	// entry has 3 case successors + 1 after successor.
	if got := len(c.Entry.Succs); got != 4 {
		t.Fatalf("switch head successors = %d, want 4 (3 cases + no-match)", got)
	}
}

func TestCFGPanicEdgesToExit(t *testing.T) {
	_, body := parseFuncBody(t, `
x := 1
if x > 0 {
	panic("boom")
}
_ = x`)
	c := NewCFG(body)
	r := reachable(c)
	// The assignment after the if must still be reachable (x <= 0 path),
	// and the panic block must not flow into it.
	var panicBlk *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isNoReturnCall(es.X) {
				panicBlk = b
			}
		}
	}
	if panicBlk == nil || !r[panicBlk] {
		t.Fatalf("panic block missing or unreachable")
	}
	if len(panicBlk.Succs) != 1 || panicBlk.Succs[0] != c.Exit {
		t.Fatalf("panic block should edge only to exit, got %d succs", len(panicBlk.Succs))
	}
}

func TestCFGDeferredCollected(t *testing.T) {
	_, body := parseFuncBody(t, `
mu := 0
defer func() { _ = mu }()
defer println("x")
_ = mu`)
	c := NewCFG(body)
	if len(c.Deferred) != 2 {
		t.Fatalf("deferred = %d, want 2", len(c.Deferred))
	}
}

func TestCFGGoto(t *testing.T) {
	_, body := parseFuncBody(t, `
i := 0
loop:
i++
if i < 3 {
	goto loop
}
_ = i`)
	c := NewCFG(body)
	if !reachable(c)[c.Exit] {
		t.Fatalf("goto loop never reaches exit")
	}
}

func TestCFGFuncLitNotExpanded(t *testing.T) {
	fset, body := parseFuncBody(t, `
f := func() {
	return
}
f()`)
	_ = fset
	c := NewCFG(body)
	// The return inside the literal must not create an edge to exit from
	// the entry block's middle: entry holds both statements and falls
	// through.
	if len(c.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2 (lit assign + call)", len(c.Entry.Nodes))
	}
	var ret *ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	// FindNode maps the literal's return to the assignment node that
	// contains it — WalkShallow is what keeps transfer functions out.
	seen := 0
	WalkShallow(body, func(n ast.Node) bool {
		if n == ast.Node(ret) {
			seen++
		}
		return true
	})
	if seen != 0 {
		t.Fatalf("WalkShallow descended into function literal")
	}
}

func TestCFGBlocksEndWithExit(t *testing.T) {
	for _, src := range []string{
		"x := 1\n_ = x",
		"for {\nbreak\n}",
		"switch {\ncase true:\n}",
		"return",
	} {
		_, body := parseFuncBody(t, src)
		c := NewCFG(body)
		if c.Blocks[len(c.Blocks)-1] != c.Exit {
			t.Fatalf("%q: exit is not the last block", src)
		}
		if c.Blocks[0] != c.Entry {
			t.Fatalf("%q: entry is not the first block", src)
		}
		if !strings.Contains(src, "for") && !reachable(c)[c.Exit] {
			t.Fatalf("%q: exit unreachable", src)
		}
	}
}
