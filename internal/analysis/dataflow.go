package analysis

import (
	"go/ast"
)

// Fact is an abstract dataflow state at one program point. Facts are
// immutable values: Join and a Transfer must return fresh facts (or one
// of their operands) rather than mutate. A nil Fact means "unreachable"
// (the lattice bottom); the solver handles nil, implementations never
// see it.
type Fact interface {
	// Equal reports whether other carries the same abstract state. The
	// solver uses it to detect the fixpoint, so it must be reflexive and
	// consistent with Join (Join(a, a).Equal(a)).
	Equal(other Fact) bool
	// Join merges a state arriving over another CFG edge into this one,
	// returning the least upper bound. For a "must hold on every path"
	// domain this is set intersection / logical AND; for "may" domains,
	// union / OR.
	Join(other Fact) Fact
}

// Transfer applies the effect of one block node to the incoming fact and
// returns the outgoing fact. Nodes are the ast.Node values stored in
// Block.Nodes; transfer functions should use WalkShallow when scanning
// them so function-literal bodies don't leak into the enclosing frame.
type Transfer func(n ast.Node, in Fact) Fact

// Solution is the fixpoint of a forward dataflow problem over one CFG:
// the abstract state at the entry and exit of every reachable block.
type Solution struct {
	cfg *CFG
	tr  Transfer
	// In and Out map each block to the state on entry/exit. Unreachable
	// blocks are absent (nil fact).
	In  map[*Block]Fact
	Out map[*Block]Fact
}

// Forward solves a forward dataflow problem: starting from entry at the
// CFG's entry block, it propagates facts along edges with the classic
// worklist algorithm until nothing changes. Termination is the
// implementor's contract: the domain must have finite height and Join
// must be monotone.
func Forward(cfg *CFG, entry Fact, tr Transfer) *Solution {
	s := &Solution{cfg: cfg, tr: tr, In: map[*Block]Fact{}, Out: map[*Block]Fact{}}
	s.In[cfg.Entry] = entry
	work := []*Block{cfg.Entry}
	queued := map[*Block]bool{cfg.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		in := s.In[b]
		if in == nil {
			continue
		}
		out := in
		for _, n := range b.Nodes {
			out = s.tr(n, out)
		}
		s.Out[b] = out
		for _, succ := range b.Succs {
			next := out
			if cur := s.In[succ]; cur != nil {
				next = cur.Join(out)
				if next.Equal(cur) {
					continue
				}
			}
			s.In[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return s
}

// Before returns the fact in force immediately before the top-level
// block node containing n, recomputed by replaying the block's transfer
// functions. The second result is false when n is unreachable or outside
// every block (e.g. inside a function literal).
func (s *Solution) Before(n ast.Node) (Fact, bool) {
	blk, top := s.cfg.FindNode(n)
	if blk == nil {
		return nil, false
	}
	f := s.In[blk]
	if f == nil {
		return nil, false
	}
	for _, bn := range blk.Nodes {
		if bn == top {
			return f, true
		}
		f = s.tr(bn, f)
	}
	return f, true
}

// AtExit returns the fact at the CFG's exit block (the join over every
// return/panic/fall-off path), or nil when no path reaches it.
func (s *Solution) AtExit() Fact { return s.In[s.cfg.Exit] }
