package analysis

import (
	"go/ast"
	"testing"
)

// boolFact is a must-analysis fact: true iff the tracked event happened
// on every path. Join is AND.
type boolFact bool

func (b boolFact) Equal(o Fact) bool { return b == o.(boolFact) }
func (b boolFact) Join(o Fact) Fact  { return boolFact(bool(b) && bool(o.(boolFact))) }

// markerTransfer flips the fact to true at any call to a function named
// "mark".
func markerTransfer(n ast.Node, in Fact) Fact {
	found := false
	WalkShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
				found = true
			}
		}
		return true
	})
	if found {
		return boolFact(true)
	}
	return in
}

// findCall locates the first call to the named function.
func findCall(body *ast.BlockStmt, name string) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				out = call
			}
		}
		return true
	})
	return out
}

func TestForwardMustOnBothBranches(t *testing.T) {
	_, body := parseFuncBody(t, `
x := 1
if x > 0 {
	mark()
} else {
	mark()
}
sink()`)
	c := NewCFG(body)
	s := Forward(c, boolFact(false), markerTransfer)
	f, ok := s.Before(findCall(body, "sink"))
	if !ok {
		t.Fatalf("sink unreachable")
	}
	if !bool(f.(boolFact)) {
		t.Fatalf("mark() on both branches should be must-true at sink")
	}
}

func TestForwardMustOneBranchOnly(t *testing.T) {
	_, body := parseFuncBody(t, `
x := 1
if x > 0 {
	mark()
}
sink()`)
	c := NewCFG(body)
	s := Forward(c, boolFact(false), markerTransfer)
	f, ok := s.Before(findCall(body, "sink"))
	if !ok {
		t.Fatalf("sink unreachable")
	}
	if bool(f.(boolFact)) {
		t.Fatalf("mark() on one branch must not be must-true at sink")
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	_, body := parseFuncBody(t, `
for i := 0; i < 10; i++ {
	if i == 3 {
		mark()
	}
}
sink()`)
	c := NewCFG(body)
	s := Forward(c, boolFact(false), markerTransfer)
	f, ok := s.Before(findCall(body, "sink"))
	if !ok {
		t.Fatalf("sink unreachable")
	}
	// The loop may execute zero times, and mark() is conditional: the
	// must-fact at sink is false. The solver must also terminate (this
	// test hanging = no fixpoint).
	if bool(f.(boolFact)) {
		t.Fatalf("conditional mark in loop must not be must-true after it")
	}
}

func TestForwardEarlyReturnPathExcluded(t *testing.T) {
	_, body := parseFuncBody(t, `
x := 1
if x > 0 {
	return
}
mark()
sink()`)
	c := NewCFG(body)
	s := Forward(c, boolFact(false), markerTransfer)
	f, ok := s.Before(findCall(body, "sink"))
	if !ok {
		t.Fatalf("sink unreachable")
	}
	if !bool(f.(boolFact)) {
		t.Fatalf("the only path to sink passes mark(); must-fact should be true")
	}
	// The exit join sees both the early return (false) and the fall-off
	// path (true): must-analysis says false.
	if exitFact := s.AtExit(); exitFact == nil || bool(exitFact.(boolFact)) {
		t.Fatalf("exit fact = %v, want false (early-return path never marked)", exitFact)
	}
}

func TestForwardDeadCodeHasNoFact(t *testing.T) {
	_, body := parseFuncBody(t, `
return
sink()`)
	c := NewCFG(body)
	s := Forward(c, boolFact(false), markerTransfer)
	if _, ok := s.Before(findCall(body, "sink")); ok {
		t.Fatalf("dead code should have no fact")
	}
}

func TestForwardSelectClauseFacts(t *testing.T) {
	_, body := parseFuncBody(t, `
ch := make(chan int)
mark()
select {
case ch <- 1:
	sink()
default:
}`)
	c := NewCFG(body)
	s := Forward(c, boolFact(false), markerTransfer)
	f, ok := s.Before(findCall(body, "sink"))
	if !ok {
		t.Fatalf("clause body unreachable")
	}
	if !bool(f.(boolFact)) {
		t.Fatalf("fact before select must flow into comm clause bodies")
	}
}
