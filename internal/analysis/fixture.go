package analysis

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted expectations of a `// want "..."` comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// RunFixtureTest loads the package in dir, runs the rules, and compares
// the diagnostics against `// want "substring"` expectation comments in
// the fixture files:
//
//	x := rand.Intn(3) // want "seeded"
//
// expects a diagnostic on that line whose message (or rule name)
// contains the quoted text; several quoted strings in one comment expect
// several diagnostics. The form `// want+N "substring"` anchors the
// expectation N lines below the comment — needed when the finding is on
// a declaration that a directly-preceding comment would document (leave
// a blank line between the want comment and the declaration). Unmatched
// expectations and unexpected diagnostics both fail the test, so a
// fixture with wants fails loudly if its rule is disabled.
func RunFixtureTest(t testing.TB, dir string, rules []Rule) {
	t.Helper()
	ld, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := ld.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	type want struct {
		file string
		line int
		text string
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want")
				if !ok {
					continue
				}
				offset := 0
				if after, ok := strings.CutPrefix(rest, "+"); ok {
					numEnd := strings.IndexAny(after, " \t")
					if numEnd < 0 {
						numEnd = len(after)
					}
					n, err := strconv.Atoi(after[:numEnd])
					if err != nil {
						t.Errorf("%s: bad want offset in %q", pkg.Fset.Position(c.Pos()), c.Text)
						continue
					}
					offset, rest = n, after[numEnd:]
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line + offset, text: m[1]})
				}
			}
		}
	}

	for _, d := range Run(pkg, rules) {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				(strings.Contains(d.Message, w.text) || w.text == d.Rule) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.text)
		}
	}
}
