// Package text provides the shared tokenizer used by the inverted index,
// the XML keyword index and the query parsers, so that data and queries
// agree on token boundaries.
package text

import "strings"

// keepRune reports whether r is part of a token. Letters and digits are
// kept; '&' is kept so that entity names like "at&t" survive as one token
// (the query-cleaning examples depend on this).
func keepRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '&':
		return true
	case r > 127: // non-ASCII letters pass through
		return true
	}
	return false
}

// Tokenize lower-cases s and splits it into tokens on non-token runes.
func Tokenize(s string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if keepRune(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Normalize lower-cases and trims a single token the same way Tokenize
// would; multi-token input yields the first token only.
func Normalize(s string) string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return ""
	}
	return toks[0]
}

// Contains reports whether token appears among the tokens of s.
func Contains(s, token string) bool {
	for _, t := range Tokenize(s) {
		if t == token {
			return true
		}
	}
	return false
}
