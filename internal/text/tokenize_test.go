package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"at&t iPad", []string{"at&t", "ipad"}},
		{"XML-keyword_search", []string{"xml", "keyword", "search"}},
		{"  ", nil},
		{"", nil},
		{"B+ tree (1979)", []string{"b", "tree", "1979"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  SIGMOD  "); got != "sigmod" {
		t.Errorf("Normalize = %q", got)
	}
	if got := Normalize("two words"); got != "two" {
		t.Errorf("Normalize multi-token = %q", got)
	}
	if got := Normalize("!!!"); got != "" {
		t.Errorf("Normalize symbols = %q", got)
	}
}

func TestContains(t *testing.T) {
	if !Contains("The Shining (1980)", "shining") {
		t.Errorf("Contains failed")
	}
	if Contains("The Shining", "shin") {
		t.Errorf("Contains must match whole tokens only")
	}
}

// Property: tokenizing is idempotent — re-tokenizing the join of tokens
// yields the same tokens.
func TestTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Tokenize(s)
		joined := ""
		for i, tok := range once {
			if i > 0 {
				joined += " "
			}
			joined += tok
		}
		twice := Tokenize(joined)
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
