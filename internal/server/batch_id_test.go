package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"kwsearch/internal/obs"
)

// TestBatchItemRequestIDs is the regression test for batch-item
// correlation: every item of a /batch request must run under its own
// derived sub-id (parent request id + "#" + item index), so slow-query
// log entries and per-request log lines attribute to the item, not the
// whole batch. Pre-fix, all items shared the parent id and the slowlog
// showed three indistinguishable entries.
func TestBatchItemRequestIDs(t *testing.T) {
	// A 1ns threshold tail-samples every query, so each batch item
	// lands in the slowlog with the request id its context carried.
	sl := obs.NewSlowLog(64, time.Nanosecond)
	_, ts := newTestServer(t, nil, Options{SlowLog: sl})

	batch := BatchRequest{Queries: []QueryRequest{
		{Query: "keyword search"},
		{Query: "wang search"},
		{Query: "database"},
	}}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", httpResp.StatusCode)
	}

	var ids []string
	for _, e := range sl.Entries() {
		ids = append(ids, e.RequestID)
	}
	if len(ids) != len(batch.Queries) {
		t.Fatalf("slowlog captured %d entries (%v), want %d", len(ids), ids, len(batch.Queries))
	}
	parent := ""
	seen := map[string]bool{}
	for _, id := range ids {
		i := strings.LastIndexByte(id, '#')
		if i < 1 {
			t.Fatalf("batch item request id %q has no #index sub-id", id)
		}
		if seen[id] {
			t.Fatalf("duplicate batch item request id %q in %v", id, ids)
		}
		seen[id] = true
		if parent == "" {
			parent = id[:i]
		} else if id[:i] != parent {
			t.Fatalf("batch items disagree on parent id: %q vs %q", id[:i], parent)
		}
	}
	var suffixes []string
	for id := range seen {
		suffixes = append(suffixes, id[strings.LastIndexByte(id, '#'):])
	}
	sort.Strings(suffixes)
	if got := strings.Join(suffixes, " "); got != "#0 #1 #2" {
		t.Fatalf("item sub-ids %q, want #0 #1 #2", got)
	}
}
