package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
)

// TestSelfCheckUnderLoad runs the full load-generator contract against a
// gated engine: N concurrent clients whose served answers must be
// byte-identical to in-process Engine.Query, a deadline probe that must
// come back 200 partial with a certified prefix, and an overload burst
// that must shed with 429 (never hang, never 500). Run under -race this
// doubles as the serving layer's data-race gate.
func TestSelfCheckUnderLoad(t *testing.T) {
	e := core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	e.Admit(4, 8)
	s := New(e, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := SelfCheckConfig{Clients: 8, PerClient: 8, Timeout: 2 * time.Minute}
	if testing.Short() {
		cfg.Clients, cfg.PerClient = 4, 3
	}
	report, err := SelfCheck(context.Background(), ts.URL, e, cfg)
	if err != nil {
		t.Fatalf("selfcheck: %v", err)
	}
	t.Logf("selfcheck: %s", report)
	if report.Mismatches != 0 {
		t.Fatalf("%d served answers differed from in-process results", report.Mismatches)
	}
	if report.OK == 0 {
		t.Fatal("selfcheck completed zero queries")
	}
}
