package server

// This file is the serving layer's load generator and self-check: N
// concurrent HTTP clients drive a running server and every served
// answer is compared byte-for-byte against an in-process Engine.Query
// on the same warm engine. It doubles as the measurement harness behind
// benchrunner's E36 serving block (throughput, tail latency, shed rate).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/obs"
)

// DBLPWorkload is the default self-check workload over the synthetic
// DBLP dataset: repeated and distinct queries, so the executor's result
// cache sees hits and distinct terms exercise the posting cache — the
// same mix the executor benchmarks use.
func DBLPWorkload() []QueryRequest {
	return []QueryRequest{
		{Query: "keyword search", Workers: 2},
		{Query: "wang search", Workers: 2},
		{Query: "keyword search", Workers: 2}, // repeat: result-cache hit
		{Query: "keyword database"},
		{Query: "search database", TopK: 5},
	}
}

// SelfCheckConfig sizes a self-check run. Zero values take defaults.
type SelfCheckConfig struct {
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// PerClient is the number of queries each client issues (default 10).
	PerClient int
	// Workload is the query mix, issued round-robin (default
	// DBLPWorkload, which assumes the synthetic DBLP dataset).
	Workload []QueryRequest
	// HeavyQuery is the deadline-partial probe: a query whose serial
	// evaluation takes far longer than its deadline, so the server must
	// answer 200 with "partial": true and a certified prefix. The
	// default assumes the synthetic DBLP dataset.
	HeavyQuery QueryRequest
	// Timeout bounds each HTTP request; a served query may shed or go
	// partial but must never hang (default 30s).
	Timeout time.Duration
	// SkipOverloadProbe leaves out the deliberate overload burst (used
	// when the engine has no admission gate installed).
	SkipOverloadProbe bool
}

func (c SelfCheckConfig) withDefaults() SelfCheckConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.PerClient <= 0 {
		c.PerClient = 10
	}
	if len(c.Workload) == 0 {
		c.Workload = DBLPWorkload()
	}
	if c.HeavyQuery.Query == "" {
		c.HeavyQuery = QueryRequest{Query: "keyword search", TopK: 10000, MaxCNSize: 6, DeadlineMS: 1}
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// SelfCheckReport summarizes a self-check run.
type SelfCheckReport struct {
	// Queries is the total number of HTTP queries issued.
	Queries int
	// OK counts complete 200 answers, Partial the 200 answers with
	// "partial": true, Shed the 429s, DeadlineQueued the 503s.
	OK, Partial, Shed, DeadlineQueued int
	// Mismatches counts served answers that were not byte-identical to
	// the in-process reference (always 0 on a passing run).
	Mismatches int
	// Other counts transport errors and unexpected statuses.
	Other int
	// Elapsed is the wall time of the concurrent phase; ThroughputQPS
	// and P99 summarize it.
	Elapsed       time.Duration
	ThroughputQPS float64
	P99           time.Duration
}

// String renders the report as the one-line summary CLIs print.
func (r SelfCheckReport) String() string {
	return fmt.Sprintf("queries=%d ok=%d partial=%d shed=%d deadline=%d mismatches=%d other=%d %.0f qps p99=%v",
		r.Queries, r.OK, r.Partial, r.Shed, r.DeadlineQueued, r.Mismatches, r.Other, r.ThroughputQPS, r.P99)
}

// postQuery issues one POST /query and decodes the envelope, returning
// the HTTP status (which the envelope mirrors) and the Retry-After
// header value for shed responses.
func postQuery(ctx context.Context, client *http.Client, baseURL string, q QueryRequest) (QueryResponse, string, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return QueryResponse{}, "", err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return QueryResponse{}, "", err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := client.Do(httpReq)
	if err != nil {
		return QueryResponse{}, "", err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return QueryResponse{}, "", err
	}
	var resp QueryResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return QueryResponse{}, "", fmt.Errorf("status %d: undecodable body %q: %w", httpResp.StatusCode, data, err)
	}
	if resp.Status != httpResp.StatusCode {
		return resp, "", fmt.Errorf("envelope status %d != HTTP status %d", resp.Status, httpResp.StatusCode)
	}
	return resp, httpResp.Header.Get("Retry-After"), nil
}

// reference runs q in-process (no deadline, context.Background) and
// renders the canonical answer the served responses must reproduce.
func reference(e core.Searcher, q QueryRequest) (string, error) {
	req := QueryRequest{
		Query: q.Query, Semantics: q.Semantics, TopK: q.TopK,
		MaxCNSize: q.MaxCNSize, Clean: q.Clean, Workers: q.Workers,
	}
	sem, err := core.ParseSemantics(req.Semantics)
	if err != nil {
		return "", err
	}
	resp, err := e.Query(context.Background(), core.Request{
		Query: req.Query, Semantics: sem, TopK: req.TopK,
		MaxCNSize: req.MaxCNSize, Clean: req.Clean, Workers: req.Workers,
	})
	if err != nil {
		return "", fmt.Errorf("in-process reference for %q: %w", q.Query, err)
	}
	if resp.Partial {
		return "", fmt.Errorf("in-process reference for %q unexpectedly partial", q.Query)
	}
	return RenderResults(toWireResults(resp.Results)), nil
}

// SelfCheck drives cfg.Clients concurrent clients against the server at
// baseURL — which must serve the same warm engine e — and verifies the
// serving layer end to end. Cancelling ctx aborts the run (in-flight
// requests included) with ctx's error. The checks:
//
//   - every complete 200 answer is byte-identical to an in-process
//     Engine.Query for the same request;
//   - overload (when a gate is installed) sheds with 429 + Retry-After,
//     never a hung connection;
//   - an expiring per-request deadline yields 200 with "partial": true
//     and a certified byte-exact prefix of the full answer.
//
// The returned report summarizes outcomes; the error is non-nil when any
// invariant above was violated.
func SelfCheck(ctx context.Context, baseURL string, e core.Searcher, cfg SelfCheckConfig) (SelfCheckReport, error) {
	cfg = cfg.withDefaults()
	client := &http.Client{Timeout: cfg.Timeout}
	var report SelfCheckReport

	// Phase 0: in-process references, computed before any load so the
	// comparison target is fixed (and the engine caches are warm, the
	// same state every served query sees).
	refs := make(map[string]string, len(cfg.Workload))
	var checkErrs []string
	for _, q := range cfg.Workload {
		key := workloadKey(q)
		if _, ok := refs[key]; ok {
			continue
		}
		r, err := reference(e, q)
		if err != nil {
			return report, err
		}
		refs[key] = r
	}

	// Phase 1: concurrent clients replay the workload round-robin.
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, cfg.Clients*cfg.PerClient)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < cfg.PerClient; i++ {
				if ctx.Err() != nil {
					return
				}
				q := cfg.Workload[(c+i)%len(cfg.Workload)]
				qStart := time.Now()
				resp, retryAfter, err := postQuery(ctx, client, baseURL, q)
				took := time.Since(qStart)
				mu.Lock()
				report.Queries++
				latencies = append(latencies, took)
				switch {
				case err != nil:
					report.Other++
					checkErrs = append(checkErrs, fmt.Sprintf("client %d: %v", c, err))
				case resp.Status == http.StatusOK && !resp.Partial:
					report.OK++
					if got := RenderResults(resp.Results); got != refs[workloadKey(q)] {
						report.Mismatches++
						checkErrs = append(checkErrs, fmt.Sprintf(
							"client %d query %q: served answer differs from in-process reference\nserved:\n%s\nwant:\n%s",
							c, q.Query, got, refs[workloadKey(q)]))
					}
				case resp.Status == http.StatusOK:
					// No deadline was requested, so a partial here means
					// the server invented one.
					report.Other++
					checkErrs = append(checkErrs, fmt.Sprintf("client %d query %q: unexpected partial", c, q.Query))
				case resp.Status == http.StatusTooManyRequests:
					report.Shed++
					if retryAfter == "" {
						report.Other++
						checkErrs = append(checkErrs, fmt.Sprintf("client %d: 429 without Retry-After", c))
					}
				case resp.Status == http.StatusServiceUnavailable:
					report.DeadlineQueued++
				default:
					report.Other++
					checkErrs = append(checkErrs, fmt.Sprintf("client %d query %q: unexpected status %d (%s)", c, q.Query, resp.Status, resp.Error))
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return report, err
	}
	report.Elapsed = time.Since(start)
	if report.Elapsed > 0 {
		report.ThroughputQPS = float64(report.Queries) / report.Elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		report.P99 = latencies[len(latencies)*99/100]
	}

	// Phase 2: deadline-partial probe. The heavy query's 1ms budget is
	// meant to expire mid-evaluation, so the answer must come back 200
	// with "partial": true and be a byte-exact prefix of the full
	// answer. Two subtleties keep the probe about deadline semantics
	// rather than cache luck:
	//
	//   - The probe runs BEFORE its full-answer reference. The reference
	//     populates the executor's result cache on engines that route
	//     references through the worker pool (the shard coordinator's
	//     views always do), and a cache-warm probe completes inside any
	//     deadline — a legitimate complete answer that would fail the
	//     check for the wrong reason.
	//   - A complete answer inside the budget is inconclusive, not a
	//     violation: a fast engine (a warm shard fleet evaluates only
	//     1/N of the data each) may simply beat the clock. The probe
	//     escalates — a distinct K per attempt dodges the result cache,
	//     a larger CN budget multiplies the evaluation (and cold
	//     plan-compile) work — and only fails if no attempt gets the
	//     deadline to expire. Wrong statuses and non-prefix partials
	//     remain immediate violations.
	probeDone := false
	for attempt := 0; attempt < 3 && !probeDone; attempt++ {
		probeQ := cfg.HeavyQuery
		probeQ.TopK -= attempt
		probeQ.MaxCNSize += attempt
		resp, _, err := postQuery(ctx, client, baseURL, probeQ)
		if err != nil {
			return report, fmt.Errorf("deadline probe: %w", err)
		}
		report.Queries++
		if resp.Status != http.StatusOK {
			checkErrs = append(checkErrs, fmt.Sprintf("deadline probe: status %d (%s), want 200 partial", resp.Status, resp.Error))
			probeDone = true
			break
		}
		if !resp.Partial {
			continue // beat the clock: escalate
		}
		probeDone = true
		fullQ := probeQ
		fullQ.DeadlineMS = 0
		full, err := reference(e, fullQ)
		if err != nil {
			return report, err
		}
		if !strings.HasPrefix(full, RenderResults(resp.Results)) {
			report.Mismatches++
			checkErrs = append(checkErrs, "deadline probe: partial answer is not a byte-exact prefix of the full answer")
		} else {
			report.Partial++
		}
	}
	if !probeDone {
		checkErrs = append(checkErrs, "deadline probe: no attempt produced a partial answer")
	}

	// Phase 3: overload probe. A simultaneous burst beyond the gate's
	// capacity must shed with 429 — and every query must come back.
	if !cfg.SkipOverloadProbe {
		shed, err := overloadBurst(ctx, client, baseURL, e)
		report.Queries += shed.queries
		report.OK += shed.oks
		report.Shed += shed.sheds
		if err != nil {
			checkErrs = append(checkErrs, err.Error())
		}
	}

	// Phase 4: slowlog coverage. With a tail-sampling slow-query log
	// installed on the engine, every shed, partial, and deadline-queued
	// query the run produced must have left an exemplar, and every
	// retained exemplar must carry a well-formed span tree plus the
	// keywords-hash join key.
	if sl := e.SlowLog(); sl != nil {
		byOutcome := map[obs.Outcome]int{}
		for _, en := range sl.Entries() {
			byOutcome[en.Outcome]++
			switch {
			case en.Trace == nil:
				checkErrs = append(checkErrs, fmt.Sprintf("slowlog: entry %d (%s) has no trace", en.Seq, en.Outcome))
			case en.Trace.WellFormed(cfg.Timeout) != nil:
				checkErrs = append(checkErrs, fmt.Sprintf("slowlog: entry %d (%s) trace malformed: %v",
					en.Seq, en.Outcome, en.Trace.WellFormed(cfg.Timeout)))
			}
			if en.KeywordsHash == "" {
				checkErrs = append(checkErrs, fmt.Sprintf("slowlog: entry %d (%s) missing keywords hash", en.Seq, en.Outcome))
			}
		}
		// Per-outcome coverage is only checkable while the ring has never
		// evicted; past that point older exemplars are legitimately gone.
		if sl.Captured() <= uint64(sl.Cap()) {
			for _, c := range []struct {
				outcome obs.Outcome
				want    int
			}{
				{obs.OutcomeShed, report.Shed},
				{obs.OutcomePartial, report.Partial},
				{obs.OutcomeDeadline, report.DeadlineQueued},
			} {
				if byOutcome[c.outcome] < c.want {
					checkErrs = append(checkErrs, fmt.Sprintf(
						"slowlog: %d %s exemplars for %d %s responses", byOutcome[c.outcome], c.outcome, c.want, c.outcome))
				}
			}
		}
	}

	if len(checkErrs) > 0 {
		n := len(checkErrs)
		if n > 5 {
			checkErrs = checkErrs[:5]
		}
		return report, fmt.Errorf("selfcheck: %d violation(s):\n%s", n, strings.Join(checkErrs, "\n"))
	}
	return report, nil
}

// burstResult is the outcome of one overload burst.
type burstResult struct{ queries, oks, sheds int }

// overloadBurst fires a simultaneous burst of heavy queries at ≥2× the
// gate's capacity and requires at least one 429 (every response still
// arriving — no hung connections). Scheduling can in principle serialize
// a burst, so it retries a few times before calling the absence of
// sheds a failure.
func overloadBurst(ctx context.Context, client *http.Client, baseURL string, e core.Searcher) (burstResult, error) {
	gate := e.Gate()
	if gate == nil {
		return burstResult{}, fmt.Errorf("overload probe: engine has no admission gate; install one with Admit or set SkipOverloadProbe")
	}
	var out burstResult
	for attempt := 0; attempt < 3; attempt++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		// A per-attempt K keeps the burst query out of the result cache,
		// so every attempt pays full evaluation and overlaps for real.
		heavy := QueryRequest{Query: "keyword search", TopK: 10000 - attempt, Workers: 2}
		n := 2*(gate.Limit()+gate.MaxQueue()) + 8 // ≥2× capacity
		statuses := make([]int, n)
		errs := make([]error, n)
		startGun := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				//lint:ignore ctxdrop start-gun barrier: closed unconditionally right after the spawn loop, never blocks past it
				<-startGun
				resp, _, err := postQuery(ctx, client, baseURL, heavy)
				statuses[i], errs[i] = resp.Status, err
			}(i)
		}
		close(startGun)
		wg.Wait()
		for i := 0; i < n; i++ {
			out.queries++
			if errs[i] != nil {
				return out, fmt.Errorf("overload probe: query %d: %w", i, errs[i])
			}
			switch statuses[i] {
			case http.StatusOK:
				out.oks++
			case http.StatusTooManyRequests:
				out.sheds++
			default:
				return out, fmt.Errorf("overload probe: query %d: status %d", i, statuses[i])
			}
		}
		if out.sheds > 0 {
			return out, nil
		}
	}
	return out, fmt.Errorf("overload probe: no 429 across %d queries at ≥2x gate capacity", out.queries)
}

// workloadKey identifies a workload query for the reference map.
func workloadKey(q QueryRequest) string {
	return fmt.Sprintf("%s|%s|%d|%d|%v|%d", q.Query, q.Semantics, q.TopK, q.MaxCNSize, q.Clean, q.Workers)
}
