package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/resilience"
)

// newTestServer builds a warm DBLP engine and an httptest server over
// its handler. The injector (when non-nil) is carried into every
// request's context via BaseContext, the same hook kwsd exposes.
func newTestServer(t *testing.T, in *resilience.Injector, opts Options) (*core.Engine, *httptest.Server) {
	t.Helper()
	e := core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	s := New(e, opts)
	ts := httptest.NewUnstartedServer(s.Handler())
	if in != nil {
		ts.Config.BaseContext = func(net.Listener) context.Context {
			return resilience.WithInjector(context.Background(), in)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)
	return e, ts
}

// post sends one query and decodes the envelope.
func post(t *testing.T, url string, q QueryRequest) (QueryResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer httpResp.Body.Close()
	var resp QueryResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, httpResp
}

func TestQueryMatchesInProcess(t *testing.T) {
	e, ts := newTestServer(t, nil, Options{})
	for _, q := range []QueryRequest{
		{Query: "keyword search"},
		{Query: "keyword search", Workers: 2},
		{Query: "wang search", TopK: 3, Semantics: "cn"},
		{Query: "wang search", Semantics: "banks"},
	} {
		resp, httpResp := post(t, ts.URL, q)
		if httpResp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: status %d (%s)", q, httpResp.StatusCode, resp.Error)
		}
		if resp.Partial {
			t.Fatalf("%+v: unexpected partial", q)
		}
		want, err := reference(e, q)
		if err != nil {
			t.Fatal(err)
		}
		if got := RenderResults(resp.Results); got != want {
			t.Fatalf("%+v: served answer differs from in-process\nserved:\n%s\nwant:\n%s", q, got, want)
		}
		if len(resp.Results) == 0 {
			t.Fatalf("%+v: no results", q)
		}
	}
}

func TestStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, nil, Options{})
	for _, tc := range []struct {
		name   string
		q      QueryRequest
		status int
		code   string
	}{
		{"empty query", QueryRequest{Query: "   "}, http.StatusBadRequest, CodeBadQuery},
		{"unknown semantics", QueryRequest{Query: "a", Semantics: "nope"}, http.StatusBadRequest, CodeBadQuery},
		{"xml semantics on relational data", QueryRequest{Query: "keyword", Semantics: "slca"}, http.StatusBadRequest, CodeBadQuery},
		{"negative deadline", QueryRequest{Query: "a", DeadlineMS: -1}, http.StatusBadRequest, CodeBadQuery},
	} {
		resp, httpResp := post(t, ts.URL, tc.q)
		if httpResp.StatusCode != tc.status || resp.Code != tc.code {
			t.Errorf("%s: status %d code %q, want %d %q (%s)", tc.name, httpResp.StatusCode, resp.Code, tc.status, tc.code, resp.Error)
		}
	}

	// Transport-level failures: wrong method, malformed body, unknown field.
	httpResp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", httpResp.StatusCode)
	}
	for _, body := range []string{"{not json", `{"query": "a", "unknown_field": 1}`} {
		httpResp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, httpResp.Body)
		httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, httpResp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
}

func TestObsEndpointsMounted(t *testing.T) {
	_, ts := newTestServer(t, nil, Options{})
	post(t, ts.URL, QueryRequest{Query: "keyword search"})
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "server.requests") {
			t.Fatalf("/metrics missing serving counters:\n%s", body)
		}
	}
}

// parkQuery fires a query that blocks inside an injected evaluation
// delay and returns once a worker is provably parked there, plus the
// cancel releasing it.
func parkQuery(t *testing.T, ts *httptest.Server, in *resilience.Injector) (cancel func(), done <-chan error) {
	t.Helper()
	req := QueryRequest{Query: "keyword database", TopK: 10000, Workers: 2}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		cancelCtx()
		t.Fatal(err)
	}
	ch := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		ch <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for in.Hits(resilience.StageEval) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if in.Hits(resilience.StageEval) == 0 {
		cancelCtx()
		t.Fatal("query never reached the evaluation stage")
	}
	return cancelCtx, ch
}

// TestOverloadSheds429 pins the load-shedding path: with the engine's
// only slot parked on an injected delay and no queue, a second query is
// shed with 429 + Retry-After, and the envelope carries the typed code.
func TestOverloadSheds429(t *testing.T) {
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: time.Minute})
	e, ts := newTestServer(t, in, Options{})
	e.Admit(1, 0)
	cancel, done := parkQuery(t, ts, in)
	defer func() { cancel(); <-done }()

	resp, httpResp := post(t, ts.URL, QueryRequest{Query: "keyword search"})
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", httpResp.StatusCode, resp.Error)
	}
	if resp.Code != CodeOverloaded {
		t.Errorf("code %q, want %q", resp.Code, CodeOverloaded)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestDeadlineWhileQueued503 pins the queued-deadline path: a query that
// joins the wait queue and dies there returns 503, distinct from both
// 429 (shed instantly) and a 200 partial (deadline mid-evaluation).
func TestDeadlineWhileQueued503(t *testing.T) {
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: time.Minute})
	e, ts := newTestServer(t, in, Options{})
	e.Admit(1, 1)
	cancel, done := parkQuery(t, ts, in)
	defer func() { cancel(); <-done }()

	resp, httpResp := post(t, ts.URL, QueryRequest{Query: "keyword search", DeadlineMS: 50})
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", httpResp.StatusCode, resp.Error)
	}
	if resp.Code != CodeDeadline {
		t.Errorf("code %q, want %q", resp.Code, CodeDeadline)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestDeadlinePartial200 pins the certified-prefix contract on the wire:
// an expiring per-request deadline is a success — 200, "partial": true,
// and the results are a byte-exact prefix of the full answer.
func TestDeadlinePartial200(t *testing.T) {
	e, ts := newTestServer(t, nil, Options{})
	heavy := QueryRequest{Query: "keyword search", TopK: 10000, MaxCNSize: 6, DeadlineMS: 1}
	resp, httpResp := post(t, ts.URL, heavy)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (%s)", httpResp.StatusCode, resp.Error)
	}
	if !resp.Partial {
		t.Fatal("deadline did not produce a partial response")
	}
	full := heavy
	full.DeadlineMS = 0
	want, err := reference(e, full)
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderResults(resp.Results); !strings.HasPrefix(want, got) {
		t.Fatalf("partial answer is not a prefix of the full answer\npartial:\n%s\nfull:\n%s", got, want)
	}
}

func TestBatch(t *testing.T) {
	e, ts := newTestServer(t, nil, Options{})
	batch := BatchRequest{Queries: []QueryRequest{
		{Query: "keyword search"},
		{Query: "bogus", Semantics: "nope"},
		{Query: "wang search", Workers: 2},
	}}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", httpResp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("got %d responses, want 3", len(out.Responses))
	}
	wantStatus := []int{200, 400, 200}
	for i, r := range out.Responses {
		if r.Status != wantStatus[i] {
			t.Errorf("item %d: status %d, want %d (%s)", i, r.Status, wantStatus[i], r.Error)
		}
	}
	for _, i := range []int{0, 2} {
		want, err := reference(e, batch.Queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := RenderResults(out.Responses[i].Results); got != want {
			t.Errorf("item %d differs from in-process answer", i)
		}
	}

	// Fan-out bound: an oversized batch is rejected whole.
	over := BatchRequest{Queries: make([]QueryRequest, 65)}
	for i := range over.Queries {
		over.Queries[i] = QueryRequest{Query: "keyword"}
	}
	body, _ = json.Marshal(over)
	httpResp, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", httpResp.StatusCode)
	}
}

// TestDrainFinishesInFlight pins graceful drain on a Start-based server:
// a request parked mid-evaluation when Drain begins completes with its
// full, correct answer; the drain then refuses new connections and
// returns nil within its deadline.
func TestDrainFinishesInFlight(t *testing.T) {
	e := core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 100 * time.Millisecond, After: 0, Every: 4})
	s := New(e, Options{BaseContext: func() context.Context {
		return resilience.WithInjector(context.Background(), in)
	}})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	url := "http://" + s.Addr()

	q := QueryRequest{Query: "keyword database", TopK: 10000, Workers: 2}
	var resp QueryResponse
	var reqErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(q)
		httpResp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			reqErr = err
			return
		}
		defer httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			reqErr = errors.New("in-flight request status not 200")
			return
		}
		reqErr = json.NewDecoder(httpResp.Body).Decode(&resp)
	}()

	// Wait until the query is provably mid-evaluation, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for in.Hits(resilience.StageEval) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if in.Hits(resilience.StageEval) == 0 {
		t.Fatal("query never reached evaluation")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	wg.Wait()
	if reqErr != nil {
		t.Fatalf("in-flight request failed across drain: %v", reqErr)
	}
	if resp.Partial {
		t.Fatal("in-flight request came back partial; drain must not impose a deadline")
	}
	want, err := reference(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderResults(resp.Results); got != want {
		t.Fatal("in-flight request's drained answer differs from in-process reference")
	}

	// Drained means drained.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("connection accepted after Drain")
	}
}

// TestPlanNamespaceOption: a server constructed with PlanNamespace
// re-namespaces the engine's plan cache before serving, so two servers
// over one shared cache can never exchange compiled plans, and queries
// still succeed under the namespaced keys.
func TestPlanNamespaceOption(t *testing.T) {
	e, ts := newTestServer(t, nil, Options{PlanNamespace: "tenant-a"})
	if got := e.Plans.Namespace(); got != "tenant-a" {
		t.Fatalf("engine plan namespace = %q, want tenant-a", got)
	}
	resp, httpResp := post(t, ts.URL, QueryRequest{Query: "keyword search", Workers: 2})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", httpResp.StatusCode, resp.Error)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results under a plan namespace")
	}
	if e.Plans.Builds() == 0 {
		t.Fatal("namespaced query did not reach the plan cache")
	}
}
