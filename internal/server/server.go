// Package server is the serving layer of the engine: a stdlib-only
// HTTP/JSON front end that puts one warm core.Engine (and its admission
// gate, caches and metrics registry) on the network. It maps POST /query
// bodies onto core.Request — per-request deadlines become context
// deadlines, typed engine errors become status codes (ErrBadQuery → 400,
// ErrOverloaded → 429 with Retry-After, deadline-while-queued → 503,
// partial results → 200 with "partial": true) — batches concurrent
// queries through POST /batch, mounts the observability mux (/metrics,
// /debug/vars, /debug/pprof) beside the query API, and drains gracefully:
// Drain stops accepting, finishes in-flight requests within a bounded
// deadline, then hard-closes whatever remains.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/obs"
)

// statusClientClosedRequest reports a request whose client went away
// before the answer was ready (nginx's 499 convention); nothing useful
// can be written to the dead connection, but the status keeps the
// server's metrics honest.
const statusClientClosedRequest = 499

// Options tunes the server. The zero value is a working configuration.
type Options struct {
	// DefaultWorkers is the worker-pool size applied to requests that do
	// not set "workers" themselves (0 = serial evaluation).
	DefaultWorkers int
	// DefaultDeadline is applied to requests without "deadline_ms"
	// (0 = no deadline).
	DefaultDeadline time.Duration
	// MaxDeadline caps per-request deadlines; longer asks are clamped
	// (0 = uncapped).
	MaxDeadline time.Duration
	// MaxBatch bounds the /batch fan-out (default 64).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// BaseContext, when non-nil, seeds the context of every connection
	// (and so every request). Tests use it to carry a fault injector
	// into the pipeline; production leaves it nil.
	BaseContext func() context.Context
	// PlanNamespace, when non-empty, re-namespaces the engine's
	// candidate-network plan cache (core.Engine.SetPlanNamespace) before
	// serving: daemons that point several tenants' engines at one shared
	// plan cache isolate their compiled plans by giving each server a
	// distinct namespace. The plan.* hit/miss/build metrics remain
	// visible on /metrics either way.
	PlanNamespace string
	// Logger, when non-nil, is the server's structured logger. Every
	// request gets a derived logger carrying the request id (and plan
	// namespace), placed in the request context so the engine's debug
	// and slowlog-capture lines join up with the serving layer's, and
	// one access-log info line is emitted per request.
	Logger *obs.Logger
	// SlowLog, when non-nil, is installed on the engine
	// (core.Engine.SetSlowLog) so every served query is tail-sampled,
	// and its retained exemplars are served at /debug/slowlog.
	SlowLog *obs.SlowLog
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// Server serves one engine over HTTP. Construct with New, bind with
// Start, stop with Drain (graceful) or Close (abortive).
type Server struct {
	engine core.Searcher
	reg    *obs.Registry
	opts   Options
	mux    *http.ServeMux
	logger *obs.Logger

	// Serving-path metrics, registered in the engine's registry.
	requests   *obs.Counter
	batches    *obs.Counter
	inflight   *obs.Gauge
	latency    *obs.Histogram
	latencyWin *obs.WindowedHistogram

	// Request-id generation: a per-process prefix (start time, base36)
	// plus a monotonic counter, so ids are unique across restarts and
	// cheap to mint.
	idPrefix string
	idSeq    atomic.Uint64

	httpSrv  *http.Server
	ln       net.Listener
	done     chan error
	draining atomic.Bool
}

// New builds a server over engine — a single core.Engine or the
// internal/shard coordinator, anything satisfying core.Searcher. The
// engine is shared across all connections — its caches stay warm and
// its admission gate (when installed via Admit) sheds load for every
// client at once.
func New(engine core.Searcher, opts Options) *Server {
	if ns := opts.PlanNamespace; ns != "" {
		engine.SetPlanNamespace(ns)
	}
	if opts.SlowLog != nil {
		engine.SetSlowLog(opts.SlowLog)
	}
	reg := engine.Registry()
	s := &Server{
		engine:     engine,
		reg:        reg,
		opts:       opts.withDefaults(),
		mux:        http.NewServeMux(),
		logger:     opts.Logger,
		requests:   reg.Counter("server.requests"),
		batches:    reg.Counter("server.batches"),
		inflight:   reg.Gauge("server.inflight"),
		latency:    reg.Histogram("server.latency_us"),
		latencyWin: reg.Windowed("server.latency_win_us"),
		idPrefix:   strconv.FormatInt(time.Now().UnixNano(), 36),
	}
	// The server-level SLO mirrors the engine's query SLO but over wall
	// time as the client saw it (decode + admission + evaluation).
	reg.RegisterSLO("server_latency", obs.SLO{
		Series:    "server.latency_win_us",
		Threshold: float64(core.DefaultSLOThreshold.Microseconds()),
		Objective: 0.99,
	})
	s.mux.HandleFunc("/query", s.withObs("/query", s.handleQuery))
	s.mux.HandleFunc("/batch", s.withObs("/batch", s.handleBatch))
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	obsMux := obs.HandlerWith(reg, opts.SlowLog)
	s.mux.Handle("/metrics", obsMux)
	s.mux.Handle("/metrics/prom", obsMux)
	s.mux.Handle("/debug/", obsMux)
	return s
}

// Handler returns the server's mux: the query API plus the mounted
// observability endpoints. Useful under httptest; production callers use
// Start, which owns the listener needed for graceful drain.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in a background goroutine. Bind errors
// surface synchronously; the chosen port is readable from Addr when addr
// ends in ":0". The server's lifetime is not context-scoped: it ends
// via Drain (graceful) or Close (hard), mirroring net/http.Server.
//
//lint:ignore ctx-first server lifetime is managed by Drain/Close, not a context
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	if s.opts.BaseContext != nil {
		s.httpSrv.BaseContext = func(net.Listener) context.Context { return s.opts.BaseContext() }
	}
	s.done = make(chan error, 1)
	go func() { s.done <- s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain gracefully stops a started server: the listener closes
// immediately (new connections are refused, /healthz turns 503 for any
// already-open keep-alive connection), in-flight queries run to
// completion within ctx, and only then does the serve goroutine exit.
// When ctx expires first the remaining requests are hard-closed, so
// Drain always returns within the caller's bound; the ctx error is
// reported in that case.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpSrv.Shutdown(ctx)
	if err != nil {
		_ = s.httpSrv.Close()
	}
	<-s.done
	return err
}

// Close aborts the server without waiting for in-flight requests.
// Prefer Drain.
func (s *Server) Close() error {
	s.draining.Store(true)
	err := s.httpSrv.Close()
	<-s.done
	return err
}

// accessInfo collects per-request facts the handlers learn after the
// middleware has already run (the keywords hash is only known once the
// body is decoded). Batch items record concurrently, hence the mutex.
type accessInfo struct {
	mu     sync.Mutex
	hashes []string
}

func (a *accessInfo) record(hash string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.hashes = append(a.hashes, hash)
	a.mu.Unlock()
}

type accessInfoKey struct{}

func accessInfoFrom(ctx context.Context) *accessInfo {
	ai, _ := ctx.Value(accessInfoKey{}).(*accessInfo)
	return ai
}

// statusRecorder captures the status code and body size a handler wrote,
// for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// newRequestID mints a process-unique request id.
func (s *Server) newRequestID() string {
	return s.idPrefix + "-" + strconv.FormatUint(s.idSeq.Add(1), 10)
}

// withObs wraps a handler with the serving layer's observability
// middleware: it assigns (or adopts, from X-Request-Id) a request id,
// echoes it on the response, derives a per-request logger carrying the
// id and plan namespace into the request context — so engine debug
// lines and slowlog exemplars join up with the access log — and emits
// one structured access-log line per request with the route, status,
// response size, elapsed time and the keywords hash(es) the handler
// recorded while decoding.
func (s *Server) withObs(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = s.newRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		ai := &accessInfo{}
		ctx = context.WithValue(ctx, accessInfoKey{}, ai)
		lg := s.logger
		if lg != nil {
			fields := []obs.Field{obs.F("request_id", id)}
			if ns := s.opts.PlanNamespace; ns != "" {
				fields = append(fields, obs.F("namespace", ns))
			}
			lg = lg.With(fields...)
			ctx = obs.WithLogger(ctx, lg)
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusRecorder{ResponseWriter: w}
		next(sw, r.WithContext(ctx))
		if lg.Enabled(obs.LevelInfo) {
			fields := []obs.Field{
				obs.F("route", route),
				obs.F("method", r.Method),
				obs.F("status", sw.status),
				obs.F("bytes", sw.bytes),
				obs.F("elapsed", time.Since(start)),
			}
			ai.mu.Lock()
			switch len(ai.hashes) {
			case 0:
			case 1:
				fields = append(fields, obs.F("keywords_hash", ai.hashes[0]))
			default:
				fields = append(fields, obs.F("queries", len(ai.hashes)))
			}
			ai.mu.Unlock()
			lg.Info("request", fields...)
		}
	}
}

// toRequest lowers a wire request onto core.Request, applying the
// server's defaults and deadline cap.
func (s *Server) toRequest(q QueryRequest) (core.Request, error) {
	sem, err := core.ParseSemantics(q.Semantics)
	if err != nil {
		return core.Request{}, err
	}
	if q.DeadlineMS < 0 {
		return core.Request{}, fmt.Errorf("server: negative deadline_ms %d: %w", q.DeadlineMS, core.ErrBadQuery)
	}
	deadline := time.Duration(q.DeadlineMS) * time.Millisecond
	if deadline == 0 {
		deadline = s.opts.DefaultDeadline
	}
	if s.opts.MaxDeadline > 0 && (deadline == 0 || deadline > s.opts.MaxDeadline) {
		deadline = s.opts.MaxDeadline
	}
	workers := q.Workers
	if workers == 0 {
		workers = s.opts.DefaultWorkers
	}
	return core.Request{
		Query:     q.Query,
		Semantics: sem,
		TopK:      q.TopK,
		MaxCNSize: q.MaxCNSize,
		Clean:     q.Clean,
		Deadline:  deadline,
		Workers:   workers,
		Trace:     q.Trace,
	}, nil
}

// execute runs one wire query under ctx and produces its wire response
// with the status already mapped. It is the single evaluation path both
// /query and each /batch item go through.
func (s *Server) execute(ctx context.Context, q QueryRequest) QueryResponse {
	req, err := s.toRequest(q)
	if err != nil {
		return errorResponse(q.Query, err)
	}
	kwHash := obs.KeywordsHash(q.Query)
	accessInfoFrom(ctx).record(kwHash)
	if lg := obs.FromContext(ctx); lg != nil {
		// The per-query logger adds the fields only this layer knows:
		// the keywords hash (join key into traces and the slowlog) and
		// the effective deadline after defaulting and clamping.
		fields := []obs.Field{obs.F("keywords_hash", kwHash)}
		if req.Deadline > 0 {
			fields = append(fields, obs.F("deadline", req.Deadline))
		}
		ctx = obs.WithLogger(ctx, lg.With(fields...))
	}
	resp, err := s.engine.Query(ctx, req)
	if err != nil {
		return errorResponse(q.Query, err)
	}
	out := QueryResponse{
		Query:   q.Query,
		Status:  http.StatusOK,
		Partial: resp.Partial,
		Results: toWireResults(resp.Results),
	}
	if q.Stats {
		st := resp.Stats
		out.Stats = &st
	}
	if q.Trace {
		out.Trace = resp.Trace
	}
	return out
}

// errorResponse maps a typed engine error onto the wire: the status code
// clients branch on plus the machine-readable cause.
func errorResponse(query string, err error) QueryResponse {
	resp := QueryResponse{Query: query, Error: err.Error()}
	switch {
	case errors.Is(err, core.ErrBadQuery):
		resp.Status, resp.Code = http.StatusBadRequest, CodeBadQuery
	case errors.Is(err, core.ErrOverloaded):
		resp.Status, resp.Code = http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, core.ErrDeadlineExceeded):
		// The deadline lapsed while the query was still queued for
		// admission: nothing ran, so unlike a mid-evaluation expiry there
		// is no partial answer to certify — retry against a less loaded
		// server.
		resp.Status, resp.Code = http.StatusServiceUnavailable, CodeDeadline
	case errors.Is(err, context.Canceled):
		resp.Status, resp.Code = statusClientClosedRequest, CodeInternal
	default:
		resp.Status, resp.Code = http.StatusInternalServerError, CodeInternal
	}
	return resp
}

// handleQuery is POST /query: one JSON query in, one JSON response out.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var q QueryRequest
	if !s.decodeBody(w, r, &q) {
		return
	}
	// Every query runs under a context derived from the request's: a
	// client that disconnects cancels its query, and the wire deadline
	// (applied inside Engine.Query via core.Request.Deadline) composes
	// with it — the earlier one wins.
	resp := s.execute(r.Context(), q)
	s.writeResponse(w, resp)
	s.observeLatency(time.Since(start))
}

// handleBatch is POST /batch: up to MaxBatch queries fanned out
// concurrently, each passing individually through admission control, so
// one oversized batch cannot monopolize the engine — the gate sheds its
// excess exactly as it would shed independent clients.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.batches.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var batch BatchRequest
	if !s.decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(batch.Queries) > s.opts.MaxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(batch.Queries), s.opts.MaxBatch))
		return
	}
	s.requests.Add(uint64(len(batch.Queries)))
	out := BatchResponse{Responses: make([]QueryResponse, len(batch.Queries))}
	parentID := obs.RequestIDFrom(r.Context())
	var wg sync.WaitGroup
	for i, q := range batch.Queries {
		wg.Add(1)
		go func(i int, q QueryRequest) {
			defer wg.Done()
			// Each batch item gets its own correlation id, "<batch-id>#<i>",
			// threaded through the request context and a fresh per-item
			// logger: engine debug lines and slowlog exemplars then name the
			// item, not just the batch. The logger derives from the server's
			// base logger rather than the context's — obs.Logger.With
			// appends fields without dedup, so deriving from the in-context
			// logger would emit both the batch id and the item id under the
			// same key.
			ctx := r.Context()
			subID := parentID + "#" + strconv.Itoa(i)
			ctx = obs.WithRequestID(ctx, subID)
			if s.logger != nil {
				fields := []obs.Field{obs.F("request_id", subID)}
				if ns := s.opts.PlanNamespace; ns != "" {
					fields = append(fields, obs.F("namespace", ns))
				}
				ctx = obs.WithLogger(ctx, s.logger.With(fields...))
			}
			out.Responses[i] = s.execute(ctx, q)
		}(i, q)
	}
	wg.Wait()
	s.writeJSON(w, http.StatusOK, out)
	s.observeLatency(time.Since(start))
}

// observeLatency records one request's wall time in both the cumulative
// histogram and the rolling windowed series behind the server SLO.
func (s *Server) observeLatency(d time.Duration) {
	us := float64(d.Microseconds())
	s.latency.Observe(us)
	s.latencyWin.Observe(us)
}

// handleHealth is GET /healthz: 200 while serving, 503 once draining
// (load balancers watching it stop routing before the listener closes).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady is GET /readyz: the readiness probe load balancers gate
// traffic on. It flips 503 the instant Drain begins — same trigger as
// /healthz, kept as a separate endpoint so liveness and readiness can
// diverge (a future warming phase would hold /readyz at 503 while
// /healthz already reports the process alive).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// decodeBody strictly decodes a bounded JSON body into v, writing the
// 400 itself (and reporting false) on malformed input.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// writeResponse emits a mapped QueryResponse, attaching the retry hint
// load-shedding clients act on.
func (s *Server) writeResponse(w http.ResponseWriter, resp QueryResponse) {
	if resp.Status == http.StatusTooManyRequests || resp.Status == http.StatusServiceUnavailable {
		// Shed now, welcome shortly: the gate sheds on instantaneous
		// queue overflow, not sustained overload, so a short backoff is
		// the honest hint.
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, resp.Status, resp)
}

// writeError emits a bare error envelope for transport-level failures
// (bad body, wrong method) that never reached the engine.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	code := CodeInternal
	if status == http.StatusBadRequest {
		code = CodeBadQuery
	}
	s.writeJSON(w, status, QueryResponse{Status: status, Error: msg, Code: code})
}

// writeJSON renders v with the mapped status, counting the outcome class
// in the registry ("server.status.<code>").
func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	s.reg.Counter(fmt.Sprintf("server.status.%d", status)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
