// Package server is the serving layer of the engine: a stdlib-only
// HTTP/JSON front end that puts one warm core.Engine (and its admission
// gate, caches and metrics registry) on the network. It maps POST /query
// bodies onto core.Request — per-request deadlines become context
// deadlines, typed engine errors become status codes (ErrBadQuery → 400,
// ErrOverloaded → 429 with Retry-After, deadline-while-queued → 503,
// partial results → 200 with "partial": true) — batches concurrent
// queries through POST /batch, mounts the observability mux (/metrics,
// /debug/vars, /debug/pprof) beside the query API, and drains gracefully:
// Drain stops accepting, finishes in-flight requests within a bounded
// deadline, then hard-closes whatever remains.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/obs"
)

// statusClientClosedRequest reports a request whose client went away
// before the answer was ready (nginx's 499 convention); nothing useful
// can be written to the dead connection, but the status keeps the
// server's metrics honest.
const statusClientClosedRequest = 499

// Options tunes the server. The zero value is a working configuration.
type Options struct {
	// DefaultWorkers is the worker-pool size applied to requests that do
	// not set "workers" themselves (0 = serial evaluation).
	DefaultWorkers int
	// DefaultDeadline is applied to requests without "deadline_ms"
	// (0 = no deadline).
	DefaultDeadline time.Duration
	// MaxDeadline caps per-request deadlines; longer asks are clamped
	// (0 = uncapped).
	MaxDeadline time.Duration
	// MaxBatch bounds the /batch fan-out (default 64).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// BaseContext, when non-nil, seeds the context of every connection
	// (and so every request). Tests use it to carry a fault injector
	// into the pipeline; production leaves it nil.
	BaseContext func() context.Context
	// PlanNamespace, when non-empty, re-namespaces the engine's
	// candidate-network plan cache (core.Engine.SetPlanNamespace) before
	// serving: daemons that point several tenants' engines at one shared
	// plan cache isolate their compiled plans by giving each server a
	// distinct namespace. The plan.* hit/miss/build metrics remain
	// visible on /metrics either way.
	PlanNamespace string
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// Server serves one engine over HTTP. Construct with New, bind with
// Start, stop with Drain (graceful) or Close (abortive).
type Server struct {
	engine *core.Engine
	opts   Options
	mux    *http.ServeMux

	// Serving-path metrics, registered in the engine's registry.
	requests *obs.Counter
	batches  *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram

	httpSrv  *http.Server
	ln       net.Listener
	done     chan error
	draining atomic.Bool
}

// New builds a server over engine. The engine is shared across all
// connections — its caches stay warm and its admission gate (when
// installed via Engine.Admit) sheds load for every client at once.
func New(engine *core.Engine, opts Options) *Server {
	if ns := opts.PlanNamespace; ns != "" {
		engine.SetPlanNamespace(ns)
	}
	s := &Server{
		engine:   engine,
		opts:     opts.withDefaults(),
		mux:      http.NewServeMux(),
		requests: engine.Metrics.Counter("server.requests"),
		batches:  engine.Metrics.Counter("server.batches"),
		inflight: engine.Metrics.Gauge("server.inflight"),
		latency:  engine.Metrics.Histogram("server.latency_us"),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	obsMux := obs.Handler(engine.Metrics)
	s.mux.Handle("/metrics", obsMux)
	s.mux.Handle("/debug/", obsMux)
	return s
}

// Handler returns the server's mux: the query API plus the mounted
// observability endpoints. Useful under httptest; production callers use
// Start, which owns the listener needed for graceful drain.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in a background goroutine. Bind errors
// surface synchronously; the chosen port is readable from Addr when addr
// ends in ":0". The server's lifetime is not context-scoped: it ends
// via Drain (graceful) or Close (hard), mirroring net/http.Server.
//
//lint:ignore ctx-first server lifetime is managed by Drain/Close, not a context
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	if s.opts.BaseContext != nil {
		s.httpSrv.BaseContext = func(net.Listener) context.Context { return s.opts.BaseContext() }
	}
	s.done = make(chan error, 1)
	go func() { s.done <- s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain gracefully stops a started server: the listener closes
// immediately (new connections are refused, /healthz turns 503 for any
// already-open keep-alive connection), in-flight queries run to
// completion within ctx, and only then does the serve goroutine exit.
// When ctx expires first the remaining requests are hard-closed, so
// Drain always returns within the caller's bound; the ctx error is
// reported in that case.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpSrv.Shutdown(ctx)
	if err != nil {
		_ = s.httpSrv.Close()
	}
	<-s.done
	return err
}

// Close aborts the server without waiting for in-flight requests.
// Prefer Drain.
func (s *Server) Close() error {
	s.draining.Store(true)
	err := s.httpSrv.Close()
	<-s.done
	return err
}

// toRequest lowers a wire request onto core.Request, applying the
// server's defaults and deadline cap.
func (s *Server) toRequest(q QueryRequest) (core.Request, error) {
	sem, err := core.ParseSemantics(q.Semantics)
	if err != nil {
		return core.Request{}, err
	}
	if q.DeadlineMS < 0 {
		return core.Request{}, fmt.Errorf("server: negative deadline_ms %d: %w", q.DeadlineMS, core.ErrBadQuery)
	}
	deadline := time.Duration(q.DeadlineMS) * time.Millisecond
	if deadline == 0 {
		deadline = s.opts.DefaultDeadline
	}
	if s.opts.MaxDeadline > 0 && (deadline == 0 || deadline > s.opts.MaxDeadline) {
		deadline = s.opts.MaxDeadline
	}
	workers := q.Workers
	if workers == 0 {
		workers = s.opts.DefaultWorkers
	}
	return core.Request{
		Query:     q.Query,
		Semantics: sem,
		TopK:      q.TopK,
		MaxCNSize: q.MaxCNSize,
		Clean:     q.Clean,
		Deadline:  deadline,
		Workers:   workers,
		Trace:     q.Trace,
	}, nil
}

// execute runs one wire query under ctx and produces its wire response
// with the status already mapped. It is the single evaluation path both
// /query and each /batch item go through.
func (s *Server) execute(ctx context.Context, q QueryRequest) QueryResponse {
	req, err := s.toRequest(q)
	if err != nil {
		return errorResponse(q.Query, err)
	}
	resp, err := s.engine.Query(ctx, req)
	if err != nil {
		return errorResponse(q.Query, err)
	}
	out := QueryResponse{
		Query:   q.Query,
		Status:  http.StatusOK,
		Partial: resp.Partial,
		Results: toWireResults(resp.Results),
	}
	if q.Stats {
		st := resp.Stats
		out.Stats = &st
	}
	if q.Trace {
		out.Trace = resp.Trace
	}
	return out
}

// errorResponse maps a typed engine error onto the wire: the status code
// clients branch on plus the machine-readable cause.
func errorResponse(query string, err error) QueryResponse {
	resp := QueryResponse{Query: query, Error: err.Error()}
	switch {
	case errors.Is(err, core.ErrBadQuery):
		resp.Status, resp.Code = http.StatusBadRequest, CodeBadQuery
	case errors.Is(err, core.ErrOverloaded):
		resp.Status, resp.Code = http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, core.ErrDeadlineExceeded):
		// The deadline lapsed while the query was still queued for
		// admission: nothing ran, so unlike a mid-evaluation expiry there
		// is no partial answer to certify — retry against a less loaded
		// server.
		resp.Status, resp.Code = http.StatusServiceUnavailable, CodeDeadline
	case errors.Is(err, context.Canceled):
		resp.Status, resp.Code = statusClientClosedRequest, CodeInternal
	default:
		resp.Status, resp.Code = http.StatusInternalServerError, CodeInternal
	}
	return resp
}

// handleQuery is POST /query: one JSON query in, one JSON response out.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var q QueryRequest
	if !s.decodeBody(w, r, &q) {
		return
	}
	// Every query runs under a context derived from the request's: a
	// client that disconnects cancels its query, and the wire deadline
	// (applied inside Engine.Query via core.Request.Deadline) composes
	// with it — the earlier one wins.
	resp := s.execute(r.Context(), q)
	s.writeResponse(w, resp)
	s.latency.Observe(float64(time.Since(start).Microseconds()))
}

// handleBatch is POST /batch: up to MaxBatch queries fanned out
// concurrently, each passing individually through admission control, so
// one oversized batch cannot monopolize the engine — the gate sheds its
// excess exactly as it would shed independent clients.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.batches.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var batch BatchRequest
	if !s.decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(batch.Queries) > s.opts.MaxBatch {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(batch.Queries), s.opts.MaxBatch))
		return
	}
	s.requests.Add(uint64(len(batch.Queries)))
	out := BatchResponse{Responses: make([]QueryResponse, len(batch.Queries))}
	var wg sync.WaitGroup
	for i, q := range batch.Queries {
		wg.Add(1)
		go func(i int, q QueryRequest) {
			defer wg.Done()
			out.Responses[i] = s.execute(r.Context(), q)
		}(i, q)
	}
	wg.Wait()
	s.writeJSON(w, http.StatusOK, out)
	s.latency.Observe(float64(time.Since(start).Microseconds()))
}

// handleHealth is GET /healthz: 200 while serving, 503 once draining
// (load balancers watching it stop routing before the listener closes).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// decodeBody strictly decodes a bounded JSON body into v, writing the
// 400 itself (and reporting false) on malformed input.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// writeResponse emits a mapped QueryResponse, attaching the retry hint
// load-shedding clients act on.
func (s *Server) writeResponse(w http.ResponseWriter, resp QueryResponse) {
	if resp.Status == http.StatusTooManyRequests || resp.Status == http.StatusServiceUnavailable {
		// Shed now, welcome shortly: the gate sheds on instantaneous
		// queue overflow, not sustained overload, so a short backoff is
		// the honest hint.
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, resp.Status, resp)
}

// writeError emits a bare error envelope for transport-level failures
// (bad body, wrong method) that never reached the engine.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	code := CodeInternal
	if status == http.StatusBadRequest {
		code = CodeBadQuery
	}
	s.writeJSON(w, status, QueryResponse{Status: status, Error: msg, Code: code})
}

// writeJSON renders v with the mapped status, counting the outcome class
// in the registry ("server.status.<code>").
func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	s.engine.Metrics.Counter(fmt.Sprintf("server.status.%d", status)).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
