package server

// Tests for the serving layer's observability surface: request ids and
// the access log, the per-request logger reaching the engine, the
// Prometheus exposition and slowlog endpoints, readiness during drain,
// and the windowed server-latency SLO.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/dataset"
	"kwsearch/internal/obs"
)

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t, nil, Options{})
	_, httpResp := post(t, ts.URL, QueryRequest{Query: "keyword search"})
	id := httpResp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("response missing X-Request-Id")
	}
	_, httpResp2 := post(t, ts.URL, QueryRequest{Query: "keyword search"})
	if id2 := httpResp2.Header.Get("X-Request-Id"); id2 == "" || id2 == id {
		t.Fatalf("second request id %q not distinct from first %q", id2, id)
	}
}

func TestRequestIDAdoptedFromClient(t *testing.T) {
	_, ts := newTestServer(t, nil, Options{})
	body, _ := json.Marshal(QueryRequest{Query: "keyword search"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "upstream-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "upstream-42" {
		t.Fatalf("X-Request-Id = %q, want the client-supplied upstream-42", got)
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	lg := obs.NewLogger(&buf, obs.LevelInfo)
	_, ts := newTestServer(t, nil, Options{Logger: lg, PlanNamespace: "tenant-obs"})

	_, httpResp := post(t, ts.URL, QueryRequest{Query: "keyword search"})
	id := httpResp.Header.Get("X-Request-Id")
	out := buf.String()
	for _, want := range []string{
		`"msg":"request"`,
		`"request_id":"` + id + `"`,
		`"namespace":"tenant-obs"`,
		`"route":"/query"`,
		`"status":200`,
		`"keywords_hash":"` + obs.KeywordsHash("keyword search") + `"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("access log missing %s:\n%s", want, out)
		}
	}
}

func TestPerRequestLoggerReachesEngine(t *testing.T) {
	// A debug-level server logger must flow through the request context
	// into the engine's "query executed" line, carrying the request id.
	var buf bytes.Buffer
	lg := obs.NewLogger(&buf, obs.LevelDebug)
	_, ts := newTestServer(t, nil, Options{Logger: lg})
	_, httpResp := post(t, ts.URL, QueryRequest{Query: "keyword search"})
	id := httpResp.Header.Get("X-Request-Id")
	out := buf.String()
	if !strings.Contains(out, `"msg":"query executed"`) {
		t.Fatalf("engine debug line missing:\n%s", out)
	}
	// Every engine line derived from the request logger carries the id.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, `"msg":"query executed"`) && !strings.Contains(line, `"request_id":"`+id+`"`) {
			t.Errorf("engine line lost the request id:\n%s", line)
		}
	}
}

// promCommentRe / promSampleRe are the exposition-format line shapes: a
// line is a # HELP/# TYPE comment or a sample
// `name{label="v",...} value`.
var (
	promCommentRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	promSampleRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$`)
)

func TestMetricsPromServedAndGrammatical(t *testing.T) {
	_, ts := newTestServer(t, nil, Options{})
	post(t, ts.URL, QueryRequest{Query: "keyword search"})

	resp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/prom: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not the 0.0.4 text exposition", ct)
	}
	text := string(body)
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promCommentRe.MatchString(line) {
				t.Errorf("line %d: malformed comment %q", i+1, line)
			}
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Errorf("line %d: malformed sample %q", i+1, line)
		}
	}
	for _, want := range []string{
		"kwsearch_server_requests_total ",
		`kwsearch_server_latency_win_us{window="1m",quantile="0.5"}`,
		`kwsearch_slo_burn_rate{slo="server_latency",window="1m"}`,
		`kwsearch_slo_burn_rate{slo="query_latency",window="5m"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSlowLogEndToEnd(t *testing.T) {
	sl := obs.NewSlowLog(8, time.Nanosecond) // every query is "slow"
	e, ts := newTestServer(t, nil, Options{SlowLog: sl})
	if e.SlowLog() != sl {
		t.Fatal("Options.SlowLog not installed on the engine")
	}
	_, httpResp := post(t, ts.URL, QueryRequest{Query: "keyword search"})
	id := httpResp.Header.Get("X-Request-Id")

	entries := sl.Entries()
	if len(entries) == 0 {
		t.Fatal("served query left no exemplar")
	}
	if entries[0].RequestID != id {
		t.Errorf("exemplar request id = %q, want %q", entries[0].RequestID, id)
	}
	if entries[0].Outcome != obs.OutcomeSlow {
		t.Errorf("outcome = %q, want slow", entries[0].Outcome)
	}

	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slowlog: status %d", resp.StatusCode)
	}
	var page struct {
		Cap     int `json:"cap"`
		Entries []struct {
			RequestID    string          `json:"request_id"`
			Outcome      string          `json:"outcome"`
			KeywordsHash string          `json:"keywords_hash"`
			Trace        json.RawMessage `json:"trace"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("decode /debug/slowlog: %v", err)
	}
	if page.Cap != 8 || len(page.Entries) == 0 {
		t.Fatalf("page = %+v", page)
	}
	en := page.Entries[0]
	if en.RequestID != id || en.KeywordsHash != obs.KeywordsHash("keyword search") {
		t.Errorf("endpoint entry = %+v", en)
	}
	if len(en.Trace) == 0 || string(en.Trace) == "null" {
		t.Error("endpoint entry lost the span tree")
	}
}

func TestSlowLogCapAndThresholdUnderLoad(t *testing.T) {
	// Cap: a tiny ring under concurrent captures keeps exactly the cap
	// newest entries while counting every capture.
	sl := obs.NewSlowLog(4, time.Nanosecond)
	_, ts := newTestServer(t, nil, Options{SlowLog: sl})
	const clients, perClient = 8, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body, _ := json.Marshal(QueryRequest{Query: fmt.Sprintf("keyword search %d", c)})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()
	if sl.Len() != 4 {
		t.Errorf("ring holds %d entries, want cap 4", sl.Len())
	}
	if got := sl.Captured(); got != clients*perClient {
		t.Errorf("captured %d, want %d", got, clients*perClient)
	}
	entries := sl.Entries()
	for i, en := range entries {
		if i > 0 && entries[i-1].Seq <= en.Seq {
			t.Errorf("entries not newest-first: %d then %d", entries[i-1].Seq, en.Seq)
		}
		if en.Trace == nil || en.Trace.WellFormed(time.Minute) != nil {
			t.Errorf("entry %d trace missing or malformed", en.Seq)
		}
	}

	// Threshold: a log that considers nothing slow captures nothing on
	// the same healthy traffic.
	quiet := obs.NewSlowLog(4, time.Hour)
	_, ts2 := newTestServer(t, nil, Options{SlowLog: quiet})
	post(t, ts2.URL, QueryRequest{Query: "keyword search"})
	if quiet.Len() != 0 {
		t.Errorf("healthy query captured below threshold: %+v", quiet.Entries())
	}
}

// TestHealthReadyFlipOnDrain pins the probe endpoints around drain:
// both answer 200 while serving and 503 + Retry-After the instant the
// draining flag is set — which is Drain's first action, before the
// listener closes, so balancers watching either probe stop routing
// first. (The full Start→Drain lifecycle is covered by
// TestDrainFinishesInFlight.)
func TestHealthReadyFlipOnDrain(t *testing.T) {
	e := core.NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	s := New(e, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s while serving: status %d", path, resp.StatusCode)
		}
	}

	s.draining.Store(true)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s while draining: missing Retry-After", path)
		}
	}
}

func TestServerLatencySLORegistered(t *testing.T) {
	e, ts := newTestServer(t, nil, Options{})
	post(t, ts.URL, QueryRequest{Query: "keyword search"})
	s := e.Metrics.Snapshot()
	win, ok := s.Windows["server.latency_win_us"]
	if !ok || win.Last1m.Count == 0 {
		t.Fatalf("windowed server latency missing or empty: %+v", win)
	}
	slo, ok := s.SLOs["server_latency"]
	if !ok {
		t.Fatal("server_latency SLO missing from snapshot")
	}
	if slo.Threshold != float64(core.DefaultSLOThreshold.Microseconds()) || slo.Objective != 0.99 {
		t.Errorf("SLO = %+v", slo)
	}
}
