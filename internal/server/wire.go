package server

// This file is the wire schema of the serving layer: the JSON bodies of
// POST /query and POST /batch, the typed error codes clients branch on,
// and the canonical result rendering the selfcheck uses to prove served
// answers byte-identical to in-process ones.

import (
	"fmt"
	"math"
	"strings"

	"kwsearch/internal/core"
)

// QueryRequest is the POST /query body. Every field except Query is
// optional; zero values take the engine defaults, exactly as a zero
// core.Request does.
type QueryRequest struct {
	// Query is the raw keyword query (required).
	Query string `json:"query"`
	// Semantics selects the result definition by name: auto (default),
	// cn, spark, banks, steiner, slca, elca.
	Semantics string `json:"semantics,omitempty"`
	// TopK bounds the result count (default 10).
	TopK int `json:"k,omitempty"`
	// MaxCNSize bounds candidate-network size (default 5).
	MaxCNSize int `json:"max_cn_size,omitempty"`
	// Clean runs noisy-channel query cleaning before searching.
	Clean bool `json:"clean,omitempty"`
	// Workers sets the worker-pool size for cn/slca evaluation.
	Workers int `json:"workers,omitempty"`
	// DeadlineMS is the per-request time budget in milliseconds (0 =
	// server default). An expiring deadline yields a 200 response with
	// "partial": true and the certified prefix computed so far.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace echoes the query's span tree in the response.
	Trace bool `json:"trace,omitempty"`
	// Stats echoes the engine-level stats block in the response.
	Stats bool `json:"stats,omitempty"`
}

// Result is one ranked answer on the wire.
type Result struct {
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
	Text  string  `json:"text"`
}

// QueryResponse is the POST /query (and per-item /batch) response body.
// On success Results/Partial are set; on failure Error describes the
// problem and Code carries the typed cause. Status mirrors the HTTP
// status so /batch items keep their individual outcome.
type QueryResponse struct {
	Query   string      `json:"query"`
	Status  int         `json:"status"`
	Partial bool        `json:"partial,omitempty"`
	Results []Result    `json:"results,omitempty"`
	Stats   *core.Stats `json:"stats,omitempty"`
	Trace   *core.Trace `json:"trace,omitempty"`
	Error   string      `json:"error,omitempty"`
	Code    string      `json:"code,omitempty"`
}

// BatchRequest is the POST /batch body: up to Options.MaxBatch queries
// executed concurrently, each individually subject to admission control.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchResponse is the POST /batch response: one QueryResponse per input
// query, in input order.
type BatchResponse struct {
	Responses []QueryResponse `json:"responses"`
}

// Typed error codes carried in QueryResponse.Code.
const (
	// CodeBadQuery: the request cannot execute (empty query, unknown
	// semantics, semantics the dataset lacks). HTTP 400.
	CodeBadQuery = "bad_query"
	// CodeOverloaded: admission control shed the query; retry later.
	// HTTP 429 with Retry-After.
	CodeOverloaded = "overloaded"
	// CodeDeadline: the deadline expired while the query was still
	// queued for admission — nothing ran. HTTP 503 with Retry-After.
	CodeDeadline = "deadline"
	// CodeInternal: any other failure. HTTP 500.
	CodeInternal = "internal"
)

// toWireResults converts engine results to the wire shape.
func toWireResults(rs []core.Result) []Result {
	out := make([]Result, 0, len(rs))
	for i, r := range rs {
		out = append(out, Result{Rank: i + 1, Score: r.Score, Text: r.String()})
	}
	return out
}

// RenderResults serializes wire results canonically — rank, raw score
// bits, rendered text — so two answers (one served over HTTP, one from
// an in-process Engine.Query) can be compared byte for byte, and a
// partial answer can be checked as an exact prefix of the full one.
// JSON round-trips float64 exactly (shortest-representation encoding),
// so the score bits survive the wire.
func RenderResults(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%d %016x %s\n", r.Rank, math.Float64bits(r.Score), r.Text)
	}
	return b.String()
}
