package snippet

import (
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/xmltree"
)

func icdeTree() *xmltree.Tree {
	// The slide-148 result: an ICDE conf with papers.
	b := xmltree.NewBuilder("conf")
	r := b.Root()
	b.Child(r, "name", "ICDE")
	b.Child(r, "year", "2010")
	p1 := b.Child(r, "paper", "")
	b.Child(p1, "title", "data query processing")
	a := b.Child(p1, "author", "")
	b.Child(a, "country", "USA")
	p2 := b.Child(r, "paper", "")
	b.Child(p2, "title", "cloud search")
	return b.Freeze()
}

func TestGenerateContainsKeywordWitnesses(t *testing.T) {
	tr := icdeTree()
	items := Generate(tr.Root, []string{"icde", "query"}, 4)
	if len(items) == 0 || len(items) > 4 {
		t.Fatalf("items = %v", items)
	}
	if !Covers(items, []string{"icde", "query"}) {
		t.Fatalf("snippet does not cover the query: %+v", items)
	}
	// Keyword items are flagged.
	kwCount := 0
	for _, it := range items {
		if it.Keyword {
			kwCount++
		}
	}
	if kwCount < 2 {
		t.Errorf("want 2 keyword witnesses, got %d: %+v", kwCount, items)
	}
}

func TestGenerateBudget(t *testing.T) {
	tr := icdeTree()
	items := Generate(tr.Root, []string{"icde"}, 2)
	if len(items) > 2 {
		t.Fatalf("budget exceeded: %v", items)
	}
	// Default budget when maxItems <= 0.
	items = Generate(tr.Root, []string{"icde"}, 0)
	if len(items) == 0 || len(items) > 4 {
		t.Fatalf("default budget items = %v", items)
	}
}

func TestGenerateIncludesIdentifierAndDominantFeatures(t *testing.T) {
	tr := icdeTree()
	items := Generate(tr.Root, []string{"cloud"}, 4)
	// The first valued leaf (conf name) identifies the entity.
	foundName := false
	foundTitle := false
	for _, it := range items {
		if it.Label == "name" {
			foundName = true
		}
		if it.Label == "title" {
			foundTitle = true
		}
	}
	if !foundName {
		t.Errorf("snippet misses the identifying attribute: %+v", items)
	}
	// title appears twice in the subtree — a dominant feature.
	if !foundTitle {
		t.Errorf("snippet misses the dominant feature: %+v", items)
	}
}

func TestGenerateLabelKeyword(t *testing.T) {
	// A keyword matching a label (not a value) is still witnessed.
	tr := icdeTree()
	items := Generate(tr.Root, []string{"country"}, 3)
	if !Covers(items, []string{"country"}) {
		t.Fatalf("label keyword not covered: %+v", items)
	}
}

func TestGenerateOnAuctions(t *testing.T) {
	tr := dataset.AuctionsXML()
	auction := tr.NodesByLabel("closed_auction")[0]
	items := Generate(auction, []string{"tom"}, 3)
	if !Covers(items, []string{"tom"}) {
		t.Fatalf("auction snippet misses tom: %+v", items)
	}
	for _, it := range items {
		if it.Path == "" || it.Label == "" {
			t.Errorf("incomplete item %+v", it)
		}
	}
}

func TestCoversNegative(t *testing.T) {
	items := []Item{{Label: "title", Value: "cloud search"}}
	if Covers(items, []string{"xml"}) {
		t.Errorf("Covers must fail for missing terms")
	}
	if !Covers(items, nil) {
		t.Errorf("empty query is trivially covered")
	}
}
