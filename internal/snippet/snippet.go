// Package snippet generates query-biased snippets for XML results (Huang
// et al. SIGMOD'08, slide 148): a self-contained, concise selection of
// (path, value) items that shows the keyword matches, identifies the
// result entity, and surfaces its dominant features under a size budget.
// The exact selection problem is NP-hard; this is the paper's greedy
// prioritization.
package snippet

import (
	"sort"

	"kwsearch/internal/text"
	"kwsearch/internal/xmltree"
)

// Item is one snippet line.
type Item struct {
	// Path is the label path of the node relative to the document root.
	Path  string
	Label string
	Value string
	// Keyword is set when the item was chosen because it matches a query
	// term.
	Keyword bool
}

// Generate builds a snippet for the result subtree rooted at result with
// at most maxItems items. Priorities: (1) one witness leaf per query
// keyword, (2) the result's identifying attribute (its first valued leaf,
// standing in for the entity key), (3) dominant features — the most
// frequent leaf labels in the subtree.
func Generate(result *xmltree.Node, terms []string, maxItems int) []Item {
	if maxItems <= 0 {
		maxItems = 4
	}
	norm := map[string]bool{}
	for _, t := range terms {
		if s := text.Normalize(t); s != "" {
			norm[s] = true
		}
	}

	var leaves []*xmltree.Node
	for _, n := range xmltree.Subtree(result) {
		if n.IsLeaf() && n.Value != "" {
			leaves = append(leaves, n)
		}
	}

	used := map[xmltree.NodeID]bool{}
	var out []Item
	add := func(n *xmltree.Node, kw bool) {
		if used[n.ID] || len(out) >= maxItems {
			return
		}
		used[n.ID] = true
		out = append(out, Item{Path: n.LabelPath(), Label: n.Label, Value: n.Value, Keyword: kw})
	}

	// 1. One witness per keyword, in query order.
	for _, t := range terms {
		term := text.Normalize(t)
		if term == "" {
			continue
		}
		for _, n := range leaves {
			if used[n.ID] {
				continue
			}
			if text.Contains(n.Value, term) || text.Normalize(n.Label) == term {
				add(n, true)
				break
			}
		}
	}
	// 2. The identifying attribute: first valued leaf of the subtree.
	if len(leaves) > 0 {
		add(leaves[0], false)
	}
	// 3. Dominant features: leaf labels by descending frequency.
	freq := map[string]int{}
	for _, n := range leaves {
		freq[n.Label]++
	}
	type lf struct {
		label string
		n     int
	}
	var order []lf
	for l, n := range freq {
		order = append(order, lf{l, n})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].label < order[j].label
	})
	for _, e := range order {
		for _, n := range leaves {
			if n.Label == e.label && !used[n.ID] {
				add(n, false)
				break
			}
		}
		if len(out) >= maxItems {
			break
		}
	}
	return out
}

// Covers reports whether the snippet witnesses every query term — the
// self-containedness check of the paper.
func Covers(items []Item, terms []string) bool {
	for _, t := range terms {
		term := text.Normalize(t)
		if term == "" {
			continue
		}
		found := false
		for _, it := range items {
			if text.Contains(it.Value, term) || text.Normalize(it.Label) == term {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
