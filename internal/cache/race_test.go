package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentGetPutEvict hammers one cache from many goroutines with
// overlapping key ranges so Get, Put, LRU eviction and cross-shard access
// all interleave. Run with -race; the assertions check the counters stay
// coherent (every lookup is either a hit or a miss) and no entry count
// ever exceeds capacity.
func TestConcurrentGetPutEvict(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	const capacity, shards = 128, 8
	c := New[int](capacity, shards)

	const goroutines = 8
	const ops = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				// Deliberately overlapping key space across goroutines.
				key := fmt.Sprintf("key-%d", (g*31+i)%(capacity*2))
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	lookups := uint64(0)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < ops; i++ {
			if i%3 != 0 {
				lookups++
			}
		}
	}
	if st.Hits+st.Misses != lookups {
		t.Fatalf("hits(%d)+misses(%d) != lookups(%d)", st.Hits, st.Misses, lookups)
	}
	if c.Len() > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", c.Len(), capacity)
	}
}

// TestConcurrentInvalidate interleaves generation bumps with reads and
// writes: after the final Invalidate settles, no goroutine may observe a
// value written before it. The weaker live assertion here is coherence —
// Get never returns a value from a generation older than the one current
// when its shard lock was taken — which -race plus the stale counter
// exercise.
func TestConcurrentInvalidate(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c := New[int](64, 4)
	var wg sync.WaitGroup
	const writers = 4
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", i%50)
				c.Put(key, g)
				c.Get(key)
				if i%100 == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()

	c.Invalidate()
	for i := 0; i < 50; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatal("stale entry visible after final Invalidate")
		}
	}
}

// TestConcurrentCounterConsistency is the regression stress for the
// generation-read-under-lock fix: Get and Put now read the generation
// counter after taking the shard lock, so an entry can never be stamped
// with a generation newer than the one a concurrent reader compares
// against (which used to drop fresh entries and misclassify them as
// stale). The test hammers the cache with writers, readers and an
// invalidator, then asserts the counter conservation laws that in-lock
// counting guarantees:
//
//   - every lookup is exactly one hit or one miss;
//   - every stale count is a genuine drop: stale never exceeds misses
//     plus Put-side evictions, and total drops never exceed total Puts
//     (each drop deletes an entry some Put created);
//   - after a final quiescent Invalidate, draining every key increments
//     stale by exactly the number of live entries.
func TestConcurrentCounterConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	const capacity, shards, keys = 256, 8, 128 // no capacity pressure: drops only via staleness
	c := New[int](capacity, shards)

	const workers = 6
	const ops = 4000
	var wg sync.WaitGroup
	var gets, puts, invalidates uint64
	var mu sync.Mutex
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			myGets, myPuts, myInv := uint64(0), uint64(0), uint64(0)
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("key-%d", (g*17+i)%keys)
				switch i % 5 {
				case 0, 1:
					c.Put(key, i)
					myPuts++
				case 4:
					if g == 0 && i%249 == 4 {
						c.Invalidate()
						myInv++
						continue
					}
					c.Get(key)
					myGets++
				default:
					c.Get(key)
					myGets++
				}
			}
			mu.Lock()
			gets += myGets
			puts += myPuts
			invalidates += myInv
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses != gets {
		t.Fatalf("hits(%d)+misses(%d) != lookups(%d)", st.Hits, st.Misses, gets)
	}
	if st.Stale > st.Misses+st.Evictions {
		t.Fatalf("stale(%d) exceeds misses(%d)+evictions(%d): counted drops that were not observed",
			st.Stale, st.Misses, st.Evictions)
	}
	if st.Stale+st.Evictions > puts {
		t.Fatalf("drops stale(%d)+evicted(%d) exceed puts(%d)", st.Stale, st.Evictions, puts)
	}
	if invalidates == 0 {
		t.Fatal("workload never invalidated; stress proves nothing")
	}

	// Quiescent drain: one more Invalidate makes every live entry stale;
	// touching every key must count each exactly once.
	live := uint64(st.Entries)
	c.Invalidate()
	for i := 0; i < keys; i++ {
		c.Get(fmt.Sprintf("key-%d", i))
	}
	after := c.Stats()
	if after.Stale-st.Stale != live {
		t.Fatalf("final drain counted %d stale, want exactly %d live entries",
			after.Stale-st.Stale, live)
	}
	if after.Entries != 0 {
		t.Fatalf("%d entries survived the drain", after.Entries)
	}
}
