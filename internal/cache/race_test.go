package cache

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentGetPutEvict hammers one cache from many goroutines with
// overlapping key ranges so Get, Put, LRU eviction and cross-shard access
// all interleave. Run with -race; the assertions check the counters stay
// coherent (every lookup is either a hit or a miss) and no entry count
// ever exceeds capacity.
func TestConcurrentGetPutEvict(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	const capacity, shards = 128, 8
	c := New[int](capacity, shards)

	const goroutines = 8
	const ops = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				// Deliberately overlapping key space across goroutines.
				key := fmt.Sprintf("key-%d", (g*31+i)%(capacity*2))
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	lookups := uint64(0)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < ops; i++ {
			if i%3 != 0 {
				lookups++
			}
		}
	}
	if st.Hits+st.Misses != lookups {
		t.Fatalf("hits(%d)+misses(%d) != lookups(%d)", st.Hits, st.Misses, lookups)
	}
	if c.Len() > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", c.Len(), capacity)
	}
}

// TestConcurrentInvalidate interleaves generation bumps with reads and
// writes: after the final Invalidate settles, no goroutine may observe a
// value written before it. The weaker live assertion here is coherence —
// Get never returns a value from a generation older than the one current
// when its shard lock was taken — which -race plus the stale counter
// exercise.
func TestConcurrentInvalidate(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	c := New[int](64, 4)
	var wg sync.WaitGroup
	const writers = 4
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", i%50)
				c.Put(key, g)
				c.Get(key)
				if i%100 == 0 {
					c.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()

	c.Invalidate()
	for i := 0; i < 50; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatal("stale entry visible after final Invalidate")
		}
	}
}
