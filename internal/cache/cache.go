// Package cache provides a sharded, generation-aware LRU cache for the
// concurrent query-execution layer (internal/exec): term→posting lookups
// and whole-query result sets are cached across queries, EMBANKS-style
// (Gupta & Sudarshan: keyword-search engines become practical only when
// repeated sub-computations are reused).
//
// The cache is lock-striped: keys hash to one of N shards (N rounded up
// to a power of two), each with its own mutex, map and intrusive LRU
// list, so concurrent readers on different shards never contend. It is
// generation-aware: Invalidate bumps a global generation counter and
// entries stamped with an older generation are treated as misses and
// lazily dropped on access — an O(1) "flush" suitable for append-only
// indexes that occasionally grow.
package cache

import (
	"sync"
	"sync/atomic"

	"kwsearch/internal/obs"
)

// Stats aggregates the per-shard counters. All counters are cumulative
// over the cache's lifetime; Entries is the current live entry count.
type Stats struct {
	Hits      uint64 // Get found a current-generation entry
	Misses    uint64 // Get found nothing (or only a stale entry)
	Evictions uint64 // entries dropped by LRU capacity pressure
	Stale     uint64 // entries dropped because their generation lapsed
	Entries   int    // live entries across all shards right now
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one node of a shard's intrusive doubly-linked LRU list.
type entry[V any] struct {
	key        string
	val        V
	gen        uint64
	prev, next *entry[V]
}

// shard is one lock stripe: a map plus an LRU list with sentinel head
// (head.next is most recent, head.prev is least recent).
type shard[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*entry[V]
	head     entry[V] // sentinel
}

// Cache is a sharded, generation-aware LRU keyed by string. The zero
// value is not usable; construct with New.
//
// The counters are obs.Counters shared across shards (one atomic add
// per event, no per-shard aggregation pass) so a cache can surface its
// numbers in an engine's metrics registry via Instrument while keeping
// the Stats accessor API.
type Cache[V any] struct {
	shards []*shard[V]
	mask   uint32
	gen    atomic.Uint64

	hits    *obs.Counter
	misses  *obs.Counter
	evicted *obs.Counter
	stale   *obs.Counter
}

// New returns a cache holding up to capacity entries total, striped over
// the given shard count (rounded up to a power of two, minimum 1).
// capacity < shards is raised so every shard holds at least one entry.
func New[V any](capacity, shards int) *Cache[V] {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity < n {
		capacity = n
	}
	perShard := (capacity + n - 1) / n
	c := &Cache[V]{
		shards:  make([]*shard[V], n),
		mask:    uint32(n - 1),
		hits:    &obs.Counter{},
		misses:  &obs.Counter{},
		evicted: &obs.Counter{},
		stale:   &obs.Counter{},
	}
	for i := range c.shards {
		s := &shard[V]{capacity: perShard, entries: make(map[string]*entry[V], perShard)}
		s.head.next = &s.head
		s.head.prev = &s.head
		c.shards[i] = s
	}
	return c
}

// fnv32a hashes key with FNV-1a; it selects the shard.
func fnv32a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return c.shards[fnv32a(key)&c.mask]
}

// unlink removes e from the LRU list.
func unlink[V any](e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// pushFront inserts e as the most recently used entry.
func (s *shard[V]) pushFront(e *entry[V]) {
	e.next = s.head.next
	e.prev = &s.head
	s.head.next.prev = e
	s.head.next = e
}

// Get returns the cached value for key. A stale entry (written before the
// last Invalidate) is dropped and reported as a miss.
//
// The generation is read after the shard lock is taken: entry
// generations are stamped under the same lock and the counter is
// monotone, so the loaded value can never lag an entry's stamp. Loading
// before the lock (as an earlier version did) let a racing Invalidate
// make a just-written current entry look stale — it was then dropped
// and double-counted as stale+miss even though it was fresh.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := c.gen.Load()
	e, ok := s.entries[key]
	if !ok {
		c.misses.Inc()
		var zero V
		return zero, false
	}
	if e.gen != gen {
		unlink(e)
		delete(s.entries, key)
		c.stale.Inc()
		c.misses.Inc()
		var zero V
		return zero, false
	}
	c.hits.Inc()
	unlink(e)
	s.pushFront(e)
	return e.val, true
}

// Put stores key→val at the current generation, evicting the least
// recently used entry of the shard when it is full. As in Get, the
// generation is read under the shard lock so the stale/evicted split of
// the eviction counters is exact.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := c.gen.Load()
	if e, ok := s.entries[key]; ok {
		e.val = val
		e.gen = gen
		unlink(e)
		s.pushFront(e)
		return
	}
	if len(s.entries) >= s.capacity {
		lru := s.head.prev
		if lru != &s.head {
			unlink(lru)
			delete(s.entries, lru.key)
			if lru.gen != gen {
				c.stale.Inc()
			} else {
				c.evicted.Inc()
			}
		}
	}
	e := &entry[V]{key: key, val: val, gen: gen}
	s.entries[key] = e
	s.pushFront(e)
}

// GetOrCompute returns the cached value for key, computing and storing it
// on a miss. compute runs outside the shard lock, so concurrent misses on
// the same key may compute twice (last write wins) — acceptable for the
// idempotent lookups this cache serves.
func (c *Cache[V]) GetOrCompute(key string, compute func() V) V {
	if v, ok := c.Get(key); ok {
		return v
	}
	v := compute()
	c.Put(key, v)
	return v
}

// Invalidate bumps the generation: every existing entry becomes stale and
// will be dropped (and counted) lazily on its next access. O(1).
func (c *Cache[V]) Invalidate() {
	c.gen.Add(1)
}

// Gen returns the current generation counter. Consumers that snapshot
// derived state (e.g. a binder's materialized tuple sets) can compare
// generations to detect an Invalidate between two observations.
func (c *Cache[V]) Gen() uint64 { return c.gen.Load() }

// Len returns the number of live entries, including not-yet-collected
// stale ones.
func (c *Cache[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Shards returns the stripe count (diagnostics).
func (c *Cache[V]) Shards() int { return len(c.shards) }

// Stats reads the counters and the live entry count. The counters are
// lifetime totals regardless of whether Instrument was called.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evicted.Value(),
		Stale:     c.stale.Value(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Instrument surfaces the cache's counters in reg under
// "<prefix>.hits", ".misses", ".evictions" and ".stale", so registry
// snapshots include them without double counting — the counters are
// shared, not copied. Call it once, before concurrent use.
func (c *Cache[V]) Instrument(reg *obs.Registry, prefix string) {
	reg.Attach(prefix+".hits", c.hits)
	reg.Attach(prefix+".misses", c.misses)
	reg.Attach(prefix+".evictions", c.evicted)
	reg.Attach(prefix+".stale", c.stale)
}
