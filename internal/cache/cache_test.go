package cache

import (
	"fmt"
	"testing"
)

func TestGetPutBasics(t *testing.T) {
	c := New[int](8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v", v, ok)
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2, 1) // one shard, capacity 2
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")    // a is now most recent
	c.Put("c", 3) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New[string](16, 4)
	c.Put("k", "v1")
	c.Invalidate()
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale entry served after Invalidate")
	}
	st := c.Stats()
	if st.Stale != 1 {
		t.Fatalf("stale = %d, want 1", st.Stale)
	}
	// The slot is reusable at the new generation.
	c.Put("k", "v2")
	if v, ok := c.Get("k"); !ok || v != "v2" {
		t.Fatalf("post-invalidate Get = %v,%v", v, ok)
	}
}

func TestGenCounter(t *testing.T) {
	c := New[int](16, 4)
	g := c.Gen()
	c.Invalidate()
	c.Invalidate()
	if got := c.Gen(); got != g+2 {
		t.Fatalf("Gen = %d after two invalidations, want %d", got, g+2)
	}
}

func TestCapacitySpreadAcrossShards(t *testing.T) {
	c := New[int](64, 8)
	if c.Shards() != 8 {
		t.Fatalf("shards = %d", c.Shards())
	}
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("cache holds %d entries, capacity 64", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions under capacity pressure")
	}
}

func TestShardCountRounding(t *testing.T) {
	c := New[int](10, 3) // rounds shards to 4
	if c.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", c.Shards())
	}
	c = New[int](0, 0) // degenerate inputs still give a usable cache
	c.Put("x", 1)
	if v, ok := c.Get("x"); !ok || v != 1 {
		t.Fatalf("degenerate cache unusable: %v,%v", v, ok)
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[int](8, 2)
	calls := 0
	f := func() int { calls++; return 42 }
	if v := c.GetOrCompute("k", f); v != 42 {
		t.Fatalf("computed %d", v)
	}
	if v := c.GetOrCompute("k", f); v != 42 {
		t.Fatalf("cached %d", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("zero-stats hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v", got)
	}
}
