// Package refine suggests refined queries by summarizing results (slides
// 75-82): Data-Clouds term ranking over the result set (Koutrika et al.
// EDBT'09), frequent co-occurring terms computed from posting lists alone
// (Tao & Yu EDBT'09), and cluster-based query expansion maximizing
// F-measure per cluster (APX-hard; the greedy of slide 82).
package refine

import (
	"math"
	"sort"

	"kwsearch/internal/invindex"
	"kwsearch/internal/text"
)

// TermScore is one suggested expansion term.
type TermScore struct {
	Term  string
	Score float64
}

func sortTerms(ts []TermScore) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Score != ts[j].Score {
			return ts[i].Score > ts[j].Score
		}
		return ts[i].Term < ts[j].Term
	})
}

// DataCloud ranks the non-query terms occurring in the result documents.
// With weights == nil the ranking is popularity-based (slide 77's "it may
// select very general terms" caveat applies); with per-document weights it
// is relevance-based: score(t) = Σ_docs weight(doc)·tf(t,doc)·idf(t).
func DataCloud(ix *invindex.Index, results []invindex.DocID, queryTerms []string, weights map[invindex.DocID]float64, k int) []TermScore {
	inQuery := map[string]bool{}
	for _, t := range queryTerms {
		inQuery[text.Normalize(t)] = true
	}
	inResult := map[invindex.DocID]float64{}
	for _, d := range results {
		w := 1.0
		if weights != nil {
			w = weights[d]
		}
		inResult[d] = w
	}
	scores := map[string]float64{}
	for _, term := range ix.Terms() {
		if inQuery[term] {
			continue
		}
		s := 0.0
		for _, p := range ix.Postings(term) {
			if w, ok := inResult[p.Doc]; ok {
				s += w * float64(p.TF) * ix.IDF(term)
			}
		}
		if s > 0 {
			scores[term] = s
		}
	}
	out := make([]TermScore, 0, len(scores))
	for t, s := range scores {
		out = append(out, TermScore{Term: t, Score: s})
	}
	sortTerms(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// FrequentCoTerms returns the top-k terms co-occurring with the query,
// computed purely from posting-list intersections — no query results are
// materialized (the efficiency point of slide 78). Terms are ranked by
// co-occurrence document frequency.
func FrequentCoTerms(ix *invindex.Index, queryTerms []string, k int) []TermScore {
	qDocs := ix.Intersect(normalizeAll(queryTerms))
	if len(qDocs) == 0 {
		return nil
	}
	inQ := map[invindex.DocID]bool{}
	for _, d := range qDocs {
		inQ[d] = true
	}
	exclude := map[string]bool{}
	for _, t := range queryTerms {
		exclude[text.Normalize(t)] = true
	}
	var out []TermScore
	for _, term := range ix.Terms() {
		if exclude[term] {
			continue
		}
		n := 0
		for _, p := range ix.Postings(term) {
			if inQ[p.Doc] {
				n++
			}
		}
		if n > 0 {
			out = append(out, TermScore{Term: term, Score: float64(n)})
		}
	}
	sortTerms(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func normalizeAll(terms []string) []string {
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		if n := text.Normalize(t); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Expansion is one per-cluster expanded query with its quality.
type Expansion struct {
	Terms     []string // original query terms plus added terms
	Precision float64
	Recall    float64
	F         float64
}

// ExpandForCluster greedily grows the query with terms that maximize the
// F-measure of retrieving exactly the cluster (slides 81-82): recall =
// |retrieved ∩ cluster| / |cluster|, precision = |retrieved ∩ cluster| /
// |retrieved| under AND semantics. Terms are added while F improves.
func ExpandForCluster(ix *invindex.Index, queryTerms []string, cluster []invindex.DocID, maxAdded int) Expansion {
	base := normalizeAll(queryTerms)
	inCluster := map[invindex.DocID]bool{}
	for _, d := range cluster {
		inCluster[d] = true
	}
	evalF := func(terms []string) (p, r, f float64) {
		docs := ix.Intersect(terms)
		if len(docs) == 0 {
			return 0, 0, 0
		}
		hit := 0
		for _, d := range docs {
			if inCluster[d] {
				hit++
			}
		}
		if hit == 0 {
			return 0, 0, 0
		}
		p = float64(hit) / float64(len(docs))
		r = float64(hit) / float64(len(cluster))
		f = 2 * p * r / (p + r)
		return
	}

	cur := append([]string(nil), base...)
	cp, cr, cf := evalF(cur)
	if maxAdded <= 0 {
		maxAdded = 3
	}
	// Candidate vocabulary: terms appearing in the cluster's documents.
	candSet := map[string]bool{}
	for _, term := range ix.Terms() {
		for _, p := range ix.Postings(term) {
			if inCluster[p.Doc] {
				candSet[term] = true
				break
			}
		}
	}
	for _, t := range cur {
		delete(candSet, t)
	}

	for added := 0; added < maxAdded; added++ {
		bestTerm := ""
		bp, br, bf := cp, cr, cf
		for term := range candSet {
			trial := append(append([]string(nil), cur...), term)
			p, r, f := evalF(trial)
			if f > bf || (f == bf && f > 0 && term < bestTerm && bestTerm != "") {
				bestTerm, bp, br, bf = term, p, r, f
			}
		}
		if bestTerm == "" || bf <= cf {
			break
		}
		cur = append(cur, bestTerm)
		delete(candSet, bestTerm)
		cp, cr, cf = bp, br, bf
	}
	return Expansion{Terms: cur, Precision: cp, Recall: cr, F: cf}
}

// ExpandAllClusters runs ExpandForCluster for every cluster, the slide-81
// workflow ("one expanded query per cluster").
func ExpandAllClusters(ix *invindex.Index, queryTerms []string, clusters [][]invindex.DocID, maxAdded int) []Expansion {
	out := make([]Expansion, len(clusters))
	for i, c := range clusters {
		out[i] = ExpandForCluster(ix, queryTerms, c, maxAdded)
	}
	return out
}

// AvgF is the macro-averaged F-measure of a set of expansions — the
// quality measure E22 reports.
func AvgF(es []Expansion) float64 {
	if len(es) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range es {
		s += e.F
	}
	return s / float64(len(es))
}

// BaselineF computes the F-measure the *original* query achieves against
// each cluster (it retrieves everything, so precision suffers), for the
// E22 comparison.
func BaselineF(ix *invindex.Index, queryTerms []string, clusters [][]invindex.DocID) []float64 {
	base := normalizeAll(queryTerms)
	docs := ix.Intersect(base)
	out := make([]float64, len(clusters))
	for i, cluster := range clusters {
		inCluster := map[invindex.DocID]bool{}
		for _, d := range cluster {
			inCluster[d] = true
		}
		hit := 0
		for _, d := range docs {
			if inCluster[d] {
				hit++
			}
		}
		if hit == 0 || len(docs) == 0 {
			continue
		}
		p := float64(hit) / float64(len(docs))
		r := float64(hit) / float64(len(cluster))
		out[i] = 2 * p * r / (p + r)
	}
	return out
}

// Entropy computes the Shannon entropy (bits) of a distribution given as
// counts — shared by the refinement heuristics and reused in reports.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}
