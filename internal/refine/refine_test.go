package refine

import (
	"math"
	"testing"

	"kwsearch/internal/invindex"
)

// javaIndex builds the slide-81 three-sense "Java" corpus: language,
// island, band.
func javaIndex() (*invindex.Index, [][]invindex.DocID) {
	ix := invindex.New()
	// Cluster 1: programming language.
	ix.Add(0, "java language object oriented software platform sun")
	ix.Add(1, "java applet language developed sun")
	ix.Add(2, "java software platform virtual machine")
	// Cluster 2: island.
	ix.Add(3, "java island indonesia provinces")
	ix.Add(4, "java island volcano indonesia")
	// Cluster 3: band.
	ix.Add(5, "java band formed paris active 1972")
	ix.Add(6, "java band albums paris")
	clusters := [][]invindex.DocID{{0, 1, 2}, {3, 4}, {5, 6}}
	return ix, clusters
}

func TestDataCloudExcludesQueryTermsAndRanks(t *testing.T) {
	ix, _ := javaIndex()
	results := []invindex.DocID{0, 1, 2}
	terms := DataCloud(ix, results, []string{"java"}, nil, 5)
	if len(terms) == 0 {
		t.Fatal("no cloud terms")
	}
	for _, ts := range terms {
		if ts.Term == "java" {
			t.Errorf("query term leaked into the cloud")
		}
	}
	// Terms of the language cluster dominate.
	top := map[string]bool{}
	for _, ts := range terms {
		top[ts.Term] = true
	}
	if !top["language"] && !top["sun"] && !top["platform"] && !top["software"] {
		t.Errorf("expected language-cluster terms in the cloud, got %v", terms)
	}
	// Scores descend.
	for i := 1; i < len(terms); i++ {
		if terms[i].Score > terms[i-1].Score {
			t.Fatalf("cloud not sorted")
		}
	}
}

func TestDataCloudWeighted(t *testing.T) {
	ix, _ := javaIndex()
	results := []invindex.DocID{0, 3}
	// Weighting doc 3 heavily pulls island terms up.
	w := map[invindex.DocID]float64{0: 0.1, 3: 10}
	terms := DataCloud(ix, results, []string{"java"}, w, 3)
	if len(terms) == 0 {
		t.Fatal("no terms")
	}
	foundIsland := false
	for _, ts := range terms {
		if ts.Term == "island" || ts.Term == "indonesia" || ts.Term == "provinces" {
			foundIsland = true
		}
	}
	if !foundIsland {
		t.Errorf("weighted cloud = %v, want island terms on top", terms)
	}
}

func TestFrequentCoTerms(t *testing.T) {
	ix, _ := javaIndex()
	got := FrequentCoTerms(ix, []string{"java"}, 4)
	if len(got) != 4 {
		t.Fatalf("co-terms = %v", got)
	}
	// "island", "band", "language", "paris", "sun", "indonesia" all have
	// df 2 among java docs; the top scores must be 2.
	if got[0].Score != 2 {
		t.Errorf("top co-term score = %v, want 2", got[0].Score)
	}
	if got := FrequentCoTerms(ix, []string{"nosuch"}, 3); got != nil {
		t.Errorf("no-match query co-terms = %v", got)
	}
}

// TestSlide81Expansion reproduces E22: per-cluster expanded queries reach
// much higher F than the ambiguous original.
func TestSlide81Expansion(t *testing.T) {
	ix, clusters := javaIndex()
	exps := ExpandAllClusters(ix, []string{"java"}, clusters, 2)
	if len(exps) != 3 {
		t.Fatalf("expansions = %d", len(exps))
	}
	base := BaselineF(ix, []string{"java"}, clusters)
	for i, e := range exps {
		if e.F < base[i] {
			t.Errorf("cluster %d: expansion F %.3f below baseline %.3f", i, e.F, base[i])
		}
		if len(e.Terms) < 2 {
			t.Errorf("cluster %d: no term added: %v", i, e.Terms)
		}
	}
	// The island cluster separates perfectly: "java island" retrieves
	// exactly docs 3,4.
	island := exps[1]
	if math.Abs(island.F-1.0) > 1e-9 {
		t.Errorf("island expansion F = %v, want 1.0 (terms %v)", island.F, island.Terms)
	}
	if AvgF(exps) <= avg(base) {
		t.Errorf("expanded avg F %.3f must beat baseline %.3f", AvgF(exps), avg(base))
	}
}

func avg(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestExpansionRespectsMaxAdded(t *testing.T) {
	ix, clusters := javaIndex()
	e := ExpandForCluster(ix, []string{"java"}, clusters[0], 1)
	if len(e.Terms) > 2 {
		t.Fatalf("maxAdded violated: %v", e.Terms)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("H(1/2,1/2) = %v, want 1", got)
	}
	if got := Entropy([]int{4}); got != 0 {
		t.Errorf("H(1) = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("H(empty) = %v", got)
	}
	if got := Entropy([]int{1, 1, 1, 1}); math.Abs(got-2) > 1e-12 {
		t.Errorf("H(uniform 4) = %v, want 2", got)
	}
}

func TestAvgFEmpty(t *testing.T) {
	if AvgF(nil) != 0 {
		t.Errorf("AvgF(nil) != 0")
	}
}
