package rank

import (
	"math"
	"testing"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/invindex"
)

func corpus() *invindex.Index {
	ix := invindex.New()
	ix.Add(0, "keyword search keyword engines")
	ix.Add(1, "keyword search on databases")
	ix.Add(2, "image processing pipelines")
	return ix
}

func TestCosineScoreOrdersByRelevance(t *testing.T) {
	ix := corpus()
	q := []string{"keyword", "search"}
	s0 := CosineScore(ix, q, 0)
	s1 := CosineScore(ix, q, 1)
	s2 := CosineScore(ix, q, 2)
	if !(s0 > 0 && s1 > 0) {
		t.Fatalf("matching docs must score > 0: %v %v", s0, s1)
	}
	if s2 != 0 {
		t.Errorf("non-matching doc scored %v", s2)
	}
	if s0 > 1+1e-9 || s1 > 1+1e-9 {
		t.Errorf("cosine must stay within [0,1]: %v %v", s0, s1)
	}
}

func TestRankerMatchesDirectCosine(t *testing.T) {
	ix := corpus()
	r := NewRanker(ix)
	q := []string{"keyword", "databases"}
	for d := invindex.DocID(0); d < 3; d++ {
		if math.Abs(r.Cosine(q, d)-CosineScore(ix, q, d)) > 1e-12 {
			t.Fatalf("cached cosine differs for doc %d", d)
		}
	}
	// Cache hit path.
	if math.Abs(r.Cosine(q, 0)-CosineScore(ix, q, 0)) > 1e-12 {
		t.Fatalf("cache corrupted the score")
	}
	if got := r.Cosine(nil, 0); got != 0 {
		t.Errorf("empty query cosine = %v", got)
	}
}

func TestProximityScore(t *testing.T) {
	if ProximityScore(0) != 1 {
		t.Errorf("zero-weight tree must score 1")
	}
	if !(ProximityScore(1) > ProximityScore(5)) {
		t.Errorf("smaller trees must score higher")
	}
	if ProximityScore(-3) != 1 {
		t.Errorf("negative weight clamps to 0")
	}
}

func TestAuthorityFavorsHubs(t *testing.T) {
	// Star graph: the center receives authority from every spoke.
	g := datagraph.New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, datagraph.NodeID(i), 1)
	}
	scores := Authority(g, 0.85, 50)
	for i := 1; i < 5; i++ {
		if scores[0] <= scores[i] {
			t.Fatalf("center %v must outrank spoke %v", scores[0], scores[i])
		}
	}
	// Scores form a distribution.
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("authority sums to %v", sum)
	}
}

func TestAuthorityEdgeWeightsSteerFlow(t *testing.T) {
	// Node 0 links to 1 (weight 3) and 2 (weight 1): node 1 receives more.
	g := datagraph.New(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 1)
	scores := Authority(g, 0.85, 50)
	if scores[1] <= scores[2] {
		t.Fatalf("weighted edge must attract more authority: %v vs %v", scores[1], scores[2])
	}
}

func TestAuthorityUniformOnRing(t *testing.T) {
	g := datagraph.New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(datagraph.NodeID(i), datagraph.NodeID((i+1)%6), 1)
	}
	scores := Authority(g, 0.85, 60)
	for i := 1; i < 6; i++ {
		if math.Abs(scores[i]-scores[0]) > 1e-9 {
			t.Fatalf("ring should be uniform: %v", scores)
		}
	}
}

func TestAuthorityEmptyAndDangling(t *testing.T) {
	if got := Authority(datagraph.New(0), 0.85, 10); got != nil {
		t.Errorf("empty graph = %v", got)
	}
	// Isolated node: dangling mass redistribution keeps the sum at 1.
	g := datagraph.New(3)
	g.AddEdge(0, 1, 1)
	scores := Authority(g, 0.85, 50)
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("authority with dangling node sums to %v", sum)
	}
}
