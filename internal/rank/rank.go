// Package rank provides the result-ranking toolbox of slides 144-145:
// TF·IDF vector-space similarity, proximity-based tree scores, and
// authority flow — a PageRank adaptation for data graphs where different
// edge types carry different weights and authority may flow both ways
// across an edge.
package rank

import (
	"math"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/fmath"
	"kwsearch/internal/invindex"
	"kwsearch/internal/text"
)

// CosineScore is the vector-space model: the cosine between the query
// vector and the document vector under TF·IDF weights (slide 144).
func CosineScore(ix *invindex.Index, query []string, doc invindex.DocID) float64 {
	qw := map[string]float64{}
	for _, raw := range query {
		t := text.Normalize(raw)
		if t == "" {
			continue
		}
		qw[t] += ix.IDF(t)
	}
	dot, qn := 0.0, 0.0
	for t, w := range qw {
		dot += w * ix.TFIDF(t, doc)
		qn += w * w
	}
	if fmath.Zero(dot) {
		return 0
	}
	dn := docNorm(ix, doc)
	if fmath.Zero(dn) || fmath.Zero(qn) {
		return 0
	}
	return dot / (math.Sqrt(qn) * dn)
}

// docNorm computes the Euclidean norm of the document's TF·IDF vector.
// O(vocabulary) per call; the Ranker caches it.
func docNorm(ix *invindex.Index, doc invindex.DocID) float64 {
	s := 0.0
	for _, t := range ix.Terms() {
		w := ix.TFIDF(t, doc)
		s += w * w
	}
	return math.Sqrt(s)
}

// Ranker caches document norms for repeated cosine scoring.
type Ranker struct {
	ix    *invindex.Index
	norms map[invindex.DocID]float64
}

// NewRanker wraps an index.
func NewRanker(ix *invindex.Index) *Ranker {
	return &Ranker{ix: ix, norms: map[invindex.DocID]float64{}}
}

// Cosine scores doc against the query with cached norms.
func (r *Ranker) Cosine(query []string, doc invindex.DocID) float64 {
	qw := map[string]float64{}
	for _, raw := range query {
		t := text.Normalize(raw)
		if t == "" {
			continue
		}
		qw[t] += r.ix.IDF(t)
	}
	dot, qn := 0.0, 0.0
	for t, w := range qw {
		dot += w * r.ix.TFIDF(t, doc)
		qn += w * w
	}
	if fmath.Zero(dot) || fmath.Zero(qn) {
		return 0
	}
	dn, ok := r.norms[doc]
	if !ok {
		dn = docNorm(r.ix, doc)
		r.norms[doc] = dn
	}
	if fmath.Zero(dn) {
		return 0
	}
	return dot / (math.Sqrt(qn) * dn)
}

// ProximityScore converts a result tree's weighted size into a relevance
// boost: 1/(1+totalWeight) — smaller, tighter trees rank higher
// (slide 145's proximity adaptation).
func ProximityScore(totalWeight float64) float64 {
	if totalWeight < 0 {
		totalWeight = 0
	}
	return 1 / (1 + totalWeight)
}

// Authority computes PageRank-style authority over a data graph. Damping
// is the usual random-jump factor (0.85 typical); iters bounds the power
// iteration. Edge weights act as transition preferences: a node spreads
// its score to neighbours proportionally to edge weight (slide 60's
// adaptation, also slide 145's "different edge types treated
// differently" — encode the type preference in the edge weight).
func Authority(g *datagraph.Graph, damping float64, iters int) []float64 {
	n := g.Len()
	if n == 0 {
		return nil
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iters <= 0 {
		iters = 30
	}
	score := make([]float64, n)
	next := make([]float64, n)
	for i := range score {
		score[i] = 1 / float64(n)
	}
	outWeight := make([]float64, n)
	for i := 0; i < n; i++ {
		for _, e := range g.Neighbors(datagraph.NodeID(i)) {
			outWeight[i] += e.Weight
		}
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		// Dangling mass is spread uniformly.
		dangling := 0.0
		for i := 0; i < n; i++ {
			if fmath.Zero(outWeight[i]) {
				dangling += score[i]
				continue
			}
			share := damping * score[i] / outWeight[i]
			for _, e := range g.Neighbors(datagraph.NodeID(i)) {
				next[e.To] += share * e.Weight
			}
		}
		if dangling > 0 {
			spread := damping * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		score, next = next, score
	}
	return score
}
