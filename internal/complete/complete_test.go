package complete

import (
	"testing"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
)

// slide73DB reconstructs the slide-72/73 scenario: papers by srivastava,
// some in SIGMOD venues, plus distractors. Node 12's neighbourhood reaches
// both a "srivasta"-prefixed token and a "sig"-prefixed token; nodes 11
// and 78 reach only the former.
func slide73DB(t *testing.T) (*relstore.DB, *datagraph.Graph) {
	t.Helper()
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "node",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.KindInt},
			{Name: "txt", Type: relstore.KindString, Text: true},
		},
		Key: "id",
	})
	rows := []string{
		"srivastava streams",       // 0: author paper A
		"sigmod 2007",              // 1: venue of paper A's neighbour
		"srivastava joins",         // 2: paper B, no sigmod nearby
		"icde 2009",                // 3: venue of B
		"srivastava mining sigact", // 4: self-contained match
		"unrelated content",        // 5
	}
	for i, txt := range rows {
		db.MustInsert("node", map[string]relstore.Value{
			"id": relstore.Int(int64(i)), "txt": relstore.String(txt),
		})
	}
	g := datagraph.New(len(rows))
	g.AddEdge(0, 1, 1) // srivastava paper adjacent to sigmod venue
	g.AddEdge(2, 3, 1) // srivastava paper adjacent to icde venue
	g.AddEdge(4, 5, 1)
	return db, g
}

func TestSlide73Filtering(t *testing.T) {
	db, g := slide73DB(t)
	c := New(db, g, 1)
	// Three candidates match the srivasta prefix...
	if got := c.CandidateCount([]string{"srivasta", "sig"}); got != 3 {
		t.Fatalf("candidates = %d, want 3", got)
	}
	// ...but only nodes 0 (via venue) and 4 (own token) survive "sig".
	preds := c.Search([]string{"srivasta", "sig"}, 0)
	if len(preds) != 2 {
		t.Fatalf("predictions = %+v, want nodes 0 and 4", preds)
	}
	if preds[0].Doc != 0 || preds[1].Doc != 4 {
		t.Fatalf("prediction docs = %v,%v", preds[0].Doc, preds[1].Doc)
	}
	// Completions witness actual tokens.
	if preds[0].Completions[0] != "srivastava" {
		t.Errorf("completion = %q", preds[0].Completions[0])
	}
	if preds[0].Completions[1] != "sigmod" {
		t.Errorf("completion = %q", preds[0].Completions[1])
	}
	if preds[1].Completions[1] != "sigact" {
		t.Errorf("completion = %q", preds[1].Completions[1])
	}
}

func TestDeltaZeroRequiresSelfContainment(t *testing.T) {
	db, g := slide73DB(t)
	c := New(db, g, 0)
	preds := c.Search([]string{"srivasta", "sig"}, 0)
	if len(preds) != 1 || preds[0].Doc != 4 {
		t.Fatalf("δ=0 predictions = %+v, want only node 4", preds)
	}
	if c.Delta() != 0 {
		t.Errorf("Delta() = %d", c.Delta())
	}
}

func TestSearchLimitsAndMisses(t *testing.T) {
	db, g := slide73DB(t)
	c := New(db, g, 1)
	if got := c.Search([]string{"zzz"}, 5); got != nil {
		t.Errorf("unmatched prefix = %v", got)
	}
	if got := c.Search(nil, 5); got != nil {
		t.Errorf("empty query = %v", got)
	}
	preds := c.Search([]string{"s"}, 1)
	if len(preds) != 1 {
		t.Errorf("k limit not applied: %v", preds)
	}
	if c.CandidateCount([]string{"zzz"}) != 0 {
		t.Errorf("unmatched candidate count should be 0")
	}
}

func TestSingleKeywordPrefix(t *testing.T) {
	db, g := slide73DB(t)
	c := New(db, g, 1)
	preds := c.Search([]string{"icde"}, 0)
	if len(preds) != 1 || preds[0].Doc != 3 {
		t.Fatalf("predictions = %+v", preds)
	}
}

func TestForwardIndexGrowsWithDelta(t *testing.T) {
	db, g := slide73DB(t)
	c0 := New(db, g, 0)
	c1 := New(db, g, 1)
	if len(c0.forward[invindex.DocID(0)]) >= len(c1.forward[invindex.DocID(0)]) {
		t.Errorf("forward index must grow with delta: %d vs %d",
			len(c0.forward[0]), len(c1.forward[0]))
	}
}
