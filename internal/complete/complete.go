// Package complete implements TASTIER-style type-ahead keyword search
// (Li et al. SIGMOD'09, slides 71-73): every query keyword is a prefix;
// a trie maps prefixes to token-rank ranges, candidates come from the
// smallest range, and a δ-step forward index (node → token ranks reachable
// within δ graph steps) filters candidates without touching the graph.
package complete

import (
	"sort"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
	"kwsearch/internal/trie"
)

// Completer answers prefix keyword queries over a tuple graph.
type Completer struct {
	Trie *trie.Trie
	ix   *invindex.Index
	// forward[d] is the sorted set of token ranks reachable from node d
	// within delta steps (including d's own tokens).
	forward map[invindex.DocID][]int
	delta   int
}

// New builds the completer: tokens from the database's inverted index, the
// trie over them, and the δ-step forward index over the data graph.
func New(db *relstore.DB, g *datagraph.Graph, delta int) *Completer {
	ix := invindex.FromDB(db)
	tr := trie.New(ix.Terms())
	c := &Completer{
		Trie:    tr,
		ix:      ix,
		forward: make(map[invindex.DocID][]int),
		delta:   delta,
	}
	// Own tokens per node.
	own := map[invindex.DocID][]int{}
	for _, term := range ix.Terms() {
		rank := tr.Rank(term)
		for _, d := range ix.Docs(term) {
			own[d] = append(own[d], rank)
		}
	}
	for d := range own {
		set := map[int]bool{}
		for _, r := range own[d] {
			set[r] = true
		}
		if g != nil && delta > 0 {
			for n := range g.BFSHops(datagraph.NodeID(d), delta) {
				for _, r := range own[invindex.DocID(n)] {
					set[r] = true
				}
			}
		}
		ranks := make([]int, 0, len(set))
		for r := range set {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		c.forward[d] = ranks
	}
	return c
}

// Delta returns the forward-index radius.
func (c *Completer) Delta() int { return c.delta }

// hasRankInRange reports whether the sorted ranks intersect [lo, hi).
func hasRankInRange(ranks []int, lo, hi int) bool {
	i := sort.SearchInts(ranks, lo)
	return i < len(ranks) && ranks[i] < hi
}

// Prediction is one type-ahead answer: a node whose δ-neighbourhood can
// complete every query prefix.
type Prediction struct {
	Doc invindex.DocID
	// Completions holds, per query prefix, a completed token witnessing
	// the match from the node's neighbourhood.
	Completions []string
}

// Search treats each keyword as a prefix (slide 72: "srivasta, sig") and
// returns up to k candidate nodes: candidates are drawn from the prefix
// with the smallest token range and filtered by checking the remaining
// ranges against the δ-step forward index (slide 73's pruning step).
func (c *Completer) Search(prefixes []string, k int) []Prediction {
	if len(prefixes) == 0 {
		return nil
	}
	type rng struct{ lo, hi int }
	ranges := make([]rng, len(prefixes))
	for i, raw := range prefixes {
		p := text.Normalize(raw)
		lo, hi, ok := c.Trie.PrefixRange(p)
		if !ok {
			return nil
		}
		ranges[i] = rng{lo, hi}
	}
	// Seed with the most selective prefix.
	minIdx := 0
	for i, r := range ranges {
		if r.hi-r.lo < ranges[minIdx].hi-ranges[minIdx].lo {
			minIdx = i
		}
	}
	candSet := map[invindex.DocID]bool{}
	var cands []invindex.DocID
	for rank := ranges[minIdx].lo; rank < ranges[minIdx].hi; rank++ {
		for _, d := range c.ix.Docs(c.Trie.Token(rank)) {
			if !candSet[d] {
				candSet[d] = true
				cands = append(cands, d)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	var out []Prediction
	for _, d := range cands {
		ranks := c.forward[d]
		ok := true
		for i, r := range ranges {
			if i == minIdx {
				continue
			}
			if !hasRankInRange(ranks, r.lo, r.hi) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		p := Prediction{Doc: d, Completions: make([]string, len(prefixes))}
		for i, r := range ranges {
			// Witness: the first reachable rank within the range.
			j := sort.SearchInts(ranks, r.lo)
			if j < len(ranks) && ranks[j] < r.hi {
				p.Completions[i] = c.Trie.Token(ranks[j])
			}
		}
		out = append(out, p)
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out
}

// CandidateCount reports how many candidates the most selective prefix
// yields before forward-index filtering — the slide-73 "Candidates =
// {11, 12, 78}" stage, used by tests and the bench harness.
func (c *Completer) CandidateCount(prefixes []string) int {
	bestLo, bestHi := 0, 0
	found := false
	for _, raw := range prefixes {
		p := text.Normalize(raw)
		lo, hi, ok := c.Trie.PrefixRange(p)
		if !ok {
			return 0
		}
		if !found || hi-lo < bestHi-bestLo {
			bestLo, bestHi = lo, hi
			found = true
		}
	}
	if !found {
		return 0
	}
	seen := map[invindex.DocID]bool{}
	for rank := bestLo; rank < bestHi; rank++ {
		for _, d := range c.ix.Docs(c.Trie.Token(rank)) {
			seen[d] = true
		}
	}
	return len(seen)
}
