package lca

import (
	"sort"

	"kwsearch/internal/obs"
	"kwsearch/internal/xmltree"
)

// ELCAStackTraced is ELCAStack recording its work onto sp (nil disables
// tracing): per-term posting-list sizes and the result count.
func ELCAStackTraced(ix *xmltree.Index, terms []string, sp *obs.Span) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	recordListSizes(sp, lists)
	out := ELCAStack(ix, terms)
	sp.SetAttr("elcas", len(out))
	return out
}

// ELCAStack computes the Exclusive LCAs in one pass over the merged match
// stream with a path stack — the DIL-style semantics of XRank (Guo et al.
// SIGMOD'03): a node is an ELCA if its subtree covers every keyword using
// only witnesses that are not inside an all-keyword descendant.
// O(d·Σ|Sᵢ|) after the merge.
func ELCAStack(ix *xmltree.Index, terms []string) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	if lists == nil {
		return nil
	}
	full := (uint32(1) << uint(len(terms))) - 1

	// Merge matches in document order, collecting each node's keyword mask.
	type match struct {
		node *xmltree.Node
		mask uint32
	}
	maskOf := map[xmltree.NodeID]uint32{}
	var order []xmltree.NodeID
	nodeOf := map[xmltree.NodeID]*xmltree.Node{}
	for i, list := range lists {
		for _, n := range list {
			if _, seen := maskOf[n.ID]; !seen {
				order = append(order, n.ID)
				nodeOf[n.ID] = n
			}
			maskOf[n.ID] |= 1 << uint(i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	matches := make([]match, len(order))
	for i, id := range order {
		matches[i] = match{node: nodeOf[id], mask: maskOf[id]}
	}

	// Path stack: each frame is an ancestor of the current match carrying
	// two masks — total (every keyword anywhere in the subtree) and resid
	// (keywords witnessed outside any all-keyword descendant). A node is
	// an ELCA exactly when its resid mask is full; a child that covers all
	// keywords (total full) contributes nothing to its parent's resid,
	// implementing the exclusion of slide 34's semantics.
	type frame struct {
		node  *xmltree.Node
		total uint32
		resid uint32
	}
	var stack []frame
	var out []*xmltree.Node
	pop := func() {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if top.resid == full {
			out = append(out, top.node)
		}
		if len(stack) > 0 {
			parent := &stack[len(stack)-1]
			parent.total |= top.total
			if top.total != full {
				parent.resid |= top.resid
			}
		}
	}
	for _, m := range matches {
		// Pop frames that are not ancestors of this match.
		for len(stack) > 0 && !stack[len(stack)-1].node.Dewey.IsAncestorOrSelf(m.node.Dewey) {
			pop()
		}
		// Push the path from the current top to the match node.
		var path []*xmltree.Node
		for cur := m.node; cur != nil; cur = cur.Parent {
			if len(stack) > 0 && stack[len(stack)-1].node == cur {
				break
			}
			path = append(path, cur)
		}
		for i := len(path) - 1; i >= 0; i-- {
			stack = append(stack, frame{node: path[i]})
		}
		stack[len(stack)-1].total |= m.mask
		stack[len(stack)-1].resid |= m.mask
	}
	for len(stack) > 0 {
		pop()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ELCA computes Exclusive LCAs by candidate generation and verification,
// the Index-Stack outline (Xu & Papakonstantinou EDBT'08): candidates are
// the anchored SLCAs of the *shortest* list (every true ELCA contains a
// witness whose anchored candidate is exactly that ELCA), verified against
// the exclusivity condition with binary searches —
// O(k·d·|Smin|·log|Smax|)-flavoured work that wins when the rarest keyword
// is selective (the E15 shape).
func ELCA(ix *xmltree.Index, terms []string) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	if lists == nil {
		return nil
	}
	min := 0
	for i, l := range lists {
		if len(l) < len(lists[min]) {
			min = i
		}
	}
	t := ix.Tree()
	seen := map[xmltree.NodeID]bool{}
	var cands []*xmltree.Node
	for _, v := range lists[min] {
		// Every ELCA u has, for each keyword, a witness outside u's
		// all-keyword children; for the shortest list's witness x, the
		// deepest all-covering ancestor of x is exactly u — so anchoring
		// candidates on Smin loses no ELCA.
		d := anchorCandidate(v, lists, min)
		if n := t.ByDewey(d); n != nil && !seen[n.ID] {
			seen[n.ID] = true
			cands = append(cands, n)
		}
	}
	var out []*xmltree.Node
	for _, u := range cands {
		if isELCA(u, lists) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// isELCA verifies the exclusivity condition for u: every keyword must have
// a witness in u's subtree that is not inside a child subtree already
// covering all keywords.
func isELCA(u *xmltree.Node, lists [][]*xmltree.Node) bool {
	// childCovers caches, per child of u, whether it covers all keywords.
	childCovers := map[*xmltree.Node]bool{}
	covers := func(c *xmltree.Node) bool {
		if v, ok := childCovers[c]; ok {
			return v
		}
		all := true
		for _, list := range lists {
			if !hasMatchIn(list, c.Dewey) {
				all = false
				break
			}
		}
		childCovers[c] = all
		return all
	}
	childOf := func(x *xmltree.Node) *xmltree.Node {
		// The child of u on the path to x (nil when x == u).
		if len(x.Dewey) <= len(u.Dewey) {
			return nil
		}
		ord := x.Dewey[len(u.Dewey)]
		if ord < 0 || ord >= len(u.Children) {
			return nil
		}
		return u.Children[ord]
	}
	for _, list := range lists {
		witness := false
		for i := succIndex(list, u.Dewey); i < len(list) && u.Dewey.IsAncestorOrSelf(list[i].Dewey); i++ {
			x := list[i]
			c := childOf(x)
			if c == nil || !covers(c) {
				witness = true
				break
			}
		}
		if !witness {
			return false
		}
	}
	return true
}

// ELCABrute is the first-principles oracle for tests.
func ELCABrute(ix *xmltree.Index, terms []string) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	if lists == nil {
		return nil
	}
	var out []*xmltree.Node
	for _, u := range CommonAncestors(ix, terms) {
		if isELCA(u, lists) {
			out = append(out, u)
		}
	}
	return out
}
