package lca

import (
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/xmltree"
)

// TestSLCAParallelMatchesSerial asserts SLCAParallel returns exactly the
// serial SLCA node set for every worker count, on trees large enough to
// engage the parallel path and small enough to fall back.
func TestSLCAParallelMatchesSerial(t *testing.T) {
	shapes := []map[string]int{
		{"k0": 5, "k1": 200},    // below the fallback threshold
		{"k0": 300, "k1": 2000}, // parallel path engaged
		{"k0": 1000, "k1": 1000},
	}
	for _, counts := range shapes {
		tr := dataset.KeywordTree(4, 5, counts, 3)
		ix := xmltree.NewIndex(tr)
		terms := []string{"k0", "k1"}
		want := SLCA(ix, terms)
		for _, workers := range []int{0, 1, 2, 3, 4, 8, 64} {
			got := SLCAParallel(ix, terms, workers)
			if len(got) != len(want) {
				t.Fatalf("counts=%v workers=%d: %d results, want %d", counts, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("counts=%v workers=%d: result %d = %v, want %v",
						counts, workers, i, got[i].Dewey, want[i].Dewey)
				}
			}
		}
	}
}

// TestSLCAParallelBoundaries pins the boundary-merge behaviour: anchors
// that are split across worker ranges but share one SLCA must still
// collapse to a single result.
func TestSLCAParallelBoundaries(t *testing.T) {
	// One deep subtree holds every k0 anchor; k1 appears once at the root
	// subtree, so all anchors resolve to the same shallow SLCA no matter
	// which range computed them.
	tr := dataset.KeywordTree(3, 6, map[string]int{"k0": 500, "k1": 1}, 9)
	ix := xmltree.NewIndex(tr)
	terms := []string{"k0", "k1"}
	want := SLCA(ix, terms)
	got := SLCAParallel(ix, terms, 7) // worker count that does not divide 500
	if len(got) != len(want) {
		t.Fatalf("boundary merge broke: %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs: %v vs %v", i, got[i].Dewey, want[i].Dewey)
		}
	}
	// No-match terms short-circuit identically.
	if SLCAParallel(ix, []string{"k0", "absent"}, 4) != nil {
		t.Fatal("missing term should yield nil")
	}
}
