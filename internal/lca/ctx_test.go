package lca

import (
	"context"
	"errors"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/resilience"
	"kwsearch/internal/xmltree"
)

// TestSLCAParallelCtxCancelled: a cancelled context stops the range
// workers and yields no nodes — SLCA minimality is global, so there is no
// sound partial answer.
func TestSLCAParallelCtxCancelled(t *testing.T) {
	tr := dataset.KeywordTree(4, 5, map[string]int{"k0": 300, "k1": 2000}, 3)
	ix := xmltree.NewIndex(tr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ns, err := SLCAParallelCtx(ctx, ix, []string{"k0", "k1"}, 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if ns != nil {
		t.Fatalf("cancelled SLCA returned %d nodes", len(ns))
	}
}

// TestSLCAParallelCtxInjectedFault: an armed StageSLCARange fault aborts
// the computation with the injected error, on both the parallel path and
// the small-input serial fallback.
func TestSLCAParallelCtxInjectedFault(t *testing.T) {
	boom := errors.New("injected range fault")
	for name, counts := range map[string]map[string]int{
		"parallel": {"k0": 300, "k1": 2000},
		"serial":   {"k0": 5, "k1": 20},
	} {
		tr := dataset.KeywordTree(4, 5, counts, 3)
		ix := xmltree.NewIndex(tr)
		in := resilience.NewInjector(1).Arm(resilience.StageSLCARange, resilience.Fault{Err: boom})
		ctx := resilience.WithInjector(context.Background(), in)
		ns, err := SLCAParallelCtx(ctx, ix, []string{"k0", "k1"}, 4, nil)
		if !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want injected fault", name, err)
		}
		if ns != nil {
			t.Errorf("%s: faulted SLCA returned %d nodes", name, len(ns))
		}
	}
}

// TestSLCAParallelCtxMatchesSerialWhenUninterrupted: the ctx variant with
// a live context is the same algorithm.
func TestSLCAParallelCtxMatchesSerialWhenUninterrupted(t *testing.T) {
	tr := dataset.KeywordTree(4, 5, map[string]int{"k0": 300, "k1": 2000}, 3)
	ix := xmltree.NewIndex(tr)
	want := SLCA(ix, []string{"k0", "k1"})
	got, err := SLCAParallelCtx(context.Background(), ix, []string{"k0", "k1"}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d nodes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %d differs", i)
		}
	}
}
