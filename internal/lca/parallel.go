package lca

import (
	"context"
	"strconv"
	"sync"

	"kwsearch/internal/obs"
	"kwsearch/internal/resilience"
	"kwsearch/internal/xmltree"
)

// slcaCtxCheckStride is how many anchors a range worker processes between
// cancellation checks: rare enough to stay off the per-anchor hot path,
// frequent enough to stop within microseconds of ctx ending.
const slcaCtxCheckStride = 32

// slcaParallelMinAnchors is the shortest-list length below which
// SLCAParallel falls back to the serial path: goroutine startup dominates
// the per-anchor binary searches on tiny lists.
const slcaParallelMinAnchors = 64

// SLCAParallel computes SLCA with the Indexed-Lookup-Eager strategy
// fanned out over workers goroutines: the shortest posting list is split
// into contiguous anchor ranges, each range runs ILE independently
// (anchorCandidate only reads the lists), and the per-range candidates
// are concatenated in range order before the global minimalization —
// which is also what resolves candidates that straddle a range boundary
// (an ancestor produced in one range with a descendant candidate in the
// next is pruned exactly as in the serial merge). Results are identical
// to SLCA for every worker count.
func SLCAParallel(ix *xmltree.Index, terms []string, workers int) []*xmltree.Node {
	return SLCAParallelTraced(ix, terms, workers, nil)
}

// SLCAParallelTraced is SLCAParallel recording its work onto sp (nil
// disables tracing): list sizes, the anchor count, and one child span per
// range worker carrying that range's bounds and candidate count. Child
// spans are created in the launch loop, before any goroutine starts, so
// the span tree's shape is deterministic for a given worker count.
func SLCAParallelTraced(ix *xmltree.Index, terms []string, workers int, sp *obs.Span) []*xmltree.Node {
	ns, _ := SLCAParallelCtx(context.Background(), ix, terms, workers, sp)
	return ns
}

// SLCAParallelCtx is the context-first parallel SLCA: each range worker
// checks cancellation every slcaCtxCheckStride anchors and consults the
// fault injector (resilience.StageSLCARange) once per range. A cancelled
// computation returns nil and the interrupting error — SLCA minimality
// is a global property, so a subset of the candidates could wrongly keep
// an ancestor whose descendant match was never produced.
func SLCAParallelCtx(ctx context.Context, ix *xmltree.Index, terms []string, workers int, sp *obs.Span) ([]*xmltree.Node, error) {
	lists := lookupLists(ix, terms)
	if lists == nil {
		sp.SetAttr("anchors", 0)
		return nil, nil
	}
	min := 0
	for i, l := range lists {
		if len(l) < len(lists[min]) {
			min = i
		}
	}
	anchors := lists[min]
	if workers < 1 {
		workers = 1
	}
	if workers > len(anchors) {
		workers = len(anchors)
	}
	recordListSizes(sp, lists)
	sp.SetAttr("anchors", len(anchors))
	inj := resilience.From(ctx)
	if workers == 1 || len(anchors) < slcaParallelMinAnchors {
		sp.SetAttr("serial_fallback", true)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := inj.At(ctx, resilience.StageSLCARange); err != nil {
			return nil, err
		}
		child := sp.Child("slca-serial")
		defer child.End()
		return SLCATraced(ix, terms, child), nil
	}
	sp.SetAttr("serial_fallback", false)
	sp.SetAttr("ranges", workers)

	t := ix.Tree()
	perRange := make([][]*xmltree.Node, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(anchors) / workers
		hi := (w + 1) * len(anchors) / workers
		child := sp.Child("range-" + strconv.Itoa(w))
		child.SetAttr("lo", lo)
		child.SetAttr("hi", hi)
		wg.Add(1)
		go func(w, lo, hi int, child *obs.Span) {
			defer wg.Done()
			if err := inj.At(ctx, resilience.StageSLCARange); err != nil {
				errs[w] = err
				child.SetAttr("cancelled", true)
				child.End()
				return
			}
			var local []*xmltree.Node
			for i, v := range anchors[lo:hi] {
				if i%slcaCtxCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						child.SetAttr("cancelled", true)
						child.End()
						return
					}
				}
				d := anchorCandidate(v, lists, min)
				if n := t.ByDewey(d); n != nil {
					local = append(local, n)
				}
			}
			perRange[w] = local
			child.SetAttr("candidates", len(local))
			child.End()
		}(w, lo, hi, child)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			sp.SetAttr("cancelled", true)
			return nil, err
		}
	}
	var cands []*xmltree.Node
	for _, local := range perRange {
		cands = append(cands, local...)
	}
	sp.SetAttr("candidates", len(cands))
	return minimalize(cands), nil
}
