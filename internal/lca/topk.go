package lca

import (
	"math"
	"sort"

	"kwsearch/internal/xmltree"
)

// ScoredResult is one ranked XML result.
type ScoredResult struct {
	Node  *xmltree.Node
	Score float64
}

// TopK returns the k best results under the given ?LCA semantics
// (use SLCA or ELCAStack as the candidates function), ranked by a
// content-over-compactness score: Σ per-term log inverse element frequency
// divided by the summed root-to-witness path lengths — the default XML
// ranking the top-k engines of slide 137 optimize for (Chen &
// Papakonstantinou ICDE'10 target exactly this kind of scored retrieval).
func TopK(ix *xmltree.Index, terms []string, k int, candidates func(*xmltree.Index, []string) []*xmltree.Node) []ScoredResult {
	if candidates == nil {
		candidates = SLCA
	}
	nodes := candidates(ix, terms)
	if len(nodes) == 0 {
		return nil
	}
	n := float64(ix.Tree().Len())
	out := make([]ScoredResult, 0, len(nodes))
	for _, node := range nodes {
		content, dist := 0.0, 1.0
		for _, term := range terms {
			list := ix.Lookup(term)
			df := float64(len(list))
			if df == 0 {
				continue
			}
			// Nearest witness inside the subtree.
			best := -1
			for i := succIndex(list, node.Dewey); i < len(list) && node.Dewey.IsAncestorOrSelf(list[i].Dewey); i++ {
				d := len(list[i].Dewey) - len(node.Dewey)
				if best < 0 || d < best {
					best = d
				}
			}
			if best < 0 {
				continue
			}
			content += math.Log(1 + n/df)
			dist += float64(best)
		}
		out = append(out, ScoredResult{Node: node, Score: content / dist})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node.ID < out[j].Node.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
