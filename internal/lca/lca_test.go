package lca

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kwsearch/internal/dataset"
	"kwsearch/internal/xmltree"
)

func ids(nodes []*xmltree.Node) []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = int(n.ID)
	}
	return out
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSlide33SLCA reproduces E4: on the conf tree with Q = {keyword, Mark},
// the common ancestors are {conf, paper1} and the SLCA is {paper1}; the
// ancestor conf is pruned by the minimality rule.
func TestSlide33SLCA(t *testing.T) {
	ix := xmltree.NewIndex(dataset.ConfXML())
	terms := []string{"keyword", "mark"}

	cas := CommonAncestors(ix, terms)
	if len(cas) != 2 {
		t.Fatalf("CAs = %v, want conf and paper1", ids(cas))
	}
	if cas[0].Label != "conf" || cas[1].Label != "paper" {
		t.Fatalf("CAs = %s,%s", cas[0].Label, cas[1].Label)
	}

	slca := SLCA(ix, terms)
	if len(slca) != 1 || slca[0].Label != "paper" {
		t.Fatalf("SLCA = %v", ids(slca))
	}
	// It is the first paper (the one whose title contains "keyword").
	if slca[0].Dewey.String() != "2" {
		t.Errorf("SLCA dewey = %s, want 2", slca[0].Dewey)
	}
}

// TestSlide33BothPapers: Q = {Mark} alone matches authors in both papers;
// the SLCAs are the two author nodes themselves.
func TestSlide33BothPapers(t *testing.T) {
	ix := xmltree.NewIndex(dataset.ConfXML())
	slca := SLCA(ix, []string{"mark"})
	if len(slca) != 2 {
		t.Fatalf("SLCA = %v", ids(slca))
	}
	for _, n := range slca {
		if n.Label != "author" {
			t.Errorf("SLCA label = %s, want author", n.Label)
		}
	}
}

func TestNoMatchTerms(t *testing.T) {
	ix := xmltree.NewIndex(dataset.ConfXML())
	if got := SLCA(ix, []string{"keyword", "nosuch"}); got != nil {
		t.Errorf("SLCA with unmatched term = %v", ids(got))
	}
	if got := ELCA(ix, []string{"nosuch"}); got != nil {
		t.Errorf("ELCA with unmatched term = %v", ids(got))
	}
	if got := SLCA(ix, nil); got != nil {
		t.Errorf("SLCA with empty query = %v", ids(got))
	}
}

// TestELCAIncludesAncestorWithOwnWitness: the canonical SLCA-vs-ELCA
// difference. conf has papers (keyword+mark) and ALSO its own direct
// matches, making conf an ELCA but not an SLCA.
func TestELCAIncludesAncestorWithOwnWitness(t *testing.T) {
	b := xmltree.NewBuilder("conf")
	r := b.Root()
	b.Child(r, "name", "keyword workshop") // conf-level witness for "keyword"
	b.Child(r, "chair", "Mark")            // conf-level witness for "mark"
	p := b.Child(r, "paper", "")
	b.Child(p, "title", "keyword search")
	b.Child(p, "author", "Mark")
	ix := xmltree.NewIndex(b.Freeze())
	terms := []string{"keyword", "mark"}

	slca := SLCA(ix, terms)
	if len(slca) != 1 || slca[0].Label != "paper" {
		t.Fatalf("SLCA = %v", ids(slca))
	}
	elca := ELCAStack(ix, terms)
	if len(elca) != 2 {
		t.Fatalf("ELCA = %v, want paper and conf", ids(elca))
	}
	labels := map[string]bool{}
	for _, n := range elca {
		labels[n.Label] = true
	}
	if !labels["paper"] || !labels["conf"] {
		t.Errorf("ELCA labels = %v", labels)
	}
}

// TestELCAExclusionSemantics: a keyword occurrence inside a child that
// covers all keywords must not serve as a witness for the parent
// (the CA-descendant exclusion).
func TestELCAExclusionSemantics(t *testing.T) {
	// u -> c -> d(k1,k2), c -> e(k1); u -> f(k2).
	// c covers all via d, so e's k1 cannot help u; u is NOT an ELCA.
	b := xmltree.NewBuilder("u")
	c := b.Child(b.Root(), "c", "")
	b.Child(c, "d", "k1 k2")
	b.Child(c, "e", "k1")
	b.Child(b.Root(), "f", "k2")
	ix := xmltree.NewIndex(b.Freeze())
	terms := []string{"k1", "k2"}

	for name, fn := range map[string]func(*xmltree.Index, []string) []*xmltree.Node{
		"stack": ELCAStack, "indexed": ELCA, "brute": ELCABrute,
	} {
		got := fn(ix, terms)
		if len(got) != 1 || got[0].Label != "d" {
			t.Errorf("%s: ELCA = %v, want only d", name, ids(got))
		}
	}
}

func randomTreeIndex(seed int64) *xmltree.Index {
	rng := rand.New(rand.NewSource(seed))
	terms := []string{"k0", "k1", "k2"}
	b := xmltree.NewBuilder("root")
	nodes := []*xmltree.Node{b.Root()}
	n := 5 + rng.Intn(40)
	for i := 0; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		val := ""
		if rng.Intn(2) == 0 {
			val = terms[rng.Intn(len(terms))]
			if rng.Intn(5) == 0 {
				val += " " + terms[rng.Intn(len(terms))]
			}
		}
		nodes = append(nodes, b.Child(parent, "n", val))
	}
	return xmltree.NewIndex(b.Freeze())
}

// Property: all SLCA algorithms agree with the brute-force oracle.
func TestSLCAAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		ix := randomTreeIndex(seed)
		for _, terms := range [][]string{{"k0", "k1"}, {"k0", "k1", "k2"}, {"k2"}} {
			want := SLCABrute(ix, terms)
			if !sameNodes(SLCA(ix, terms), want) {
				return false
			}
			if !sameNodes(SLCAScan(ix, terms), want) {
				return false
			}
			if !sameNodes(SLCAMultiway(ix, terms), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: both ELCA algorithms agree with the brute-force oracle, and
// every SLCA is an ELCA.
func TestELCAAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		ix := randomTreeIndex(seed)
		for _, terms := range [][]string{{"k0", "k1"}, {"k0", "k1", "k2"}} {
			want := ELCABrute(ix, terms)
			if !sameNodes(ELCAStack(ix, terms), want) {
				return false
			}
			if !sameNodes(ELCA(ix, terms), want) {
				return false
			}
			// SLCA ⊆ ELCA.
			inELCA := map[xmltree.NodeID]bool{}
			for _, n := range want {
				inELCA[n.ID] = true
			}
			for _, n := range SLCABrute(ix, terms) {
				if !inELCA[n.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The generated keyword trees used by the E15/E20 benchmarks must also
// agree across algorithms.
func TestAlgorithmsAgreeOnKeywordTree(t *testing.T) {
	tr := dataset.KeywordTree(3, 4, map[string]int{"k0": 8, "k1": 120}, 3)
	ix := xmltree.NewIndex(tr)
	terms := []string{"k0", "k1"}
	want := SLCABrute(ix, terms)
	if len(want) == 0 {
		t.Fatal("no SLCAs in benchmark tree")
	}
	if !sameNodes(SLCA(ix, terms), want) || !sameNodes(SLCAScan(ix, terms), want) ||
		!sameNodes(SLCAMultiway(ix, terms), want) {
		t.Fatal("SLCA variants disagree on benchmark tree")
	}
	wantE := ELCABrute(ix, terms)
	if !sameNodes(ELCAStack(ix, terms), wantE) || !sameNodes(ELCA(ix, terms), wantE) {
		t.Fatal("ELCA variants disagree on benchmark tree")
	}
}

func TestTopKRanksTighterResultsFirst(t *testing.T) {
	// Two SLCAs: one with witnesses right below the root (tight), one with
	// witnesses deep inside (loose). The tight result ranks first.
	b := xmltree.NewBuilder("root")
	tight := b.Child(b.Root(), "r", "")
	b.Child(tight, "x", "k0")
	b.Child(tight, "y", "k1")
	loose := b.Child(b.Root(), "r", "")
	l1 := b.Child(loose, "g", "")
	l2 := b.Child(l1, "h", "")
	b.Child(l2, "x", "k0")
	m1 := b.Child(loose, "g2", "")
	m2 := b.Child(m1, "h", "")
	b.Child(m2, "y", "k1")
	ix := xmltree.NewIndex(b.Freeze())
	terms := []string{"k0", "k1"}

	got := TopK(ix, terms, 0, nil)
	if len(got) != 2 {
		t.Fatalf("results = %d, want 2", len(got))
	}
	if got[0].Node != tight {
		t.Errorf("tight result should rank first")
	}
	if !(got[0].Score > got[1].Score) {
		t.Errorf("scores = %v / %v", got[0].Score, got[1].Score)
	}
	// k caps output; ELCA semantics pluggable.
	if topped := TopK(ix, terms, 1, ELCAStack); len(topped) != 1 {
		t.Errorf("k cap ignored: %d", len(topped))
	}
	if none := TopK(ix, []string{"absent"}, 3, nil); none != nil {
		t.Errorf("unmatched query = %v", none)
	}
}
