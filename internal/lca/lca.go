// Package lca implements the ?LCA family of XML keyword-search semantics
// from slides 32-34 and their query-processing algorithms from slides
// 137-141: SLCA via Indexed-Lookup-Eager (Xu & Papakonstantinou SIGMOD'05),
// a scan-eager merge variant, Multiway-SLCA (Sun et al. WWW'07), and ELCA
// via a one-pass stack (the DIL semantics of XRank, Guo et al. SIGMOD'03)
// and via candidate-generation + verification (the Index-Stack outline of
// Xu & Papakonstantinou EDBT'08).
package lca

import (
	"sort"

	"kwsearch/internal/obs"
	"kwsearch/internal/xmltree"
)

// lookupLists resolves the query terms to their posting lists, returning
// nil if any term has no matches (AND semantics: no results).
func lookupLists(ix *xmltree.Index, terms []string) [][]*xmltree.Node {
	if len(terms) == 0 {
		return nil
	}
	lists := make([][]*xmltree.Node, len(terms))
	for i, t := range terms {
		lists[i] = ix.Lookup(t)
		if len(lists[i]) == 0 {
			return nil
		}
	}
	return lists
}

// succIndex returns the index of the first node in list at or after d in
// document order.
func succIndex(list []*xmltree.Node, d xmltree.Dewey) int {
	return sort.Search(len(list), func(i int) bool {
		return list[i].Dewey.Compare(d) >= 0
	})
}

// hasMatchIn reports whether list has a node inside the subtree rooted at
// the node with Dewey d (prefix range check via binary search).
func hasMatchIn(list []*xmltree.Node, d xmltree.Dewey) bool {
	i := succIndex(list, d)
	return i < len(list) && d.IsAncestorOrSelf(list[i].Dewey)
}

// CommonAncestors returns every node whose subtree contains at least one
// match of every term, in document order — the CA superset that slide 32
// notes can be as large as min(N, Πᵢ|Sᵢ|) and therefore "needs further
// pruning".
func CommonAncestors(ix *xmltree.Index, terms []string) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	if lists == nil {
		return nil
	}
	var out []*xmltree.Node
	for _, n := range ix.Tree().Nodes() {
		all := true
		for _, list := range lists {
			if !hasMatchIn(list, n.Dewey) {
				all = false
				break
			}
		}
		if all {
			out = append(out, n)
		}
	}
	return out
}

// minimalize keeps only the deepest candidates: a node is dropped when
// another candidate lies strictly inside its subtree (the SLCA "no
// ancestor-descendant pairs" rule of slide 33).
func minimalize(cands []*xmltree.Node) []*xmltree.Node {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	// Dedupe.
	uniq := cands[:1]
	for _, c := range cands[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	var out []*xmltree.Node
	for i, c := range uniq {
		isMin := true
		// In document order, a proper descendant of c appears after c and
		// before c's interval ends; checking the successor suffices after
		// dedupe only if candidates were nested immediately, so scan
		// forward while inside c's subtree.
		for j := i + 1; j < len(uniq) && c.Dewey.IsAncestorOrSelf(uniq[j].Dewey); j++ {
			isMin = false
			break
		}
		if isMin {
			out = append(out, c)
		}
	}
	return out
}

// deeper returns the deeper of two Dewey prefixes (both are ancestors of a
// common node, hence comparable).
func deeper(a, b xmltree.Dewey) xmltree.Dewey {
	if len(a) >= len(b) {
		return a
	}
	return b
}

// anchorCandidate computes, for anchor v, the root of the smallest subtree
// containing v and at least one node of every list: the shallowest over
// lists of the deepest LCA between v and that list's nearest neighbours
// (pred/succ in document order).
func anchorCandidate(v *xmltree.Node, lists [][]*xmltree.Node, skip int) xmltree.Dewey {
	best := v.Dewey // deepest possible; will only get shallower
	for li, list := range lists {
		if li == skip {
			continue
		}
		i := succIndex(list, v.Dewey)
		var cand xmltree.Dewey
		if i < len(list) {
			cand = v.Dewey.LCA(list[i].Dewey)
		}
		if i > 0 {
			cand = deeper(cand, v.Dewey.LCA(list[i-1].Dewey))
		}
		// cand is the deepest ancestor of v with a match from this list;
		// the overall candidate is the shallowest such across lists.
		if len(cand) < len(best) {
			best = cand
		}
	}
	return best
}

// SLCA computes the smallest LCAs with the Indexed-Lookup-Eager strategy:
// anchor on the shortest list, binary-search the others —
// O(k·d·|Smin|·log|Smax|), the complexity slide 138 quotes.
func SLCA(ix *xmltree.Index, terms []string) []*xmltree.Node {
	return SLCATraced(ix, terms, nil)
}

// SLCATraced is SLCA recording its work onto sp (nil disables tracing):
// per-term posting-list sizes, the anchor count (shortest list), and the
// candidate count before minimalization.
func SLCATraced(ix *xmltree.Index, terms []string, sp *obs.Span) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	if lists == nil {
		sp.SetAttr("anchors", 0)
		return nil
	}
	recordListSizes(sp, lists)
	min := 0
	for i, l := range lists {
		if len(l) < len(lists[min]) {
			min = i
		}
	}
	sp.SetAttr("anchors", len(lists[min]))
	t := ix.Tree()
	var cands []*xmltree.Node
	for _, v := range lists[min] {
		d := anchorCandidate(v, lists, min)
		if n := t.ByDewey(d); n != nil {
			cands = append(cands, n)
		}
	}
	sp.SetAttr("candidates", len(cands))
	return minimalize(cands)
}

// recordListSizes annotates sp with the per-term posting-list sizes.
func recordListSizes(sp *obs.Span, lists [][]*xmltree.Node) {
	if sp == nil {
		return
	}
	sizes := make([]int, len(lists))
	for i, l := range lists {
		sizes[i] = len(l)
	}
	sp.SetAttr("list_sizes", sizes)
}

// SLCAScan is the scan-eager variant: anchors still come from the shortest
// list but neighbours in the other lists are found by advancing cursors
// monotonically instead of binary searching — O(k·d·Σ|Sᵢ|), preferable when
// the lists have comparable sizes (the E20 crossover).
func SLCAScan(ix *xmltree.Index, terms []string) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	if lists == nil {
		return nil
	}
	min := 0
	for i, l := range lists {
		if len(l) < len(lists[min]) {
			min = i
		}
	}
	t := ix.Tree()
	cursors := make([]int, len(lists))
	var cands []*xmltree.Node
	for _, v := range lists[min] {
		best := v.Dewey
		for li, list := range lists {
			if li == min {
				continue
			}
			// Advance the cursor to the successor of v.
			for cursors[li] < len(list) && list[cursors[li]].Dewey.Compare(v.Dewey) < 0 {
				cursors[li]++
			}
			var cand xmltree.Dewey
			if cursors[li] < len(list) {
				cand = v.Dewey.LCA(list[cursors[li]].Dewey)
			}
			if cursors[li] > 0 {
				cand = deeper(cand, v.Dewey.LCA(list[cursors[li]-1].Dewey))
			}
			if len(cand) < len(best) {
				best = cand
			}
		}
		if n := t.ByDewey(best); n != nil {
			cands = append(cands, n)
		}
	}
	return minimalize(cands)
}

// SLCAMultiway is the Multiway-SLCA strategy of Sun et al. (WWW'07, slide
// 139): instead of sweeping every anchor of the shortest list, it picks as
// the next anchor the maximum head across all lists (skip_after), letting
// whole clusters of matches be skipped in one step.
func SLCAMultiway(ix *xmltree.Index, terms []string) []*xmltree.Node {
	lists := lookupLists(ix, terms)
	if lists == nil {
		return nil
	}
	t := ix.Tree()
	heads := make([]int, len(lists))
	var cands []*xmltree.Node
	for {
		// Anchor = the maximum current head in document order.
		anchor := -1
		for i, list := range lists {
			if heads[i] >= len(list) {
				return minimalize(cands)
			}
			if anchor < 0 || list[heads[i]].Dewey.Compare(lists[anchor][heads[anchor]].Dewey) > 0 {
				anchor = i
			}
		}
		v := lists[anchor][heads[anchor]]
		d := anchorCandidate(v, lists, anchor)
		if n := t.ByDewey(d); n != nil {
			cands = append(cands, n)
		}
		// skip_after: advance every list past the anchor.
		for i, list := range lists {
			heads[i] = succIndex(list, v.Dewey)
			if i == anchor || (heads[i] < len(list) && list[heads[i]] == v) {
				heads[i]++
			}
		}
	}
}

// SLCABrute computes SLCAs from first principles (minimal common
// ancestors), used as the test oracle.
func SLCABrute(ix *xmltree.Index, terms []string) []*xmltree.Node {
	return minimalize(CommonAncestors(ix, terms))
}
