package cluster

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/xmltree"
)

func auctionResults(t *testing.T) (*xmltree.Index, []Result) {
	t.Helper()
	tr := dataset.AuctionsXML()
	ix := xmltree.NewIndex(tr)
	var rs []Result
	for _, n := range tr.Root.Children {
		rs = append(rs, Result{Root: n})
	}
	return ix, rs
}

// TestSlide161Roles reproduces E13: Q = "auction seller buyer Tom" on the
// auctions document clusters the four results into exactly three role
// clusters — Tom as seller (2 auctions), as buyer (1), as auctioneer (1).
func TestSlide161Roles(t *testing.T) {
	_, rs := auctionResults(t)
	clusters := ByRole(rs, []string{"auction", "seller", "buyer", "tom"})
	if len(clusters) != 3 {
		for _, c := range clusters {
			t.Logf("cluster: %s", Describe(c))
		}
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	// Largest first: the two seller results.
	if len(clusters[0].Results) != 2 || !strings.Contains(clusters[0].Description, "tom→seller") {
		t.Errorf("top cluster = %s", Describe(clusters[0]))
	}
	descs := clusters[1].Description + " " + clusters[2].Description
	if !strings.Contains(descs, "tom→buyer") || !strings.Contains(descs, "tom→auctioneer") {
		t.Errorf("role descriptions = %q", descs)
	}
}

// TestSlide162ContextSplit: the seller cluster splits by auction context
// (closed vs open).
func TestSlide162ContextSplit(t *testing.T) {
	_, rs := auctionResults(t)
	clusters := ByRole(rs, []string{"seller", "buyer", "tom"})
	var seller Cluster
	for _, c := range clusters {
		if strings.Contains(c.Description, "tom→seller") {
			seller = c
		}
	}
	if len(seller.Results) != 2 {
		t.Fatalf("seller cluster = %+v", seller)
	}
	sub := SplitByContext(seller, 0)
	if len(sub) != 2 {
		t.Fatalf("context split = %d clusters, want 2 (closed/open)", len(sub))
	}
	labels := sub[0].Description + sub[1].Description
	if !strings.Contains(labels, "closed_auction") || !strings.Contains(labels, "open_auction") {
		t.Errorf("context labels = %q", labels)
	}
}

func TestSplitByContextGranularityCap(t *testing.T) {
	_, rs := auctionResults(t)
	all := Cluster{Description: "all", Results: rs}
	// Two contexts exist (closed/open); capping at 1 merges them all.
	sub := SplitByContext(all, 1)
	if len(sub) != 1 {
		t.Fatalf("capped split = %d", len(sub))
	}
	if len(sub[0].Results) != len(rs) {
		t.Errorf("cap lost results: %d of %d", len(sub[0].Results), len(rs))
	}
	if !strings.Contains(sub[0].Description, "other") {
		t.Errorf("merged cluster = %q", sub[0].Description)
	}
	// A cap wider than the context count changes nothing.
	if got := SplitByContext(all, 5); len(got) != 2 {
		t.Errorf("uncapped-equivalent split = %d, want 2", len(got))
	}
}

func TestXBridgeClusters(t *testing.T) {
	cfg := dataset.DefaultBibConfig()
	cfg.PapersPerVenue = 15
	tr := dataset.BibXML(cfg)
	ix := xmltree.NewIndex(tr)
	// Results: all papers containing "keyword".
	var rs []Result
	for _, n := range ix.Lookup("keyword") {
		// climb to the paper element
		cur := n
		for cur != nil && cur.Label != "paper" {
			cur = cur.Parent
		}
		if cur != nil {
			rs = append(rs, Result{Root: cur})
		}
	}
	if len(rs) == 0 {
		t.Skip("no keyword papers in this seed")
	}
	clusters := XBridgeClusters(ix, rs, []string{"keyword"}, XBridgeOptions{})
	// Papers live under both /bib/conf and /bib/journal: two contexts.
	if len(clusters) != 2 {
		t.Fatalf("contexts = %d, want 2 (conf and journal)", len(clusters))
	}
	for _, c := range clusters {
		if !strings.HasSuffix(c.Context, "/paper") {
			t.Errorf("context = %q", c.Context)
		}
		if c.Score <= 0 {
			t.Errorf("cluster score must be positive: %+v", c.Context)
		}
	}
	// Sorted by score.
	if clusters[0].Score < clusters[1].Score {
		t.Errorf("clusters not ranked")
	}
}

func TestResultScoreTightCoupling(t *testing.T) {
	// Two results, both covering k1+k2: tightly coupled (matches under one
	// child) must outscore loosely coupled (matches in distant branches).
	b := xmltree.NewBuilder("root")
	tight := b.Child(b.Root(), "r1", "")
	tg := b.Child(tight, "g", "")
	b.Child(tg, "x", "k1")
	b.Child(tg, "y", "k2")

	loose := b.Child(b.Root(), "r2", "")
	l1 := b.Child(loose, "g", "")
	l1a := b.Child(l1, "h", "")
	b.Child(l1a, "x", "k1")
	l2 := b.Child(loose, "g2", "")
	l2a := b.Child(l2, "h", "")
	b.Child(l2a, "y", "k2")

	ix := xmltree.NewIndex(b.Freeze())
	terms := []string{"k1", "k2"}
	st := ResultScore(ix, Result{Root: tight}, terms, XBridgeOptions{AvgDepth: 10})
	sl := ResultScore(ix, Result{Root: loose}, terms, XBridgeOptions{AvgDepth: 10})
	if !(st > sl) {
		t.Errorf("tight %v must outscore loose %v", st, sl)
	}
	if got := ResultScore(ix, Result{Root: tight}, []string{"absent"}, XBridgeOptions{}); got != 0 {
		t.Errorf("unmatched result score = %v", got)
	}
}
