// Package cluster groups XML keyword-search results: describable
// clustering by keyword roles with context-based refinement (Liu & Chen
// TODS'10, slides 161-162) and XBridge-style root-context clustering with
// cluster ranking (Li et al. EDBT'10, slides 156-157).
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"kwsearch/internal/text"
	"kwsearch/internal/xmltree"
)

// Result is one query result: the root of its subtree.
type Result struct {
	Root *xmltree.Node
}

// Cluster is a described group of results.
type Cluster struct {
	// Description renders the cluster's semantics, e.g.
	// `tom→seller` or `tom→seller | context:open_auction`.
	Description string
	Results     []Result
}

// roleOf returns the label of the node (or nearest labeled ancestor within
// the result) where the term matches, which is the term's role in that
// result.
func roleOf(root *xmltree.Node, term string) string {
	for _, n := range xmltree.Subtree(root) {
		if text.Contains(n.Value, term) {
			return n.Label
		}
	}
	return ""
}

// ByRole clusters results so that every cluster gives each predicate term
// the same role — the describable semantics of slide 161: "find the seller
// of auctions whose buyer is Tom" vs "... whose seller is Tom". Label
// keywords (matching tags rather than values) do not discriminate and are
// skipped. Clusters are sorted by size (desc), then description.
func ByRole(results []Result, terms []string) []Cluster {
	groups := map[string][]Result{}
	for _, r := range results {
		var parts []string
		for _, raw := range terms {
			term := text.Normalize(raw)
			if term == "" {
				continue
			}
			if role := roleOf(r.Root, term); role != "" {
				parts = append(parts, term+"→"+role)
			}
		}
		desc := strings.Join(parts, ", ")
		groups[desc] = append(groups[desc], r)
	}
	out := make([]Cluster, 0, len(groups))
	for desc, rs := range groups {
		out = append(out, Cluster{Description: desc, Results: rs})
	}
	sortClusters(out)
	return out
}

// SplitByContext refines a cluster by the label of each result's root (its
// "context" — the ancestor type, e.g. closed_auction vs open_auction),
// honoring a maximum cluster count: the smallest context groups are merged
// into an "other" cluster when the limit is exceeded (the granularity
// control of slide 162).
func SplitByContext(c Cluster, maxClusters int) []Cluster {
	groups := map[string][]Result{}
	for _, r := range c.Results {
		groups[r.Root.Label] = append(groups[r.Root.Label], r)
	}
	out := make([]Cluster, 0, len(groups))
	for label, rs := range groups {
		out = append(out, Cluster{
			Description: c.Description + " | context:" + label,
			Results:     rs,
		})
	}
	sortClusters(out)
	if maxClusters > 0 && len(out) > maxClusters {
		merged := Cluster{Description: c.Description + " | context:other"}
		for _, extra := range out[maxClusters-1:] {
			merged.Results = append(merged.Results, extra.Results...)
		}
		out = append(out[:maxClusters-1], merged)
	}
	return out
}

func sortClusters(cs []Cluster) {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i].Results) != len(cs[j].Results) {
			return len(cs[i].Results) > len(cs[j].Results)
		}
		return cs[i].Description < cs[j].Description
	})
}

// RankedCluster is an XBridge cluster: results grouped by the label path
// of their roots, scored for ranking.
type RankedCluster struct {
	// Context is the root-to-result label path shared by the group.
	Context string
	Results []Result
	Score   float64
}

// XBridgeOptions tunes scoring.
type XBridgeOptions struct {
	// AvgDepth discounts match paths longer than it (slide 159); 0 means
	// use the tree's average result depth.
	AvgDepth float64
}

// XBridgeClusters groups results by root context and ranks clusters by the
// total score of their top-R results, R = min(average cluster size, |G|) —
// the formula of slide 157 that avoids over-rewarding large clusters.
func XBridgeClusters(ix *xmltree.Index, results []Result, terms []string, opts XBridgeOptions) []RankedCluster {
	groups := map[string][]Result{}
	for _, r := range results {
		groups[r.Root.LabelPath()] = append(groups[r.Root.LabelPath()], r)
	}
	if len(groups) == 0 {
		return nil
	}
	avg := 0.0
	for _, g := range groups {
		avg += float64(len(g))
	}
	avg /= float64(len(groups))

	out := make([]RankedCluster, 0, len(groups))
	for ctx, g := range groups {
		scores := make([]float64, len(g))
		for i, r := range g {
			scores[i] = ResultScore(ix, r, terms, opts)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		r := int(math.Min(math.Max(avg, 1), float64(len(g))))
		total := 0.0
		for i := 0; i < r; i++ {
			total += scores[i]
		}
		out = append(out, RankedCluster{Context: ctx, Results: g, Score: total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Context < out[j].Context
	})
	return out
}

// ResultScore scores one result: content weight (log inverse element
// frequency per matched term, slide 158) divided by structural distance
// (sum of root-to-match path lengths with shared segments discounted —
// the tight-coupling preference of slide 160). Paths longer than AvgDepth
// are discounted rather than fully charged (slide 159).
func ResultScore(ix *xmltree.Index, r Result, terms []string, opts XBridgeOptions) float64 {
	tree := ix.Tree()
	avgDepth := opts.AvgDepth
	if avgDepth <= 0 {
		avgDepth = float64(tree.MaxDepth()) / 2
		if avgDepth < 1 {
			avgDepth = 1
		}
	}
	n := float64(tree.Len())
	content := 0.0
	dist := 0.0
	// Track shared prefix depth among match paths for the tight-coupling
	// discount.
	var matchDeweys []xmltree.Dewey
	for _, raw := range terms {
		term := text.Normalize(raw)
		if term == "" {
			continue
		}
		df := float64(ix.DocFreq(term))
		if df == 0 {
			continue
		}
		for _, m := range ix.Lookup(term) {
			if !r.Root.Dewey.IsAncestorOrSelf(m.Dewey) {
				continue
			}
			content += math.Log(1 + n/df)
			d := float64(len(m.Dewey) - len(r.Root.Dewey))
			if d > avgDepth {
				d = avgDepth + math.Sqrt(d-avgDepth) // discount long paths
			}
			dist += d
			matchDeweys = append(matchDeweys, m.Dewey)
			break // one witness per term suffices for scoring
		}
	}
	if content == 0 {
		return 0
	}
	// Tight coupling: discount the shared path segments between witnesses.
	if len(matchDeweys) > 1 {
		shared := matchDeweys[0]
		for _, d := range matchDeweys[1:] {
			shared = shared.LCA(d)
		}
		dist -= float64(len(matchDeweys)-1) * float64(len(shared)-len(r.Root.Dewey))
	}
	if dist < 1 {
		dist = 1
	}
	return content / dist
}

// Describe renders a compact cluster summary for CLIs and reports.
func Describe(c Cluster) string {
	return fmt.Sprintf("%s (%d results)", c.Description, len(c.Results))
}
