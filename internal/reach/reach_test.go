package reach

import (
	"testing"

	"kwsearch/internal/banks"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
)

func fixture(t *testing.T) (*Index, *datagraph.Graph, *invindex.Index) {
	t.Helper()
	db := dataset.SeltzerBerkeley()
	g := datagraph.FromDB(db, nil)
	ix := Build(db, g, 2)
	return ix, g, invindex.FromDB(db)
}

func TestTermWithin(t *testing.T) {
	ix, _, inv := fixture(t)
	// The Seltzer student node reaches "berkeley" (its university) within 2.
	seltzer := datagraph.NodeID(inv.Docs("seltzer")[0])
	if !ix.TermWithin(seltzer, "berkeley") {
		t.Errorf("seltzer should reach berkeley within 2")
	}
	if !ix.TermWithin(seltzer, "seltzer") {
		t.Errorf("node reaches its own terms")
	}
	// The MIT student (Alan Kay) does not reach "berkeley" within 2.
	kay := datagraph.NodeID(inv.Docs("kay")[0])
	if ix.TermWithin(kay, "berkeley") {
		t.Errorf("kay should not reach berkeley")
	}
	if ix.TermWithin(seltzer, "nosuchterm") {
		t.Errorf("unknown term reported reachable")
	}
}

func TestRelationAndNodeWithin(t *testing.T) {
	ix, _, inv := fixture(t)
	seltzer := datagraph.NodeID(inv.Docs("seltzer")[0])
	if !ix.RelationWithin(seltzer, "university") {
		t.Errorf("student should reach university within 2")
	}
	if !ix.RelationWithin(seltzer, "project") {
		t.Errorf("student reaches project via participation at 2 hops")
	}
	uni := datagraph.NodeID(inv.Docs("uc")[0])
	if !ix.NodeWithin(seltzer, uni) {
		t.Errorf("N2N misses the university node")
	}
	if ix.NodeWithin(seltzer, 9999) {
		t.Errorf("N2N reports absent node")
	}
	if ix.Entries() == 0 {
		t.Errorf("index empty")
	}
	if ix.D != 2 {
		t.Errorf("D = %d", ix.D)
	}
}

// TestPruneSeedsDropsHopelessMatches: the MIT side of the database matches
// neither keyword pair, so pruning removes the unreachable combinations
// before any search expansion.
func TestPruneSeedsDropsHopelessMatches(t *testing.T) {
	db := dataset.SeltzerBerkeley()
	g := datagraph.FromDB(db, nil)
	inv := invindex.FromDB(db)
	ix := Build(db, g, 1) // radius 1: project "Berkeley DB" cannot reach "seltzer"
	terms := []string{"seltzer", "berkeley"}
	groups := make([][]datagraph.NodeID, len(terms))
	for i, term := range terms {
		for _, d := range inv.Docs(term) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
	}
	pruned, n := ix.PruneSeeds(groups, terms)
	if n == 0 {
		t.Fatalf("nothing pruned at radius 1")
	}
	// The university match survives (student Seltzer is adjacent); the
	// project match (2 hops from any "seltzer") is pruned.
	if len(pruned[1]) != 1 {
		t.Fatalf("berkeley group after pruning = %v, want only the university", pruned[1])
	}
	// The search over pruned seeds still finds the radius-1 answer.
	answers, _ := banks.BackwardSearch(g, pruned, banks.Options{K: 3})
	if len(answers) == 0 || answers[0].Cost != 1 {
		t.Fatalf("answers over pruned seeds = %v", answers)
	}
}

// TestPruneSoundAtSufficientRadius: with D large enough, pruning never
// removes a seed that participates in an optimal answer.
func TestPruneSoundAtSufficientRadius(t *testing.T) {
	db := dataset.SeltzerBerkeley()
	g := datagraph.FromDB(db, nil)
	inv := invindex.FromDB(db)
	ix := Build(db, g, 3)
	terms := []string{"seltzer", "berkeley"}
	groups := make([][]datagraph.NodeID, len(terms))
	for i, term := range terms {
		for _, d := range inv.Docs(term) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
	}
	pruned, _ := ix.PruneSeeds(groups, terms)
	full, _ := banks.BackwardSearch(g, groups, banks.Options{K: 5})
	filtered, _ := banks.BackwardSearch(g, pruned, banks.Options{K: 5})
	if len(full) == 0 || len(filtered) == 0 || full[0].Cost != filtered[0].Cost {
		t.Fatalf("pruning changed the optimum: %v vs %v", full, filtered)
	}
}
