// Package reach implements D-reachability indexes for relational keyword
// search (Markowetz et al. ICDE'09, slide 124): precomputed, radius-capped
// reachability information — node→terms (N2T), (node, relation)→terms
// (N2R) and (node, relation)→nodes (N2N) — used to prune partial solutions
// and whole candidate networks before any join or expansion work.
package reach

import (
	"sort"

	"kwsearch/internal/datagraph"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
)

// Index holds the radius-D reachability tables of one database.
type Index struct {
	D  int
	db *relstore.DB
	// n2t[n] = sorted terms reachable from node n within D steps.
	n2t map[datagraph.NodeID][]string
	// n2r[n][rel] = true when a tuple of relation rel is within D steps.
	n2r map[datagraph.NodeID]map[string]bool
	// n2n[n] = nodes within D steps (sorted), for partial-solution joins.
	n2n map[datagraph.NodeID][]datagraph.NodeID
}

// Build precomputes the tables with one bounded BFS per node. Space is
// capped by the radius D — the size/range threshold the slide describes.
func Build(db *relstore.DB, g *datagraph.Graph, d int) *Index {
	ix := &Index{
		D:   d,
		db:  db,
		n2t: map[datagraph.NodeID][]string{},
		n2r: map[datagraph.NodeID]map[string]bool{},
		n2n: map[datagraph.NodeID][]datagraph.NodeID{},
	}
	inv := invindex.FromDB(db)
	// Own terms per node.
	own := map[datagraph.NodeID][]string{}
	for _, term := range inv.Terms() {
		for _, doc := range inv.Docs(term) {
			own[datagraph.NodeID(doc)] = append(own[datagraph.NodeID(doc)], term)
		}
	}
	for n := 0; n < g.Len(); n++ {
		node := datagraph.NodeID(n)
		terms := map[string]bool{}
		rels := map[string]bool{}
		var nodes []datagraph.NodeID
		for m := range g.BFSHops(node, d) {
			nodes = append(nodes, m)
			for _, t := range own[m] {
				terms[t] = true
			}
			if tp := db.TupleByID(relstore.TupleID(m)); tp != nil {
				rels[tp.Table] = true
			}
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		ix.n2n[node] = nodes
		ix.n2r[node] = rels
		sorted := make([]string, 0, len(terms))
		for t := range terms {
			sorted = append(sorted, t)
		}
		sort.Strings(sorted)
		ix.n2t[node] = sorted
	}
	return ix
}

// Entries reports the index size (terms + relations + nodes stored).
func (ix *Index) Entries() int {
	n := 0
	for _, ts := range ix.n2t {
		n += len(ts)
	}
	for _, rs := range ix.n2r {
		n += len(rs)
	}
	for _, ns := range ix.n2n {
		n += len(ns)
	}
	return n
}

// TermWithin reports whether term occurs within D steps of node (N2T).
func (ix *Index) TermWithin(node datagraph.NodeID, term string) bool {
	ts := ix.n2t[node]
	term = text.Normalize(term)
	i := sort.SearchStrings(ts, term)
	return i < len(ts) && ts[i] == term
}

// RelationWithin reports whether a tuple of rel lies within D steps (N2R).
func (ix *Index) RelationWithin(node datagraph.NodeID, rel string) bool {
	return ix.n2r[node][rel]
}

// NodeWithin reports whether other lies within D steps of node (N2N).
func (ix *Index) NodeWithin(node, other datagraph.NodeID) bool {
	ns := ix.n2n[node]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= other })
	return i < len(ns) && ns[i] == other
}

// PruneSeeds drops keyword matches that cannot be part of any radius-D
// answer: a match of one keyword survives only if every other query term
// is reachable within D steps of it — the "prune partial solutions" use of
// slide 124. The returned groups align with terms.
func (ix *Index) PruneSeeds(groups [][]datagraph.NodeID, terms []string) ([][]datagraph.NodeID, int) {
	pruned := 0
	out := make([][]datagraph.NodeID, len(groups))
	for i, grp := range groups {
		for _, n := range grp {
			ok := true
			for j, term := range terms {
				if j == i {
					continue
				}
				if !ix.TermWithin(n, term) {
					ok = false
					break
				}
			}
			if ok {
				out[i] = append(out[i], n)
			} else {
				pruned++
			}
		}
	}
	return out, pruned
}
