// Package rewrite translates non-quantitative keyword queries into
// structured predicates (slides 95-102): Keyword++'s differential query
// pairs with KL-divergence for categorical attributes and earth-mover
// distance for numeric ones (Xin et al. VLDB'10), data-only value
// similarity (Nambiar & Kambhampati ICDE'06), and click-log overlap
// synonyms (Cheng et al. ICDE'10).
package rewrite

import (
	"math"
	"sort"

	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
)

// Interpreter learns keyword→predicate mappings over one entity table.
type Interpreter struct {
	db    *relstore.DB
	table string
	ix    *invindex.Index
	// CategoricalAttrs and NumericAttrs are the attributes analyzed.
	CategoricalAttrs []string
	NumericAttrs     []string
	// MinDivergence gates mappings: below it, a keyword stays a plain
	// LIKE term.
	MinDivergence float64
}

// NewInterpreter prepares analysis over table.
func NewInterpreter(db *relstore.DB, table string, categorical, numeric []string) *Interpreter {
	return &Interpreter{
		db:               db,
		table:            table,
		ix:               invindex.FromDB(db),
		CategoricalAttrs: categorical,
		NumericAttrs:     numeric,
		MinDivergence:    0.1,
	}
}

// matching returns the table tuples whose text matches all terms.
func (ip *Interpreter) matching(terms []string) []*relstore.Tuple {
	t := ip.db.Table(ip.table)
	var out []*relstore.Tuple
	for _, tp := range t.Tuples() {
		txt := tp.Text(t.Schema)
		all := true
		for _, term := range terms {
			if !text.Contains(txt, term) {
				all = false
				break
			}
		}
		if all {
			out = append(out, tp)
		}
	}
	return out
}

// CategoricalMapping is a learned keyword → attr=value predicate.
type CategoricalMapping struct {
	Attr       string
	Value      relstore.Value
	Divergence float64
}

// NumericMapping is a learned keyword → ORDER BY attr ASC/DESC.
type NumericMapping struct {
	Attr string
	// Ascending is true when the keyword pulls the distribution toward
	// small values ("small" → ORDER BY size ASC).
	Ascending bool
	EMD       float64
}

// DQP analyzes one differential query pair for keyword k: the foreground
// query (background ∪ {k}) against the background (slides 98-99),
// returning the categorical attribute value whose probability shifts the
// most (KL contribution) and the numeric attribute with the largest
// earth-mover shift.
func (ip *Interpreter) DQP(k string, background []string) (best *CategoricalMapping, num *NumericMapping) {
	k = text.Normalize(k)
	fg := ip.matching(append(append([]string(nil), background...), k))
	bg := ip.matching(background)
	if len(fg) == 0 || len(bg) == 0 {
		return nil, nil
	}
	t := ip.db.Table(ip.table)

	for _, attr := range ip.CategoricalAttrs {
		ci := t.ColumnIndex(attr)
		if ci < 0 {
			continue
		}
		fdist := valueDist(fg, ci)
		bdist := valueDist(bg, ci)
		for v, pf := range fdist {
			pb := bdist[v]
			if pb == 0 {
				pb = 0.5 / float64(len(bg)+1) // smoothing
			}
			contrib := pf * math.Log(pf/pb)
			if contrib > ip.MinDivergence && (best == nil || contrib > best.Divergence) {
				best = &CategoricalMapping{Attr: attr, Value: v, Divergence: contrib}
			}
		}
	}
	for _, attr := range ip.NumericAttrs {
		ci := t.ColumnIndex(attr)
		if ci < 0 {
			continue
		}
		fvals := numericValues(fg, ci)
		bvals := numericValues(bg, ci)
		if len(fvals) == 0 || len(bvals) == 0 {
			continue
		}
		emd := earthMover(fvals, bvals)
		if emd > ip.MinDivergence && (num == nil || emd > num.EMD) {
			num = &NumericMapping{
				Attr:      attr,
				Ascending: mean(fvals) < mean(bvals),
				EMD:       emd,
			}
		}
	}
	return best, num
}

func valueDist(rows []*relstore.Tuple, ci int) map[relstore.Value]float64 {
	out := map[relstore.Value]float64{}
	for _, r := range rows {
		v := r.Values[ci]
		if !v.IsNull() {
			out[v]++
		}
	}
	for v := range out {
		out[v] /= float64(len(rows))
	}
	return out
}

func numericValues(rows []*relstore.Tuple, ci int) []float64 {
	var out []float64
	for _, r := range rows {
		if f, ok := r.Values[ci].AsFloat(); ok {
			out = append(out, f)
		}
	}
	return out
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// earthMover computes the 1-D earth mover's distance between two empirical
// distributions (the absolute area between their CDFs), normalized by the
// value range.
func earthMover(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	lo := math.Min(as[0], bs[0])
	hi := math.Max(as[len(as)-1], bs[len(bs)-1])
	if hi == lo {
		return 0
	}
	// Merge event points.
	points := append(append([]float64(nil), as...), bs...)
	sort.Float64s(points)
	emd := 0.0
	prev := points[0]
	for _, x := range points[1:] {
		fa := cdf(as, prev)
		fb := cdf(bs, prev)
		emd += math.Abs(fa-fb) * (x - prev)
		prev = x
	}
	return emd / (hi - lo)
}

func cdf(sorted []float64, x float64) float64 {
	i := sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(sorted))
}

// Translation is the structured form of a keyword query (slide 96's CNF
// output).
type Translation struct {
	// Predicates are learned equality predicates.
	Predicates []CategoricalMapping
	// OrderBy are learned ORDER BY clauses.
	OrderBy []NumericMapping
	// LikeTerms remain plain containment terms.
	LikeTerms []string
}

// Translate maps each query keyword through its DQPs: keywords with a
// confident mapping become predicates or ORDER BY clauses; the rest stay
// LIKE terms. The background for keyword kᵢ is the remaining keywords,
// mirroring the all-pairs DQP averaging at our corpus scale.
func (ip *Interpreter) Translate(query string) Translation {
	terms := text.Tokenize(query)
	var tr Translation
	for i, k := range terms {
		bg := append(append([]string(nil), terms[:i]...), terms[i+1:]...)
		cat, num := ip.DQP(k, bg)
		switch {
		case cat != nil && (num == nil || cat.Divergence >= num.EMD):
			tr.Predicates = append(tr.Predicates, *cat)
		case num != nil:
			tr.OrderBy = append(tr.OrderBy, *num)
		default:
			tr.LikeTerms = append(tr.LikeTerms, k)
		}
	}
	return tr
}

// ValueSimilarity measures how similar two values of attr are using data
// only (Nambiar & Kambhampati, slide 102): the cosine similarity of the
// distributions of the *other* attributes among rows holding each value.
func ValueSimilarity(db *relstore.DB, table, attr string, v1, v2 relstore.Value, otherAttrs []string) float64 {
	t := db.Table(table)
	ci := t.ColumnIndex(attr)
	if ci < 0 {
		return 0
	}
	rows1 := t.Select(func(tp *relstore.Tuple) bool { return tp.Values[ci].Equal(v1) })
	rows2 := t.Select(func(tp *relstore.Tuple) bool { return tp.Values[ci].Equal(v2) })
	if len(rows1) == 0 || len(rows2) == 0 {
		return 0
	}
	type key struct {
		attr string
		val  relstore.Value
	}
	vec := func(rows []*relstore.Tuple) map[key]float64 {
		m := map[key]float64{}
		for _, oa := range otherAttrs {
			oi := t.ColumnIndex(oa)
			if oi < 0 {
				continue
			}
			for _, r := range rows {
				v := r.Values[oi]
				if !v.IsNull() {
					m[key{oa, v}]++
				}
			}
		}
		return m
	}
	a, b := vec(rows1), vec(rows2)
	dot, na, nb := 0.0, 0.0, 0.0
	for k, x := range a {
		na += x * x
		dot += x * b[k]
	}
	for _, x := range b {
		nb += x * x
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// SynonymsFromClicks finds historical queries whose clicked/top results
// overlap q's by at least minJaccard (Cheng et al. ICDE'10, slide 101).
func SynonymsFromClicks(clicks map[string][]invindex.DocID, q string, minJaccard float64) []string {
	mine, ok := clicks[q]
	if !ok {
		return nil
	}
	mineSet := map[invindex.DocID]bool{}
	for _, d := range mine {
		mineSet[d] = true
	}
	var out []string
	for other, docs := range clicks {
		if other == q {
			continue
		}
		inter, union := 0, len(mineSet)
		seen := map[invindex.DocID]bool{}
		for _, d := range docs {
			if seen[d] {
				continue
			}
			seen[d] = true
			if mineSet[d] {
				inter++
			} else {
				union++
			}
		}
		if union > 0 && float64(inter)/float64(union) >= minJaccard {
			out = append(out, other)
		}
	}
	sort.Strings(out)
	return out
}
