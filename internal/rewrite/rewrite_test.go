package rewrite

import (
	"math"
	"reflect"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
)

func interpreter() *Interpreter {
	return NewInterpreter(dataset.Products(), "product",
		[]string{"brand"}, []string{"screen"})
}

// TestSlide99IBMMapsToLenovo reproduces E9's categorical half: the DQP
// "ibm laptop" vs "laptop" shifts the brand distribution decisively toward
// Lenovo.
func TestSlide99IBMMapsToLenovo(t *testing.T) {
	ip := interpreter()
	cat, _ := ip.DQP("ibm", []string{"laptop"})
	if cat == nil {
		t.Fatal("no categorical mapping learned for ibm")
	}
	if cat.Attr != "brand" || cat.Value.Str != "Lenovo" {
		t.Fatalf("mapping = %+v, want brand=Lenovo", cat)
	}
	if cat.Divergence <= ip.MinDivergence {
		t.Errorf("divergence %v not significant", cat.Divergence)
	}
}

// TestSlide99SmallMapsToOrderBy reproduces E9's numeric half: "small
// laptop" pulls the screen-size distribution down, so "small" maps to
// ORDER BY screen ASC.
func TestSlide99SmallMapsToOrderBy(t *testing.T) {
	ip := interpreter()
	// The word "small" barely appears in descriptions; simulate the DQP
	// with "ultraportable"/"ultralight"-flavoured foregrounds via the
	// keyword that does appear: "netbook" names the smallest machine.
	_, num := ip.DQP("netbook", []string{"laptop"})
	if num == nil {
		t.Fatal("no numeric mapping learned")
	}
	if num.Attr != "screen" || !num.Ascending {
		t.Fatalf("mapping = %+v, want screen ASC", num)
	}
}

func TestTranslate(t *testing.T) {
	ip := interpreter()
	tr := ip.Translate("ibm laptop")
	if len(tr.Predicates) != 1 || tr.Predicates[0].Value.Str != "Lenovo" {
		t.Fatalf("predicates = %+v", tr.Predicates)
	}
	// "laptop" matches nearly everything: no confident mapping, stays a
	// LIKE term.
	if !reflect.DeepEqual(tr.LikeTerms, []string{"laptop"}) {
		t.Errorf("like terms = %v", tr.LikeTerms)
	}
}

func TestDQPNoMatches(t *testing.T) {
	ip := interpreter()
	cat, num := ip.DQP("zzzz", []string{"laptop"})
	if cat != nil || num != nil {
		t.Errorf("unmatched keyword should learn nothing")
	}
}

func TestEarthMover(t *testing.T) {
	if got := earthMover([]float64{0, 1}, []float64{0, 1}); got != 0 {
		t.Errorf("EMD(same) = %v", got)
	}
	// Mass shifted by the whole range: EMD = 1 after normalization.
	if got := earthMover([]float64{0, 0}, []float64{1, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("EMD(opposite) = %v, want 1", got)
	}
	// Symmetry.
	a, b := []float64{1, 2, 3}, []float64{2, 3, 5}
	if math.Abs(earthMover(a, b)-earthMover(b, a)) > 1e-12 {
		t.Errorf("EMD not symmetric")
	}
}

func TestValueSimilarity(t *testing.T) {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "car",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.KindInt},
			{Name: "model", Type: relstore.KindString},
			{Name: "class", Type: relstore.KindString},
			{Name: "fuel", Type: relstore.KindString},
		},
		Key: "id",
	})
	rows := []struct{ model, class, fuel string }{
		{"civic", "compact", "gas"},
		{"civic", "compact", "hybrid"},
		{"corolla", "compact", "gas"},
		{"corolla", "compact", "hybrid"},
		{"f150", "truck", "diesel"},
	}
	for i, r := range rows {
		db.MustInsert("car", map[string]relstore.Value{
			"id":    relstore.Int(int64(i)),
			"model": relstore.String(r.model),
			"class": relstore.String(r.class),
			"fuel":  relstore.String(r.fuel),
		})
	}
	simCC := ValueSimilarity(db, "car", "model",
		relstore.String("civic"), relstore.String("corolla"), []string{"class", "fuel"})
	simCF := ValueSimilarity(db, "car", "model",
		relstore.String("civic"), relstore.String("f150"), []string{"class", "fuel"})
	if !(simCC > simCF) {
		t.Errorf("civic~corolla (%v) must exceed civic~f150 (%v)", simCC, simCF)
	}
	if math.Abs(simCC-1) > 1e-9 {
		t.Errorf("identical distributions should have similarity 1, got %v", simCC)
	}
	if got := ValueSimilarity(db, "car", "model", relstore.String("none"), relstore.String("civic"), []string{"class"}); got != 0 {
		t.Errorf("missing value similarity = %v", got)
	}
}

func TestSynonymsFromClicks(t *testing.T) {
	clicks := map[string][]invindex.DocID{
		"indiana jones iv": {1, 2, 3, 4},
		"indiana jones 4":  {1, 2, 3, 5},
		"star wars":        {9, 10},
	}
	got := SynonymsFromClicks(clicks, "indiana jones iv", 0.5)
	if !reflect.DeepEqual(got, []string{"indiana jones 4"}) {
		t.Fatalf("synonyms = %v", got)
	}
	if got := SynonymsFromClicks(clicks, "nosuch", 0.5); got != nil {
		t.Errorf("unknown query synonyms = %v", got)
	}
}
