package schemagraph

import (
	"testing"

	"kwsearch/internal/dataset"
)

// TestFingerprintOrderIndependent pins the property the plan cache
// (internal/plan) keys on: two graphs built from the same schema — in any
// table or edge order — share a fingerprint.
func TestFingerprintOrderIndependent(t *testing.T) {
	tables := []string{"author", "write", "paper", "conference"}
	edges := []Edge{
		{From: "write", FromCol: "aid", To: "author", ToCol: "aid"},
		{From: "write", FromCol: "pid", To: "paper", ToCol: "pid"},
		{From: "paper", FromCol: "cid", To: "conference", ToCol: "cid"},
	}
	a, err := New(tables, edges)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(
		[]string{"paper", "conference", "write", "author"},
		[]Edge{edges[2], edges[0], edges[1]},
	)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("same schema, different fingerprints: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if len(a.Fingerprint()) != 16 {
		t.Errorf("fingerprint %q not a 16-hex-digit hash", a.Fingerprint())
	}
}

// TestFingerprintDistinguishesSchemas checks that any schema change the
// plan cache must notice — a new table, a new foreign key, a reweighted
// edge — moves the fingerprint.
func TestFingerprintDistinguishesSchemas(t *testing.T) {
	tables := []string{"author", "write", "paper"}
	edges := []Edge{
		{From: "write", FromCol: "aid", To: "author", ToCol: "aid"},
		{From: "write", FromCol: "pid", To: "paper", ToCol: "pid"},
	}
	base, err := New(tables, edges)
	if err != nil {
		t.Fatal(err)
	}

	withTable, err := New(append([]string{"cite"}, tables...), edges)
	if err != nil {
		t.Fatal(err)
	}
	if withTable.Fingerprint() == base.Fingerprint() {
		t.Error("adding a table did not change the fingerprint")
	}

	withEdge, err := New(tables, append([]Edge{{From: "author", FromCol: "favpid", To: "paper", ToCol: "pid"}}, edges...))
	if err != nil {
		t.Fatal(err)
	}
	if withEdge.Fingerprint() == base.Fingerprint() {
		t.Error("adding a foreign key did not change the fingerprint")
	}

	reweighted := []Edge{edges[0], edges[1]}
	reweighted[1].Weight = 0.5
	withWeight, err := New(tables, reweighted)
	if err != nil {
		t.Fatal(err)
	}
	if withWeight.Fingerprint() == base.Fingerprint() {
		t.Error("reweighting an edge did not change the fingerprint")
	}
}

// TestFingerprintFromDBStable: FromDB on the same dataset always lands on
// the same fingerprint (the cache key survives process restarts), and a
// dataset with a different schema lands elsewhere.
func TestFingerprintFromDBStable(t *testing.T) {
	a := FromDB(dataset.DBLP(dataset.DefaultDBLPConfig()))
	b := FromDB(dataset.DBLP(dataset.DefaultDBLPConfig()))
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("same dataset, different fingerprints: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if w := FromDB(dataset.WidomBib()); w.Fingerprint() == a.Fingerprint() {
		t.Error("distinct schemas share a fingerprint")
	}
}
