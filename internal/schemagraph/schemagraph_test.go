package schemagraph

import (
	"math"
	"reflect"
	"testing"

	"kwsearch/internal/relstore"
)

func bibGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New(
		[]string{"author", "write", "paper", "conference"},
		[]Edge{
			{From: "write", FromCol: "aid", To: "author", ToCol: "aid"},
			{From: "write", FromCol: "pid", To: "paper", ToCol: "pid"},
			{From: "paper", FromCol: "cid", To: "conference", ToCol: "cid"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]string{"a", "a"}, nil); err == nil {
		t.Errorf("duplicate table must error")
	}
	if _, err := New([]string{"a"}, []Edge{{From: "a", To: "b"}}); err == nil {
		t.Errorf("edge to unknown table must error")
	}
	if _, err := New([]string{"a"}, []Edge{{From: "b", To: "a"}}); err == nil {
		t.Errorf("edge from unknown table must error")
	}
}

func TestNeighbors(t *testing.T) {
	g := bibGraph(t)
	got := g.Neighbors("write")
	want := []string{"author", "paper"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(write) = %v, want %v", got, want)
	}
	got = g.Neighbors("paper")
	want = []string{"conference", "write"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(paper) = %v, want %v", got, want)
	}
	if n := g.Neighbors("author"); len(n) != 1 || n[0] != "write" {
		t.Errorf("Neighbors(author) = %v", n)
	}
}

func TestAdjacentAndEdges(t *testing.T) {
	g := bibGraph(t)
	if len(g.Edges()) != 3 {
		t.Errorf("Edges() len = %d, want 3", len(g.Edges()))
	}
	adj := g.Adjacent("write")
	if len(adj) != 2 {
		t.Errorf("Adjacent(write) len = %d, want 2", len(adj))
	}
	for _, e := range adj {
		if e.Weight != 1 {
			t.Errorf("default weight = %v, want 1", e.Weight)
		}
	}
	if !g.HasTable("paper") || g.HasTable("nosuch") {
		t.Errorf("HasTable broken")
	}
}

// TestPathWeightPrecisExample reproduces slide 52: path
// person -> review -> conference -> sponsor has weight 0.8*0.9*0.5 = 0.36,
// below the 0.4 minimum, so sponsor would be excluded.
func TestPathWeightPrecisExample(t *testing.T) {
	g, err := New(
		[]string{"person", "review", "conference", "sponsor"},
		[]Edge{
			{From: "person", To: "review", Weight: 0.8},
			{From: "review", To: "conference", Weight: 0.9},
			{From: "conference", To: "sponsor", Weight: 0.5},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	w := g.PathWeight([]string{"person", "review", "conference", "sponsor"})
	if math.Abs(w-0.36) > 1e-12 {
		t.Errorf("path weight = %v, want 0.36", w)
	}
	if w >= 0.4 {
		t.Errorf("slide 52: weight %v must fall below the 0.4 threshold", w)
	}
	if g.PathWeight([]string{"person", "sponsor"}) != 0 {
		t.Errorf("non-adjacent hop must yield weight 0")
	}
	if g.PathWeight([]string{"person"}) != 1 {
		t.Errorf("trivial path must have weight 1")
	}
}

func TestFromDB(t *testing.T) {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name:    "author",
		Columns: []relstore.Column{{Name: "aid", Type: relstore.KindInt}},
		Key:     "aid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "write",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "aid", RefTable: "author", RefColumn: "aid"},
		},
	})
	g := FromDB(db)
	if !g.HasTable("author") || !g.HasTable("write") {
		t.Fatalf("FromDB missing tables: %v", g.Tables())
	}
	if len(g.Edges()) != 1 {
		t.Fatalf("FromDB edges = %v", g.Edges())
	}
	e := g.Edges()[0]
	if e.From != "write" || e.To != "author" || e.FromCol != "aid" {
		t.Errorf("edge = %+v", e)
	}
}

func TestSelfReferencingEdge(t *testing.T) {
	// Citation-style self edge (paper cites paper).
	g, err := New([]string{"paper"}, []Edge{{From: "paper", To: "paper", FromCol: "citing", ToCol: "cited"}})
	if err != nil {
		t.Fatal(err)
	}
	n := g.Neighbors("paper")
	if len(n) != 1 || n[0] != "paper" {
		t.Errorf("self-edge neighbors = %v", n)
	}
	if len(g.Adjacent("paper")) != 1 {
		t.Errorf("self-edge should be stored once in adjacency")
	}
}
