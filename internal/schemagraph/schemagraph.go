// Package schemagraph models the schema graph of a relational database:
// one node per relation, one edge per foreign-key relationship. Candidate
// network enumeration (DISCOVER) and query-form generation walk this graph.
package schemagraph

import (
	"fmt"
	"sort"

	"kwsearch/internal/relstore"
)

// Edge is one foreign-key relationship. Direction matters for join
// semantics (From references To) but candidate networks treat edges as
// traversable both ways.
type Edge struct {
	From    string // referencing table
	FromCol string
	To      string // referenced table
	ToCol   string
	// Weight expresses schema-level closeness; 1 by default. Précis-style
	// return-schema pruning multiplies weights along paths.
	Weight float64
}

// Graph is an immutable schema graph.
type Graph struct {
	tables []string
	index  map[string]int
	edges  []Edge
	adj    map[string][]int // table -> indices into edges (either endpoint)
	fp     string           // content fingerprint, computed at construction
}

// New builds a schema graph over the given table names and edges. Unknown
// endpoint names are an error.
func New(tables []string, edges []Edge) (*Graph, error) {
	g := &Graph{
		tables: append([]string(nil), tables...),
		index:  make(map[string]int, len(tables)),
		adj:    make(map[string][]int),
	}
	sort.Strings(g.tables)
	for i, t := range g.tables {
		if _, dup := g.index[t]; dup {
			return nil, fmt.Errorf("schemagraph: duplicate table %s", t)
		}
		g.index[t] = i
	}
	for _, e := range edges {
		if _, ok := g.index[e.From]; !ok {
			return nil, fmt.Errorf("schemagraph: edge from unknown table %s", e.From)
		}
		if _, ok := g.index[e.To]; !ok {
			return nil, fmt.Errorf("schemagraph: edge to unknown table %s", e.To)
		}
		if e.Weight == 0 {
			e.Weight = 1
		}
		idx := len(g.edges)
		g.edges = append(g.edges, e)
		g.adj[e.From] = append(g.adj[e.From], idx)
		if e.To != e.From {
			g.adj[e.To] = append(g.adj[e.To], idx)
		}
	}
	g.fp = fingerprint(g.tables, g.edges)
	return g, nil
}

// fingerprint hashes the full graph content (sorted tables, sorted edge
// encodings including weights) with FNV-64a. Two graphs built from the
// same schema — in any table or edge order — share the fingerprint.
func fingerprint(tables []string, edges []Edge) string {
	encs := make([]string, 0, len(edges))
	for _, e := range edges {
		encs = append(encs, fmt.Sprintf("%s.%s->%s.%s@%g", e.From, e.FromCol, e.To, e.ToCol, e.Weight))
	}
	sort.Strings(encs)
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= uint64(';')
		h *= 1099511628211
	}
	for _, t := range tables { // already sorted by New
		mix(t)
	}
	mix("|")
	for _, e := range encs {
		mix(e)
	}
	return fmt.Sprintf("%016x", h)
}

// Fingerprint returns a stable content hash of the graph: equal for
// graphs with the same tables and foreign-key edges, regardless of
// construction order. The plan cache (internal/plan) keys compiled
// candidate-network sets by it, so schema changes — which always rebuild
// the immutable Graph — can never serve a stale plan.
func (g *Graph) Fingerprint() string { return g.fp }

// FromDB derives the schema graph of a relstore database from its declared
// foreign keys.
func FromDB(db *relstore.DB) *Graph {
	names := db.TableNames()
	var edges []Edge
	for _, name := range names {
		t := db.Table(name)
		for _, fk := range t.Schema.ForeignKeys {
			edges = append(edges, Edge{
				From:    name,
				FromCol: fk.Column,
				To:      fk.RefTable,
				ToCol:   fk.RefColumn,
				Weight:  1,
			})
		}
	}
	g, err := New(names, edges)
	if err != nil {
		// FromDB sees only validated schemas; an error indicates a
		// relstore invariant was broken.
		panic(err)
	}
	return g
}

// Tables returns the sorted table names.
func (g *Graph) Tables() []string {
	out := make([]string, len(g.tables))
	copy(out, g.tables)
	return out
}

// HasTable reports whether the table exists in the graph.
func (g *Graph) HasTable(name string) bool {
	_, ok := g.index[name]
	return ok
}

// Edges returns all foreign-key edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Adjacent returns the edges incident to table (in either direction).
func (g *Graph) Adjacent(table string) []Edge {
	idxs := g.adj[table]
	out := make([]Edge, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.edges[i])
	}
	return out
}

// Neighbors returns the distinct tables reachable from table via one edge,
// sorted for determinism.
func (g *Graph) Neighbors(table string) []string {
	seen := map[string]bool{}
	for _, e := range g.Adjacent(table) {
		other := e.To
		if other == table {
			other = e.From
		}
		if other != table || e.From == e.To {
			seen[other] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PathWeight multiplies edge weights along the given table path, returning
// 0 if any hop has no edge. Précis-style return-node pruning (slide 52)
// uses this to bound how far attributes may be pulled into a result schema.
func (g *Graph) PathWeight(path []string) float64 {
	if len(path) < 2 {
		return 1
	}
	w := 1.0
	for i := 0; i+1 < len(path); i++ {
		ew, ok := g.edgeWeight(path[i], path[i+1])
		if !ok {
			return 0
		}
		w *= ew
	}
	return w
}

func (g *Graph) edgeWeight(a, b string) (float64, bool) {
	best, found := 0.0, false
	for _, idx := range g.adj[a] {
		e := g.edges[idx]
		if (e.From == a && e.To == b) || (e.From == b && e.To == a) {
			if !found || e.Weight > best {
				best, found = e.Weight, true
			}
		}
	}
	return best, found
}
