// Package ntc ranks candidate structures by how statistically related
// their entity types are (slides 40-43): the generalized participation
// ratios of Jayapandian & Jagadish (VLDB'08) and the Normalized Total
// Correlation of Termehchy & Winslett (CIKM'09), computed from data
// statistics rather than manual schema weights.
package ntc

import (
	"math"

	"kwsearch/internal/relstore"
)

// Joint is an empirical joint distribution over n variables: each cell is
// one observed combination with a count.
type Joint struct {
	n     int
	cells map[string]int
	total int
	// marginals[i] maps a variable's value to its count.
	marginals []map[string]int
}

// NewJoint creates a joint distribution over n variables.
func NewJoint(n int) *Joint {
	j := &Joint{n: n, cells: map[string]int{}, marginals: make([]map[string]int, n)}
	for i := range j.marginals {
		j.marginals[i] = map[string]int{}
	}
	return j
}

// Add records one observation of the given value combination.
func (j *Joint) Add(values ...string) {
	if len(values) != j.n {
		panic("ntc: arity mismatch")
	}
	key := ""
	for _, v := range values {
		key += v + "\x00"
	}
	j.cells[key]++
	j.total++
	for i, v := range values {
		j.marginals[i][v]++
	}
}

// entropy computes H (bits) from counts summing to total.
func entropy(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// MarginalEntropy returns H(Pᵢ) in bits.
func (j *Joint) MarginalEntropy(i int) float64 {
	return entropy(j.marginals[i], j.total)
}

// JointEntropy returns H(P₁,…,Pₙ) in bits.
func (j *Joint) JointEntropy() float64 {
	return entropy(j.cells, j.total)
}

// TotalCorrelation returns I(P) = Σᵢ H(Pᵢ) − H(P₁,…,Pₙ) (slide 42):
// zero means the variables are statistically unrelated.
func (j *Joint) TotalCorrelation() float64 {
	s := 0.0
	for i := 0; i < j.n; i++ {
		s += j.MarginalEntropy(i)
	}
	return s - j.JointEntropy()
}

// NormalizedTotalCorrelation returns I*(P) = f(n)·I(P)/H(P₁,…,Pₙ) with
// f(n) = n²/(n−1)² (slide 43) — the quantity NTC ranks answer structures
// by, independent of the query.
func (j *Joint) NormalizedTotalCorrelation() float64 {
	h := j.JointEntropy()
	if h == 0 {
		return 0
	}
	n := float64(j.n)
	f := (n * n) / ((n - 1) * (n - 1))
	return f * j.TotalCorrelation() / h
}

// JointFromJoin builds the (left, right) joint distribution of a binary
// relationship table: each link tuple contributes one observation of
// (value of leftCol, value of rightCol).
func JointFromJoin(t *relstore.Table, leftCol, rightCol string) *Joint {
	li := t.ColumnIndex(leftCol)
	ri := t.ColumnIndex(rightCol)
	j := NewJoint(2)
	if li < 0 || ri < 0 {
		return j
	}
	for _, tp := range t.Tuples() {
		j.Add(tp.Values[li].Text(), tp.Values[ri].Text())
	}
	return j
}

// Participation returns the generalized participation ratio P(T1 → T2)
// of slide 40: the fraction of T1's instances connected to at least one T2
// instance through the link table (whose fromCol references T1's key and
// toCol references T2's key).
func Participation(db *relstore.DB, t1 string, link string, fromCol string) float64 {
	base := db.Table(t1)
	lt := db.Table(link)
	if base == nil || lt == nil || base.Len() == 0 {
		return 0
	}
	fi := lt.ColumnIndex(fromCol)
	if fi < 0 {
		return 0
	}
	connected := map[relstore.Value]bool{}
	for _, tp := range lt.Tuples() {
		v := tp.Values[fi]
		if !v.IsNull() {
			connected[v] = true
		}
	}
	n := 0
	key := base.Schema.Key
	ki := base.ColumnIndex(key)
	for _, tp := range base.Tuples() {
		if connected[tp.Values[ki]] {
			n++
		}
	}
	return float64(n) / float64(base.Len())
}

// Relatedness of two entity types is the average of their mutual
// participation ratios (slide 40).
func Relatedness(p12, p21 float64) float64 { return (p12 + p21) / 2 }
