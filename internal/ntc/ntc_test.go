package ntc

import (
	"math"
	"testing"

	"kwsearch/internal/relstore"
)

// slide42Joint is the author-paper joint of slide 42: six uniform cells
// with one repeated author, yielding H(A)=2.25, H(P)=1.92, H(A,P)=2.58,
// I(A,P)=1.59 (bits, to 2 decimals).
func slide42Joint() *Joint {
	j := NewJoint(2)
	j.Add("A1", "P1")
	j.Add("A2", "P1")
	j.Add("A3", "P2")
	j.Add("A4", "P2")
	j.Add("A5", "P3")
	j.Add("A5", "P4")
	return j
}

// slide43Joint is the editor-paper joint: two editors each editing one
// paper, H(E)=H(P)=H(E,P)=1.0, I=1.0.
func slide43Joint() *Joint {
	j := NewJoint(2)
	j.Add("E1", "P1")
	j.Add("E2", "P2")
	return j
}

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

// TestSlide42Numbers reproduces E5's author-paper entropy table.
func TestSlide42Numbers(t *testing.T) {
	j := slide42Joint()
	if got := j.MarginalEntropy(0); !approx(got, 2.25, 0.005) {
		t.Errorf("H(A) = %v, want 2.25", got)
	}
	if got := j.MarginalEntropy(1); !approx(got, 1.92, 0.005) {
		t.Errorf("H(P) = %v, want 1.92", got)
	}
	if got := j.JointEntropy(); !approx(got, 2.58, 0.005) {
		t.Errorf("H(A,P) = %v, want 2.58", got)
	}
	if got := j.TotalCorrelation(); !approx(got, 1.59, 0.01) {
		t.Errorf("I(A,P) = %v, want 1.59", got)
	}
}

// TestSlide43Numbers reproduces E5's editor-paper column.
func TestSlide43Numbers(t *testing.T) {
	j := slide43Joint()
	if got := j.MarginalEntropy(0); !approx(got, 1.0, 1e-9) {
		t.Errorf("H(E) = %v", got)
	}
	if got := j.JointEntropy(); !approx(got, 1.0, 1e-9) {
		t.Errorf("H(E,P) = %v", got)
	}
	if got := j.TotalCorrelation(); !approx(got, 1.0, 1e-9) {
		t.Errorf("I(E,P) = %v, want 1.0", got)
	}
	// Normalized: f(2)=4, I*=4·1.0/1.0=4 — the editor-paper association is
	// deterministic, hence maximally correlated relative to its entropy.
	if got := j.NormalizedTotalCorrelation(); !approx(got, 4.0, 1e-9) {
		t.Errorf("I*(E,P) = %v, want 4.0", got)
	}
	ap := slide42Joint()
	if !(j.NormalizedTotalCorrelation() > ap.NormalizedTotalCorrelation()) {
		t.Errorf("deterministic editor-paper must have higher I* than author-paper")
	}
}

func TestIndependentVariablesHaveZeroCorrelation(t *testing.T) {
	j := NewJoint(2)
	for _, a := range []string{"x", "y"} {
		for _, b := range []string{"1", "2"} {
			j.Add(a, b)
		}
	}
	if got := j.TotalCorrelation(); !approx(got, 0, 1e-9) {
		t.Errorf("I(independent) = %v, want 0", got)
	}
	if got := j.NormalizedTotalCorrelation(); !approx(got, 0, 1e-9) {
		t.Errorf("I*(independent) = %v, want 0", got)
	}
}

func TestJointFromJoinAndParticipation(t *testing.T) {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name:    "author",
		Columns: []relstore.Column{{Name: "aid", Type: relstore.KindInt}},
		Key:     "aid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "write",
		Columns: []relstore.Column{
			{Name: "aid", Type: relstore.KindInt},
			{Name: "pid", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "aid", RefTable: "author", RefColumn: "aid"},
		},
	})
	for i := 1; i <= 6; i++ {
		db.MustInsert("author", map[string]relstore.Value{"aid": relstore.Int(int64(i))})
	}
	// Five of six authors write (slide 40: P(A→P) = 5/6).
	links := [][2]int64{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {5, 4}}
	for _, l := range links {
		db.MustInsert("write", map[string]relstore.Value{
			"aid": relstore.Int(l[0]), "pid": relstore.Int(l[1]),
		})
	}
	if got := Participation(db, "author", "write", "aid"); !approx(got, 5.0/6, 1e-9) {
		t.Errorf("P(A→P) = %v, want 5/6", got)
	}
	j := JointFromJoin(db.Table("write"), "aid", "pid")
	if got := j.TotalCorrelation(); !approx(got, 1.59, 0.01) {
		t.Errorf("I from join table = %v, want 1.59", got)
	}
	if got := Relatedness(5.0/6, 1.0); !approx(got, 11.0/12, 1e-9) {
		t.Errorf("relatedness = %v", got)
	}
}

func TestAddArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("arity mismatch must panic")
		}
	}()
	NewJoint(2).Add("only-one")
}
