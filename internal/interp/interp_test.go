package interp

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
)

func TestInterpretWidomXML(t *testing.T) {
	in := New(dataset.WidomBib(), nil)
	its := in.Interpret("widom xml", 5)
	if len(its) == 0 {
		t.Fatal("no interpretations")
	}
	top := its[0]
	// The natural reading binds widom to author.name and xml to paper.title.
	if top.Template() != "author-paper" {
		t.Errorf("top template = %s, want author-paper", top.Template())
	}
	found := map[string]string{}
	for _, b := range top.Bindings {
		found[b.Keyword] = b.Table + "." + b.Column
	}
	if found["widom"] != "author.name" || found["xml"] != "paper.title" {
		t.Errorf("bindings = %v", found)
	}
	// Scores descend.
	for i := 1; i < len(its); i++ {
		if its[i].Score > its[i-1].Score {
			t.Fatalf("not sorted")
		}
	}
	if s := top.String(); !strings.Contains(s, "widom→author.name") {
		t.Errorf("render = %q", s)
	}
}

func TestInterpretUnboundKeyword(t *testing.T) {
	in := New(dataset.WidomBib(), nil)
	if got := in.Interpret("zzzznone widom", 5); got != nil {
		t.Errorf("unbindable keyword produced %v", got)
	}
	if got := in.Interpret("", 5); got != nil {
		t.Errorf("empty query produced %v", got)
	}
}

// TestLogSteersTemplateChoice: slide 46 — with a query log favouring a
// template, its interpretations outrank data-only ties.
func TestLogSteersTemplateChoice(t *testing.T) {
	db := dataset.WidomBib()
	// "xml" binds only to paper.title, "widom" only to author.name; invent
	// an ambiguous keyword by querying one term bindable in both tables:
	// use "datalog" (paper) and "jennifer" (author) — unambiguous — so
	// instead test the template prior directly via two queries.
	noLog := New(db, nil)
	its := noLog.Interpret("xml", 3)
	if len(its) == 0 || its[0].Template() != "paper" {
		t.Fatalf("baseline = %v", its)
	}
	withLog := New(db, []LogEntry{
		{Template: "paper", Bound: [][2]string{{"paper", "title"}}, Count: 9},
	})
	its2 := withLog.Interpret("xml", 3)
	if len(its2) == 0 {
		t.Fatal("no interpretations with log")
	}
	if !(its2[0].Score > its[0].Score*noLog.templatePrior("paper")) && its2[0].Template() != "paper" {
		t.Errorf("log did not boost the paper template")
	}
	// Prior arithmetic: template seen 9 of 9 -> (9+1)/(9+10) ≈ 0.53 vs
	// unseen (0+1)/(9+10).
	if !(withLog.templatePrior("paper") > withLog.templatePrior("author")) {
		t.Errorf("template priors not ordered by log evidence")
	}
	if noLog.templatePrior("anything") != 1 {
		t.Errorf("no-log template prior must be 1")
	}
}

func TestAttributePrior(t *testing.T) {
	db := dataset.WidomBib()
	in := New(db, []LogEntry{
		{Template: "author-paper", Bound: [][2]string{{"author", "name"}}, Count: 8},
		{Template: "author-paper", Bound: [][2]string{{"paper", "title"}}, Count: 2},
	})
	bName := Binding{Keyword: "x", Table: "author", Column: "name"}
	bTitle := Binding{Keyword: "x", Table: "paper", Column: "title"}
	if !(in.attributePrior("author-paper", bName) > in.attributePrior("author-paper", bTitle)) {
		t.Errorf("attribute prior not ordered by log evidence")
	}
}

func TestSUITSRankPrefersSelectiveBindings(t *testing.T) {
	db := dataset.WidomBib()
	in := New(db, nil)
	its := in.Interpret("xml", 0)
	ranked := in.SUITSRank(its)
	if len(ranked) == 0 {
		t.Fatal("no ranked interpretations")
	}
	// All interpretations keep descending scores after re-ranking.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("SUITS rank not sorted")
		}
	}
}

func TestMaxBindingsCap(t *testing.T) {
	in := New(dataset.WidomBib(), nil)
	in.MaxBindingsPerKeyword = 1
	its := in.Interpret("widom xml", 0)
	if len(its) != 1 {
		t.Fatalf("with 1 binding per keyword there must be exactly 1 interpretation, got %d", len(its))
	}
}
