// Package interp ranks structured interpretations of keyword queries over
// relational data (slides 44-48): candidate structured queries are a query
// template (a candidate network shape) plus keyword-to-attribute bindings.
// SUITS ranks them by heuristics (Zhou et al. '07), IQP scores bindings
// and templates probabilistically from a query log with a data-statistics
// fallback (Demidova et al. TKDE'11), in the spirit of Petkova et al.'s
// probabilistic combination of content and structure (ECIR'09).
package interp

import (
	"fmt"
	"sort"
	"strings"

	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
)

// Binding assigns one query keyword to one (table, column) predicate.
type Binding struct {
	Keyword string
	Table   string
	Column  string
}

// String renders "widom→author.name".
func (b Binding) String() string {
	return fmt.Sprintf("%s→%s.%s", b.Keyword, b.Table, b.Column)
}

// Interpretation is one candidate structured query: a template (the set of
// tables to join, identified by name) plus one binding per keyword.
type Interpretation struct {
	// Tables is the sorted join template.
	Tables   []string
	Bindings []Binding
	Score    float64
}

// Template renders the grouping key, e.g. "author-write-paper".
func (it Interpretation) Template() string { return strings.Join(it.Tables, "-") }

// String renders "author-paper-write {widom→author.name, xml→paper.title}".
func (it Interpretation) String() string {
	parts := make([]string, len(it.Bindings))
	for i, b := range it.Bindings {
		parts[i] = b.String()
	}
	return fmt.Sprintf("%s {%s} %.4f", it.Template(), strings.Join(parts, ", "), it.Score)
}

// LogEntry is one historical structured query for the IQP estimators.
type LogEntry struct {
	// Template is the joined-table key (sorted, dash-separated).
	Template string
	// Bound lists the (table, column) pairs the query put predicates on.
	Bound [][2]string
	Count int
}

// Interpreter enumerates and scores interpretations.
type Interpreter struct {
	db *relstore.DB
	ix *invindex.Index
	// Log drives Pr[T] and Pr[A|T] when present (slide 46); without it the
	// estimators fall back to data statistics (the slide's open question).
	Log []LogEntry
	// MaxBindingsPerKeyword caps candidate columns per keyword.
	MaxBindingsPerKeyword int
}

// New builds an interpreter over db.
func New(db *relstore.DB, log []LogEntry) *Interpreter {
	return &Interpreter{db: db, ix: invindex.FromDB(db), Log: log, MaxBindingsPerKeyword: 4}
}

// bindingCandidate scores how well keyword fits column values: the
// fraction of the column's distinct values containing the keyword, times
// coverage of the matched values by the keyword (slide 45: "keywords
// should cover a majority part of the value of a binding attribute").
type bindingCandidate struct {
	Binding
	prob float64
}

// candidates returns the scored candidate bindings of one keyword.
func (in *Interpreter) candidates(keyword string) []bindingCandidate {
	var out []bindingCandidate
	for _, name := range in.db.TableNames() {
		t := in.db.Table(name)
		for ci, col := range t.Schema.Columns {
			if !col.Text {
				continue
			}
			matched, total := 0, 0
			coverage := 0.0
			for _, tp := range t.Tuples() {
				v := tp.Values[ci].Text()
				if v == "" {
					continue
				}
				total++
				if text.Contains(v, keyword) {
					matched++
					coverage += 1 / float64(len(text.Tokenize(v)))
				}
			}
			if matched == 0 || total == 0 {
				continue
			}
			selectivity := float64(matched) / float64(total)
			// Rare, well-covered matches bind confidently: P(binding) ∝
			// coverage of the value, damped by how unselective it is.
			p := (coverage / float64(matched)) * (1 - selectivity/2)
			out = append(out, bindingCandidate{
				Binding: Binding{Keyword: keyword, Table: name, Column: col.Name},
				prob:    p,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].prob != out[j].prob {
			return out[i].prob > out[j].prob
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	if len(out) > in.MaxBindingsPerKeyword {
		out = out[:in.MaxBindingsPerKeyword]
	}
	return out
}

// templatePrior is Pr[T]: from the log when available, else uniform.
func (in *Interpreter) templatePrior(template string) float64 {
	if len(in.Log) == 0 {
		return 1
	}
	total, hit := 0, 0
	for _, e := range in.Log {
		total += e.Count
		if e.Template == template {
			hit += e.Count
		}
	}
	return (float64(hit) + 1) / (float64(total) + 10) // smoothed
}

// attributePrior is Pr[A|T]: how often the log binds this attribute under
// the template; 1 without a log.
func (in *Interpreter) attributePrior(template string, b Binding) float64 {
	if len(in.Log) == 0 {
		return 1
	}
	total, hit := 0, 0
	for _, e := range in.Log {
		if e.Template != template {
			continue
		}
		total += e.Count
		for _, bound := range e.Bound {
			if bound[0] == b.Table && bound[1] == b.Column {
				hit += e.Count
				break
			}
		}
	}
	return (float64(hit) + 1) / (float64(total) + 5)
}

// Interpret enumerates interpretations of the keyword query and ranks them
// by Pr[A, T | Q] ∝ Πᵢ Pr[Aᵢ | T] · Pr[Aᵢ bind] · Pr[T] (slide 46's
// factorization). Templates are the sorted table sets the bindings touch.
func (in *Interpreter) Interpret(query string, k int) []Interpretation {
	keywords := text.Tokenize(query)
	if len(keywords) == 0 {
		return nil
	}
	cands := make([][]bindingCandidate, len(keywords))
	for i, kw := range keywords {
		cands[i] = in.candidates(kw)
		if len(cands[i]) == 0 {
			return nil // a keyword with no binding has no interpretation
		}
	}
	var out []Interpretation
	choice := make([]bindingCandidate, len(keywords))
	var rec func(i int)
	rec = func(i int) {
		if i == len(keywords) {
			tables := map[string]bool{}
			prob := 1.0
			bindings := make([]Binding, len(choice))
			for j, c := range choice {
				tables[c.Table] = true
				prob *= c.prob
				bindings[j] = c.Binding
			}
			sorted := make([]string, 0, len(tables))
			for t := range tables {
				sorted = append(sorted, t)
			}
			sort.Strings(sorted)
			template := strings.Join(sorted, "-")
			score := prob * in.templatePrior(template)
			for _, b := range bindings {
				score *= in.attributePrior(template, b)
			}
			out = append(out, Interpretation{Tables: sorted, Bindings: bindings, Score: score})
			return
		}
		for _, c := range cands[i] {
			choice[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].String() < out[j].String()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SUITSRank re-ranks interpretations with the slide-45 heuristics: small
// expected result size, high keyword coverage of binding values, and most
// keywords matched. It is query-log-free by design.
func (in *Interpreter) SUITSRank(its []Interpretation) []Interpretation {
	out := append([]Interpretation(nil), its...)
	for i := range out {
		size := 0
		for _, b := range out[i].Bindings {
			t := in.db.Table(b.Table)
			ci := t.ColumnIndex(b.Column)
			for _, tp := range t.Tuples() {
				if text.Contains(tp.Values[ci].Text(), b.Keyword) {
					size++
				}
			}
		}
		// Normalized small-result preference: fewer matching rows across
		// bindings suggest a more precise interpretation.
		out[i].Score = 1 / (1 + float64(size)) * float64(len(out[i].Bindings))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}
