package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"kwsearch/internal/dataset"
	"kwsearch/internal/resilience"
)

// renderCN serializes CN results bit-exactly (tuple IDs in CN node order
// plus raw score bits), so prefix comparisons are byte-level.
func renderCN(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		if r.CN != nil {
			b.WriteString(r.CN.Canonical())
		}
		for _, tp := range r.Tuples {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(int(tp.ID)))
		}
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.Score), 16))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestQueryCancellationIsPromptAndLeakFree is acceptance criterion (a):
// cancelling a Query blocked on an injected 10s evaluation delay must
// return within 50ms of the cancellation, and the goroutine count must
// settle back — no pool worker may outlive the query.
func TestQueryCancellationIsPromptAndLeakFree(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	before := runtime.NumGoroutine()

	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(resilience.WithInjector(context.Background(), in))
	defer cancel()

	type outcome struct {
		resp *Response
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := e.Query(ctx, Request{Query: "Widom XML", TopK: 10000, Workers: 2})
		done <- outcome{resp, err}
	}()

	// Wait until a worker is actually parked inside the injected delay.
	waitUntil := time.Now().Add(5 * time.Second)
	for in.Hits(resilience.StageEval) == 0 && time.Now().Before(waitUntil) {
		time.Sleep(time.Millisecond)
	}
	if in.Hits(resilience.StageEval) == 0 {
		t.Fatal("query never reached the evaluation stage")
	}

	cancelled := time.Now()
	cancel()
	select {
	case o := <-done:
		if took := time.Since(cancelled); took > 50*time.Millisecond {
			t.Errorf("Query returned %v after cancellation, want <= 50ms", took)
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Errorf("err = %v, want Canceled", o.err)
		}
		if o.resp != nil {
			t.Errorf("cancelled query returned a response: %+v", o.resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Query ignored cancellation")
	}

	// Goroutines must settle back to the pre-query level (the runtime may
	// keep a few of its own alive; allow a short drain window).
	settleBy := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(settleBy) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after drain", before, n)
	}
}

// TestDeadlinePartialIsPrefixOfFullAnswer is acceptance criterion (b): a
// deadline that expires mid-CN-evaluation yields Partial=true with a
// byte-exact prefix of the undeadlined answer, and a nil error.
func TestDeadlinePartialIsPrefixOfFullAnswer(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	req := Request{Query: "Widom XML", TopK: 10000, Workers: 2}

	// Partial run first so the full run cannot seed the result cache.
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 2 * time.Second, After: 2})
	pctx := resilience.WithInjector(context.Background(), in)
	preq := req
	preq.Deadline = 250 * time.Millisecond
	partial, err := e.Query(pctx, preq)
	if err != nil {
		t.Fatalf("deadlined query errored: %v", err)
	}
	if !partial.Partial || !partial.Stats.Partial {
		t.Fatalf("Partial not set (resp=%v stats=%v)", partial.Partial, partial.Stats.Partial)
	}

	full, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("undeadlined query claims Partial")
	}
	fullS, partS := renderCN(full.Results), renderCN(partial.Results)
	if !strings.HasPrefix(fullS, partS) {
		t.Errorf("partial answer is not a prefix of the full answer\npartial:\n%sfull:\n%s", partS, fullS)
	}
	if len(partial.Results) >= len(full.Results) && partial.Stats.Exec != nil && partial.Stats.Exec.Skipped == 0 {
		t.Log("deadline expired only after the pool finished; prefix check was trivial")
	}
}

// TestAdmissionShedsExcessQueries is acceptance criterion (c): with
// Admit(1, 0), a second concurrent query is shed with ErrOverloaded while
// the first holds the only slot, and the shed counter advances.
func TestAdmissionShedsExcessQueries(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	e.Admit(1, 0)

	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(resilience.WithInjector(context.Background(), in))
	done := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx, Request{Query: "Widom XML", TopK: 10000, Workers: 2})
		done <- err
	}()
	waitUntil := time.Now().Add(5 * time.Second)
	for in.Hits(resilience.StageEval) == 0 && time.Now().Before(waitUntil) {
		time.Sleep(time.Millisecond)
	}
	if in.Hits(resilience.StageEval) == 0 {
		cancel()
		t.Fatal("first query never reached evaluation")
	}

	if _, err := e.Query(context.Background(), Request{Query: "Widom XML"}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("second query err = %v, want ErrOverloaded", err)
	}
	if got := e.Metrics.Snapshot().Counters["query.shed"]; got != 1 {
		t.Errorf("query.shed = %d, want 1", got)
	}

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("first query err = %v, want Canceled", err)
	}

	// With queue room, a queued query that outlives its deadline fails
	// with the typed deadline error instead of being shed.
	e.Admit(1, 4)
	ctx2, cancel2 := context.WithCancel(resilience.WithInjector(context.Background(), in))
	defer cancel2()
	go func() {
		_, _ = e.Query(ctx2, Request{Query: "Widom XML", TopK: 10000, Workers: 2})
	}()
	waitUntil = time.Now().Add(5 * time.Second)
	for e.Gate().Queued() == 0 && time.Now().Before(waitUntil) {
		if _, err := e.Query(context.Background(), Request{Query: "Widom", Deadline: 5 * time.Millisecond}); errors.Is(err, ErrDeadlineExceeded) {
			cancel2()
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Error("queued query never failed with ErrDeadlineExceeded")
}

// TestBadQueryTyped: malformed requests match ErrBadQuery.
func TestBadQueryTyped(t *testing.T) {
	rel := NewRelational(dataset.WidomBib())
	if _, err := rel.Query(context.Background(), Request{Query: "   "}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("empty query err = %v, want ErrBadQuery", err)
	}
	if _, err := rel.Query(context.Background(), Request{Query: "widom", Semantics: SLCA}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("semantics mismatch err = %v, want ErrBadQuery", err)
	}
}
