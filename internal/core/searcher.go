package core

import (
	"context"

	"kwsearch/internal/obs"
	"kwsearch/internal/resilience"
)

// Searcher is the serving-layer seam over one logical engine: the
// context-first query contract plus the operational knobs the HTTP
// server, the load generator and the CLIs wire up. *Engine implements
// it directly; *shard.Coordinator implements it over N shard engines,
// so every transport runs unchanged against either.
type Searcher interface {
	// Query runs one search request under ctx; see Engine.Query for the
	// cancellation, deadline-partial and typed-error contract every
	// implementation must honor.
	Query(ctx context.Context, req Request) (*Response, error)
	// Registry returns the searcher's metrics registry (never nil for
	// constructor-built searchers).
	Registry() *obs.Registry
	// Admit installs admission control (non-positive limit removes it).
	Admit(limit, maxQueue int)
	// Gate returns the admission gate, nil unless Admit installed one.
	Gate() *resilience.Gate
	// SetSlowLog installs (or with nil removes) the tail-sampling
	// slow-query log.
	SetSlowLog(l *obs.SlowLog)
	// SlowLog returns the slow-query log, nil unless installed.
	SlowLog() *obs.SlowLog
	// SetPlanNamespace re-namespaces the plan cache (tenant isolation).
	SetPlanNamespace(ns string)
}

var _ Searcher = (*Engine)(nil)
