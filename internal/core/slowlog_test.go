package core

// Tests for the tail-sampling wiring: with a SlowLog installed every
// query runs a cheap trace, and slow / errored / shed queries are
// retained as exemplars with well-formed span trees — without changing
// what the caller sees (Response.Trace stays opt-in).

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"kwsearch/internal/dataset"
	"kwsearch/internal/obs"
)

func TestSlowLogCapturesSlowQueries(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	sl := obs.NewSlowLog(8, time.Nanosecond) // everything is "slow"
	e.SetSlowLog(sl)
	if e.SlowLog() != sl {
		t.Fatal("SlowLog accessor lost the log")
	}

	resp, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Error("sampling leaked the trace into Response.Trace without Request.Trace")
	}
	entries := sl.Entries()
	if len(entries) != 1 {
		t.Fatalf("captured %d entries, want 1", len(entries))
	}
	en := entries[0]
	if en.Outcome != obs.OutcomeSlow {
		t.Errorf("outcome = %q, want slow", en.Outcome)
	}
	if en.Trace == nil {
		t.Fatal("exemplar has no trace")
	}
	if err := en.Trace.WellFormed(time.Second); err != nil {
		t.Errorf("exemplar trace malformed: %v", err)
	}
	if len(en.Keywords) != 2 || en.KeywordsHash == "" {
		t.Errorf("keywords = %v hash = %q", en.Keywords, en.KeywordsHash)
	}
	if en.PlanSignature == "" {
		t.Error("exemplar missing plan signature (serial CN path)")
	}
	if st, ok := en.Stats.(Stats); !ok || st.Results != len(resp.Results) {
		t.Errorf("exemplar stats = %#v", en.Stats)
	}
	// The capture counter landed in the engine registry.
	if got := e.Metrics.Snapshot().Counters["slowlog.captured"]; got != 1 {
		t.Errorf("slowlog.captured = %d", got)
	}
}

func TestSlowLogIgnoresHealthyQueries(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	sl := obs.NewSlowLog(8, time.Hour) // nothing is slow
	e.SetSlowLog(sl)
	if _, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5}); err != nil {
		t.Fatal(err)
	}
	if sl.Len() != 0 {
		t.Fatalf("healthy query captured: %+v", sl.Entries())
	}
}

func TestSlowLogCapturesShedQueries(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	sl := obs.NewSlowLog(8, time.Hour)
	e.SetSlowLog(sl)
	e.Admit(1, 0)

	// Occupy the only slot so the next query sheds immediately.
	release, err := e.Gate().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, err = e.Query(context.Background(), Request{Query: "Widom XML"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	entries := sl.Entries()
	if len(entries) != 1 {
		t.Fatalf("captured %d entries, want 1", len(entries))
	}
	en := entries[0]
	if en.Outcome != obs.OutcomeShed {
		t.Errorf("outcome = %q, want shed", en.Outcome)
	}
	if en.Trace == nil {
		t.Fatal("shed exemplar has no trace")
	}
	if err := en.Trace.WellFormed(time.Second); err != nil {
		t.Errorf("shed trace malformed: %v", err)
	}
	// The tree must include the admit stage that rejected it.
	found := false
	en.Trace.Walk(func(sp *obs.Span, _ int) {
		if sp.Name() == "admit" {
			found = true
		}
	})
	if !found {
		t.Errorf("shed trace lacks admit span:\n%s", en.Trace.Shape())
	}
	if en.Err == "" {
		t.Error("shed exemplar missing error text")
	}
}

func TestSlowLogCapturesBadQueries(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	sl := obs.NewSlowLog(8, time.Hour)
	e.SetSlowLog(sl)
	if _, err := e.Query(context.Background(), Request{Query: "    "}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("err = %v, want ErrBadQuery", err)
	}
	entries := sl.Entries()
	if len(entries) != 1 || entries[0].Outcome != obs.OutcomeError {
		t.Fatalf("entries = %+v", entries)
	}
	if err := entries[0].Trace.WellFormed(time.Second); err != nil {
		t.Errorf("bad-query trace malformed: %v", err)
	}
}

func TestQueryEmitsStructuredLogLines(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	e.SetSlowLog(obs.NewSlowLog(8, time.Nanosecond))
	var buf bytes.Buffer
	lg := obs.NewLogger(&buf, obs.LevelDebug)
	ctx := obs.WithLogger(context.Background(), lg)
	ctx = obs.WithRequestID(ctx, "req-123")

	if _, err := e.Query(ctx, Request{Query: "Widom XML", TopK: 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"msg":"query captured in slowlog"`) {
		t.Errorf("missing capture warn line:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"query executed"`) {
		t.Errorf("missing debug line:\n%s", out)
	}
	if !strings.Contains(out, `"request_id":"req-123"`) {
		t.Errorf("request id not propagated into log lines:\n%s", out)
	}
	// The request id also reaches the exemplar.
	if en := e.SlowLog().Entries(); len(en) == 0 || en[0].RequestID != "req-123" {
		t.Errorf("exemplar request id = %+v", en)
	}
}

func TestQueryWindowedLatencyRecorded(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	if _, err := e.Query(context.Background(), Request{Query: "Widom XML"}); err != nil {
		t.Fatal(err)
	}
	s := e.Metrics.Snapshot()
	win, ok := s.Windows["query.latency_us"]
	if !ok {
		t.Fatal("windowed latency series missing")
	}
	if win.Last1m.Count != 1 || win.Last5m.Count != 1 {
		t.Errorf("windowed counts = %+v", win)
	}
	if _, ok := s.SLOs["query_latency"]; !ok {
		t.Error("query_latency SLO missing from snapshot")
	}
}

func TestPlanSignatureOnExecutorPath(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	resp, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.PlanSignature == "" {
		t.Error("executor path lost the plan signature")
	}
	if resp.Stats.Exec == nil || resp.Stats.Exec.PlanKey != resp.Stats.PlanSignature {
		t.Errorf("PlanKey mismatch: %+v", resp.Stats.Exec)
	}
}
