package core

import (
	"context"
	"strings"
	"testing"

	"kwsearch/internal/dataset"
)

// search runs a Request and returns just the results, the shape most of
// these tests assert on.
func search(t *testing.T, e *Engine, req Request) []Result {
	t.Helper()
	resp, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Results
}

func TestRelationalCNSearch(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	rs := search(t, e, Request{Query: "Widom XML", TopK: 5})
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	// The top result joins Widom to an XML paper through write.
	top := rs[0]
	if top.CN == nil || len(top.Tuples) != 3 {
		t.Fatalf("top = %+v", top)
	}
	if s := top.String(); !strings.Contains(s, "author") {
		t.Errorf("render = %q", s)
	}
}

func TestRelationalSparkSearch(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	rs := search(t, e, Request{Query: "Widom XML", TopK: 5, Semantics: SparkNetworks})
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatalf("not sorted")
		}
	}
}

func TestBanksAndSteinerSearch(t *testing.T) {
	e := NewRelational(dataset.SeltzerBerkeley())
	rs := search(t, e, Request{Query: "Seltzer Berkeley", TopK: 3, Semantics: DistinctRoot})
	if len(rs) == 0 || rs[0].Cost != 1 {
		t.Fatalf("banks results = %+v", rs)
	}
	if rs[0].Root == nil {
		t.Fatalf("root tuple not resolved")
	}
	st := search(t, e, Request{Query: "Seltzer Berkeley", Semantics: SteinerTree})
	if len(st) != 1 || st[0].Cost != 1 || len(st[0].Tuples) != 2 {
		t.Fatalf("steiner = %+v", st)
	}
}

func TestSearchWithCleaning(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	// Misspelled query is cleaned before searching.
	rs := search(t, e, Request{Query: "Widon XLM", TopK: 5, Clean: true})
	if len(rs) == 0 {
		t.Fatal("cleaned query found nothing")
	}
}

func TestXMLSearch(t *testing.T) {
	e := NewXML(dataset.ConfXML())
	rs := search(t, e, Request{Query: "keyword Mark"})
	if len(rs) != 1 || rs[0].Node.Label != "paper" {
		t.Fatalf("slca results = %+v", rs)
	}
	rs = search(t, e, Request{Query: "keyword Mark", Semantics: ELCA})
	if len(rs) == 0 {
		t.Fatal("elca results empty")
	}
	if s := rs[0].String(); !strings.Contains(s, "/conf/paper") {
		t.Errorf("render = %q", s)
	}
}

func TestReturnNodes(t *testing.T) {
	e := NewXML(dataset.ConfXML())
	rs := search(t, e, Request{Query: "keyword Mark"})
	rns := e.ReturnNodes([]string{"keyword", "mark"}, rs[0].Node)
	if len(rns) == 0 {
		t.Fatal("no return nodes inferred")
	}
}

func TestSemanticsErrors(t *testing.T) {
	ctx := context.Background()
	rel := NewRelational(dataset.WidomBib())
	if _, err := rel.Query(ctx, Request{Query: "widom", Semantics: SLCA}); err == nil {
		t.Errorf("SLCA on relational engine must error")
	}
	xml := NewXML(dataset.ConfXML())
	if _, err := xml.Query(ctx, Request{Query: "mark", Semantics: CandidateNetworks}); err == nil {
		t.Errorf("CN on XML engine must error")
	}
	if _, err := rel.Query(ctx, Request{Query: ""}); err == nil {
		t.Errorf("empty query must error")
	}
	resp, err := rel.Query(ctx, Request{Query: "nosuchterm widom", Semantics: DistinctRoot})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results != nil {
		t.Errorf("unmatched keyword should yield no graph results: %v", resp.Results)
	}
}

func TestSemanticsString(t *testing.T) {
	names := map[Semantics]string{
		Auto: "auto", CandidateNetworks: "cn", SparkNetworks: "spark",
		DistinctRoot: "banks", SteinerTree: "steiner", SLCA: "slca", ELCA: "elca",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %s", int(s), s)
		}
	}
}

func TestFreeTablesDefaultToLinkTables(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	if len(e.FreeTables) != 1 || e.FreeTables[0] != "write" {
		t.Errorf("FreeTables = %v, want [write]", e.FreeTables)
	}
}
