package core

// This file is the observability surface of the engine: per-query Stats,
// the span-tree Trace, the QueryObserver callback, and the Query entry
// point that instruments the whole pipeline (clean → lookup →
// enumerate/expand → evaluate → rank) on top of the engine's metrics
// registry.

import (
	"fmt"
	"time"

	"kwsearch/internal/exec"
	"kwsearch/internal/obs"
)

// Trace is the span tree a traced query produces (see Options.Trace). It
// aliases obs.Span so callers can walk, print or JSON-encode it without
// importing internal/obs.
type Trace = obs.Span

// Stats summarizes one Query call at the engine level.
type Stats struct {
	// Semantics that actually ran, after Auto resolution.
	Semantics Semantics `json:"semantics"`
	// Terms the search executed with, after cleaning and normalization.
	Terms []string `json:"terms"`
	// Results is the number of answers returned.
	Results int `json:"results"`
	// Elapsed is the wall time of the whole pipeline.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Exec holds the worker-pool execution stats when the query ran
	// through internal/exec (CandidateNetworks with Workers > 1).
	Exec *exec.Stats `json:"exec,omitempty"`
	// Metrics is the delta of the engine's registry over this query:
	// every counter incremented and histogram observed while it ran.
	Metrics obs.Snapshot `json:"metrics"`
}

// QueryObserver receives every Query's Stats and Trace as it completes.
// The trace is nil unless Options.Trace was set. Set it in
// Options.Observer; it runs on the querying goroutine.
type QueryObserver func(Stats, *Trace)

// Response bundles a query's results with its observability artifacts.
type Response struct {
	// Results are the ranked answers, as Search returns them.
	Results []Result
	// Stats summarizes the execution.
	Stats Stats
	// Trace is the root span of the pipeline, nil unless Options.Trace.
	Trace *Trace
}

// Query runs the search like Search but also returns per-query stats, an
// optional span trace, and feeds Options.Observer. Engines are not safe
// for concurrent Query calls (see LastExecStats).
func (e *Engine) Query(query string, opts Options) (*Response, error) {
	opts = opts.withDefaults(e.Tree != nil)
	start := time.Now()
	var before obs.Snapshot
	if e.Metrics != nil {
		before = e.Metrics.Snapshot()
	}
	var root *obs.Span
	if opts.Trace {
		root = obs.StartSpan("query")
		root.SetAttr("semantics", opts.Semantics.String())
	}

	csp := root.Child("clean")
	terms := e.Terms(query, opts.Clean)
	csp.SetAttr("terms", len(terms))
	csp.SetAttr("cleaned", opts.Clean)
	csp.End()
	root.SetAttr("keywords", len(terms))
	if len(terms) == 0 {
		root.End()
		return nil, fmt.Errorf("core: empty query")
	}

	st := Stats{Semantics: opts.Semantics, Terms: terms}
	var results []Result
	var err error
	switch opts.Semantics {
	case CandidateNetworks, SparkNetworks:
		results, err = e.searchCN(terms, opts, root, &st)
	case DistinctRoot:
		results, err = e.searchBanks(terms, opts, root)
	case SteinerTree:
		results, err = e.searchSteiner(terms, opts, root)
	case SLCA, ELCA:
		results, err = e.searchXML(terms, opts, root)
	default:
		err = fmt.Errorf("core: unknown semantics %v", opts.Semantics)
	}
	root.SetAttr("results", len(results))
	root.End()
	if err != nil {
		return nil, err
	}

	st.Results = len(results)
	st.Elapsed = time.Since(start)
	if e.Metrics != nil {
		e.Metrics.Histogram("query.elapsed_us").Observe(float64(st.Elapsed.Microseconds()))
		st.Metrics = e.Metrics.Snapshot().Sub(before)
	}
	resp := &Response{Results: results, Stats: st, Trace: root}
	if opts.Observer != nil {
		opts.Observer(resp.Stats, resp.Trace)
	}
	return resp, nil
}
