package core

// This file is the observability surface of the engine: per-query Stats,
// the span-tree Trace, the QueryObserver callback, and the context-first
// Query entry point that instruments the whole pipeline (admit → clean →
// lookup → enumerate/expand → evaluate → rank) on top of the engine's
// metrics registry.

import (
	"context"
	"errors"
	"time"

	"kwsearch/internal/exec"
	"kwsearch/internal/obs"
	"kwsearch/internal/resilience"
)

// Trace is the span tree a traced query produces (see Request.Trace). It
// aliases obs.Span so callers can walk, print or JSON-encode it without
// importing internal/obs.
type Trace = obs.Span

// Stats summarizes one Query call at the engine level.
type Stats struct {
	// Semantics that actually ran, after Auto resolution.
	Semantics Semantics `json:"semantics"`
	// Terms the search executed with, after cleaning and normalization.
	Terms []string `json:"terms"`
	// Results is the number of answers returned.
	Results int `json:"results"`
	// Partial reports that the deadline expired mid-evaluation and
	// Results counts a certified prefix (CN semantics) or best-effort
	// subset (graph semantics) of the full answer.
	Partial bool `json:"partial,omitempty"`
	// Elapsed is the wall time of the whole pipeline.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Exec holds the worker-pool execution stats when the query ran
	// through internal/exec (CandidateNetworks with Workers > 1).
	Exec *exec.Stats `json:"exec,omitempty"`
	// Metrics is the delta of the engine's registry over this query:
	// every counter incremented and histogram observed while it ran.
	Metrics obs.Snapshot `json:"metrics"`
}

// QueryObserver receives every Query's Stats and Trace as it completes.
// The trace is nil unless Request.Trace was set. Set it in
// Request.Observer; it runs on the querying goroutine.
type QueryObserver func(Stats, *Trace)

// Response bundles a query's results with its observability artifacts.
type Response struct {
	// Results are the ranked answers, as Search returns them.
	Results []Result
	// Partial reports that the query's deadline expired mid-evaluation
	// and Results holds the best answer certified by then — under CN
	// semantics a provable prefix of the full top-k, under the graph
	// semantics a best-effort subset. A partial response is a success:
	// the error alongside it is nil.
	Partial bool
	// Stats summarizes the execution.
	Stats Stats
	// Trace is the root span of the pipeline, nil unless Request.Trace.
	Trace *Trace
}

// Query runs one search request under ctx. Cancellation and deadlines
// propagate into every evaluation stage (CN enumeration, the exec worker
// pool, the serial pipelines, graph expansion, SLCA ranges):
//
//   - ctx cancelled → the error is returned (typically context.Canceled)
//     and any partial work is discarded;
//   - deadline expired mid-evaluation (ctx's or Request.Deadline, the
//     earlier wins) → the best answer certified so far is returned with
//     Response.Partial set and a nil error;
//   - admission control installed via Admit sheds with ErrOverloaded or
//     fails queued queries whose deadline lapses with
//     ErrDeadlineExceeded;
//   - malformed requests fail with errors matching ErrBadQuery.
//
// Engines are safe for concurrent Query calls.
func (e *Engine) Query(ctx context.Context, req Request) (*Response, error) {
	opts := req.options(e.Tree != nil)
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	start := time.Now()

	if err := resilience.Inject(ctx, resilience.StageAdmit); err != nil {
		return nil, resilience.AsTyped(err)
	}
	if e.gate != nil {
		release, err := e.gate.Acquire(ctx)
		if err != nil {
			if e.Metrics != nil {
				switch {
				case errors.Is(err, ErrOverloaded):
					e.Metrics.Counter("query.shed").Inc()
				case errors.Is(err, ErrDeadlineExceeded):
					e.Metrics.Counter("query.deadline").Inc()
				}
			}
			return nil, err
		}
		defer release()
	}

	var before obs.Snapshot
	if e.Metrics != nil {
		before = e.Metrics.Snapshot()
	}
	var root *obs.Span
	if opts.Trace {
		root = obs.StartSpan("query")
		root.SetAttr("semantics", opts.Semantics.String())
	}

	csp := root.Child("clean")
	terms := e.Terms(req.Query, opts.Clean)
	csp.SetAttr("terms", len(terms))
	csp.SetAttr("cleaned", opts.Clean)
	csp.End()
	root.SetAttr("keywords", len(terms))
	if len(terms) == 0 {
		root.End()
		return nil, badQuery("core: empty query")
	}

	st := Stats{Semantics: opts.Semantics, Terms: terms}
	var results []Result
	var err error
	switch opts.Semantics {
	case CandidateNetworks, SparkNetworks:
		results, err = e.searchCN(ctx, terms, opts, root, &st)
	case DistinctRoot:
		results, err = e.searchBanks(ctx, terms, opts, root)
	case SteinerTree:
		results, err = e.searchSteiner(ctx, terms, opts, root)
	case SLCA, ELCA:
		results, err = e.searchXML(ctx, terms, opts, root)
	default:
		err = badQuery("core: unknown semantics " + opts.Semantics.String())
	}
	partial := false
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The deadline ran out mid-evaluation: the stages handed back
			// their certified/best-effort partials in results. Serve them.
			partial = true
			err = nil
		} else {
			root.SetAttr("ctx_done", true)
			root.End()
			return nil, err
		}
	}

	st.Results = len(results)
	st.Partial = partial
	st.Elapsed = time.Since(start)
	root.SetAttr("results", len(results))
	if partial {
		root.SetAttr("ctx_done", true)
		root.SetAttr("partial", true)
	}
	root.End()
	if e.Metrics != nil {
		e.Metrics.Histogram("query.elapsed_us").Observe(float64(st.Elapsed.Microseconds()))
		if partial {
			e.Metrics.Counter("query.deadline").Inc()
			e.Metrics.Counter("query.partial").Inc()
		}
		st.Metrics = e.Metrics.Snapshot().Sub(before)
	}
	resp := &Response{Results: results, Partial: partial, Stats: st, Trace: root}
	if opts.Observer != nil {
		opts.Observer(resp.Stats, resp.Trace)
	}
	return resp, nil
}
