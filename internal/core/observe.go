package core

// This file is the observability surface of the engine: per-query Stats,
// the span-tree Trace, the QueryObserver callback, and the context-first
// Query entry point that instruments the whole pipeline (admit → clean →
// lookup → enumerate/expand → evaluate → rank) on top of the engine's
// metrics registry.

import (
	"context"
	"errors"
	"time"

	"kwsearch/internal/exec"
	"kwsearch/internal/obs"
	"kwsearch/internal/resilience"
)

// Trace is the span tree a traced query produces (see Request.Trace). It
// aliases obs.Span so callers can walk, print or JSON-encode it without
// importing internal/obs.
type Trace = obs.Span

// Stats summarizes one Query call at the engine level.
type Stats struct {
	// Semantics that actually ran, after Auto resolution.
	Semantics Semantics `json:"semantics"`
	// Terms the search executed with, after cleaning and normalization.
	Terms []string `json:"terms"`
	// Results is the number of answers returned.
	Results int `json:"results"`
	// Partial reports that the deadline expired mid-evaluation and
	// Results counts a certified prefix (CN semantics) or best-effort
	// subset (graph semantics) of the full answer.
	Partial bool `json:"partial,omitempty"`
	// Elapsed is the wall time of the whole pipeline.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Exec holds the worker-pool execution stats when the query ran
	// through internal/exec (CandidateNetworks with Workers > 1).
	Exec *exec.Stats `json:"exec,omitempty"`
	// PlanSignature is the plan-cache key the query compiled under
	// (namespace + schema fingerprint + keyword→relation membership
	// signature + size bounds); "" when the query never reached the
	// enumerate stage. Slow-query exemplars carry it so latency outliers
	// can be correlated with plan-cache churn.
	PlanSignature string `json:"plan_signature,omitempty"`
	// Shards is the per-shard breakdown when the query ran through the
	// internal/shard coordinator: one entry per shard in shard order.
	// Empty on single-engine queries.
	Shards []ShardStat `json:"shards,omitempty"`
	// Merge is the coordinator's merge overhead: the wall time between
	// the slowest shard finishing and the merged response being ready.
	// Zero on single-engine queries.
	Merge time.Duration `json:"merge_ns,omitempty"`
	// Metrics is the delta of the engine's registry over this query:
	// every counter incremented and histogram observed while it ran.
	Metrics obs.Snapshot `json:"metrics"`
}

// ShardStat is one shard's view of a coordinated query (Stats.Shards).
type ShardStat struct {
	// Shard is the shard index (0-based).
	Shard int `json:"shard"`
	// Results is how many results this shard's sub-query returned (its
	// local top-k length).
	Results int `json:"results"`
	// Pulled counts the results the k-way merge actually consumed from
	// this shard — the merge-efficiency signal (the merge stops after k
	// pops, so sum over shards ≤ k; a skewed workload pulls k from one
	// shard and 0 from the rest).
	Pulled int `json:"pulled"`
	// Partial reports this shard's answer was a certified prefix (its
	// deadline expired mid-evaluation).
	Partial bool `json:"partial,omitempty"`
	// Elapsed is this shard's wall time for its sub-query.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Exec is this shard's executor stats, when its query ran through
	// the pool (always, for shard views).
	Exec *exec.Stats `json:"exec,omitempty"`
}

// QueryObserver receives every Query's Stats and Trace as it completes.
// The trace is nil unless Request.Trace was set. Set it in
// Request.Observer; it runs on the querying goroutine.
type QueryObserver func(Stats, *Trace)

// Response bundles a query's results with its observability artifacts.
type Response struct {
	// Results are the ranked answers, as Search returns them.
	Results []Result
	// Partial reports that the query's deadline expired mid-evaluation
	// and Results holds the best answer certified by then — under CN
	// semantics a provable prefix of the full top-k, under the graph
	// semantics a best-effort subset. A partial response is a success:
	// the error alongside it is nil.
	Partial bool
	// Stats summarizes the execution.
	Stats Stats
	// Trace is the root span of the pipeline, nil unless Request.Trace.
	Trace *Trace
}

// Query runs one search request under ctx. Cancellation and deadlines
// propagate into every evaluation stage (CN enumeration, the exec worker
// pool, the serial pipelines, graph expansion, SLCA ranges):
//
//   - ctx cancelled → the error is returned (typically context.Canceled)
//     and any partial work is discarded;
//   - deadline expired mid-evaluation (ctx's or Request.Deadline, the
//     earlier wins) → the best answer certified so far is returned with
//     Response.Partial set and a nil error;
//   - admission control installed via Admit sheds with ErrOverloaded or
//     fails queued queries whose deadline lapses with
//     ErrDeadlineExceeded;
//   - malformed requests fail with errors matching ErrBadQuery.
//
// Engines are safe for concurrent Query calls.
func (e *Engine) Query(ctx context.Context, req Request) (*Response, error) {
	opts := req.options(e.Tree != nil)
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	start := time.Now()
	lg := obs.FromContext(ctx)

	// Tail sampling: with a slow-query log installed every query runs a
	// cheap always-on trace, so the span tree already exists if the query
	// turns out to be worth retaining. Response.Trace still honors
	// req.Trace alone — sampling never changes what the caller sees.
	sampled := e.slowlog != nil
	var root *obs.Span
	if opts.Trace || sampled {
		root = obs.StartSpan("query")
		root.SetAttr("semantics", opts.Semantics.String())
	}

	if err := resilience.Inject(ctx, resilience.StageAdmit); err != nil {
		terr := resilience.AsTyped(err)
		root.End()
		e.captureRejected(ctx, req, root, terr, time.Since(start), lg)
		return nil, terr
	}
	if e.gate != nil {
		// The admit stage is part of the trace so shed queries still
		// produce a well-formed tree (root → admit) for the slowlog.
		asp := root.Child("admit")
		release, err := e.gate.Acquire(ctx)
		asp.End()
		if err != nil {
			asp.SetAttr("rejected", true)
			if e.Metrics != nil {
				switch {
				case errors.Is(err, ErrOverloaded):
					e.Metrics.Counter("query.shed").Inc()
				case errors.Is(err, ErrDeadlineExceeded):
					e.Metrics.Counter("query.deadline").Inc()
				}
			}
			root.End()
			e.captureRejected(ctx, req, root, err, time.Since(start), lg)
			return nil, err
		}
		defer release()
	}

	var before obs.Snapshot
	if e.Metrics != nil {
		before = e.Metrics.Snapshot()
	}

	csp := root.Child("clean")
	terms := e.Terms(req.Query, opts.Clean)
	csp.SetAttr("terms", len(terms))
	csp.SetAttr("cleaned", opts.Clean)
	csp.End()
	root.SetAttr("keywords", len(terms))
	if len(terms) == 0 {
		root.End()
		err := badQuery("core: empty query")
		e.capture(ctx, req, root, nil, obs.OutcomeError, err.Error(), time.Since(start), lg)
		return nil, err
	}

	st := Stats{Semantics: opts.Semantics, Terms: terms}
	var results []Result
	var err error
	switch opts.Semantics {
	case CandidateNetworks, SparkNetworks:
		results, err = e.searchCN(ctx, terms, opts, root, &st)
	case DistinctRoot:
		results, err = e.searchBanks(ctx, terms, opts, root)
	case SteinerTree:
		results, err = e.searchSteiner(ctx, terms, opts, root)
	case SLCA, ELCA:
		results, err = e.searchXML(ctx, terms, opts, root)
	default:
		err = badQuery("core: unknown semantics " + opts.Semantics.String())
	}
	partial := false
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The deadline ran out mid-evaluation: the stages handed back
			// their certified/best-effort partials in results. Serve them.
			partial = true
			err = nil
		} else {
			root.SetAttr("ctx_done", true)
			root.End()
			st.Elapsed = time.Since(start)
			e.capture(ctx, req, root, &st, obs.OutcomeError, err.Error(), st.Elapsed, lg)
			return nil, err
		}
	}

	st.Results = len(results)
	st.Partial = partial
	st.Elapsed = time.Since(start)
	root.SetAttr("results", len(results))
	if partial {
		root.SetAttr("ctx_done", true)
		root.SetAttr("partial", true)
	}
	root.End()
	if e.Metrics != nil {
		us := float64(st.Elapsed.Microseconds())
		e.Metrics.Histogram("query.elapsed_us").Observe(us)
		e.Metrics.Windowed("query.latency_us").Observe(us)
		if partial {
			e.Metrics.Counter("query.deadline").Inc()
			e.Metrics.Counter("query.partial").Inc()
		}
		st.Metrics = e.Metrics.Snapshot().Sub(before)
	}
	if outcome, ok := e.slowlog.Classify(st.Elapsed, false, partial); ok {
		e.capture(ctx, req, root, &st, outcome, "", st.Elapsed, lg)
	}
	if lg.Enabled(obs.LevelDebug) {
		lg.Debug("query executed",
			obs.F("keywords_hash", obs.KeywordsHash(req.Query)),
			obs.F("semantics", st.Semantics.String()),
			obs.F("results", st.Results),
			obs.F("partial", partial),
			obs.F("plan_signature", st.PlanSignature),
			obs.F("elapsed", st.Elapsed))
	}
	var trace *Trace
	if opts.Trace {
		trace = root
	}
	resp := &Response{Results: results, Partial: partial, Stats: st, Trace: trace}
	if opts.Observer != nil {
		opts.Observer(resp.Stats, resp.Trace)
	}
	return resp, nil
}

// SetSlowLog installs (or, with nil, removes) the tail-sampling
// slow-query log: every query runs a cheap trace, and slow, errored,
// shed, partial or deadline-expired queries are retained as exemplars
// (span tree + Stats + plan signature). The log's capture counters land
// in Engine.Metrics. Call during setup, before concurrent queries; the
// swap is not synchronized.
func (e *Engine) SetSlowLog(l *obs.SlowLog) {
	e.slowlog = l
	if l != nil && e.Metrics != nil {
		l.Instrument(e.Metrics)
	}
}

// SlowLog returns the engine's slow-query log, nil unless SetSlowLog
// installed one.
func (e *Engine) SlowLog() *obs.SlowLog { return e.slowlog }

// planNamespace is the tenant namespace exemplars and log lines carry.
func (e *Engine) planNamespace() string {
	if e.Plans == nil {
		return ""
	}
	return e.Plans.Namespace()
}

// rejectOutcome classifies an admission failure for the slowlog.
func rejectOutcome(err error) obs.Outcome {
	switch {
	case errors.Is(err, ErrOverloaded):
		return obs.OutcomeShed
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeDeadline
	}
	return obs.OutcomeError
}

// captureRejected retains an exemplar for a query rejected before
// evaluation (shed by the gate, or its deadline lapsed while queued).
func (e *Engine) captureRejected(ctx context.Context, req Request, root *obs.Span, err error, elapsed time.Duration, lg *obs.Logger) {
	e.capture(ctx, req, root, nil, rejectOutcome(err), err.Error(), elapsed, lg)
}

// capture retains one query exemplar in the slow-query log and emits
// the corresponding structured warn line. No-op without a slowlog.
func (e *Engine) capture(ctx context.Context, req Request, root *obs.Span, st *Stats, outcome obs.Outcome, errText string, elapsed time.Duration, lg *obs.Logger) {
	if e.slowlog == nil {
		return
	}
	entry := obs.Entry{
		RequestID:    obs.RequestIDFrom(ctx),
		Namespace:    e.planNamespace(),
		KeywordsHash: obs.KeywordsHash(req.Query),
		Outcome:      outcome,
		Duration:     elapsed,
		Err:          errText,
		Trace:        root,
	}
	if st != nil {
		entry.Keywords = st.Terms
		entry.PlanSignature = st.PlanSignature
		entry.Stats = *st
	}
	seq := e.slowlog.Record(entry)
	if lg.Enabled(obs.LevelWarn) {
		fields := []obs.Field{
			obs.F("slowlog_seq", seq),
			obs.F("outcome", string(outcome)),
			obs.F("keywords_hash", entry.KeywordsHash),
			obs.F("elapsed", elapsed),
		}
		if entry.RequestID != "" {
			fields = append(fields, obs.F("request_id", entry.RequestID))
		}
		if entry.Namespace != "" {
			fields = append(fields, obs.F("namespace", entry.Namespace))
		}
		if entry.PlanSignature != "" {
			fields = append(fields, obs.F("plan_signature", entry.PlanSignature))
		}
		if errText != "" {
			fields = append(fields, obs.F("error", errText))
		}
		lg.Warn("query captured in slowlog", fields...)
	}
}
