package core

// This file is the context-first request surface of the engine: the
// Request type consolidating the legacy Options knobs with per-query
// deadlines, the typed sentinel errors callers branch on with errors.Is,
// and per-engine admission control (Admit) backed by
// internal/resilience.

import (
	"errors"
	"fmt"
	"time"

	"kwsearch/internal/resilience"
)

// Typed sentinel errors. All satisfy errors.Is against themselves;
// ErrDeadlineExceeded additionally matches context.DeadlineExceeded, so
// both the engine's own deadline handling and callers holding a raw
// context error agree on what happened.
var (
	// ErrBadQuery marks queries the engine cannot execute: empty after
	// normalization, or a semantics the engine's data model lacks.
	ErrBadQuery = errors.New("core: bad query")
	// ErrOverloaded is returned when admission control sheds the query
	// (the gate is full and the bounded queue has no room).
	ErrOverloaded = resilience.ErrOverloaded
	// ErrDeadlineExceeded is returned when the query's deadline expired
	// while it was still queued for admission. A deadline that expires
	// mid-evaluation instead yields a partial Response (see
	// Response.Partial) with a nil error.
	ErrDeadlineExceeded = resilience.ErrDeadlineExceeded
)

// Request is one search request: the query text plus every per-query
// knob. The zero value of every field is a sensible default, so
// Request{Query: "foo bar"} is a complete request.
type Request struct {
	// Query is the raw keyword query.
	Query string
	// Semantics selects the result definition (default CandidateNetworks
	// for relational engines, SLCA for XML engines).
	Semantics Semantics
	// TopK bounds the result count (default 10).
	TopK int
	// MaxCNSize bounds candidate-network size (default 5).
	MaxCNSize int
	// Clean runs noisy-channel query cleaning before searching.
	Clean bool
	// Deadline is the per-query time budget (0 = none). It composes with
	// whatever deadline the caller's context already carries — the
	// earlier one wins. When it expires mid-evaluation the engine
	// returns the best answer certified so far with Response.Partial
	// set, rather than an error.
	Deadline time.Duration
	// Workers sets the worker-pool size for candidate-network and SLCA
	// evaluation; see Options.Workers for the serial/parallel semantics.
	Workers int
	// Trace enables per-query span collection (Response.Trace).
	Trace bool
	// Observer, when non-nil, is called at the end of the query with its
	// Stats and Trace (trace nil unless Trace is set).
	Observer QueryObserver
}

// options lowers the request onto the legacy Options shape the search
// stages still consume internally, applying defaults.
func (r Request) options(xml bool) Options {
	return Options{
		K:         r.TopK,
		Semantics: r.Semantics,
		MaxCNSize: r.MaxCNSize,
		Clean:     r.Clean,
		Trace:     r.Trace,
		Observer:  r.Observer,
		Workers:   r.Workers,
	}.withDefaults(xml)
}

// Admit installs admission control on the engine: at most limit queries
// run concurrently, at most maxQueue more wait for a slot (shedding with
// ErrOverloaded beyond that), and a queued query that outlives its
// deadline fails with ErrDeadlineExceeded. The gate's queue-depth gauge,
// wait histogram and outcome counters land in Engine.Metrics under
// "admission.*". A non-positive limit removes the gate.
func (e *Engine) Admit(limit, maxQueue int) {
	if limit <= 0 {
		e.gate = nil
		return
	}
	g := resilience.NewGate(limit, maxQueue)
	if e.Metrics != nil {
		g.Instrument(e.Metrics)
	}
	e.gate = g
}

// Gate returns the engine's admission gate, nil unless Admit installed
// one.
func (e *Engine) Gate() *resilience.Gate { return e.gate }

// SetPlanNamespace re-namespaces the engine's plan cache: every plan
// key the engine (and its executor) derives from here on is prefixed
// with ns, so engines serving different tenants over one shared cache
// can never read each other's compiled plans. Storage, capacity and
// counters stay shared. Call during setup, before concurrent queries;
// the swap is not synchronized. No-op on engines without a plan cache
// (XML engines).
func (e *Engine) SetPlanNamespace(ns string) {
	if e.Plans == nil {
		return
	}
	e.Plans = e.Plans.WithNamespace(ns)
	if e.Exec != nil {
		e.Exec.SetPlans(e.Plans)
	}
}

func badQuery(msg string) error {
	return fmt.Errorf("%s: %w", msg, ErrBadQuery)
}
