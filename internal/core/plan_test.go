package core

import (
	"context"
	"testing"

	"kwsearch/internal/dataset"
)

// TestEnginePlanCacheWired pins the engine-level plan path: relational
// engines own a plan cache, distinct queries sharing a keyword→relation
// membership signature share one compiled plan, and the engine's answers
// are unchanged by whether the plan came from the cache.
func TestEnginePlanCacheWired(t *testing.T) {
	e := NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	if e.Plans == nil {
		t.Fatal("relational engine has no plan cache")
	}

	// "wang search" and "chen database" differ as queries but share the
	// {author, paper} membership signature.
	cold, err := e.Query(context.Background(), Request{Query: "wang search", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	builds := e.Plans.Builds()
	if builds == 0 {
		t.Fatal("cold query did not compile a plan")
	}
	hitsBefore := e.Plans.Stats().Hits
	warm, err := e.Query(context.Background(), Request{Query: "chen database", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Plans.Stats().Hits == hitsBefore {
		t.Fatal("same-signature query missed the plan cache")
	}
	if e.Plans.Builds() != builds {
		t.Fatalf("same-signature query recompiled: %d builds, want %d", e.Plans.Builds(), builds)
	}
	if len(cold.Results) == 0 || len(warm.Results) == 0 {
		t.Fatalf("plan-cached queries returned no results (%d, %d)", len(cold.Results), len(warm.Results))
	}
}

// TestSetPlanNamespaceIsolates: after re-namespacing, previously compiled
// plans are invisible (a tenant can never read another tenant's plans),
// so the same signature compiles again under the new namespace.
func TestSetPlanNamespaceIsolates(t *testing.T) {
	e := NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	if _, err := e.Query(context.Background(), Request{Query: "wang search", TopK: 5}); err != nil {
		t.Fatal(err)
	}
	builds := e.Plans.Builds()

	e.SetPlanNamespace("tenant-b")
	if got := e.Plans.Namespace(); got != "tenant-b" {
		t.Fatalf("Namespace() = %q, want tenant-b", got)
	}
	if _, err := e.Query(context.Background(), Request{Query: "wang search", TopK: 5}); err != nil {
		t.Fatal(err)
	}
	if e.Plans.Builds() != builds+1 {
		t.Fatalf("namespaced query reused a cross-tenant plan: %d builds, want %d", e.Plans.Builds(), builds+1)
	}
}
