package core

import (
	"context"
	"testing"
	"time"

	"kwsearch/internal/dataset"
)

func TestQueryStatsAndObserver(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	var observed *Stats
	var observedTrace *Trace
	resp, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5, Trace: true,
		Observer: func(st Stats, tr *Trace) { observed, observedTrace = &st, tr }})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results")
	}
	st := resp.Stats
	if st.Semantics != CandidateNetworks {
		t.Errorf("semantics = %v", st.Semantics)
	}
	if len(st.Terms) != 2 || st.Results != len(resp.Results) || st.Elapsed <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Metrics.Counters["invindex.lookups"] == 0 {
		t.Errorf("metrics delta missing index lookups: %v", st.Metrics.Counters)
	}
	if observed == nil || observed.Results != st.Results || observedTrace != resp.Trace {
		t.Errorf("observer saw %+v / %p, want %+v / %p", observed, observedTrace, st, resp.Trace)
	}
	if resp.Trace == nil {
		t.Fatal("trace requested but nil")
	}
	if err := resp.Trace.WellFormed(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestQueryWithoutTraceHasNoTrace(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	resp, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatal("trace present without Request.Trace")
	}
}

// TestTraceShapeGoldenSerial pins the exact span-tree shape of a seeded
// serial CN query: the pipeline stages and their attribute keys must not
// drift silently. Timings are excluded (Shape drops them), so the test
// is deterministic.
func TestTraceShapeGoldenSerial(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	resp, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"query(keywords,results,semantics)\n" +
		"  clean(cleaned,terms)\n" +
		"  lookup(postings,terms)\n" +
		"  bind(keyword_tables)\n" +
		"    postings(built_terms,cached_terms,terms)\n" +
		"    materialize(keyword_tables,matched_tuples)\n" +
		"  enumerate(cns,plan_cached)\n" +
		"  evaluate(certified_early,cns,driver_advances,pipelined,produced,pruned)\n" +
		"  rank(results)\n"
	if got := resp.Trace.Shape(); got != want {
		t.Errorf("trace shape drifted:\n got:\n%s want:\n%s", got, want)
	}
}

// TestTraceShapeGoldenParallel pins the shape of the executor-backed
// path, including the per-worker child spans (the job assignment is
// deterministic for a fixed dataset and worker count).
func TestTraceShapeGoldenParallel(t *testing.T) {
	e := NewRelational(dataset.WidomBib())
	resp, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5, Workers: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"query(keywords,result_cache_hit,results,semantics)\n" +
		"  clean(cleaned,terms)\n" +
		"  lookup(postings,terms)\n" +
		"  bind(keyword_tables)\n" +
		"    postings(built_terms,cached_terms,terms)\n" +
		"    materialize(keyword_tables,matched_tuples)\n" +
		"  enumerate(cns,plan_cached)\n" +
		"  evaluate(evaluated,prefix_reuses,skipped,workers)\n" +
		"    worker-0(busy,evaluated,idle,jobs,prefix_reuses,skipped)\n" +
		"    worker-1(busy,evaluated,idle,jobs,prefix_reuses,skipped)\n" +
		"  rank(results)\n"
	if got := resp.Trace.Shape(); got != want {
		t.Errorf("trace shape drifted:\n got:\n%s want:\n%s", got, want)
	}
	if st := resp.Stats.Exec; st == nil {
		t.Fatal("exec stats missing on executor path")
	} else if len(st.WorkerBusy) != len(st.JobsPerWorker) || len(st.SkippedPerWorker) != len(st.JobsPerWorker) {
		t.Fatalf("per-worker stats misaligned: %+v", st)
	}

	// A repeat of the same query hits the result cache: the trace shrinks
	// to the stages that actually ran.
	resp2, err := e.Query(context.Background(), Request{Query: "Widom XML", TopK: 5, Workers: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	want2 := "" +
		"query(keywords,result_cache_hit,results,semantics)\n" +
		"  clean(cleaned,terms)\n" +
		"  lookup(postings,terms)\n" +
		"  rank(results)\n"
	if got := resp2.Trace.Shape(); got != want2 {
		t.Errorf("cached trace shape drifted:\n got:\n%s want:\n%s", got, want2)
	}
}

// TestTraceShapeXML covers the SLCA path: the evaluate span must carry
// the lca attributes (list sizes, anchors, candidates).
func TestTraceShapeXML(t *testing.T) {
	e := NewXML(dataset.ConfXML())
	resp, err := e.Query(context.Background(), Request{Query: "keyword Mark", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := "" +
		"query(keywords,results,semantics)\n" +
		"  clean(cleaned,terms)\n" +
		"  evaluate(algorithm,anchors,candidates,list_sizes)\n" +
		"  rank(results)\n"
	if got := resp.Trace.Shape(); got != want {
		t.Errorf("xml trace shape drifted:\n got:\n%s want:\n%s", got, want)
	}
	if err := resp.Trace.WellFormed(time.Second); err != nil {
		t.Fatal(err)
	}
}
