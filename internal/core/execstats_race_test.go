package core

import (
	"context"
	"sync"
	"testing"

	"kwsearch/internal/dataset"
)

// TestExecStatsConsistentUnderConcurrency is the regression test for
// torn executor-stat snapshots: ExecStats must hand back one whole
// Stats struct from a single query, never fields mixed from two
// concurrent ones. Two queries with different plan keys and CN counts
// run in parallel with readers; a torn snapshot pairs one query's
// PlanKey with the other's CNs and trips the expectation map. The
// unsynchronized-read variant of this (a bare field access next to
// concurrent queries) also fails -race outright, which is how verify.sh
// runs this package.
func TestExecStatsConsistentUnderConcurrency(t *testing.T) {
	e := NewRelational(dataset.DBLP(dataset.DefaultDBLPConfig()))
	// The plan key is the schema + keyword-table-membership signature,
	// so the two queries must bind different table sets: "keyword
	// search" hits paper text, "wang" hits author names.
	queries := []Request{
		{Query: "keyword search", Workers: 2},
		{Query: "wang", Workers: 2},
	}

	// Solo runs establish the legitimate (PlanKey, CNs) pairings.
	expected := map[string]int{}
	for _, q := range queries {
		if _, err := e.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		st := e.ExecStats()
		if st.PlanKey == "" {
			t.Fatalf("query %q left no exec stats", q.Query)
		}
		expected[st.PlanKey] = st.CNs
		e.Exec.InvalidateResults()
	}
	if len(expected) != 2 {
		t.Fatalf("test queries share a plan key; need two distinct shapes, got %v", expected)
	}

	iters := 40
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	report := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}
	done := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := e.ExecStats()
				switch {
				case st.ResultCacheHit:
					// Cache-hit snapshots carry no plan shape at all.
					if st.PlanKey != "" || st.CNs != 0 {
						report("cache-hit snapshot carries plan fields: torn merge")
						return
					}
				case st.PlanKey != "":
					want, ok := expected[st.PlanKey]
					if !ok {
						report("snapshot has unknown plan key " + st.PlanKey)
						return
					}
					if st.CNs != want {
						report("snapshot pairs plan key with wrong CN count: torn merge")
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := e.Query(context.Background(), q); err != nil {
					report("query: " + err.Error())
					return
				}
				if i%4 == 0 {
					// Keep cold (non-cache-hit) snapshots flowing.
					e.Exec.InvalidateResults()
				}
			}
		}(w)
	}
	writers.Wait()
	close(done)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
