// Package core is the public façade of the library: a keyword-search
// engine over relational or XML data with pluggable result semantics — the
// full pipeline the tutorial describes, from query cleaning through
// structure inference to ranked results.
//
// Relational data is searched under candidate-network semantics (DISCOVER
// joins with IR or SPARK scoring) or graph semantics (distinct-root BANKS
// search, group Steiner trees). XML data is searched under SLCA or ELCA
// semantics with XSeek return-node inference available on the results.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"kwsearch/internal/banks"
	"kwsearch/internal/clean"
	"kwsearch/internal/cn"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/exec"
	"kwsearch/internal/invindex"
	"kwsearch/internal/lca"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/spark"
	"kwsearch/internal/steiner"
	"kwsearch/internal/text"
	"kwsearch/internal/xmltree"
	"kwsearch/internal/xseek"
)

// Semantics selects what a "result" is (the tutorial's Options 1-3 and the
// XML ?LCA family).
type Semantics int

const (
	// Auto selects CandidateNetworks for relational engines and SLCA for
	// XML engines.
	Auto Semantics = iota
	// CandidateNetworks evaluates DISCOVER-style join trees with the
	// monotone IR score.
	CandidateNetworks
	// SparkNetworks evaluates join trees under SPARK's non-monotonic
	// virtual-document score.
	SparkNetworks
	// DistinctRoot runs BANKS-style backward search on the data graph.
	DistinctRoot
	// SteinerTree returns the top-1 group Steiner tree.
	SteinerTree
	// SLCA returns smallest LCAs of an XML tree.
	SLCA
	// ELCA returns exclusive LCAs of an XML tree.
	ELCA
)

// String names the semantics.
func (s Semantics) String() string {
	switch s {
	case Auto:
		return "auto"
	case CandidateNetworks:
		return "cn"
	case SparkNetworks:
		return "spark"
	case DistinctRoot:
		return "banks"
	case SteinerTree:
		return "steiner"
	case SLCA:
		return "slca"
	case ELCA:
		return "elca"
	}
	return fmt.Sprintf("semantics(%d)", int(s))
}

// Options tunes a search.
type Options struct {
	// K bounds the result count (default 10).
	K int
	// Semantics selects the result definition (default CandidateNetworks
	// for relational engines, SLCA for XML engines).
	Semantics Semantics
	// MaxCNSize bounds candidate-network size (default 5).
	MaxCNSize int
	// Clean runs noisy-channel query cleaning before searching.
	Clean bool
	// Workers sets the worker-pool size for candidate-network and SLCA
	// evaluation. 0 or 1 keeps the serial paths; >1 routes CN searches
	// through the internal/exec cached executor and SLCA through the
	// range-split parallel algorithm. SLCA answers are identical either
	// way. CN scores are too, but among equal-score results at the k
	// boundary the executor matches the exhaustive-evaluation reference
	// order, while the serial Global Pipeline's early termination may
	// surface a different subset of the tied results.
	Workers int
}

func (o Options) withDefaults(xml bool) Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxCNSize <= 0 {
		o.MaxCNSize = 5
	}
	if o.Semantics == Auto {
		if xml {
			o.Semantics = SLCA
		} else {
			o.Semantics = CandidateNetworks
		}
	}
	return o
}

// Result is one search answer under any semantics.
type Result struct {
	Score float64
	// Tuples and CN are set under CandidateNetworks/SparkNetworks.
	Tuples []*relstore.Tuple
	CN     *cn.CN
	// Root and Cost are set under DistinctRoot/SteinerTree (Root is the
	// answer root's tuple).
	Root *relstore.Tuple
	Cost float64
	// Node is set under SLCA/ELCA.
	Node *xmltree.Node
}

// String renders a one-line summary for CLIs.
func (r Result) String() string {
	switch {
	case r.CN != nil:
		parts := make([]string, len(r.Tuples))
		for i, tp := range r.Tuples {
			parts[i] = fmt.Sprintf("%s#%d", tp.Table, tp.ID)
		}
		return fmt.Sprintf("%.3f  %s  via %s", r.Score, strings.Join(parts, " ⋈ "), r.CN)
	case r.Root != nil:
		return fmt.Sprintf("cost %.2f  root %s#%d", r.Cost, r.Root.Table, r.Root.ID)
	case r.Node != nil:
		return fmt.Sprintf("%s (%s)", r.Node.LabelPath(), r.Node.Dewey)
	}
	return fmt.Sprintf("score %.3f", r.Score)
}

// Engine searches one dataset. Construct with NewRelational or NewXML.
type Engine struct {
	// Relational side.
	DB     *relstore.DB
	Schema *schemagraph.Graph
	Graph  *datagraph.Graph
	Index  *invindex.Index
	// XML side.
	Tree   *xmltree.Tree
	XIndex *xmltree.Index

	Cleaner *clean.Cleaner
	// FreeTables are the relations allowed as free tuple sets in candidate
	// networks; defaults to the tables without text columns (link tables).
	FreeTables []string

	// Exec is the concurrent cached execution layer used by CN searches
	// when Options.Workers > 1. Populated by NewRelational.
	Exec *exec.Executor
	// LastExecStats describes the most recent executor-backed search.
	// Engines are not safe for concurrent Search calls; use Exec.TopK
	// directly when querying from multiple goroutines.
	LastExecStats exec.Stats
}

// NewRelational builds an engine over a relational database.
func NewRelational(db *relstore.DB) *Engine {
	ix := invindex.FromDB(db)
	e := &Engine{
		DB:      db,
		Schema:  schemagraph.FromDB(db),
		Graph:   datagraph.FromDB(db, nil),
		Index:   ix,
		Cleaner: clean.NewCleaner(ix),
	}
	for _, name := range db.TableNames() {
		hasText := false
		for _, c := range db.Table(name).Schema.Columns {
			if c.Text {
				hasText = true
				break
			}
		}
		if !hasText {
			e.FreeTables = append(e.FreeTables, name)
		}
	}
	e.Exec = exec.New(db, ix, exec.Options{FreeTables: e.FreeTables})
	return e
}

// NewXML builds an engine over an XML tree.
func NewXML(tree *xmltree.Tree) *Engine {
	xix := xmltree.NewIndex(tree)
	rix := invindex.New()
	for _, n := range tree.Nodes() {
		if n.Value != "" {
			rix.Add(invindex.DocID(n.ID), n.Value)
		}
	}
	return &Engine{Tree: tree, XIndex: xix, Cleaner: clean.NewCleaner(rix)}
}

// Terms tokenizes (and optionally cleans) the query.
func (e *Engine) Terms(query string, doClean bool) []string {
	if doClean && e.Cleaner != nil {
		return e.Cleaner.Clean(query).Tokens()
	}
	return text.Tokenize(query)
}

// Search runs the query under the selected semantics.
func (e *Engine) Search(query string, opts Options) ([]Result, error) {
	opts = opts.withDefaults(e.Tree != nil)
	terms := e.Terms(query, opts.Clean)
	if len(terms) == 0 {
		return nil, fmt.Errorf("core: empty query")
	}
	switch opts.Semantics {
	case CandidateNetworks, SparkNetworks:
		return e.searchCN(terms, opts)
	case DistinctRoot:
		return e.searchBanks(terms, opts)
	case SteinerTree:
		return e.searchSteiner(terms, opts)
	case SLCA, ELCA:
		return e.searchXML(terms, opts)
	}
	return nil, fmt.Errorf("core: unknown semantics %v", opts.Semantics)
}

func (e *Engine) requireRelational() error {
	if e.DB == nil {
		return fmt.Errorf("core: semantics requires a relational engine")
	}
	return nil
}

func (e *Engine) searchCN(terms []string, opts Options) ([]Result, error) {
	if err := e.requireRelational(); err != nil {
		return nil, err
	}
	if opts.Semantics == CandidateNetworks && opts.Workers > 1 && e.Exec != nil {
		rs, st, err := e.Exec.TopK(context.Background(), exec.Query{
			Terms: terms, K: opts.K, MaxCNSize: opts.MaxCNSize, Workers: opts.Workers,
		})
		if err != nil {
			return nil, err
		}
		e.LastExecStats = st
		var out []Result
		for _, r := range rs {
			out = append(out, Result{Score: r.Score, Tuples: r.Tuples, CN: r.CN})
		}
		return out, nil
	}
	ev := cn.NewEvaluator(e.DB, e.Index, terms)
	cns := cn.Enumerate(e.Schema, cn.EnumerateOptions{
		MaxSize:       opts.MaxCNSize,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    e.FreeTables,
	})
	var out []Result
	if opts.Semantics == SparkNetworks {
		scorer := spark.NewScorer(ev, e.Index)
		rs, _ := spark.TopKSkyline(scorer, cns, opts.K)
		for _, r := range rs {
			out = append(out, Result{Score: r.SparkScore, Tuples: r.Tuples, CN: r.CN})
		}
		return out, nil
	}
	for _, r := range cn.TopKGlobalPipeline(ev, cns, opts.K) {
		out = append(out, Result{Score: r.Score, Tuples: r.Tuples, CN: r.CN})
	}
	return out, nil
}

// keywordGroups maps terms to data-graph node groups; ok is false when a
// term has no matches (AND semantics: no results).
func (e *Engine) keywordGroups(terms []string) ([][]datagraph.NodeID, bool) {
	groups := make([][]datagraph.NodeID, len(terms))
	for i, t := range terms {
		for _, d := range e.Index.Docs(t) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
		if len(groups[i]) == 0 {
			return nil, false
		}
	}
	return groups, true
}

func (e *Engine) searchBanks(terms []string, opts Options) ([]Result, error) {
	if err := e.requireRelational(); err != nil {
		return nil, err
	}
	groups, ok := e.keywordGroups(terms)
	if !ok {
		return nil, nil
	}
	answers, _ := banks.BackwardSearch(e.Graph, groups, banks.Options{K: opts.K})
	var out []Result
	for _, a := range answers {
		out = append(out, Result{
			Score: 1 / (1 + a.Cost),
			Cost:  a.Cost,
			Root:  e.DB.TupleByID(relstore.TupleID(a.Root)),
		})
	}
	return out, nil
}

func (e *Engine) searchSteiner(terms []string, opts Options) ([]Result, error) {
	if err := e.requireRelational(); err != nil {
		return nil, err
	}
	groups, ok := e.keywordGroups(terms)
	if !ok {
		return nil, nil
	}
	tree, found := steiner.GroupSteiner(e.Graph, groups)
	if !found {
		return nil, nil
	}
	r := Result{
		Score: 1 / (1 + tree.Cost),
		Cost:  tree.Cost,
		Root:  e.DB.TupleByID(relstore.TupleID(tree.Root)),
	}
	for _, n := range tree.Nodes() {
		r.Tuples = append(r.Tuples, e.DB.TupleByID(relstore.TupleID(n)))
	}
	return []Result{r}, nil
}

func (e *Engine) searchXML(terms []string, opts Options) ([]Result, error) {
	if e.XIndex == nil {
		return nil, fmt.Errorf("core: semantics %v requires an XML engine", opts.Semantics)
	}
	var nodes []*xmltree.Node
	switch {
	case opts.Semantics == ELCA:
		nodes = lca.ELCAStack(e.XIndex, terms)
	case opts.Workers > 1:
		nodes = lca.SLCAParallel(e.XIndex, terms, opts.Workers)
	default:
		nodes = lca.SLCA(e.XIndex, terms)
	}
	// Rank results by subtree compactness (smaller, deeper subtrees
	// first), the default XML ranking heuristic.
	sort.SliceStable(nodes, func(i, j int) bool {
		si, sj := len(xmltree.Subtree(nodes[i])), len(xmltree.Subtree(nodes[j]))
		if si != sj {
			return si < sj
		}
		return nodes[i].ID < nodes[j].ID
	})
	var out []Result
	for i, n := range nodes {
		if i >= opts.K {
			break
		}
		out = append(out, Result{Score: 1 / float64(1+len(xmltree.Subtree(n))), Node: n})
	}
	return out, nil
}

// ReturnNodes applies XSeek inference to an XML result (slide 51).
func (e *Engine) ReturnNodes(terms []string, result *xmltree.Node) []xseek.ReturnNode {
	if e.Tree == nil {
		return nil
	}
	cats := xseek.Classify(e.Tree)
	qa := xseek.AnalyzeQuery(e.Tree, terms)
	return xseek.InferReturnNodes(e.Tree, cats, qa, result)
}
