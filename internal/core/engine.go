// Package core is the public façade of the library: a keyword-search
// engine over relational or XML data with pluggable result semantics — the
// full pipeline the tutorial describes, from query cleaning through
// structure inference to ranked results.
//
// Relational data is searched under candidate-network semantics (DISCOVER
// joins with IR or SPARK scoring) or graph semantics (distinct-root BANKS
// search, group Steiner trees). XML data is searched under SLCA or ELCA
// semantics with XSeek return-node inference available on the results.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"kwsearch/internal/banks"
	"kwsearch/internal/clean"
	"kwsearch/internal/cn"
	"kwsearch/internal/datagraph"
	"kwsearch/internal/exec"
	"kwsearch/internal/invindex"
	"kwsearch/internal/lca"
	"kwsearch/internal/obs"
	"kwsearch/internal/plan"
	"kwsearch/internal/relstore"
	"kwsearch/internal/resilience"
	"kwsearch/internal/schemagraph"
	"kwsearch/internal/spark"
	"kwsearch/internal/steiner"
	"kwsearch/internal/text"
	"kwsearch/internal/xmltree"
	"kwsearch/internal/xseek"
)

// Semantics selects what a "result" is (the tutorial's Options 1-3 and the
// XML ?LCA family).
type Semantics int

const (
	// Auto selects CandidateNetworks for relational engines and SLCA for
	// XML engines.
	Auto Semantics = iota
	// CandidateNetworks evaluates DISCOVER-style join trees with the
	// monotone IR score.
	CandidateNetworks
	// SparkNetworks evaluates join trees under SPARK's non-monotonic
	// virtual-document score.
	SparkNetworks
	// DistinctRoot runs BANKS-style backward search on the data graph.
	DistinctRoot
	// SteinerTree returns the top-1 group Steiner tree.
	SteinerTree
	// SLCA returns smallest LCAs of an XML tree.
	SLCA
	// ELCA returns exclusive LCAs of an XML tree.
	ELCA
)

// String names the semantics.
func (s Semantics) String() string {
	switch s {
	case Auto:
		return "auto"
	case CandidateNetworks:
		return "cn"
	case SparkNetworks:
		return "spark"
	case DistinctRoot:
		return "banks"
	case SteinerTree:
		return "steiner"
	case SLCA:
		return "slca"
	case ELCA:
		return "elca"
	}
	return fmt.Sprintf("semantics(%d)", int(s))
}

// MarshalJSON encodes the semantics as its String name, so JSON payloads
// (kwsearch -json, BENCH files) stay readable.
func (s Semantics) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// ParseSemantics maps a semantics name (the String form, with "" and
// "auto" both meaning Auto) back to the enum. Unknown names fail with an
// error matching ErrBadQuery, so transport layers can map it straight to
// an invalid-request response.
func ParseSemantics(name string) (Semantics, error) {
	switch name {
	case "", "auto":
		return Auto, nil
	case "cn":
		return CandidateNetworks, nil
	case "spark":
		return SparkNetworks, nil
	case "banks":
		return DistinctRoot, nil
	case "steiner":
		return SteinerTree, nil
	case "slca":
		return SLCA, nil
	case "elca":
		return ELCA, nil
	}
	return Auto, badQuery(fmt.Sprintf("core: unknown semantics %q", name))
}

// Options tunes a search.
type Options struct {
	// K bounds the result count (default 10).
	K int
	// Semantics selects the result definition (default CandidateNetworks
	// for relational engines, SLCA for XML engines).
	Semantics Semantics
	// MaxCNSize bounds candidate-network size (default 5).
	MaxCNSize int
	// Clean runs noisy-channel query cleaning before searching.
	Clean bool
	// Trace enables per-query span collection: Query returns the span
	// tree in Response.Trace (kwsearch -trace prints it). Search ignores
	// the collected trace but still pays its (small) cost.
	Trace bool
	// Observer, when non-nil, is called at the end of every Query with
	// that query's Stats and Trace (trace nil unless Trace is set).
	Observer QueryObserver
	// Workers sets the worker-pool size for candidate-network and SLCA
	// evaluation. 0 or 1 keeps the serial paths; >1 routes CN searches
	// through the internal/exec cached executor and SLCA through the
	// range-split parallel algorithm. SLCA answers are identical either
	// way. CN scores are too, but among equal-score results at the k
	// boundary the executor matches the exhaustive-evaluation reference
	// order, while the serial Global Pipeline's early termination may
	// surface a different subset of the tied results.
	Workers int
}

func (o Options) withDefaults(xml bool) Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.MaxCNSize <= 0 {
		o.MaxCNSize = 5
	}
	if o.Semantics == Auto {
		if xml {
			o.Semantics = SLCA
		} else {
			o.Semantics = CandidateNetworks
		}
	}
	return o
}

// Result is one search answer under any semantics.
type Result struct {
	Score float64
	// Tuples and CN are set under CandidateNetworks/SparkNetworks.
	Tuples []*relstore.Tuple
	CN     *cn.CN
	// Root and Cost are set under DistinctRoot/SteinerTree (Root is the
	// answer root's tuple).
	Root *relstore.Tuple
	Cost float64
	// Node is set under SLCA/ELCA.
	Node *xmltree.Node
}

// String renders a one-line summary for CLIs.
func (r Result) String() string {
	switch {
	case r.CN != nil:
		parts := make([]string, len(r.Tuples))
		for i, tp := range r.Tuples {
			parts[i] = fmt.Sprintf("%s#%d", tp.Table, tp.ID)
		}
		return fmt.Sprintf("%.3f  %s  via %s", r.Score, strings.Join(parts, " ⋈ "), r.CN)
	case r.Root != nil:
		return fmt.Sprintf("cost %.2f  root %s#%d", r.Cost, r.Root.Table, r.Root.ID)
	case r.Node != nil:
		return fmt.Sprintf("%s (%s)", r.Node.LabelPath(), r.Node.Dewey)
	}
	return fmt.Sprintf("score %.3f", r.Score)
}

// Engine searches one dataset. Construct with NewRelational or NewXML.
type Engine struct {
	// Relational side.
	DB     *relstore.DB
	Schema *schemagraph.Graph
	Graph  *datagraph.Graph
	Index  *invindex.Index
	// XML side.
	Tree   *xmltree.Tree
	XIndex *xmltree.Index

	Cleaner *clean.Cleaner
	// FreeTables are the relations allowed as free tuple sets in candidate
	// networks; defaults to the tables without text columns (link tables).
	FreeTables []string

	// Metrics is the engine's metrics registry: the inverted index, the
	// execution layer and its caches surface their counters here, and
	// Query records per-query histograms. Populated by the constructors;
	// serve it with obs.Serve for live inspection.
	Metrics *obs.Registry

	// Exec is the concurrent cached execution layer used by CN searches
	// when Options.Workers > 1. Populated by NewRelational.
	Exec *exec.Executor
	// Binder is the shared keyword→tuple binding layer: R^Q sets are
	// derived from posting lists with per-term bindings and join-column
	// lookups cached across queries, shared between the serial CN path
	// and the executor. Populated by NewRelational; nil on XML engines
	// and hand-assembled engines (the serial path then falls back to a
	// one-shot index-driven binding).
	Binder *cn.Binder
	// Plans is the candidate-network plan cache, shared between the
	// serial CN path and the executor: a query's compiled CN set depends
	// only on the schema graph and the keyword→relation membership
	// signature, so warm signatures skip enumeration entirely whichever
	// path runs them. Populated by NewRelational; nil on XML engines.
	Plans *plan.Cache
	// lastExec points at an immutable snapshot of the most recent
	// executor-backed search's stats. Each query publishes a fresh struct
	// with one atomic pointer store, so concurrent readers always see one
	// query's stats whole — never a merge of two queries' fields (the
	// previous exported mutable field invited exactly that: unsynchronized
	// readers racing a writer could observe a half-updated struct). Read
	// it through ExecStats; per-query stats are better taken from
	// Response.Stats.Exec, which is never overwritten by later queries.
	lastExec atomic.Pointer[exec.Stats]

	// forceExec routes CN queries through the exec pool even at
	// Workers <= 1. Shard views set it: at the top-k tie boundary the
	// serial Global Pipeline may surface a different subset of
	// equal-score results than the exhaustive reference order, and the
	// cross-shard merge needs every shard in the reference order to stay
	// byte-identical to the single-engine answer.
	forceExec bool
	// gate is the admission controller, nil unless Admit installed one.
	gate *resilience.Gate
	// slowlog is the tail-sampling slow-query log, nil unless SetSlowLog
	// installed one. With it installed, every query runs a cheap trace
	// and slow/errored/shed/partial queries are retained as exemplars.
	slowlog *obs.SlowLog
}

// ExecStats returns the stats snapshot of the most recent
// executor-backed search (the zero Stats before any ran), safe under
// concurrent Query calls: the snapshot is immutable and swapped with one
// atomic store, so it is always one query's stats whole.
func (e *Engine) ExecStats() exec.Stats {
	if st := e.lastExec.Load(); st != nil {
		return *st
	}
	return exec.Stats{}
}

// Registry returns the engine's metrics registry — the method form of
// the Metrics field, required by the Searcher seam so the sharding
// coordinator (whose registry is unexported) can satisfy it too.
func (e *Engine) Registry() *obs.Registry { return e.Metrics }

// NewRelational builds an engine over a relational database.
func NewRelational(db *relstore.DB) *Engine {
	ix := invindex.FromDB(db)
	reg := obs.NewRegistry()
	ix.Instrument(reg, "invindex")
	e := &Engine{
		DB:      db,
		Schema:  schemagraph.FromDB(db),
		Graph:   datagraph.FromDB(db, nil),
		Index:   ix,
		Cleaner: clean.NewCleaner(ix),
		Metrics: reg,
	}
	for _, name := range db.TableNames() {
		hasText := false
		for _, c := range db.Table(name).Schema.Columns {
			if c.Text {
				hasText = true
				break
			}
		}
		if !hasText {
			e.FreeTables = append(e.FreeTables, name)
		}
	}
	e.Plans = plan.New(plan.Options{Workers: runtime.GOMAXPROCS(0), Metrics: reg})
	e.Binder = cn.NewBinder(db, ix, cn.BinderOptions{Metrics: reg})
	e.Exec = exec.New(db, ix, exec.Options{
		FreeTables: e.FreeTables, Metrics: reg, Plans: e.Plans, Binder: e.Binder,
	})
	registerQuerySLO(reg)
	return e
}

// ShardView derives a shard engine from a relational engine: the same
// physical database, index, schema graph, cleaner, plan cache and binder
// (all concurrency-safe and partition-agnostic), with a private executor
// restricted to the results keep admits. The restriction is logical —
// no data is copied or moved — and applies at the CN owner node (node
// 0), so the shard views of a disjoint, complete partition of the
// tuple-ID space tile the result space exactly (see internal/cn's
// partition.go and DESIGN.md's sharding layer).
//
// The executor is private because the result cache's key carries no
// partition identity; it reports into reg (one registry per shard gives
// the coordinator per-shard attribution; nil gets a fresh private one).
// Shard views force CN queries through the exec pool even at one
// worker: among equal-score results at the k boundary the serial Global
// Pipeline may keep a different subset of the ties than the exhaustive
// reference order, and the cross-shard merge is byte-identical to the
// single-engine answer only when every shard follows the reference
// order.
func (e *Engine) ShardView(keep cn.Partition, reg *obs.Registry) *Engine {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sv := &Engine{
		DB:         e.DB,
		Schema:     e.Schema,
		Graph:      e.Graph,
		Index:      e.Index,
		Cleaner:    e.Cleaner,
		FreeTables: e.FreeTables,
		Metrics:    reg,
		Binder:     e.Binder,
		Plans:      e.Plans,
		forceExec:  true,
	}
	sv.Exec = exec.New(e.DB, e.Index, exec.Options{
		FreeTables: e.FreeTables,
		Metrics:    reg,
		Plans:      e.Plans,
		Binder:     e.Binder,
		Partition:  keep,
	})
	registerQuerySLO(reg)
	return sv
}

// DefaultSLOThreshold is the default query-latency objective the engine
// registers burn-rate gauges for: 100ms, matching the serving layer's
// default deadline scale. Re-register "query_latency" on the engine's
// registry to tune it.
const DefaultSLOThreshold = 100 * time.Millisecond

// registerQuerySLO installs the engine-level latency SLO over the
// windowed query.latency_us series: 99% of queries under
// DefaultSLOThreshold.
func registerQuerySLO(reg *obs.Registry) {
	_ = reg.Windowed("query.latency_us") // create the series eagerly
	reg.RegisterSLO("query_latency", obs.SLO{
		Series:    "query.latency_us",
		Threshold: float64(DefaultSLOThreshold.Microseconds()),
		Objective: 0.99,
	})
}

// NewXML builds an engine over an XML tree.
func NewXML(tree *xmltree.Tree) *Engine {
	xix := xmltree.NewIndex(tree)
	rix := invindex.New()
	for _, n := range tree.Nodes() {
		if n.Value != "" {
			rix.Add(invindex.DocID(n.ID), n.Value)
		}
	}
	reg := obs.NewRegistry()
	rix.Instrument(reg, "invindex")
	registerQuerySLO(reg)
	return &Engine{Tree: tree, XIndex: xix, Cleaner: clean.NewCleaner(rix), Metrics: reg}
}

// Terms tokenizes (and optionally cleans) the query.
func (e *Engine) Terms(query string, doClean bool) []string {
	if doClean && e.Cleaner != nil {
		return e.Cleaner.Clean(query).Tokens()
	}
	return text.Tokenize(query)
}

func (e *Engine) requireRelational() error {
	if e.DB == nil {
		return badQuery("core: semantics requires a relational engine")
	}
	return nil
}

// lookupSpan resolves every term's postings (through lookup, which may be
// cache-backed) under a "lookup" child span recording the term and total
// posting counts. The resolution itself warms whatever cache backs
// lookup, so the work is part of the pipeline, not tracing overhead.
func lookupSpan(sp *obs.Span, terms []string, lookup func(string) int) {
	lsp := sp.Child("lookup")
	total := 0
	for _, t := range terms {
		total += lookup(t)
	}
	lsp.SetAttr("terms", len(terms))
	lsp.SetAttr("postings", total)
	lsp.End()
}

// cnResults converts evaluator results to the public shape.
func cnResults(rs []cn.Result) []Result {
	var out []Result
	for _, r := range rs {
		out = append(out, Result{Score: r.Score, Tuples: r.Tuples, CN: r.CN})
	}
	return out
}

func (e *Engine) searchCN(ctx context.Context, terms []string, opts Options, sp *obs.Span, st *Stats) ([]Result, error) {
	if err := e.requireRelational(); err != nil {
		return nil, err
	}
	if opts.Semantics == CandidateNetworks && (opts.Workers > 1 || e.forceExec) && e.Exec != nil {
		lookupSpan(sp, terms, func(t string) int { return len(e.Exec.Postings(t)) })
		rs, xst, err := e.Exec.TopK(ctx, exec.Query{
			Terms: terms, K: opts.K, MaxCNSize: opts.MaxCNSize, Workers: opts.Workers,
			Trace: sp,
		})
		snap := xst
		e.lastExec.Store(&snap)
		st.Exec = &xst
		st.PlanSignature = xst.PlanKey
		if err != nil {
			// rs is the certified prefix (possibly empty); Query decides
			// whether the error becomes a partial response.
			return cnResults(rs), err
		}
		out := cnResults(rs)
		rankSpan(sp, len(out))
		return out, nil
	}
	lookupSpan(sp, terms, func(t string) int { return len(e.Index.Postings(t)) })
	bsp := sp.Child("bind")
	var ev *cn.Evaluator
	if e.Binder != nil {
		ev = cn.NewEvaluatorFrom(e.DB, e.Index, e.Binder.BindTraced(terms, bsp))
	} else {
		// Hand-assembled engines without a binder pay a one-shot binding.
		ev = cn.NewEvaluatorTraced(e.DB, e.Index, terms, bsp)
	}
	kwTables := ev.KeywordTables()
	bsp.SetAttr("keyword_tables", len(kwTables))
	bsp.End()
	esp := sp.Child("enumerate")
	eopts := cn.EnumerateOptions{
		MaxSize:       opts.MaxCNSize,
		KeywordTables: kwTables,
		FreeTables:    e.FreeTables,
	}
	var cns []*cn.CN
	var err error
	if e.Plans != nil {
		var ps *plan.PlanSet
		var planHit bool
		ps, planHit, err = e.Plans.Get(ctx, e.Schema, eopts)
		if err == nil {
			cns = ps.CNs() // immutable, share-safe: evaluation is read-only
			st.PlanSignature = ps.Key()
			esp.SetAttr("plan_cached", planHit)
		}
	} else {
		// Hand-assembled engines without a plan cache keep the direct path.
		cns, err = cn.EnumerateCtx(ctx, e.Schema, eopts)
	}
	if err != nil {
		esp.SetAttr("cancelled", true)
		esp.End()
		return nil, err
	}
	esp.SetAttr("cns", len(cns))
	esp.End()
	if opts.Semantics == SparkNetworks {
		// SPARK's skyline scorer is not context-aware; honor ctx at the
		// stage boundary so an already-expired deadline costs nothing.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		vsp := sp.Child("evaluate")
		scorer := spark.NewScorer(ev, e.Index)
		rs, _ := spark.TopKSkyline(scorer, cns, opts.K)
		vsp.SetAttr("cns", len(cns))
		vsp.SetAttr("produced", len(rs))
		vsp.End()
		out := make([]Result, 0, len(rs))
		for _, r := range rs {
			out = append(out, Result{Score: r.SparkScore, Tuples: r.Tuples, CN: r.CN})
		}
		rankSpan(sp, len(out))
		return out, nil
	}
	vsp := sp.Child("evaluate")
	rs, err := cn.TopKGlobalPipelineCtx(ctx, ev, cns, opts.K, vsp)
	vsp.End()
	if err != nil {
		return cnResults(rs), err // certified prefix travels with the error
	}
	out := cnResults(rs)
	rankSpan(sp, len(out))
	return out, nil
}

// rankSpan emits the terminal "rank" stage span: result conversion and
// final ordering (already done by the evaluation layers, which return
// sorted answers — the span records the merge point and result count).
func rankSpan(sp *obs.Span, results int) {
	rsp := sp.Child("rank")
	rsp.SetAttr("results", results)
	rsp.End()
}

// keywordGroups maps terms to data-graph node groups; ok is false when a
// term has no matches (AND semantics: no results).
func (e *Engine) keywordGroups(terms []string) ([][]datagraph.NodeID, bool) {
	groups := make([][]datagraph.NodeID, len(terms))
	for i, t := range terms {
		for _, d := range e.Index.Docs(t) {
			groups[i] = append(groups[i], datagraph.NodeID(d))
		}
		if len(groups[i]) == 0 {
			return nil, false
		}
	}
	return groups, true
}

// groupsSpan runs keywordGroups under a "lookup" child span recording the
// group count and total matched nodes.
func (e *Engine) groupsSpan(sp *obs.Span, terms []string) ([][]datagraph.NodeID, bool) {
	lsp := sp.Child("lookup")
	groups, ok := e.keywordGroups(terms)
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	lsp.SetAttr("terms", len(terms))
	lsp.SetAttr("matches", total)
	lsp.End()
	return groups, ok
}

func (e *Engine) searchBanks(ctx context.Context, terms []string, opts Options, sp *obs.Span) ([]Result, error) {
	if err := e.requireRelational(); err != nil {
		return nil, err
	}
	groups, ok := e.groupsSpan(sp, terms)
	if !ok {
		return nil, nil
	}
	xsp := sp.Child("expand")
	answers, bst, err := banks.BackwardSearchCtx(ctx, e.Graph, groups, banks.Options{K: opts.K})
	bst.Record(xsp)
	if err != nil {
		xsp.SetAttr("cancelled", true)
	}
	xsp.End()
	var out []Result
	for _, a := range answers {
		out = append(out, Result{
			Score: 1 / (1 + a.Cost),
			Cost:  a.Cost,
			Root:  e.DB.TupleByID(relstore.TupleID(a.Root)),
		})
	}
	if err != nil {
		return out, err // best-effort partials travel with the error
	}
	rankSpan(sp, len(out))
	return out, nil
}

func (e *Engine) searchSteiner(ctx context.Context, terms []string, opts Options, sp *obs.Span) ([]Result, error) {
	if err := e.requireRelational(); err != nil {
		return nil, err
	}
	groups, ok := e.groupsSpan(sp, terms)
	if !ok {
		return nil, nil
	}
	xsp := sp.Child("expand")
	tree, found, err := steiner.GroupSteinerCtx(ctx, e.Graph, groups)
	if err != nil {
		xsp.SetAttr("cancelled", true)
		xsp.End()
		return nil, err
	}
	xsp.SetAttr("found", found)
	if found {
		xsp.SetAttr("cost", tree.Cost)
		xsp.SetAttr("nodes", len(tree.Nodes()))
	}
	xsp.End()
	if !found {
		rankSpan(sp, 0)
		return nil, nil
	}
	r := Result{
		Score: 1 / (1 + tree.Cost),
		Cost:  tree.Cost,
		Root:  e.DB.TupleByID(relstore.TupleID(tree.Root)),
	}
	for _, n := range tree.Nodes() {
		r.Tuples = append(r.Tuples, e.DB.TupleByID(relstore.TupleID(n)))
	}
	rankSpan(sp, 1)
	return []Result{r}, nil
}

func (e *Engine) searchXML(ctx context.Context, terms []string, opts Options, sp *obs.Span) ([]Result, error) {
	if e.XIndex == nil {
		return nil, badQuery(fmt.Sprintf("core: semantics %v requires an XML engine", opts.Semantics))
	}
	// The serial LCA algorithms are not context-aware; honoring ctx at
	// the stage boundary still stops an expired query before the scan.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vsp := sp.Child("evaluate")
	var nodes []*xmltree.Node
	var err error
	switch {
	case opts.Semantics == ELCA:
		vsp.SetAttr("algorithm", "elca-stack")
		nodes = lca.ELCAStackTraced(e.XIndex, terms, vsp)
	case opts.Workers > 1:
		vsp.SetAttr("algorithm", "slca-parallel")
		nodes, err = lca.SLCAParallelCtx(ctx, e.XIndex, terms, opts.Workers, vsp)
	default:
		vsp.SetAttr("algorithm", "slca-ile")
		nodes = lca.SLCATraced(e.XIndex, terms, vsp)
	}
	vsp.End()
	if err != nil {
		return nil, err // SLCA has no sound partial answer (see lca docs)
	}
	// Rank results by subtree compactness (smaller, deeper subtrees
	// first), the default XML ranking heuristic.
	sort.SliceStable(nodes, func(i, j int) bool {
		si, sj := len(xmltree.Subtree(nodes[i])), len(xmltree.Subtree(nodes[j]))
		if si != sj {
			return si < sj
		}
		return nodes[i].ID < nodes[j].ID
	})
	var out []Result
	for i, n := range nodes {
		if i >= opts.K {
			break
		}
		out = append(out, Result{Score: 1 / float64(1+len(xmltree.Subtree(n))), Node: n})
	}
	rankSpan(sp, len(out))
	return out, nil
}

// ReturnNodes applies XSeek inference to an XML result (slide 51).
func (e *Engine) ReturnNodes(terms []string, result *xmltree.Node) []xseek.ReturnNode {
	if e.Tree == nil {
		return nil
	}
	cats := xseek.Classify(e.Tree)
	qa := xseek.AnalyzeQuery(e.Tree, terms)
	return xseek.InferReturnNodes(e.Tree, cats, qa, result)
}
