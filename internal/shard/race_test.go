package shard

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"kwsearch/internal/core"
)

// TestCoordinatorChurnRace hammers the coordinator with concurrent
// queries while an invalidation loop bumps every cache generation
// across the deployment. The data never changes, so every answer —
// served from whatever mix of warm and freshly-invalidated caches the
// race produces — must stay byte-identical to the reference. Run under
// -race (verify.sh includes this package in the race gate).
func TestCoordinatorChurnRace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	engine := core.NewRelational(randomCorpusDB(rng, 3))
	coord, err := New(engine, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"keyword search", "database", "graph rank tuple"}
	want := make([]string, len(queries))
	for i, q := range queries {
		resp, err := coord.Query(context.Background(), core.Request{Query: q, TopK: 10})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = renderCore(resp.Results)
	}

	iters := 60
	if testing.Short() {
		iters = 10
	}

	done := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			switch i % 3 {
			case 0:
				coord.InvalidateCaches()
			case 1:
				coord.InvalidateDataCaches()
			case 2:
				coord.InvalidateResults()
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				resp, err := coord.Query(context.Background(), core.Request{Query: queries[qi], TopK: 10})
				if err != nil {
					select {
					case errs <- "query error under churn: " + err.Error():
					default:
					}
					return
				}
				if got := renderCore(resp.Results); got != want[qi] {
					select {
					case errs <- "answer changed under invalidation churn for " + queries[qi]:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	churn.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
