package shard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"kwsearch/internal/core"
	"kwsearch/internal/exec"
	"kwsearch/internal/relstore"
	"kwsearch/internal/resilience"
)

// corpusVocab is small on purpose: terms collide across tables and
// tuples, so queries hit multiple tables and produce cross-shard result
// sets with plenty of near-ties for the merge's tie-break to resolve.
var corpusVocab = []string{
	"query", "keyword", "search", "database", "join", "index",
	"graph", "rank", "tuple", "stream", "cache", "widom",
}

// randomCorpusDB builds a random bibliography-shaped database: nEnt
// entity tables (id key + text column) chained by link tables, with
// random text drawn from corpusVocab.
func randomCorpusDB(rng *rand.Rand, nEnt int) *relstore.DB {
	db := relstore.NewDB()
	for i := 0; i < nEnt; i++ {
		db.MustCreateTable(&relstore.TableSchema{
			Name: fmt.Sprintf("ent%d", i),
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.KindInt},
				{Name: "txt", Type: relstore.KindString, Text: true},
			},
			Key: "id",
		})
	}
	for i := 1; i < nEnt; i++ {
		db.MustCreateTable(&relstore.TableSchema{
			Name: fmt.Sprintf("link%d", i),
			Columns: []relstore.Column{
				{Name: "a", Type: relstore.KindInt},
				{Name: "b", Type: relstore.KindInt},
			},
			ForeignKeys: []relstore.ForeignKey{
				{Column: "a", RefTable: fmt.Sprintf("ent%d", i-1), RefColumn: "id"},
				{Column: "b", RefTable: fmt.Sprintf("ent%d", i), RefColumn: "id"},
			},
		})
	}
	rows := make([]int, nEnt)
	for i := 0; i < nEnt; i++ {
		rows[i] = 5 + rng.Intn(25)
		for r := 0; r < rows[i]; r++ {
			words := make([]string, 1+rng.Intn(3))
			for w := range words {
				words[w] = corpusVocab[rng.Intn(len(corpusVocab))]
			}
			db.MustInsert(fmt.Sprintf("ent%d", i), map[string]relstore.Value{
				"id":  relstore.Int(int64(r)),
				"txt": relstore.String(strings.Join(words, " ")),
			})
		}
	}
	for i := 1; i < nEnt; i++ {
		for r := 0; r < 10+rng.Intn(30); r++ {
			db.MustInsert(fmt.Sprintf("link%d", i), map[string]relstore.Value{
				"a": relstore.Int(int64(rng.Intn(rows[i-1]))),
				"b": relstore.Int(int64(rng.Intn(rows[i]))),
			})
		}
	}
	return db
}

// renderCore serializes a response's results bit-exactly: canonical CN,
// tuple IDs in CN node order, and the raw float64 bits of the score.
// Two result lists render equal iff they are byte-identical answers.
func renderCore(results []core.Result) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString(r.CN.Canonical())
		for _, tp := range r.Tuples {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(int(tp.ID)))
		}
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.Score), 16))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestShardOfCompleteAndDisjoint(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		owned := make([]int, n)
		for id := 0; id < 2000; id++ {
			s := ShardOf(relstore.TupleID(id), n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d, out of range", id, n, s)
			}
			owners := 0
			for p := 0; p < n; p++ {
				if OwnedBy(p, n)(relstore.TupleID(id)) {
					owners++
					if p != s {
						t.Fatalf("id %d: OwnedBy(%d, %d) true but ShardOf says %d", id, p, n, s)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("id %d owned by %d shards of %d, want exactly 1", id, owners, n)
			}
			owned[s]++
		}
		for s, c := range owned {
			if c == 0 {
				t.Errorf("n=%d: shard %d owns no IDs out of 2000 — degenerate hash", n, s)
			}
		}
	}
	if OwnedBy(0, 1) != nil {
		t.Errorf("OwnedBy(0, 1) should be nil (no restriction)")
	}
}

// TestCoordinatorMatchesSerialRandomCorpus is the acceptance-criteria
// check: across a randomized multi-schema corpus, the coordinator's
// answer at every shard count must be byte-identical (order, score
// bits, bindings) to the 1-shard coordinator, the unsharded engine's
// pool path, and the full serial oracle.
func TestCoordinatorMatchesSerialRandomCorpus(t *testing.T) {
	const seeds = 25
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		db := randomCorpusDB(rng, 2+seed%3)
		engine := core.NewRelational(db)

		var queries []string
		for q := 0; q < 2; q++ {
			terms := make([]string, 1+rng.Intn(3))
			for i := range terms {
				terms[i] = corpusVocab[rng.Intn(len(corpusVocab))]
			}
			queries = append(queries, strings.Join(terms, " "))
		}

		coords := map[int]*Coordinator{}
		for _, n := range []int{1, 2, 4, 8} {
			c, err := New(engine, Options{Shards: n})
			if err != nil {
				t.Fatalf("seed %d: New(%d shards): %v", seed, n, err)
			}
			coords[n] = c
		}

		for _, q := range queries {
			req := core.Request{Query: q, TopK: 10, MaxCNSize: 5, Workers: 2}
			base, err := engine.Query(context.Background(), req)
			if err != nil {
				t.Fatalf("seed %d %q: base query: %v", seed, q, err)
			}
			want := renderCore(base.Results)

			serial := engine.Exec.TopKSerial(exec.Query{
				Terms: strings.Fields(q), K: 10, MaxCNSize: 5,
			})
			var sb strings.Builder
			for _, r := range serial {
				sb.WriteString(r.CN.Canonical())
				for _, tp := range r.Tuples {
					sb.WriteByte(' ')
					sb.WriteString(strconv.Itoa(int(tp.ID)))
				}
				sb.WriteByte('@')
				sb.WriteString(strconv.FormatUint(math.Float64bits(r.Score), 16))
				sb.WriteByte('\n')
			}
			if got := sb.String(); got != want {
				t.Fatalf("seed %d %q: pool path differs from serial oracle\ngot:\n%swant:\n%s", seed, q, want, got)
			}

			for _, n := range []int{1, 2, 4, 8} {
				resp, err := coords[n].Query(context.Background(), core.Request{Query: q, TopK: 10, MaxCNSize: 5})
				if err != nil {
					t.Fatalf("seed %d %q shards=%d: %v", seed, q, n, err)
				}
				if got := renderCore(resp.Results); got != want {
					t.Errorf("seed %d %q shards=%d: answer differs from single engine\ngot:\n%swant:\n%s",
						seed, q, n, got, want)
				}
				if len(resp.Stats.Shards) != n {
					t.Errorf("seed %d %q shards=%d: %d shard stats", seed, q, n, len(resp.Stats.Shards))
				}
				pulled := 0
				for _, ss := range resp.Stats.Shards {
					pulled += ss.Pulled
				}
				if pulled != len(resp.Results) {
					t.Errorf("seed %d %q shards=%d: merge pulled %d results but returned %d",
						seed, q, n, pulled, len(resp.Results))
				}
			}
		}
	}
}

// TestCoordinatorDelegatesNonCN pins the delegation path: semantics
// without a sound per-shard merge run unpartitioned on the base engine.
func TestCoordinatorDelegatesNonCN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	engine := core.NewRelational(randomCorpusDB(rng, 3))
	coord, err := New(engine, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	req := core.Request{Query: "keyword search", Semantics: core.DistinctRoot, TopK: 5}
	want, err := engine.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("delegated answer has %d results, base %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if math.Float64bits(got.Results[i].Cost) != math.Float64bits(want.Results[i].Cost) {
			t.Errorf("result %d: cost %v != %v", i, got.Results[i].Cost, want.Results[i].Cost)
		}
	}
}

// TestCoordinatorPartialOnSlowShard is the satellite-3 e2e: one shard
// slowed past the deadline by an injector must yield a partial (not
// failed) response whose results are a byte-prefix of the full answer,
// with the slow shard attributed in the per-shard stats.
func TestCoordinatorPartialOnSlowShard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	engine := core.NewRelational(randomCorpusDB(rng, 3))
	req := core.Request{Query: "keyword search", TopK: 10, MaxCNSize: 5}

	fast, err := New(engine, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := fast.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Results) == 0 {
		t.Fatal("corpus query returned no results; pick another seed")
	}
	fullRender := renderCore(full.Results)

	const slowShard = 1
	in := resilience.NewInjector(1).Arm(resilience.StageEval, resilience.Fault{Delay: 5 * time.Second})
	slow, err := New(engine, Options{
		Shards: 4,
		ShardCtx: func(ctx context.Context, s int) context.Context {
			if s == slowShard {
				return resilience.WithInjector(ctx, in)
			}
			return ctx
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	preq := req
	preq.Deadline = 150 * time.Millisecond
	resp, err := slow.Query(context.Background(), preq)
	if err != nil {
		t.Fatalf("slow-shard query should be partial, not failed: %v", err)
	}
	if !resp.Partial {
		t.Fatal("response not marked partial although one shard missed the deadline")
	}
	if len(resp.Stats.Shards) != 4 {
		t.Fatalf("%d shard stats, want 4", len(resp.Stats.Shards))
	}
	if !resp.Stats.Shards[slowShard].Partial {
		t.Errorf("slow shard %d not marked partial in stats", slowShard)
	}
	complete := 0
	for s, ss := range resp.Stats.Shards {
		if s != slowShard && !ss.Partial {
			complete++
		}
	}
	if complete == 0 {
		t.Error("every shard marked partial; expected the fault to hit only one")
	}
	if got := renderCore(resp.Results); !strings.HasPrefix(fullRender, got) {
		t.Errorf("partial results are not a byte-prefix of the full answer\npartial:\n%sfull:\n%s",
			got, fullRender)
	}
}

// TestCoordinatorAbsorbsShardDeadlineError is the regression test for
// the scatter-gather deadline seam: a shard whose sub-query dies with
// ErrDeadlineExceeded (deadline expired at the shard's admission gate,
// or before the fan-out goroutine was scheduled — routine on a loaded
// box) must NOT fail the logical query. The coordinator already
// admitted it, so the engine contract makes this a mid-evaluation
// expiry: a partial response with a nil error, the dead shard absorbed
// as vacuously partial (no certificate → the certified prefix is
// empty). Pre-fix the coordinator returned the shard's error and kwsd
// served 503 for a query it had accepted.
func TestCoordinatorAbsorbsShardDeadlineError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	engine := core.NewRelational(randomCorpusDB(rng, 3))
	req := core.Request{Query: "keyword search", TopK: 10, MaxCNSize: 5}

	const deadShard = 2
	in := resilience.NewInjector(7).Arm(resilience.StageAdmit,
		resilience.Fault{Err: resilience.ErrDeadlineExceeded})
	coord, err := New(engine, Options{
		Shards: 4,
		ShardCtx: func(ctx context.Context, s int) context.Context {
			if s == deadShard {
				return resilience.WithInjector(ctx, in)
			}
			return ctx
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := coord.Query(context.Background(), req)
	if err != nil {
		t.Fatalf("shard deadline error must become a partial response, got error: %v", err)
	}
	if !resp.Partial {
		t.Fatal("response not marked partial although one shard missed the deadline")
	}
	if len(resp.Results) != 0 {
		t.Fatalf("dead shard has no certificate, so the certified prefix must be empty; got %d results",
			len(resp.Results))
	}
	if len(resp.Stats.Shards) != 4 {
		t.Fatalf("%d shard stats, want 4", len(resp.Stats.Shards))
	}
	if !resp.Stats.Shards[deadShard].Partial {
		t.Errorf("dead shard %d not marked partial in stats", deadShard)
	}
	if len(resp.Stats.Terms) == 0 {
		t.Error("Stats.Terms empty; should come from a surviving shard")
	}

	// Cancellation is not absorbed: a cancelled caller gets the error.
	// (Result caches are dropped first — a cache hit needs no evaluation
	// and would legitimately answer even a cancelled query.)
	coord.InvalidateResults()
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.Query(cctx, req); err == nil {
		t.Fatal("cancelled query returned nil error")
	}
}
