// Package shard presents N shard engines as one logical engine: a
// scatter-gather Coordinator implementing the same context-first query
// contract (core.Searcher) as a single core.Engine, so every transport
// — the HTTP server, the CLIs, the load generator — runs unchanged over
// a partitioned deployment.
//
// The partition is logical, not physical: every shard view shares the
// same relational store, inverted index, schema graph, plan cache and
// binder (all concurrency-safe and partition-agnostic), and restricts
// evaluation to the results it owns. Ownership hangs off the CN owner
// node: the enumerator grows every candidate network from a keyword
// node at position 0, so each result tree has a well-defined owner
// tuple (the one bound to node 0), and shard s owns exactly the results
// whose owner tuple hashes to s. Because every result has exactly one
// owner, the shards' result sets are disjoint and their union is the
// complete answer — the properties the cross-shard merge proof in
// DESIGN.md's sharding layer rests on.
//
// Invalidation and generation bumps route through every shard: the
// binder and plan cache are shared (one bump covers all views; repeated
// bumps are harmless generation increments), while each shard's private
// posting and result caches are flushed individually.
package shard

import (
	"context"
	"fmt"

	"kwsearch/internal/cn"
	"kwsearch/internal/core"
	"kwsearch/internal/obs"
	"kwsearch/internal/relstore"
	"kwsearch/internal/resilience"
)

// ShardOf maps a tuple ID to its owning shard among n via FNV-1a over
// the ID's four little-endian bytes. FNV keeps the assignment stable
// across runs and platforms (byte-identity tests and BENCH numbers
// depend on that) while decorrelating it from insertion order, which
// sequential IDs modulo n would not.
func ShardOf(id relstore.TupleID, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	v := uint32(id)
	for i := 0; i < 4; i++ {
		h ^= (v >> (8 * uint(i))) & 0xff
		h *= prime32
	}
	return int(h % uint32(n))
}

// OwnedBy returns the partition predicate of shard s among n: it admits
// the tuple IDs ShardOf assigns to s. One shard means no restriction
// (nil), making the single-shard coordinator's engine view exactly the
// base engine's exec path.
func OwnedBy(s, n int) cn.Partition {
	if n <= 1 {
		return nil
	}
	return func(id relstore.TupleID) bool { return ShardOf(id, n) == s }
}

// Options configures a Coordinator.
type Options struct {
	// Shards is the shard count (<=0 means 1).
	Shards int
	// Metrics is the coordinator's own registry, receiving the
	// engine-level query metrics (query.elapsed_us, query.latency_us,
	// shed/deadline/partial counters) for coordinated queries. Nil gets
	// a fresh private one. Per-shard metrics live in each shard view's
	// own registry (see Coordinator.ShardRegistry).
	Metrics *obs.Registry
	// ShardCtx, when non-nil, derives the context each shard sub-query
	// runs under — the seam tests use to arm a resilience.Injector on
	// one shard (a slow or failing shard) without touching the others.
	ShardCtx func(ctx context.Context, shard int) context.Context
	// Workers sets each shard sub-query's default worker-pool size when
	// the request leaves Workers unset (<=0 means 1: with one goroutine
	// per shard in flight, per-shard pools of 1 keep total parallelism
	// equal to the shard count instead of multiplying by it).
	Workers int
}

// Coordinator is one logical engine over N shard engines. Construct
// with New; safe for concurrent Query calls. It implements
// core.Searcher.
type Coordinator struct {
	base    *core.Engine
	shards  []*core.Engine
	metrics *obs.Registry
	workers int

	gate     *resilience.Gate
	slowlog  *obs.SlowLog
	shardCtx func(context.Context, int) context.Context
}

var _ core.Searcher = (*Coordinator)(nil)

// New builds a coordinator over base, deriving one shard view per
// shard. The base engine stays fully usable — the coordinator delegates
// the non-CN semantics (spark, banks, steiner) to it unpartitioned,
// since their scoring is either non-monotone (spark's skyline) or
// graph-global, where a per-shard merge has no soundness proof.
func New(base *core.Engine, opts Options) (*Coordinator, error) {
	if base == nil || base.DB == nil {
		return nil, fmt.Errorf("shard: coordinator requires a relational engine")
	}
	n := opts.Shards
	if n <= 0 {
		n = 1
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	c := &Coordinator{base: base, metrics: reg, workers: workers, shardCtx: opts.ShardCtx}
	_ = reg.Windowed("query.latency_us")
	reg.RegisterSLO("query_latency", obs.SLO{
		Series:    "query.latency_us",
		Threshold: float64(core.DefaultSLOThreshold.Microseconds()),
		Objective: 0.99,
	})
	for s := 0; s < n; s++ {
		c.shards = append(c.shards, base.ShardView(OwnedBy(s, n), obs.NewRegistry()))
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Base returns the underlying unpartitioned engine.
func (c *Coordinator) Base() *core.Engine { return c.base }

// ShardRegistry returns shard s's private metrics registry — the
// per-shard attribution surface (executor counters, cache hit rates,
// admission outcomes for that shard alone).
func (c *Coordinator) ShardRegistry(s int) *obs.Registry { return c.shards[s].Metrics }

// Registry returns the coordinator's own metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.metrics }

// Admit installs admission control at every level: the coordinator's
// own gate (guarding coordinated CN queries), the base engine's
// (guarding delegated non-CN queries) and each shard engine's, all at
// the same limits. The shard gates feed the global one: a coordinated
// query holds one coordinator slot and one slot per shard, and because
// the coordinator admits at most limit queries concurrently, a shard
// gate with the same limit can never shed a sub-query the coordinator
// admitted — the hierarchy adds per-shard admission metrics without
// spurious rejections. A non-positive limit removes every gate.
func (c *Coordinator) Admit(limit, maxQueue int) {
	if limit <= 0 {
		c.gate = nil
		c.base.Admit(0, 0)
		for _, sh := range c.shards {
			sh.Admit(0, 0)
		}
		return
	}
	g := resilience.NewGate(limit, maxQueue)
	if c.metrics != nil {
		g.Instrument(c.metrics)
	}
	c.gate = g
	c.base.Admit(limit, maxQueue)
	for _, sh := range c.shards {
		sh.Admit(limit, maxQueue)
	}
}

// Gate returns the coordinator's admission gate, nil unless Admit
// installed one.
func (c *Coordinator) Gate() *resilience.Gate { return c.gate }

// SetSlowLog installs (or with nil removes) the slow-query log on the
// coordinator and the base engine: coordinated queries are captured
// here with their per-shard breakdown in Entry.Stats.Shards, delegated
// non-CN queries by the base engine's own capture path. Shard engines
// get no slowlog — their sub-queries are fragments of one logical
// query, and capturing fragments would triple-count it.
func (c *Coordinator) SetSlowLog(l *obs.SlowLog) {
	c.slowlog = l
	if l != nil && c.metrics != nil {
		l.Instrument(c.metrics)
	}
	c.base.SetSlowLog(l)
}

// SlowLog returns the coordinator's slow-query log, nil unless
// SetSlowLog installed one.
func (c *Coordinator) SlowLog() *obs.SlowLog { return c.slowlog }

// SetPlanNamespace re-namespaces the shared plan cache and propagates
// the new handle to every shard engine's executor (the cache handle is
// immutable; re-namespacing creates a new one, so each holder must be
// re-pointed). Call during setup, before concurrent queries.
func (c *Coordinator) SetPlanNamespace(ns string) {
	c.base.SetPlanNamespace(ns)
	for _, sh := range c.shards {
		sh.Plans = c.base.Plans
		if sh.Exec != nil {
			sh.Exec.SetPlans(c.base.Plans)
		}
	}
}

// InvalidateCaches bumps every cache generation across the deployment:
// the shared binder and plan cache (bumped once per executor holding
// them — repeated generation bumps are harmless) and each shard's
// private posting and result caches. Call after growing the index or
// mutating the database.
func (c *Coordinator) InvalidateCaches() {
	c.base.Exec.InvalidateCaches()
	for _, sh := range c.shards {
		sh.Exec.InvalidateCaches()
	}
}

// InvalidateDataCaches bumps the value-dependent caches (postings,
// results, term bindings) across the deployment, keeping compiled
// plans warm — the after-data-growth path.
func (c *Coordinator) InvalidateDataCaches() {
	c.base.Exec.InvalidateDataCaches()
	for _, sh := range c.shards {
		sh.Exec.InvalidateDataCaches()
	}
}

// InvalidateResults bumps only the result caches across the deployment.
func (c *Coordinator) InvalidateResults() {
	c.base.Exec.InvalidateResults()
	for _, sh := range c.shards {
		sh.Exec.InvalidateResults()
	}
}
