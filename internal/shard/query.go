package shard

import (
	"context"
	"errors"
	"math"
	"strconv"
	"sync"
	"time"

	"kwsearch/internal/cn"
	"kwsearch/internal/core"
	"kwsearch/internal/exec"
	"kwsearch/internal/fmath"
	"kwsearch/internal/obs"
	"kwsearch/internal/resilience"
)

// shardOut is one shard's sub-query outcome.
type shardOut struct {
	resp    *core.Response
	err     error
	elapsed time.Duration
}

// Query runs one search request over the shard fleet. Candidate-network
// queries scatter to every shard (each evaluating only the results it
// owns) and gather through a k-way merge in the deterministic cn.Less
// order; every other semantics delegates to the unpartitioned base
// engine, whose scoring has no sound per-shard decomposition. The
// contract is core.Engine.Query's exactly: deadlines yield certified
// partial responses with nil errors, admission sheds with
// ErrOverloaded, and the merged answer is byte-identical to the
// single-engine answer (order, score bits, partial prefixes) — the
// package tests assert this against both the 1-shard coordinator and
// the serial oracle.
func (c *Coordinator) Query(ctx context.Context, req core.Request) (*core.Response, error) {
	sem := req.Semantics
	if sem == core.Auto {
		sem = core.CandidateNetworks
	}
	if sem != core.CandidateNetworks {
		return c.base.Query(ctx, req)
	}

	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Deadline)
		defer cancel()
	}
	start := time.Now()
	lg := obs.FromContext(ctx)

	// Tail sampling mirrors core.Engine.Query: with a slowlog installed
	// every coordinated query runs a cheap trace so slow/partial/errored
	// ones can be retained with their per-shard span breakdown.
	sampled := c.slowlog != nil
	var root *obs.Span
	if req.Trace || sampled {
		root = obs.StartSpan("query")
		root.SetAttr("semantics", sem.String())
		root.SetAttr("shards", len(c.shards))
	}

	if err := resilience.Inject(ctx, resilience.StageAdmit); err != nil {
		terr := resilience.AsTyped(err)
		root.End()
		c.capture(ctx, req, root, nil, rejectOutcome(terr), terr.Error(), time.Since(start), lg)
		return nil, terr
	}
	if c.gate != nil {
		asp := root.Child("admit")
		release, err := c.gate.Acquire(ctx)
		asp.End()
		if err != nil {
			asp.SetAttr("rejected", true)
			if c.metrics != nil {
				switch {
				case errors.Is(err, core.ErrOverloaded):
					c.metrics.Counter("query.shed").Inc()
				case errors.Is(err, core.ErrDeadlineExceeded):
					c.metrics.Counter("query.deadline").Inc()
				}
			}
			root.End()
			c.capture(ctx, req, root, nil, rejectOutcome(err), err.Error(), time.Since(start), lg)
			return nil, err
		}
		defer release()
	}

	var before obs.Snapshot
	if c.metrics != nil {
		before = c.metrics.Snapshot()
	}

	// Scatter. Sub-requests inherit the (possibly deadline-bounded)
	// coordinator context rather than re-applying Deadline, and strip
	// the per-query observability knobs: the coordinator owns the trace,
	// the observer callback and the slowlog for the logical query.
	sub := req
	sub.Semantics = core.CandidateNetworks
	sub.Deadline = 0
	sub.Trace = false
	sub.Observer = nil
	if sub.Workers <= 0 {
		sub.Workers = c.workers
	}
	outs := make([]shardOut, len(c.shards))
	spans := make([]*obs.Span, len(c.shards))
	for s := range c.shards {
		// Children created serially before launch so the span tree's
		// shape is deterministic (the spans themselves are written only
		// by their own goroutine).
		spans[s] = root.Child("shard-" + strconv.Itoa(s))
	}
	var wg sync.WaitGroup
	for s := range c.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sctx := ctx
			if c.shardCtx != nil {
				sctx = c.shardCtx(sctx, s)
			}
			t0 := time.Now()
			resp, err := c.shards[s].Query(sctx, sub)
			outs[s] = shardOut{resp: resp, err: err, elapsed: time.Since(t0)}
			sp := spans[s]
			if resp != nil {
				sp.SetAttr("results", len(resp.Results))
				sp.SetAttr("partial", resp.Partial)
			}
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}(s)
	}
	wg.Wait()
	mergeStart := time.Now()

	// A shard whose sub-query died on the logical deadline — expired
	// while queued at the shard's own gate, or before the fan-out
	// goroutine was even scheduled — is the scatter-gather analogue of a
	// mid-evaluation expiry: the coordinator already admitted the query,
	// so the contract ("deadline expired mid-evaluation yields a partial
	// response, nil error") applies to the logical query even though the
	// individual shard classified its expiry as pre-admission. Absorb
	// such shards as vacuously partial: no results and no certificate,
	// which gather turns into an empty certified prefix — never a wrong
	// answer. Cancellation (context.Canceled) is deliberately not
	// absorbed; a cancelled caller gets the error, not a partial.
	for s := range outs {
		if err := outs[s].err; err != nil && errors.Is(err, context.DeadlineExceeded) {
			outs[s] = shardOut{
				resp:    &core.Response{Partial: true, Stats: core.Stats{Semantics: sem, Partial: true}},
				elapsed: outs[s].elapsed,
			}
		}
	}

	// Any remaining shard error fails the logical query: shard engines
	// already convert mid-evaluation deadlines into partial responses and
	// the loop above absorbs deadline-at-admission, so what remains is
	// cancellation, bad queries (identical on every shard) or injected
	// faults — none of which have a sound partial answer at the
	// coordinator (the failed shard certified nothing).
	for s := range outs {
		if outs[s].err != nil {
			err := outs[s].err
			root.SetAttr("ctx_done", true)
			root.End()
			st := &core.Stats{Semantics: sem, Elapsed: time.Since(start)}
			c.capture(ctx, req, root, st, obs.OutcomeError, err.Error(), st.Elapsed, lg)
			return nil, err
		}
	}

	merged, shardStats, partial := c.gather(outs, req)
	mergeDur := time.Since(mergeStart)

	// Terms come from any shard that got far enough to tokenize (a
	// deadline-absorbed shard's synthetic response carries none).
	terms := outs[0].resp.Stats.Terms
	for s := range outs {
		if len(outs[s].resp.Stats.Terms) > 0 {
			terms = outs[s].resp.Stats.Terms
			break
		}
	}
	st := core.Stats{
		Semantics: sem,
		Terms:     terms,
		Results:   len(merged),
		Partial:   partial,
		Elapsed:   time.Since(start),
		Merge:     mergeDur,
		Shards:    shardStats,
	}
	xsts := make([]exec.Stats, 0, len(outs))
	for s := range outs {
		if x := outs[s].resp.Stats.Exec; x != nil {
			xsts = append(xsts, *x)
		}
	}
	if len(xsts) > 0 {
		mx := exec.MergeStats(xsts)
		st.Exec = &mx
		st.PlanSignature = mx.PlanKey
	}

	root.SetAttr("results", len(merged))
	root.SetAttr("merge_us", mergeDur.Microseconds())
	if partial {
		root.SetAttr("ctx_done", true)
		root.SetAttr("partial", true)
	}
	root.End()
	if c.metrics != nil {
		us := float64(st.Elapsed.Microseconds())
		c.metrics.Histogram("query.elapsed_us").Observe(us)
		c.metrics.Windowed("query.latency_us").Observe(us)
		if partial {
			c.metrics.Counter("query.deadline").Inc()
			c.metrics.Counter("query.partial").Inc()
		}
		st.Metrics = c.metrics.Snapshot().Sub(before)
	}
	if outcome, ok := c.slowlog.Classify(st.Elapsed, false, partial); ok {
		c.capture(ctx, req, root, &st, outcome, "", st.Elapsed, lg)
	}
	if lg.Enabled(obs.LevelDebug) {
		lg.Debug("sharded query executed",
			obs.F("keywords_hash", obs.KeywordsHash(req.Query)),
			obs.F("shards", len(c.shards)),
			obs.F("results", st.Results),
			obs.F("partial", partial),
			obs.F("merge", mergeDur),
			obs.F("elapsed", st.Elapsed))
	}
	var trace *core.Trace
	if req.Trace {
		trace = root
	}
	resp := &core.Response{Results: merged, Partial: partial, Stats: st, Trace: trace}
	if req.Observer != nil {
		req.Observer(resp.Stats, resp.Trace)
	}
	return resp, nil
}

// gather k-way-merges the shards' rank-ordered result lists into the
// global top-k and certifies the partial prefix.
//
// Soundness (the full argument is DESIGN.md's "Cross-shard merge
// proof"): each shard's list is its local top-k in the deterministic
// cn.Less total order; the shards' result sets are disjoint (every
// result has exactly one owner tuple) and their union is complete, so
// the global top-k is contained in the union of the local top-ks and
// equals the first k elements of their Less-ordered merge. Disjointness
// means no result appears twice, and Less's tuple-level tie-breaks make
// the merge order independent of which shard a result came from — the
// merged list is byte-identical to the single-engine answer. The merge
// stops after k pops; the per-shard pull counts are the
// merge-efficiency signal in Stats.Shards.
//
// Partial certification generalizes the single-engine abandoned-bound
// proof: each partial shard reports the highest score bound any of its
// abandoned CNs could still reach (exec.Stats.CertifiedBound), and no
// complete shard has unevaluated work, so cutting the merged list where
// scores stop strictly dominating the maximum such bound yields a
// provable prefix of the full global top-k. A shard interrupted before
// its pool could certify anything (plan compilation or prewarm hit the
// deadline) has a vacuous certificate; the global prefix is then empty.
func (c *Coordinator) gather(outs []shardOut, req core.Request) ([]core.Result, []core.ShardStat, bool) {
	k := req.TopK
	if k <= 0 {
		k = 10
	}
	n := len(outs)
	idx := make([]int, n)
	var merged []core.Result
	for len(merged) < k {
		best := -1
		for s := 0; s < n; s++ {
			rs := outs[s].resp.Results
			if idx[s] >= len(rs) {
				continue
			}
			if best == -1 || coreLess(rs[idx[s]], outs[best].resp.Results[idx[best]]) {
				best = s
			}
		}
		if best == -1 {
			break
		}
		merged = append(merged, outs[best].resp.Results[idx[best]])
		idx[best]++
	}

	partial := false
	bound := math.Inf(-1)
	for s := range outs {
		if !outs[s].resp.Partial {
			continue
		}
		partial = true
		if x := outs[s].resp.Stats.Exec; x != nil && x.Partial {
			if x.CertifiedBound > bound {
				bound = x.CertifiedBound
			}
		} else {
			bound = math.Inf(1) // no certificate: nothing survives
		}
	}
	if partial {
		i := 0
		for i < len(merged) && merged[i].Score > bound && !fmath.Eq(merged[i].Score, bound) {
			i++
		}
		merged = merged[:i]
	}

	stats := make([]core.ShardStat, n)
	for s := range outs {
		stats[s] = core.ShardStat{
			Shard:   s,
			Results: len(outs[s].resp.Results),
			Pulled:  idx[s],
			Partial: outs[s].resp.Partial,
			Elapsed: outs[s].elapsed,
			Exec:    outs[s].resp.Stats.Exec,
		}
	}
	return merged, stats, partial
}

// coreLess applies the system-wide cn.Less total order to the public
// result shape (the fields Less consults — score, tuples, CN — survive
// the core.Result conversion unchanged).
func coreLess(a, b core.Result) bool {
	return cn.Less(
		cn.Result{CN: a.CN, Tuples: a.Tuples, Score: a.Score},
		cn.Result{CN: b.CN, Tuples: b.Tuples, Score: b.Score},
	)
}

// rejectOutcome classifies an admission failure for the slowlog
// (mirrors core's internal classification).
func rejectOutcome(err error) obs.Outcome {
	switch {
	case errors.Is(err, core.ErrOverloaded):
		return obs.OutcomeShed
	case errors.Is(err, core.ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return obs.OutcomeDeadline
	}
	return obs.OutcomeError
}

// capture retains one coordinated-query exemplar in the slow-query log
// and emits the structured warn line; no-op without a slowlog. The
// entry's Stats carry the per-shard breakdown (Stats.Shards), giving
// slowlog consumers shard attribution for tail queries.
func (c *Coordinator) capture(ctx context.Context, req core.Request, root *obs.Span, st *core.Stats, outcome obs.Outcome, errText string, elapsed time.Duration, lg *obs.Logger) {
	if c.slowlog == nil {
		return
	}
	ns := ""
	if c.base.Plans != nil {
		ns = c.base.Plans.Namespace()
	}
	entry := obs.Entry{
		RequestID:    obs.RequestIDFrom(ctx),
		Namespace:    ns,
		KeywordsHash: obs.KeywordsHash(req.Query),
		Outcome:      outcome,
		Duration:     elapsed,
		Err:          errText,
		Trace:        root,
	}
	if st != nil {
		entry.Keywords = st.Terms
		entry.PlanSignature = st.PlanSignature
		entry.Stats = *st
	}
	seq := c.slowlog.Record(entry)
	if lg.Enabled(obs.LevelWarn) {
		fields := []obs.Field{
			obs.F("slowlog_seq", seq),
			obs.F("outcome", string(outcome)),
			obs.F("keywords_hash", entry.KeywordsHash),
			obs.F("shards", len(c.shards)),
			obs.F("elapsed", elapsed),
		}
		if entry.RequestID != "" {
			fields = append(fields, obs.F("request_id", entry.RequestID))
		}
		if errText != "" {
			fields = append(fields, obs.F("error", errText))
		}
		lg.Warn("sharded query captured in slowlog", fields...)
	}
}
