package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("queries") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-3)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var sp *Span

	// None of these may panic; all reads return zero values.
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	c.Inc()
	c.Add(2)
	g.Add(1)
	h.Observe(3)
	sp.SetAttr("k", 1)
	sp.Child("c").End()
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if sp.String() != "" || sp.Shape() != "" || sp.Name() != "" {
		t.Fatal("nil span must render empty")
	}
	if len(r.Snapshot().Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestAttachSharesCounter(t *testing.T) {
	r := NewRegistry()
	own := &Counter{}
	got := r.Attach("cache.hits", own)
	if got != own {
		t.Fatal("first Attach must adopt the given counter")
	}
	own.Add(3)
	if r.Snapshot().Counters["cache.hits"] != 3 {
		t.Fatal("snapshot must read the attached counter")
	}
	other := &Counter{}
	if r.Attach("cache.hits", other) != own {
		t.Fatal("second Attach must keep the first counter")
	}
}

// TestHistogramQuantileProperty is the property test the issue asks
// for: for random value sets, every quantile estimate must land within
// the bucket that contains the exact (sorted) quantile — i.e. between
// the bucket's lower and upper bound.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram(nil)
		n := 1 + rng.Intn(2000)
		vals := make([]float64, n)
		for i := range vals {
			// Mix scales so many buckets are exercised.
			vals[i] = math.Pow(4, rng.Float64()*14)
			h.Observe(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank == 0 {
				rank = 1
			}
			exact := vals[rank-1]
			lo, hi := bucketBounds(h, exact)
			got := h.Quantile(q)
			if got < lo || got > hi {
				t.Fatalf("trial %d q=%v: estimate %v outside exact value %v's bucket [%v,%v]",
					trial, q, got, exact, lo, hi)
			}
		}
		if h.Count() != uint64(n) {
			t.Fatalf("count = %d, want %d", h.Count(), n)
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if math.Abs(h.Sum()-sum) > 1e-6*math.Abs(sum) {
			t.Fatalf("sum = %v, want %v", h.Sum(), sum)
		}
	}
}

// bucketBounds returns the [lo,hi] bounds of the bucket v lands in.
func bucketBounds(h *Histogram, v float64) (float64, float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	lo := 0.0
	if i > 0 {
		lo = h.bounds[i-1]
	}
	if i == len(h.bounds) {
		return lo, math.Inf(1)
	}
	return lo, h.bounds[i]
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(5)
	if got := h.Quantile(0.5); got < 1 || got > 10 {
		t.Fatalf("single observation p50 = %v, want within (1,10]", got)
	}
	h.Observe(1e9) // overflow bucket
	if got := h.Quantile(1); got < 100 {
		t.Fatalf("overflow observation p100 = %v, want >= 100", got)
	}
}

func TestSnapshotSubAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	before := r.Snapshot()
	r.Counter("a").Add(5)
	r.Counter("b").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(3)
	delta := r.Snapshot().Sub(before)
	if delta.Counters["a"] != 5 || delta.Counters["b"] != 1 {
		t.Fatalf("delta = %+v", delta.Counters)
	}
	s := r.Snapshot().String()
	for _, want := range []string{"a", "b", "g", "h"} {
		if !strings.Contains(s, want) {
			t.Fatalf("snapshot rendering missing %q:\n%s", want, s)
		}
	}
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter(fmt.Sprintf("c%d", i%7)).Inc()
				r.Histogram("h").Observe(float64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	total := uint64(0)
	for name, v := range r.Snapshot().Counters {
		if !strings.HasPrefix(name, "c") {
			continue
		}
		total += v
	}
	if total != 8*1000 {
		t.Fatalf("counters lost updates: %d, want %d", total, 8000)
	}
	if r.Histogram("h").Count() != 8*1000 {
		t.Fatalf("histogram lost updates: %d", r.Histogram("h").Count())
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Add(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "served") {
			t.Fatalf("/metrics missing counter: %s", body)
		}
	}
}
