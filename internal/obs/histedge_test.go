package obs

// Regression tests for the documented Histogram quantile edge cases and
// the Snapshot.Sub semantics — the histogram-hardening satellite.
// TestHistogramNaNObserveDropped fails against the pre-fix Observe (a
// single NaN CAS-accumulated into the running sum poisoned every later
// Sum), and TestSnapshotSubWindowed fails against the pre-fix Sub
// (histogram Count/Sum were carried cumulatively, so "delta around one
// request" silently reported since-boot totals).

import (
	"math"
	"testing"
	"time"
)

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram count/sum nonzero")
	}
	// Round-trip: an empty histogram snapshot is all-zero JSON-safe.
	reg := NewRegistry()
	_ = reg.Histogram("empty")
	s := reg.Snapshot()
	if s.Histograms["empty"] != (HistogramSnapshot{}) {
		t.Errorf("empty snapshot = %+v", s.Histograms["empty"])
	}
}

func TestHistogramOverflowSaturation(t *testing.T) {
	bounds := []float64{1, 10, 100}
	h := NewHistogram(bounds)
	// Every observation lands past the last bound: the overflow bucket
	// has no upper edge, so all quantiles saturate to the last bound.
	for i := 0; i < 1000; i++ {
		h.Observe(1e9)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("saturated Quantile(%v) = %v, want last bound 100", q, got)
		}
	}
	// Sum still reflects the true values even though quantiles clamp.
	if h.Sum() != 1000*1e9 {
		t.Errorf("saturated Sum = %v", h.Sum())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{50})
	h.Observe(7)
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("single observation quantile = %v, want bucket bound 50", got)
	}
	h.Observe(9000) // overflow
	if got := h.Quantile(1); got != 50 {
		t.Errorf("single-bucket overflow quantile = %v, want 50 (saturated)", got)
	}
}

func TestHistogramNaNObserveDropped(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(4)
	h.Observe(math.NaN())
	h.Observe(16)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2 (NaN dropped)", h.Count())
	}
	if math.IsNaN(h.Sum()) {
		t.Fatal("NaN observation poisoned the sum")
	}
	if h.Sum() != 20 {
		t.Errorf("sum = %v, want 20", h.Sum())
	}
	if math.IsNaN(h.Quantile(0.5)) {
		t.Error("NaN observation poisoned quantiles")
	}
}

func TestSnapshotSubHistogramDeltas(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	h.Observe(10)
	h.Observe(20)
	before := reg.Snapshot()
	h.Observe(30)
	delta := reg.Snapshot().Sub(before)

	d := delta.Histograms["lat"]
	if d.Count != 1 {
		t.Errorf("delta count = %d, want 1 (pre-fix carried cumulative 3)", d.Count)
	}
	if math.Abs(d.Sum-30) > 1e-9 {
		t.Errorf("delta sum = %v, want 30", d.Sum)
	}
	// Quantiles are documented as carried from the later snapshot (the
	// snapshot retains no bucket history): they describe the cumulative
	// distribution, not the interval.
	if d.P50 == 0 {
		t.Error("delta quantiles should carry the later snapshot's values")
	}
}

func TestSnapshotSubWindowed(t *testing.T) {
	reg := NewRegistry()
	clk := newTickClock(time.Unix(7_000_000, 0))
	w := reg.Windowed("lat").WithClock(clk.Now)
	reg.RegisterSLO("lat_slo", SLO{Series: "lat", Threshold: 4, Objective: 0.5})
	w.Observe(1)
	before := reg.Snapshot()
	w.Observe(100)
	delta := reg.Snapshot().Sub(before)

	// Windowed series are already time-scoped: Sub carries the later
	// snapshot's view (both observations are inside the window), never a
	// window-minus-window subtraction.
	win, ok := delta.Windows["lat"]
	if !ok {
		t.Fatal("windows dropped by Sub")
	}
	if win.Last1m.Count != 2 {
		t.Errorf("windowed count after Sub = %d, want 2 (later snapshot)", win.Last1m.Count)
	}
	slo, ok := delta.SLOs["lat_slo"]
	if !ok {
		t.Fatal("SLOs dropped by Sub")
	}
	if slo.BurnRate1m != 1.0 { // 1 of 2 bad, budget 0.5 → burn 1.0
		t.Errorf("burn after Sub = %v, want 1.0", slo.BurnRate1m)
	}
}
