package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values render with %v;
// keep them small (counts, terms, booleans) — spans are kept for the
// whole query and may be serialized to JSON.
type Attr struct {
	Key   string
	Value interface{}
}

// Span is one timed stage of a query pipeline: a name, a duration, an
// ordered attribute list, and child spans forming a tree. Spans are
// concurrency-safe (children may be started and attributes set from
// multiple goroutines) and nil-safe: every method no-ops on a nil span,
// so passing a nil *Span disables tracing for free.
//
// The usual shape is
//
//	sp := obs.StartSpan("query")
//	defer sp.End()
//	child := sp.Child("evaluate")
//	...
//	child.SetAttr("cns", len(cns))
//	child.End()
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// StartSpan begins a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child begins a child span under s. On a nil span it returns nil, so
// an entire untraced call tree stays allocation-free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock. End is idempotent: only the first call
// records the duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr sets an attribute, overwriting an earlier value for the same
// key (insertion order is preserved, so rendering is deterministic).
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Name returns the span's stage name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration (0 while the span is live or
// on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Attrs returns a copy of the attribute list.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value set for key and whether it was set.
func (s *Span) Attr(key string) (interface{}, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// Children returns a copy of the child-span list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits s and every descendant pre-order, passing the depth
// (0 for s itself).
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children() {
			rec(c, depth+1)
		}
	}
	rec(s, 0)
}

// WellFormed checks the tree invariants the tracer guarantees once the
// root has ended: every span ended, and no child's duration exceeds its
// parent's by more than slack (children are timed inside their parent;
// slack absorbs scheduling noise between a child's End and the
// parent's). It returns the first violation found, or nil.
func (s *Span) WellFormed(slack time.Duration) error {
	if s == nil {
		return nil
	}
	var check func(sp *Span) error
	check = func(sp *Span) error {
		if !sp.Ended() {
			return fmt.Errorf("span %q not ended", sp.Name())
		}
		for _, c := range sp.Children() {
			if c.Duration() > sp.Duration()+slack {
				return fmt.Errorf("child %q (%v) outlives parent %q (%v)",
					c.Name(), c.Duration(), sp.Name(), sp.Duration())
			}
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(s)
}

// attrString renders the attribute list as "k=v k=v".
func attrString(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
	}
	return strings.Join(parts, " ")
}

// String renders the span tree indented, one span per line with its
// duration and attributes — the kwsearch -trace output.
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(sp *Span, depth int) {
		fmt.Fprintf(&b, "%s%s  %s", strings.Repeat("  ", depth), sp.Name(), sp.Duration().Round(time.Microsecond))
		if as := attrString(sp.Attrs()); as != "" {
			fmt.Fprintf(&b, "  [%s]", as)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// Shape renders the tree's structure without timings: span names and
// sorted attribute keys, children in creation order. Two traces of the
// same query on the same data produce equal shapes, which is what the
// golden trace tests pin.
func (s *Span) Shape() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Walk(func(sp *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sp.Name())
		attrs := sp.Attrs()
		if len(attrs) > 0 {
			keys := make([]string, len(attrs))
			for i, a := range attrs {
				keys[i] = a.Key
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "(%s)", strings.Join(keys, ","))
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// spanJSON is the serialized form of one span.
type spanJSON struct {
	Name     string            `json:"name"`
	Nanos    int64             `json:"ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []spanJSON        `json:"children,omitempty"`
}

func (s *Span) toJSON() spanJSON {
	j := spanJSON{Name: s.Name(), Nanos: s.Duration().Nanoseconds()}
	if attrs := s.Attrs(); len(attrs) > 0 {
		j.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			j.Attrs[a.Key] = fmt.Sprintf("%v", a.Value)
		}
	}
	for _, c := range s.Children() {
		j.Children = append(j.Children, c.toJSON())
	}
	return j
}

// MarshalJSON serializes the span tree (names, nanosecond durations,
// stringified attributes) — the kwsearch -json trace payload.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.toJSON())
}
