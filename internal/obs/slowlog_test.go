package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSlowLogCapturePolicy(t *testing.T) {
	l := NewSlowLog(8, 50*time.Millisecond)

	if l.ShouldCapture(10 * time.Millisecond) {
		t.Error("fast query captured")
	}
	if !l.ShouldCapture(50 * time.Millisecond) {
		t.Error("threshold query not captured (>= is inclusive)")
	}

	cases := []struct {
		d               time.Duration
		failed, partial bool
		want            Outcome
		capture         bool
	}{
		{10 * time.Millisecond, false, false, "", false},
		{80 * time.Millisecond, false, false, OutcomeSlow, true},
		{10 * time.Millisecond, true, false, OutcomeError, true},
		{10 * time.Millisecond, false, true, OutcomePartial, true},
		{80 * time.Millisecond, true, true, OutcomeError, true}, // failed wins
	}
	for _, c := range cases {
		got, ok := l.Classify(c.d, c.failed, c.partial)
		if got != c.want || ok != c.capture {
			t.Errorf("Classify(%v, failed=%v, partial=%v) = %q,%v want %q,%v",
				c.d, c.failed, c.partial, got, ok, c.want, c.capture)
		}
	}

	// threshold <= 0 disables the duration trigger entirely.
	off := NewSlowLog(8, 0)
	if off.ShouldCapture(time.Hour) {
		t.Error("disabled threshold captured by duration")
	}
	if _, ok := off.Classify(time.Hour, false, false); ok {
		t.Error("disabled threshold classified a healthy query")
	}
	if _, ok := off.Classify(time.Nanosecond, true, false); !ok {
		t.Error("errors must be captured even with the threshold disabled")
	}
}

func TestSlowLogRingRespectsCap(t *testing.T) {
	l := NewSlowLog(4, time.Millisecond)
	for i := 0; i < 10; i++ {
		l.Record(Entry{Outcome: OutcomeSlow, Duration: time.Duration(i+1) * time.Millisecond})
	}
	if l.Len() != 4 {
		t.Fatalf("ring len = %d, want cap 4", l.Len())
	}
	if l.Captured() != 10 {
		t.Errorf("captured = %d, want 10", l.Captured())
	}
	entries := l.Entries()
	// Newest first: sequences 10, 9, 8, 7.
	for i, want := range []uint64{10, 9, 8, 7} {
		if entries[i].Seq != want {
			t.Errorf("entries[%d].Seq = %d, want %d", i, entries[i].Seq, want)
		}
	}
}

func TestSlowLogInstrumentCounters(t *testing.T) {
	reg := NewRegistry()
	l := NewSlowLog(2, time.Millisecond).Instrument(reg)
	for i := 0; i < 5; i++ {
		l.Record(Entry{Outcome: OutcomeError})
	}
	s := reg.Snapshot()
	if s.Counters["slowlog.captured"] != 5 {
		t.Errorf("slowlog.captured = %d, want 5", s.Counters["slowlog.captured"])
	}
	if s.Counters["slowlog.evicted"] != 3 {
		t.Errorf("slowlog.evicted = %d, want 3", s.Counters["slowlog.evicted"])
	}
}

func TestSlowLogConcurrentRecord(t *testing.T) {
	l := NewSlowLog(16, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := StartSpan("query")
				sp.Child("bind").End()
				sp.End()
				l.Record(Entry{
					Outcome:  OutcomeSlow,
					Duration: time.Duration(g*100+i) * time.Microsecond,
					Trace:    sp,
				})
				if i%10 == 0 {
					_ = l.Entries()
					_ = l.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 16 {
		t.Fatalf("ring len = %d, want 16", l.Len())
	}
	if l.Captured() != 800 {
		t.Errorf("captured = %d, want 800", l.Captured())
	}
	// Every retained sequence is unique and within the last 16.
	seen := map[uint64]bool{}
	for _, e := range l.Entries() {
		if seen[e.Seq] {
			t.Errorf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.Seq <= 800-16 {
			t.Errorf("stale seq %d survived eviction", e.Seq)
		}
		if e.Trace == nil || e.Trace.WellFormed(time.Second) != nil {
			t.Errorf("entry %d trace missing or malformed", e.Seq)
		}
	}
}

func TestSlowLogHandler(t *testing.T) {
	reg := NewRegistry()
	l := NewSlowLog(4, 25*time.Millisecond).Instrument(reg)
	sp := StartSpan("query")
	sp.Child("bind").End()
	sp.End()
	l.Record(Entry{
		RequestID:     "r-9",
		Namespace:     "tenant-b",
		Keywords:      []string{"john", "smith"},
		KeywordsHash:  "deadbeef",
		Outcome:       OutcomeSlow,
		Duration:      30 * time.Millisecond,
		PlanSignature: "ns=tenant-b|fp=1",
		Trace:         sp,
		Stats:         map[string]int{"results": 3},
	})

	rr := httptest.NewRecorder()
	l.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slowlog", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var page struct {
		Cap         int     `json:"cap"`
		ThresholdMS float64 `json:"threshold_ms"`
		Captured    uint64  `json:"captured"`
		Entries     []struct {
			Seq        uint64          `json:"seq"`
			RequestID  string          `json:"request_id"`
			Outcome    string          `json:"outcome"`
			DurationMS float64         `json:"duration_ms"`
			Trace      json.RawMessage `json:"trace"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatalf("slowlog page not JSON: %v\n%s", err, rr.Body.String())
	}
	if page.Cap != 4 || page.ThresholdMS != 25 || page.Captured != 1 {
		t.Errorf("page header = %+v", page)
	}
	if len(page.Entries) != 1 {
		t.Fatalf("entries = %d", len(page.Entries))
	}
	e := page.Entries[0]
	if e.RequestID != "r-9" || e.Outcome != "slow" || e.DurationMS != 30 {
		t.Errorf("entry = %+v", e)
	}
	if len(e.Trace) == 0 || string(e.Trace) == "null" {
		t.Error("trace missing from slowlog entry")
	}

	// A nil slowlog's handler serves an empty page rather than panicking.
	var nilLog *SlowLog
	rr = httptest.NewRecorder()
	nilLog.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slowlog", nil))
	if rr.Code != 200 {
		t.Errorf("nil slowlog handler status = %d", rr.Code)
	}
}

func TestSlowLogNilSafety(t *testing.T) {
	var l *SlowLog
	if l.Record(Entry{}) != 0 {
		t.Error("nil Record should return 0")
	}
	if l.Len() != 0 || l.Captured() != 0 || l.Entries() != nil {
		t.Error("nil reads should be empty")
	}
	if l.ShouldCapture(time.Hour) {
		t.Error("nil ShouldCapture should be false")
	}
	if _, ok := l.Classify(time.Hour, true, true); ok {
		t.Error("nil Classify should never capture")
	}
	if l.Cap() != 0 || l.Threshold() != 0 {
		t.Error("nil accessors should be zero")
	}
	if l.Instrument(NewRegistry()) != nil {
		t.Error("Instrument on nil should stay nil")
	}
}
