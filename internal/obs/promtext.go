package obs

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) so any standard scraper ingests the registry — the
// /metrics JSON stays for humans and tests, /metrics/prom is for
// Prometheus. Rendering works from a Snapshot, not the live registry,
// so tests can feed fixed snapshots and the scrape cost is one snapshot
// plus formatting.
//
// Mapping:
//   - counters  → "<name>_total" with TYPE counter;
//   - gauges    → "<name>" with TYPE gauge;
//   - histograms→ summary-style series: "<name>{quantile="0.5|0.95|0.99"}"
//     plus "<name>_sum" / "<name>_count";
//   - windowed  → the same summary series with a window="1m|5m" label;
//   - SLOs      → "slo_burn_rate{slo="<name>",window=...}" gauges plus
//     threshold/objective info gauges.
//
// Metric names are sanitized (dots → underscores, invalid runes → '_')
// and prefixed "kwsearch_"; output is sorted by name so scrapes are
// deterministic and diffable.

import (
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promNamePrefix namespaces every exposed series.
const promNamePrefix = "kwsearch_"

// promName sanitizes a registry metric name into a legal Prometheus
// metric name: [a-zA-Z_:][a-zA-Z0-9_:]*, with the package prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamePrefix) + len(name))
	b.WriteString(promNamePrefix)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format (backslash,
// double quote, newline).
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promFloat formats a sample value; Prometheus accepts Go's shortest
// float form plus +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type promWriter struct {
	w   io.Writer
	n   int
	err error
}

func (p *promWriter) line(s string) {
	if p.err != nil {
		return
	}
	n, err := io.WriteString(p.w, s)
	p.n += n
	if err == nil {
		n, err = io.WriteString(p.w, "\n")
		p.n += n
	}
	p.err = err
}

func (p *promWriter) typeLine(name, kind string) { p.line("# TYPE " + name + " " + kind) }

func (p *promWriter) sample(name, labels string, v string) {
	if labels != "" {
		p.line(name + "{" + labels + "} " + v)
	} else {
		p.line(name + " " + v)
	}
}

// summarySeries emits one summary-style block (quantiles + sum + count)
// under name with extra labels (may be "").
func (p *promWriter) summarySeries(name, extraLabels string, h HistogramSnapshot) {
	quantile := func(q, v string) {
		labels := `quantile="` + q + `"`
		if extraLabels != "" {
			labels = extraLabels + "," + labels
		}
		p.sample(name, labels, v)
	}
	quantile("0.5", promFloat(h.P50))
	quantile("0.95", promFloat(h.P95))
	quantile("0.99", promFloat(h.P99))
	p.sample(name+"_sum", extraLabels, promFloat(h.Sum))
	p.sample(name+"_count", extraLabels, strconv.FormatUint(h.Count, 10))
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePromText renders s in the Prometheus text exposition format,
// returning the bytes written.
func WritePromText(w io.Writer, s Snapshot) (int, error) {
	p := &promWriter{w: w}

	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name) + "_total"
		p.typeLine(pn, "counter")
		p.sample(pn, "", strconv.FormatUint(s.Counters[name], 10))
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		p.typeLine(pn, "gauge")
		p.sample(pn, "", strconv.FormatInt(s.Gauges[name], 10))
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := promName(name)
		p.typeLine(pn, "summary")
		p.summarySeries(pn, "", s.Histograms[name])
	}
	for _, name := range sortedKeys(s.Windows) {
		pn := promName(name)
		p.typeLine(pn, "summary")
		win := s.Windows[name]
		p.summarySeries(pn, `window="1m"`, win.Last1m)
		p.summarySeries(pn, `window="5m"`, win.Last5m)
	}
	if len(s.SLOs) > 0 {
		burn := promNamePrefix + "slo_burn_rate"
		p.typeLine(burn, "gauge")
		for _, name := range sortedKeys(s.SLOs) {
			slo := s.SLOs[name]
			base := `slo="` + promLabel(name) + `"`
			p.sample(burn, base+`,window="1m"`, promFloat(slo.BurnRate1m))
			p.sample(burn, base+`,window="5m"`, promFloat(slo.BurnRate5m))
		}
		thr := promNamePrefix + "slo_threshold"
		p.typeLine(thr, "gauge")
		for _, name := range sortedKeys(s.SLOs) {
			p.sample(thr, `slo="`+promLabel(name)+`"`, promFloat(s.SLOs[name].Threshold))
		}
		obj := promNamePrefix + "slo_objective"
		p.typeLine(obj, "gauge")
		for _, name := range sortedKeys(s.SLOs) {
			p.sample(obj, `slo="`+promLabel(name)+`"`, promFloat(s.SLOs[name].Objective))
		}
	}
	return p.n, p.err
}

// promContentType is the exposition format content type scrapers expect.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromHandler serves reg's snapshot in Prometheus text format — the
// /metrics/prom endpoint.
func PromHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		_, _ = WritePromText(w, reg.Snapshot())
	})
}
