// Package obs is the engine's observability layer: a concurrent-safe
// metrics registry (counters, gauges, bounded-bucket histograms with
// quantile estimates) and a lightweight span tracer that records one
// query's pipeline as a tree of timed stages with attributes.
//
// The package is stdlib-only and designed so instrumented hot paths pay
// roughly one atomic add per event: counters are plain atomics, every
// metric and span method is safe on a nil receiver (disabled
// instrumentation degrades to a nil check), and the registry lock is
// only taken when a metric is first created or a snapshot is read.
// EMBANKS (Gupta & Sudarshan) motivates exactly this cost accounting —
// node/edge I/O counts that explain, not just time, a keyword-search
// engine's behaviour.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops), so
// un-instrumented code paths cost one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n events.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Like Counter, the zero value
// works and nil receivers no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the histogram bucket upper bounds used when none
// are given: geometric, factor 4 from 1 up to ~4^15 ≈ 1.07e9. They span
// both event counts and nanosecond-scale durations (1ns .. ~1s) with a
// bounded, cheap bucket array.
var DefaultBuckets = func() []float64 {
	b := make([]float64, 16)
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, with one overflow bucket
// past the last bound. Observe is one atomic add plus a small binary
// search over the (immutable) bounds; Quantile estimates by linear
// interpolation inside the selected bucket. Nil receivers no-op.
type Histogram struct {
	bounds []float64 // sorted ascending, immutable after construction
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (DefaultBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value. NaN observations are dropped: NaN
// compares false with every bound (it would land in an arbitrary
// bucket) and a single NaN added to the running sum would poison every
// later Sum and mean.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sum, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts: the counts are snapshotted, the target rank's bucket is
// located, then the estimate interpolates linearly between the bucket's
// bounds. The estimate is always within the true value's bucket, so its
// error is bounded by the bucket width. Documented edge cases (pinned
// by tests): an empty histogram returns 0 for every quantile, and
// observations past the last bound saturate in the overflow bucket, so
// any quantile landing there reports the last bound itself — the
// histogram cannot resolve values beyond its bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	// Snapshot the counts once so a quantile read racing Observe can't
	// walk past a moving cumulative total.
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return quantileFromCounts(h.bounds, counts, total, q)
}

// HistogramSnapshot is a point-in-time view of a histogram used by
// Registry.Snapshot.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Registry is a named collection of metrics. Lookup-or-create methods
// take a short write lock; the returned metric pointers are stable, so
// hot paths should hold on to them rather than re-resolve by name.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	windows  map[string]*WindowedHistogram
	slos     map[string]SLO
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		windows:  map[string]*WindowedHistogram{},
		slos:     map[string]SLO{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registries return nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Attach registers an existing counter under name, so components that
// own their counters (e.g. a cache's hit counter) can surface them in a
// registry without double counting. An already-registered name keeps
// its first counter; Attach then returns that one.
func (r *Registry) Attach(name string, c *Counter) *Counter {
	if r == nil || c == nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.counters[name]; ok {
		return prev
	}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registries return nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name with
// DefaultBuckets, creating it on first use. Nil registries return nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	return h
}

// Windowed returns the windowed histogram registered under name with
// the default bounds and window geometry, creating it on first use. Nil
// registries return nil (a no-op series).
func (r *Registry) Windowed(name string) *WindowedHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.windows[name]
	if !ok {
		w = NewWindowedHistogram(nil, 0, 0)
		r.windows[name] = w
	}
	return w
}

// RegisterSLO derives burn-rate gauges named name from the windowed
// series slo.Series at every snapshot. Re-registering a name replaces
// the SLO (operators tune thresholds live).
func (r *Registry) RegisterSLO(name string, slo SLO) {
	if r == nil || name == "" || slo.Series == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.slos[name] = slo
}

// Snapshot is a point-in-time copy of every metric in a registry,
// JSON-marshalable and renderable for CLIs.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Windows holds the 1m/5m views of every windowed series; SLOs the
	// burn-rate gauges derived from them. Both are already time-scoped,
	// so Sub carries them from the later snapshot unchanged.
	Windows map[string]WindowSnapshot `json:"windows,omitempty"`
	SLOs    map[string]SLOSnapshot    `json:"slos,omitempty"`
}

// Snapshot copies the current value of every metric. Nil registries
// return an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
	}
	if len(r.windows) > 0 {
		s.Windows = make(map[string]WindowSnapshot, len(r.windows))
		for name, w := range r.windows {
			s.Windows[name] = WindowSnapshot{
				Last1m: w.Window(Window1m),
				Last5m: w.Window(Window5m),
			}
		}
	}
	if len(r.slos) > 0 {
		s.SLOs = make(map[string]SLOSnapshot, len(r.slos))
		for name, slo := range r.slos {
			w := r.windows[slo.Series] // nil → no-op series, burn 0
			s.SLOs[name] = SLOSnapshot{
				Series:     slo.Series,
				Threshold:  slo.Threshold,
				Objective:  slo.Objective,
				BurnRate1m: burnRate(w.BadFraction(Window1m, slo.Threshold), slo.Objective),
				BurnRate5m: burnRate(w.BadFraction(Window5m, slo.Threshold), slo.Objective),
			}
		}
	}
	return s
}

// Sub returns the difference s - earlier: the per-query delta a caller
// gets by snapshotting around one request. Semantics per section
// (documented contract, pinned by tests):
//
//   - counters: numeric difference, zero deltas omitted;
//   - gauges: carried from s unchanged (a gauge is a level, not a flow
//     — "in-flight was 3" minus "in-flight was 5" has no meaning);
//   - histograms: Count and Sum are differenced (both are cumulative);
//     the quantiles are carried from s, because bucket-level history is
//     not retained in a snapshot — they describe the distribution up to
//     s, not the interval;
//   - windowed series and SLO burn rates: carried from s unchanged.
//     They are already time-scoped by construction, so subtracting two
//     of them would double-apply a window; the later snapshot is the
//     well-defined interval view.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	out := Snapshot{
		Counters: map[string]uint64{},
		Gauges:   s.Gauges,
		Windows:  s.Windows,
		SLOs:     s.SLOs,
	}
	for name, v := range s.Counters {
		d := v - earlier.Counters[name]
		if d != 0 {
			out.Counters[name] = d
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			prev := earlier.Histograms[name]
			h.Count -= prev.Count
			h.Sum -= prev.Sum
			out.Histograms[name] = h
		}
	}
	return out
}

// String renders the snapshot sorted by metric name, one per line —
// the CLI -stats format.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-42s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-42s %d\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%-42s n=%d sum=%.0f p50=%.0f p95=%.0f p99=%.0f\n",
			name, h.Count, h.Sum, h.P50, h.P95, h.P99)
	}
	return b.String()
}
