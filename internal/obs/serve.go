package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Serve exposes a registry over HTTP for ops tooling, entirely opt-in
// (nothing listens unless it is called):
//
//	/metrics     — JSON Snapshot of reg
//	/debug/vars  — the process's expvar page (reg is also published
//	               there under "kwsearch" on first Serve)
//	/debug/pprof — the standard pprof index, profiles included
//
// It binds addr immediately (so the caller sees bind errors
// synchronously and can read the chosen port from Addr when addr ends
// in ":0"), then serves in a background goroutine. Shut it down with
// (*Server).Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &Server{
		http: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() { srv.done <- srv.http.Serve(ln) }()
	return srv, nil
}

// Server is a running observability endpoint; Close stops it.
type Server struct {
	http *http.Server
	ln   net.Listener
	done chan error
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.http.Close()
	<-s.done
	return err
}

// expvarCur is the registry /debug/vars reflects; Serve publishes the
// expvar Func once and swaps the target on later calls, since
// expvar.Publish panics on duplicate names.
var (
	expvarMu  sync.Mutex
	expvarCur *Registry
)

func publishExpvar(reg *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	first := expvarCur == nil
	expvarCur = reg
	if first {
		expvar.Publish("kwsearch", expvar.Func(func() interface{} {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarCur.Snapshot()
		}))
	}
}
