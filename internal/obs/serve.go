package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns the observability mux for reg, for callers that mount
// the endpoints on their own server (cmd/kwsd does):
//
//	/metrics      — JSON Snapshot of reg (windows and SLO burn included)
//	/metrics/prom — Prometheus text exposition of the same snapshot
//	/debug/vars   — the process's expvar page (reg is also published
//	                there under "kwsearch" on first call)
//	/debug/pprof  — the standard pprof index, profiles included
func Handler(reg *Registry) http.Handler { return HandlerWith(reg, nil) }

// HandlerWith is Handler plus the slow-query log endpoint: when slowlog
// is non-nil, /debug/slowlog serves its retained exemplars.
func HandlerWith(reg *Registry, slowlog *SlowLog) http.Handler {
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.Handle("/metrics/prom", PromHandler(reg))
	if slowlog != nil {
		mux.Handle("/debug/slowlog", slowlog.Handler())
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes a registry over HTTP for ops tooling, entirely opt-in
// (nothing listens unless it is called): the Handler endpoints on a
// dedicated listener. It binds addr immediately (so the caller sees bind
// errors synchronously and can read the chosen port from Addr when addr
// ends in ":0"), then serves in a background goroutine. Stop it with
// (*Server).Shutdown for a graceful drain, or Close to abort.
func Serve(addr string, reg *Registry) (*Server, error) { return ServeWith(addr, reg, nil) }

// ServeWith is Serve with a slow-query log mounted at /debug/slowlog
// (when non-nil).
//
//lint:ignore ctx-first server lifetime is managed by Shutdown/Close, not a context
func ServeWith(addr string, reg *Registry, slowlog *SlowLog) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		http: &http.Server{Handler: HandlerWith(reg, slowlog), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() { srv.done <- srv.http.Serve(ln) }()
	return srv, nil
}

// Server is a running observability endpoint; Shutdown or Close stops
// it.
type Server struct {
	http *http.Server
	ln   net.Listener
	done chan error
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: the listener closes immediately
// (no new connections), in-flight requests — a /metrics scrape, a
// streaming pprof profile — run to completion within ctx, and only then
// does the serve goroutine exit. When ctx expires first, Shutdown falls
// back to a hard Close so it always returns within the caller's bound,
// and reports ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Bounded fallback: the drain deadline lapsed with requests still
		// in flight; abort them rather than hang past the caller's budget.
		_ = s.http.Close()
	}
	<-s.done
	return err
}

// Close stops the listener and aborts in-flight requests mid-response.
// Prefer Shutdown, which lets them finish.
func (s *Server) Close() error {
	err := s.http.Close()
	<-s.done
	return err
}

// expvarCur is the registry /debug/vars reflects; Handler publishes the
// expvar Func once and swaps the target on later calls, since
// expvar.Publish panics on duplicate names.
var (
	expvarMu  sync.Mutex
	expvarCur *Registry
)

func publishExpvar(reg *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	first := expvarCur == nil
	expvarCur = reg
	if first {
		expvar.Publish("kwsearch", expvar.Func(func() interface{} {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarCur.Snapshot()
		}))
	}
}
