package obs

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// startStreaming issues a GET for a pprof execution trace that streams
// for the given number of seconds, returning once response headers have
// arrived (the request is provably in flight) along with a reader for
// the still-streaming body.
func startStreaming(t *testing.T, addr string, seconds int) io.ReadCloser {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/pprof/trace?seconds=" + strconv.Itoa(seconds))
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	return resp.Body
}

// TestShutdownWaitsForInFlight is the regression test for the abortive
// close: a request mid-stream when Shutdown is called must run to
// completion with an intact body. The pre-fix Close-based teardown reset
// the connection and the body read failed.
func TestShutdownWaitsForInFlight(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	body := startStreaming(t, srv.Addr(), 1)
	defer body.Close()

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// The body must stream to its natural end even though the server is
	// draining: EOF, not a reset connection.
	n, err := io.Copy(io.Discard, body)
	if err != nil {
		t.Fatalf("in-flight body aborted during Shutdown: %v (read %d bytes)", err, n)
	}
	if n == 0 {
		t.Fatal("in-flight trace body empty")
	}
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned")
	}

	// Drained means drained: new connections are refused.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("GET after Shutdown succeeded, want connection error")
	}
}

// TestShutdownFallsBackToHardClose bounds the drain: when the caller's
// ctx expires before in-flight requests finish, Shutdown hard-closes and
// returns the ctx error instead of hanging.
func TestShutdownFallsBackToHardClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	body := startStreaming(t, srv.Addr(), 5)
	defer body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("bounded fallback took %v", took)
	}
}
