package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRaceMetricsAndSpans hammers a registry and one span tree from
// many goroutines at once — the access pattern of a traced multi-worker
// query. Run with -race (the verify.sh gate does); in -short mode the
// body shrinks but still exercises every op.
func TestRaceMetricsAndSpans(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 100
	}
	r := NewRegistry()
	root := StartSpan("root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("ops")
			h := r.Histogram("lat")
			for i := 0; i < iters; i++ {
				c.Inc()
				r.Gauge("live").Add(1)
				h.Observe(float64(i % 97))
				sp := root.Child("op")
				sp.SetAttr("g", g)
				sp.End()
				r.Gauge("live").Add(-1)
				if i%64 == 0 {
					r.Snapshot()
					_ = root.Shape()
				}
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if err := root.WellFormed(time.Minute); err != nil {
		t.Fatalf("span tree corrupted: %v", err)
	}
	if got := r.Counter("ops").Value(); got != uint64(8*iters) {
		t.Fatalf("ops = %d, want %d", got, 8*iters)
	}
	if r.Gauge("live").Value() != 0 {
		t.Fatalf("live gauge = %d, want 0", r.Gauge("live").Value())
	}
}
