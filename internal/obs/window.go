package obs

// This file is the time-windowed half of the metrics registry. A plain
// Histogram accumulates since process start, which answers "what
// happened over the lifetime" but not the operator's question — what is
// p99 *right now*, and is the SLO burning. WindowedHistogram keeps a
// ring of bounded-bucket sub-histograms, one per fixed time slot;
// observations land in the current slot with the same
// one-atomic-add-per-event cost as Histogram, and reads merge the slots
// covering the requested window. Old slots are reused in place (the
// ring is bounded), so memory is slots × buckets regardless of traffic.
//
// SLO derives burn-rate gauges from a windowed series: the fraction of
// observations over the latency threshold in a window, divided by the
// error budget (1 - objective). Burn rate 1.0 means the budget is being
// consumed exactly as fast as it accrues; >1 means the SLO is burning.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Default window geometry: 10-second slots, enough of them to cover the
// 5-minute reporting window plus the partially-filled active slot.
const (
	// DefaultSlotDuration is the granularity of the ring; windows are
	// reported in whole slots, so it bounds the staleness of a windowed
	// quantile.
	DefaultSlotDuration = 10 * time.Second
	// DefaultSlots covers 5 minutes of DefaultSlotDuration slots, plus
	// one extra so the oldest full slot is still present while the
	// active slot fills.
	DefaultSlots = 31
)

// Reporting windows every snapshot and exposition renders.
var (
	// Window1m is the fast window: burn alarms, live dashboards.
	Window1m = time.Minute
	// Window5m is the slow window: less noise, slower to clear.
	Window5m = 5 * time.Minute
)

// WindowedHistogram is a rolling-window histogram: a ring of
// fixed-bucket slot histograms rotated by wall time. Observe is
// lock-free after the first observation of each slot (one bucket search
// plus three atomic adds); Window merges the covering slots on read.
// Nil receivers no-op, matching the other metric types.
//
// Concurrent rotation and reads are safe under the race detector; at a
// slot boundary a merged read may miss (or double-see) the handful of
// observations racing the rotation — windowed quantiles are estimates,
// bounded by one slot's worth of churn.
type WindowedHistogram struct {
	bounds  []float64
	slotDur time.Duration
	slots   int

	// rotate guards slot reuse: resetting a slot's counters and
	// advancing its epoch happens under the lock, exactly once per slot
	// per rotation.
	rotate sync.Mutex
	// epoch[i] is the absolute slot index (unix-time / slotDur) the ring
	// slot currently holds; a read includes the slot only when its epoch
	// falls inside the requested window, so stale slots age out without
	// synchronous clearing.
	epochs []atomic.Int64
	counts [][]atomic.Uint64 // [slot][bucket], one overflow bucket per slot
	sums   []atomic.Uint64   // float64 bits per slot, CAS-accumulated
	totals []atomic.Uint64   // observation count per slot

	// now is the clock, swappable in tests for deterministic rotation.
	now func() time.Time
}

// NewWindowedHistogram builds a windowed histogram with the given
// ascending bucket upper bounds (DefaultBuckets when nil) and window
// geometry (defaults when non-positive).
func NewWindowedHistogram(bounds []float64, slotDur time.Duration, slots int) *WindowedHistogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	if slotDur <= 0 {
		slotDur = DefaultSlotDuration
	}
	if slots <= 0 {
		slots = DefaultSlots
	}
	w := &WindowedHistogram{
		bounds:  append([]float64(nil), bounds...),
		slotDur: slotDur,
		slots:   slots,
		epochs:  make([]atomic.Int64, slots),
		counts:  make([][]atomic.Uint64, slots),
		sums:    make([]atomic.Uint64, slots),
		totals:  make([]atomic.Uint64, slots),
		now:     time.Now,
	}
	for i := range w.counts {
		w.counts[i] = make([]atomic.Uint64, len(bounds)+1)
		w.epochs[i].Store(-1) // no slot holds epoch -1: empty until first use
	}
	return w
}

// WithClock swaps the rotation clock (tests pin it); returns w.
func (w *WindowedHistogram) WithClock(now func() time.Time) *WindowedHistogram {
	if w != nil && now != nil {
		w.now = now
	}
	return w
}

// epochNow returns the absolute index of the current time slot.
func (w *WindowedHistogram) epochNow() int64 {
	return w.now().UnixNano() / int64(w.slotDur)
}

// slot returns the ring slot for epoch, rotating (resetting a stale
// slot) when the ring has wrapped past it.
func (w *WindowedHistogram) slot(epoch int64) int {
	i := int(epoch % int64(w.slots))
	if w.epochs[i].Load() == epoch {
		return i
	}
	w.rotate.Lock()
	defer w.rotate.Unlock()
	if w.epochs[i].Load() != epoch {
		for b := range w.counts[i] {
			w.counts[i][b].Store(0)
		}
		w.sums[i].Store(0)
		w.totals[i].Store(0)
		w.epochs[i].Store(epoch)
	}
	return i
}

// Observe records one value in the current time slot. NaN observations
// are dropped (they cannot land in a bucket and would poison the sum).
func (w *WindowedHistogram) Observe(v float64) {
	if w == nil || math.IsNaN(v) {
		return
	}
	i := w.slot(w.epochNow())
	b := searchBuckets(w.bounds, v)
	w.counts[i][b].Add(1)
	w.totals[i].Add(1)
	addFloatBits(&w.sums[i], v)
}

// merged accumulates the slots whose epoch lies within the last n slots
// (the active slot included) into plain counters.
func (w *WindowedHistogram) merged(n int) (counts []uint64, total uint64, sum float64) {
	counts = make([]uint64, len(w.bounds)+1)
	nowEpoch := w.epochNow()
	oldest := nowEpoch - int64(n) + 1
	for i := 0; i < w.slots; i++ {
		e := w.epochs[i].Load()
		if e < oldest || e > nowEpoch {
			continue
		}
		for b := range counts {
			counts[b] += w.counts[i][b].Load()
		}
		total += w.totals[i].Load()
		sum += math.Float64frombits(w.sums[i].Load())
	}
	return counts, total, sum
}

// windowSlots converts a duration into a covering slot count (at least
// one, at most the ring length).
func (w *WindowedHistogram) windowSlots(d time.Duration) int {
	n := int((d + w.slotDur - 1) / w.slotDur)
	if n < 1 {
		n = 1
	}
	if n > w.slots {
		n = w.slots
	}
	return n
}

// Window merges the slots covering the last d of wall time and returns
// their snapshot (count, sum, p50/p95/p99). Durations beyond the ring's
// coverage are clamped to it. Nil receivers return a zero snapshot.
func (w *WindowedHistogram) Window(d time.Duration) HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	counts, total, sum := w.merged(w.windowSlots(d))
	return HistogramSnapshot{
		Count: total,
		Sum:   sum,
		P50:   quantileFromCounts(w.bounds, counts, total, 0.50),
		P95:   quantileFromCounts(w.bounds, counts, total, 0.95),
		P99:   quantileFromCounts(w.bounds, counts, total, 0.99),
	}
}

// Quantile estimates the q-quantile over the last d of wall time, with
// Histogram.Quantile's semantics (0 on an empty window).
func (w *WindowedHistogram) Quantile(d time.Duration, q float64) float64 {
	if w == nil {
		return 0
	}
	counts, total, _ := w.merged(w.windowSlots(d))
	return quantileFromCounts(w.bounds, counts, total, q)
}

// BadFraction returns the fraction of observations in the last d whose
// value exceeded threshold (0 on an empty window). The boundary is
// bucket-resolved: an observation counts as bad when its whole bucket
// lies above the threshold, so thresholds should sit on bucket bounds
// for exact accounting.
func (w *WindowedHistogram) BadFraction(d time.Duration, threshold float64) float64 {
	if w == nil {
		return 0
	}
	counts, total, _ := w.merged(w.windowSlots(d))
	if total == 0 {
		return 0
	}
	var good uint64
	for i, bound := range w.bounds {
		if bound <= threshold {
			good += counts[i]
		}
	}
	return float64(total-good) / float64(total)
}

// WindowSnapshot is the point-in-time view of a windowed series every
// Registry.Snapshot carries: the two standard reporting windows.
type WindowSnapshot struct {
	Last1m HistogramSnapshot `json:"1m"`
	Last5m HistogramSnapshot `json:"5m"`
}

// SLO derives burn-rate gauges from a windowed latency series: the
// objective "an Objective fraction of observations stay at or under
// Threshold" has an error budget of (1 - Objective), and the burn rate
// over a window is the observed bad fraction divided by that budget.
type SLO struct {
	// Series names the windowed histogram (in the same registry) the SLO
	// is computed over.
	Series string
	// Threshold is the latency objective in the series' unit.
	Threshold float64
	// Objective is the target good fraction, e.g. 0.99.
	Objective float64
}

// SLOSnapshot is the rendered state of one SLO at snapshot time.
type SLOSnapshot struct {
	Series    string  `json:"series"`
	Threshold float64 `json:"threshold"`
	Objective float64 `json:"objective"`
	// BurnRate1m / BurnRate5m are the budget burn rates over the two
	// reporting windows: 1.0 consumes the budget exactly as it accrues.
	BurnRate1m float64 `json:"burn_rate_1m"`
	BurnRate5m float64 `json:"burn_rate_5m"`
}

// burnRate computes badFraction / (1 - objective), guarding degenerate
// objectives (>= 1 would divide by zero; report the bad fraction
// scaled by a minimal budget instead of Inf).
func burnRate(bad, objective float64) float64 {
	budget := 1 - objective
	if budget <= 0 {
		budget = 1e-9
	}
	return bad / budget
}

// searchBuckets returns the bucket index for v: the first bound >= v,
// or the overflow bucket past the last bound.
func searchBuckets(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// addFloatBits CAS-accumulates v into a float64-bits atomic.
func addFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// quantileFromCounts estimates the q-quantile from already-snapshotted
// bucket counts — the shared core of Histogram.Quantile and
// WindowedHistogram.Window. Semantics (documented contract, pinned by
// tests):
//
//   - total == 0 → 0 (an empty histogram has no quantiles);
//   - the estimate interpolates linearly inside the target rank's
//     bucket, so its error is bounded by that bucket's width;
//   - observations past the last bound saturate in the overflow bucket,
//     whose "width" is zero: every quantile landing there reports the
//     last bound itself (the histogram cannot see past its bounds).
func quantileFromCounts(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the ceil(q*total)-th smallest observation.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range counts {
		inBucket := counts[i]
		cum += inBucket
		if cum < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := lo
		if i < len(bounds) {
			hi = bounds[i]
		}
		if inBucket <= 1 || hi == lo {
			return hi
		}
		below := cum - inBucket
		frac := float64(rank-below) / float64(inBucket)
		return lo + frac*(hi-lo)
	}
	// Unreachable when counts sum to >= total; concurrent snapshots can
	// undershoot, in which case the top bound is the sound answer.
	return bounds[len(bounds)-1]
}
