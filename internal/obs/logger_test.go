package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock(t time.Time) func() time.Time { return func() time.Time { return t } }

// decodeLines parses each JSON log line into a map.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]interface{} {
	t.Helper()
	var out []map[string]interface{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not valid JSON: %v\nline: %s", err, line)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	ts := time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)
	lg := NewLogger(&buf, LevelInfo).WithClock(fixedClock(ts))

	lg.Info("query served",
		F("request_id", "r-1"),
		F("elapsed", 1500*time.Microsecond),
		F("results", 10),
		F("partial", false),
		F("bytes", uint64(4096)),
	)

	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	m := lines[0]
	if m["ts"] != ts.Format(time.RFC3339Nano) {
		t.Errorf("ts = %v, want %v", m["ts"], ts.Format(time.RFC3339Nano))
	}
	if m["level"] != "info" || m["msg"] != "query served" {
		t.Errorf("level/msg = %v/%v", m["level"], m["msg"])
	}
	if m["request_id"] != "r-1" || m["elapsed"] != "1.5ms" {
		t.Errorf("fields = %v", m)
	}
	if m["results"] != float64(10) || m["partial"] != false || m["bytes"] != float64(4096) {
		t.Errorf("scalar fields = %v", m)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelWarn)

	lg.Debug("hidden")
	lg.Info("hidden")
	lg.Warn("shown")
	lg.Error("shown too")

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (warn+error only): %v", len(lines), lines)
	}
	if lines[0]["level"] != "warn" || lines[1]["level"] != "error" {
		t.Errorf("levels = %v, %v", lines[0]["level"], lines[1]["level"])
	}

	// Severity ordering: debug < info < warn < error, despite the
	// declaration order that makes LevelInfo the zero value.
	if !(LevelDebug.severity() < LevelInfo.severity() &&
		LevelInfo.severity() < LevelWarn.severity() &&
		LevelWarn.severity() < LevelError.severity()) {
		t.Error("severity order broken")
	}
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		got, err := ParseLevel(lv.String())
		if err != nil || got != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := ParseLevel("chatty"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
	if lv, err := ParseLevel(""); err != nil || lv != LevelInfo {
		t.Errorf("ParseLevel(\"\") = %v, %v, want info default", lv, err)
	}
}

func TestLoggerNilSafety(t *testing.T) {
	var lg *Logger
	// None of these may panic.
	lg.Debug("x")
	lg.Info("x", F("k", "v"))
	lg.Warn("x")
	lg.Error("x")
	if lg.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
	if lg.With(F("k", "v")) != nil {
		t.Error("With on nil should stay nil")
	}
	if lg.WithClock(time.Now) != nil {
		t.Error("WithClock on nil should stay nil")
	}
}

func TestLoggerWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo).WithClock(fixedClock(time.Unix(0, 0)))
	req := lg.With(F("request_id", "r-7"), F("namespace", "tenant-a"))

	req.Info("stage done", F("stage", "bind"))
	lg.Info("no bound fields")

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0]["request_id"] != "r-7" || lines[0]["namespace"] != "tenant-a" || lines[0]["stage"] != "bind" {
		t.Errorf("bound fields missing: %v", lines[0])
	}
	if _, ok := lines[1]["request_id"]; ok {
		t.Errorf("parent logger leaked derived fields: %v", lines[1])
	}
}

func TestLoggerCallSiteFieldWinsOverBound(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo).With(F("stage", "outer"))
	lg.Info("msg", F("stage", "inner"))

	// The raw line contains both keys (bound first); JSON decoders keep
	// the last duplicate, so the call site wins.
	lines := decodeLines(t, &buf)
	if lines[0]["stage"] != "inner" {
		t.Errorf("stage = %v, want inner (call-site field wins)", lines[0]["stage"])
	}
}

func TestLoggerAwkwardFieldValues(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo)
	lg.Info(`msg with "quotes" and \slashes`,
		F("chan", make(chan int)), // json.Marshal rejects channels
		F("newline", "a\nb"),
	)
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("awkward values broke line emission: %d lines", len(lines))
	}
	if lines[0]["newline"] != "a\nb" {
		t.Errorf("newline field mangled: %q", lines[0]["newline"])
	}
	if _, ok := lines[0]["chan"].(string); !ok {
		t.Errorf("unmarshalable field should degrade to a string: %v", lines[0]["chan"])
	}
}

func TestLoggerConcurrentLinesInterleaveWhole(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := lg.With(F("goroutine", g))
			for i := 0; i < 50; i++ {
				sub.Info("tick", F("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := decodeLines(t, &buf) // fails if any line is torn
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
}

func TestLoggerContextPlumbing(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelDebug)
	ctx := WithLogger(context.Background(), lg)
	ctx = WithRequestID(ctx, "req-42")

	if FromContext(ctx) != lg {
		t.Error("FromContext lost the logger")
	}
	if RequestIDFrom(ctx) != "req-42" {
		t.Errorf("RequestIDFrom = %q", RequestIDFrom(ctx))
	}
	if FromContext(context.Background()) != nil {
		t.Error("empty context should yield nil logger")
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Error("empty context should yield empty request id")
	}
	// nil-context robustness (callers deep in the pipeline may hold nil).
	if FromContext(nil) != nil || RequestIDFrom(nil) != "" { //nolint:staticcheck
		t.Error("nil context should degrade to disabled")
	}
	// WithLogger(nil) must not shadow an existing logger entry.
	if FromContext(WithLogger(ctx, nil)) != lg {
		t.Error("WithLogger(nil) dropped the logger")
	}
}

func TestLoggerEnabledGuard(t *testing.T) {
	lg := NewLogger(&bytes.Buffer{}, LevelInfo)
	if lg.Enabled(LevelDebug) {
		t.Error("debug enabled at info level")
	}
	if !lg.Enabled(LevelInfo) || !lg.Enabled(LevelError) {
		t.Error("info/error should be enabled at info level")
	}
	if lg.Level() != LevelInfo {
		t.Errorf("Level() = %v", lg.Level())
	}
}
