package obs

// This file is the structured-logging half of the observability layer: a
// leveled JSON line logger cheap enough to leave on in the serving path,
// carried through the pipeline by context so every stage logs with the
// request's fields (request id, namespace, keyword hash, deadline)
// without threading a logger parameter through every signature.
//
// Design constraints, in order: a disabled level must cost one integer
// compare (no allocation, no field formatting); a nil *Logger must be
// safe everywhere (absent-from-context degrades to off); output must be
// one self-contained JSON object per line so any log shipper ingests it
// without configuration.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. The zero value is LevelInfo, so a
// zero-configured logger behaves like a production default rather than a
// debug firehose.
type Level int

const (
	// LevelInfo records request-scoped events: one access-log line per
	// served query, startup/drain transitions.
	LevelInfo Level = iota
	// LevelDebug additionally records per-stage events (plan-cache
	// outcomes, partial-result causes) — verbose, for investigations.
	LevelDebug
	// LevelWarn records degradations the operator should see on a
	// dashboard: slow-query captures, sheds, drains forced to hard-close.
	LevelWarn
	// LevelError records failures: internal errors, undecodable state.
	LevelError
)

// severity maps levels onto an ascending scale for filtering (Debug <
// Info < Warn < Error); Level's declaration order instead optimizes the
// zero value.
func (l Level) severity() int {
	switch l {
	case LevelDebug:
		return 0
	case LevelWarn:
		return 2
	case LevelError:
		return 3
	}
	return 1 // LevelInfo and unknown levels
}

// String names the level as it appears in the "level" field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "info"
}

// ParseLevel maps a level name (the String form) back to the Level —
// the -log-level flag's parser. Unknown names fail.
func ParseLevel(name string) (Level, error) {
	switch strings.ToLower(name) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", name)
}

// Field is one key/value pair on a log line. Values are JSON-encoded at
// emit time; keep them small (ids, counts, durations) — a log line is
// not a trace.
type Field struct {
	Key   string
	Value interface{}
}

// F builds a Field; obs.F("request_id", id) reads better at call sites
// than a struct literal.
func F(key string, value interface{}) Field { return Field{Key: key, Value: value} }

// logSink is the shared output half of a logger family: With-derived
// loggers share one sink, so lines from every derivation interleave
// whole (the mutex covers exactly one line write).
type logSink struct {
	mu sync.Mutex
	w  io.Writer
	// now is the clock, swappable in tests for deterministic timestamps.
	now func() time.Time
}

// Logger is a leveled structured logger emitting one JSON object per
// line: {"ts":...,"level":...,"msg":...,<fields>}. The zero value is not
// usable; construct with NewLogger. All methods are safe on a nil
// receiver (no-ops), so FromContext on a context without a logger
// disables logging for free. Loggers are safe for concurrent use, and
// With-derived loggers share the parent's writer lock.
type Logger struct {
	sink   *logSink
	level  Level
	fields []Field // bound fields, emitted on every line after ts/level/msg
}

// NewLogger builds a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{sink: &logSink{w: w, now: time.Now}, level: level}
}

// WithClock swaps the timestamp source (tests pin it); returns l.
func (l *Logger) WithClock(now func() time.Time) *Logger {
	if l != nil && now != nil {
		l.sink.now = now
	}
	return l
}

// Enabled reports whether a line at level would be emitted — guard
// expensive field construction with it.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level.severity() >= l.level.severity()
}

// Level returns the logger's minimum level (LevelError+1 equivalent on
// nil: nothing is enabled).
func (l *Logger) Level() Level {
	if l == nil {
		return Level(-1)
	}
	return l.level
}

// With returns a logger sharing l's sink and level with fields bound to
// every future line. A field whose key is already bound is overridden
// (last write wins at emit time). With on nil returns nil.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	bound := make([]Field, 0, len(l.fields)+len(fields))
	bound = append(bound, l.fields...)
	bound = append(bound, fields...)
	return &Logger{sink: l.sink, level: l.level, fields: bound}
}

// Debug emits a debug-level line.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info emits an info-level line.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn emits a warn-level line.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error emits an error-level line.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.Grow(128)
	b.WriteString(`{"ts":"`)
	b.WriteString(l.sink.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`","level":"`)
	b.WriteString(level.String())
	b.WriteString(`","msg":`)
	appendJSONValue(&b, msg)
	// Bound fields first, call fields after: at equal keys the call site
	// wins, because later duplicate keys shadow earlier ones in every
	// mainstream JSON decoder.
	for _, f := range l.fields {
		appendField(&b, f)
	}
	for _, f := range fields {
		appendField(&b, f)
	}
	b.WriteString("}\n")
	l.sink.mu.Lock()
	defer l.sink.mu.Unlock()
	_, _ = io.WriteString(l.sink.w, b.String())
}

func appendField(b *strings.Builder, f Field) {
	b.WriteByte(',')
	appendJSONValue(b, f.Key)
	b.WriteByte(':')
	switch v := f.Value.(type) {
	// The common scalar field types encode without reflection.
	case string:
		appendJSONValue(b, v)
	case int:
		b.WriteString(strconv.Itoa(v))
	case int64:
		b.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(v, 10))
	case bool:
		b.WriteString(strconv.FormatBool(v))
	case time.Duration:
		appendJSONValue(b, v.String())
	default:
		appendJSONValue(b, v)
	}
}

// appendJSONValue writes v's JSON encoding, degrading to a quoted %v
// rendering for values json.Marshal rejects — a log line must never fail
// to emit because of one awkward field.
func appendJSONValue(b *strings.Builder, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(data)
}

// SortedFields returns a copy of fields sorted by key — tests use it to
// compare field sets order-independently.
func SortedFields(fields []Field) []Field {
	out := append([]Field(nil), fields...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Context plumbing. Two separate keys: the logger (which handlers derive
// per request) and the request id (which non-logging consumers — the
// slow-query log — also need).
type (
	loggerCtxKey struct{}
	reqIDCtxKey  struct{}
)

// WithLogger returns a context carrying lg; FromContext retrieves it.
func WithLogger(ctx context.Context, lg *Logger) context.Context {
	if lg == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerCtxKey{}, lg)
}

// FromContext returns the context's logger, or nil (a no-op logger) when
// none was attached.
func FromContext(ctx context.Context) *Logger {
	if ctx == nil {
		return nil
	}
	lg, _ := ctx.Value(loggerCtxKey{}).(*Logger)
	return lg
}

// WithRequestID returns a context carrying the serving layer's request
// id, so stages below the HTTP handler (and the slow-query log) can
// stamp their artifacts with it.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDCtxKey{}, id)
}

// RequestIDFrom returns the context's request id, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDCtxKey{}).(string)
	return id
}
