package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeBasics(t *testing.T) {
	root := StartSpan("query")
	root.SetAttr("keywords", "a b")
	c1 := root.Child("clean")
	c1.End()
	c2 := root.Child("evaluate")
	g := c2.Child("worker-0")
	g.SetAttr("jobs", 3)
	g.End()
	c2.End()
	root.End()

	if err := root.WellFormed(time.Second); err != nil {
		t.Fatalf("tree not well-formed: %v", err)
	}
	shape := root.Shape()
	want := "query(keywords)\n  clean\n  evaluate\n    worker-0(jobs)\n"
	if shape != want {
		t.Fatalf("shape:\n%s\nwant:\n%s", shape, want)
	}
	if !strings.Contains(root.String(), "worker-0") {
		t.Fatalf("render missing child:\n%s", root.String())
	}
	if v, ok := g.Attr("jobs"); !ok || v != 3 {
		t.Fatalf("Attr(jobs) = %v,%v", v, ok)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	sp := StartSpan("x")
	sp.End()
	d := sp.Duration()
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.Duration() != d {
		t.Fatal("second End must not change the duration")
	}
}

func TestSpanSetAttrOverwrites(t *testing.T) {
	sp := StartSpan("x")
	sp.SetAttr("k", 1)
	sp.SetAttr("k", 2)
	sp.End()
	if len(sp.Attrs()) != 1 || sp.Attrs()[0].Value != 2 {
		t.Fatalf("attrs = %+v", sp.Attrs())
	}
}

// TestSpanTreeConcurrent grows one span tree from many goroutines —
// the shape the exec worker pool and stream.Pipeline produce — and
// checks well-formedness: no lost children, every span ended, children
// timed inside their parents.
func TestSpanTreeConcurrent(t *testing.T) {
	root := StartSpan("pool")
	var wg sync.WaitGroup
	const workers, jobs = 8, 50
	for w := 0; w < workers; w++ {
		sp := root.Child("worker")
		wg.Add(1)
		go func(sp *Span) {
			defer wg.Done()
			defer sp.End()
			for j := 0; j < jobs; j++ {
				c := sp.Child("job")
				c.SetAttr("j", j)
				c.End()
			}
		}(sp)
	}
	wg.Wait()
	root.End()

	if err := root.WellFormed(time.Second); err != nil {
		t.Fatalf("tree not well-formed: %v", err)
	}
	total := 0
	root.Walk(func(sp *Span, depth int) {
		total++
		if depth == 2 && sp.Name() != "job" {
			t.Fatalf("unexpected depth-2 span %q", sp.Name())
		}
	})
	if want := 1 + workers + workers*jobs; total != want {
		t.Fatalf("tree has %d spans, want %d", total, want)
	}
}

func TestSpanJSON(t *testing.T) {
	root := StartSpan("query")
	c := root.Child("evaluate")
	c.SetAttr("cns", 5)
	c.End()
	root.End()
	data, err := json.Marshal(root)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded struct {
		Name     string `json:"name"`
		Children []struct {
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Name != "query" || len(decoded.Children) != 1 ||
		decoded.Children[0].Attrs["cns"] != "5" {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestWellFormedDetectsUnended(t *testing.T) {
	root := StartSpan("query")
	root.Child("dangling") // never ended
	root.End()
	if err := root.WellFormed(time.Second); err == nil {
		t.Fatal("WellFormed must flag an unended child")
	}
}
