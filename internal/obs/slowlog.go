package obs

// This file is the tail-sampling half of the tracing layer. Every query
// runs with a cheap always-on trace; the span tree, stats, and plan
// signature are *retained* only when the query turns out to be worth
// keeping — slow past a configurable threshold, errored, shed, partial,
// or deadline-expired. The retained exemplars live in a bounded
// in-memory ring served at /debug/slowlog, so "which queries blew the
// budget and where did the time go" is answerable from a running daemon
// without asking clients to re-send with tracing on.

import (
	"encoding/json"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// KeywordsHash returns the FNV-64a hash of the raw query text in hex —
// the stable join key stamped on access-log lines, slow-query exemplars
// and traces, so one query can be followed across all three without
// logging the query text itself at info level.
func KeywordsHash(query string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(query))
	return strconv.FormatUint(h.Sum64(), 16)
}

// Outcome classifies why a query was retained in the slow-query log.
type Outcome string

const (
	// OutcomeSlow: completed fine but past the latency threshold.
	OutcomeSlow Outcome = "slow"
	// OutcomeError: failed with an internal or bad-query error.
	OutcomeError Outcome = "error"
	// OutcomeShed: rejected by the admission gate (overload).
	OutcomeShed Outcome = "shed"
	// OutcomePartial: returned a certified partial prefix on deadline.
	OutcomePartial Outcome = "partial"
	// OutcomeDeadline: the deadline expired with nothing certifiable.
	OutcomeDeadline Outcome = "deadline"
)

// Entry is one retained query exemplar: identity, classification, and
// the full evidence (span tree, per-query stats, plan signature).
type Entry struct {
	// Seq is the capture sequence number (monotonic per SlowLog); the
	// ring keeps the Cap most recent sequences.
	Seq uint64 `json:"seq"`
	// Time is the capture wall time.
	Time time.Time `json:"time"`
	// RequestID is the serving layer's id for the request ("" for
	// requests that never passed through the HTTP front end).
	RequestID string `json:"request_id,omitempty"`
	// Namespace is the tenant / plan-cache namespace.
	Namespace string `json:"namespace,omitempty"`
	// Keywords is the query's term list as typed (post-cleaning).
	Keywords []string `json:"keywords,omitempty"`
	// KeywordsHash is the FNV-64a hash of the joined keywords — the
	// stable join key between log lines, traces, and this ring.
	KeywordsHash string `json:"keywords_hash,omitempty"`
	// Outcome says why the entry was retained.
	Outcome Outcome `json:"outcome"`
	// Duration is the query's total wall time.
	Duration time.Duration `json:"duration_ns"`
	// Err is the error text for errored/shed/deadline outcomes.
	Err string `json:"error,omitempty"`
	// PlanSignature is the plan-cache key the query compiled under, so
	// an exemplar can be correlated with plan-cache churn.
	PlanSignature string `json:"plan_signature,omitempty"`
	// Trace is the query's span tree (always present for captured
	// queries; tail sampling keeps the tree only for retained entries).
	Trace *Span `json:"trace,omitempty"`
	// Stats is the engine's per-query stats payload, carried opaquely so
	// obs does not depend on core's types; it must be JSON-marshalable.
	Stats interface{} `json:"stats,omitempty"`
}

// SlowLog is a bounded ring of retained query exemplars. Record is a
// short critical section (copy one Entry into a pre-sized ring slot);
// the capture *decision* is the caller's, via ShouldCapture, so the
// fast path for healthy queries is two comparisons and no lock. Nil
// receivers no-op, matching the rest of the package.
type SlowLog struct {
	mu        sync.Mutex
	ring      []Entry
	seq       uint64 // total captures; ring holds the last len(ring)
	cap       int
	threshold time.Duration

	// captured/dropped mirror into a registry via Instrument; owned here
	// so recording works registry-free.
	captured Counter
	dropped  Counter
}

// NewSlowLog builds a slow-query log retaining at most cap entries and
// classifying completed queries slower than threshold as OutcomeSlow.
// cap <= 0 falls back to 64; threshold <= 0 disables the duration
// trigger (only errored/shed/partial/deadline queries are retained).
func NewSlowLog(cap int, threshold time.Duration) *SlowLog {
	if cap <= 0 {
		cap = 64
	}
	return &SlowLog{ring: make([]Entry, 0, cap), cap: cap, threshold: threshold}
}

// Threshold returns the slow-query duration threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Cap returns the ring capacity (0 on nil).
func (l *SlowLog) Cap() int {
	if l == nil {
		return 0
	}
	return l.cap
}

// Instrument registers the log's capture counters in reg as
// slowlog.captured and slowlog.evicted; returns l.
func (l *SlowLog) Instrument(reg *Registry) *SlowLog {
	if l != nil && reg != nil {
		reg.Attach("slowlog.captured", &l.captured)
		reg.Attach("slowlog.evicted", &l.dropped)
	}
	return l
}

// Classify maps a finished query's (duration, error-ness, partial-ness)
// onto the Outcome the caller should record, returning ok=false when
// the query is healthy and must NOT be captured — the tail-sampling
// policy in one place. Shed and deadline classification is the caller's
// (they know the typed error); Classify covers the common completed
// path.
func (l *SlowLog) Classify(d time.Duration, failed, partial bool) (Outcome, bool) {
	if l == nil {
		return "", false
	}
	switch {
	case failed:
		return OutcomeError, true
	case partial:
		return OutcomePartial, true
	case l.ShouldCapture(d):
		return OutcomeSlow, true
	}
	return "", false
}

// ShouldCapture reports whether a healthy completed query of duration d
// crosses the slow threshold. (Errored/shed/partial queries are always
// captured; this is only the duration trigger.)
func (l *SlowLog) ShouldCapture(d time.Duration) bool {
	return l != nil && l.threshold > 0 && d >= l.threshold
}

// Record retains one exemplar, assigning its sequence number and
// evicting the oldest entry when the ring is full. Returns the assigned
// sequence (0 on nil).
func (l *SlowLog) Record(e Entry) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, e)
	} else {
		// Overwrite the slot holding the oldest sequence: the ring is
		// filled in order, so it's (seq-1) mod cap once saturated.
		l.ring[int((l.seq-1)%uint64(l.cap))] = e
		l.dropped.Inc()
	}
	l.mu.Unlock()
	l.captured.Inc()
	return e.Seq
}

// Len returns the number of retained entries.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// Captured returns the total number of captures (including evicted).
func (l *SlowLog) Captured() uint64 {
	if l == nil {
		return 0
	}
	return l.captured.Value()
}

// Entries returns the retained exemplars, newest first.
func (l *SlowLog) Entries() []Entry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]Entry(nil), l.ring...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// slowlogPage is the /debug/slowlog JSON document.
type slowlogPage struct {
	Cap         int           `json:"cap"`
	ThresholdMS float64       `json:"threshold_ms"`
	Captured    uint64        `json:"captured"`
	Evicted     uint64        `json:"evicted"`
	Entries     []slowlogItem `json:"entries"`
}

// slowlogItem flattens an Entry for the endpoint: durations in
// milliseconds for human consumption, the trace inline.
type slowlogItem struct {
	Seq           uint64      `json:"seq"`
	Time          string      `json:"time"`
	RequestID     string      `json:"request_id,omitempty"`
	Namespace     string      `json:"namespace,omitempty"`
	Keywords      []string    `json:"keywords,omitempty"`
	KeywordsHash  string      `json:"keywords_hash,omitempty"`
	Outcome       Outcome     `json:"outcome"`
	DurationMS    float64     `json:"duration_ms"`
	Err           string      `json:"error,omitempty"`
	PlanSignature string      `json:"plan_signature,omitempty"`
	Trace         *Span       `json:"trace,omitempty"`
	Stats         interface{} `json:"stats,omitempty"`
}

// Handler serves the retained exemplars as JSON (newest first) — the
// /debug/slowlog endpoint.
func (l *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		page := slowlogPage{Cap: l.Cap(), ThresholdMS: float64(l.Threshold()) / float64(time.Millisecond)}
		if l != nil {
			page.Captured = l.captured.Value()
			page.Evicted = l.dropped.Value()
		}
		for _, e := range l.Entries() {
			page.Entries = append(page.Entries, slowlogItem{
				Seq:           e.Seq,
				Time:          e.Time.UTC().Format(time.RFC3339Nano),
				RequestID:     e.RequestID,
				Namespace:     e.Namespace,
				Keywords:      e.Keywords,
				KeywordsHash:  e.KeywordsHash,
				Outcome:       e.Outcome,
				DurationMS:    float64(e.Duration) / float64(time.Millisecond),
				Err:           e.Err,
				PlanSignature: e.PlanSignature,
				Trace:         e.Trace,
				Stats:         e.Stats,
			})
		}
		if page.Entries == nil {
			page.Entries = []slowlogItem{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
}
