package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The exposition-format grammar the tests parse against (text format
// 0.0.4): comment/TYPE lines and sample lines with optional labels.
var (
	promMetricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promTypeLineRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promSampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
)

// parsePromText validates text line-by-line against the grammar and
// returns sample values keyed by "name{labels}".
func parsePromText(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := promTypeLineRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed comment line %q", ln+1, line)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			types[m[1]] = m[2]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample line %q", ln+1, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if !promMetricNameRe.MatchString(name) {
			t.Fatalf("line %d: bad metric name %q", ln+1, name)
		}
		if labels != "" {
			for _, pair := range strings.Split(labels, ",") {
				eq := strings.Index(pair, "=")
				if eq < 0 {
					t.Fatalf("line %d: label pair %q missing '='", ln+1, pair)
				}
				lname, lval := pair[:eq], pair[eq+1:]
				if !promLabelNameRe.MatchString(lname) {
					t.Fatalf("line %d: bad label name %q", ln+1, lname)
				}
				if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
					t.Fatalf("line %d: label value %q not quoted", ln+1, lval)
				}
			}
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("line %d: unparsable value %q: %v", ln+1, value, err)
		}
		key := name
		if labels != "" {
			key += "{" + labels + "}"
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("line %d: duplicate sample %q", ln+1, key)
		}
		samples[key] = v
		// Samples must follow their family's TYPE line. Summary series
		// share the family name with _sum/_count suffixes.
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[family]; !ok {
				t.Fatalf("line %d: sample %q precedes its TYPE line", ln+1, name)
			}
		}
	}
	return samples, types
}

func promFixture() *Registry {
	reg := NewRegistry()
	reg.Counter("cache.hits").Add(42)
	reg.Counter("admission.shed").Add(3)
	reg.Gauge("gate.queued").Set(-2)
	for i := 1; i <= 100; i++ {
		reg.Histogram("query.elapsed_us").Observe(float64(i))
	}
	w := reg.Windowed("server.latency_us").WithClock(fixedClock(time.Unix(9_000_000, 0)))
	for i := 0; i < 50; i++ {
		w.Observe(200)
	}
	reg.RegisterSLO("query_latency", SLO{Series: "server.latency_us", Threshold: 1024, Objective: 0.99})
	return reg
}

func TestPromTextGrammarAndContent(t *testing.T) {
	var sb strings.Builder
	n, err := WritePromText(&sb, promFixture().Snapshot())
	if err != nil {
		t.Fatalf("WritePromText: %v", err)
	}
	text := sb.String()
	if n != len(text) {
		t.Errorf("reported %d bytes, wrote %d", n, len(text))
	}

	samples, types := parsePromText(t, text)

	if v := samples["kwsearch_cache_hits_total"]; v != 42 {
		t.Errorf("cache hits = %v, want 42", v)
	}
	if types["kwsearch_cache_hits_total"] != "counter" {
		t.Errorf("counter TYPE = %q", types["kwsearch_cache_hits_total"])
	}
	if v := samples["kwsearch_gate_queued"]; v != -2 {
		t.Errorf("gauge = %v, want -2", v)
	}
	if types["kwsearch_query_elapsed_us"] != "summary" {
		t.Errorf("histogram TYPE = %q", types["kwsearch_query_elapsed_us"])
	}
	if v := samples[`kwsearch_query_elapsed_us_count`]; v != 100 {
		t.Errorf("summary count = %v", v)
	}
	if v := samples[`kwsearch_query_elapsed_us{quantile="0.5"}`]; v <= 0 {
		t.Errorf("p50 sample = %v", v)
	}
	if v := samples[`kwsearch_server_latency_us_count{window="1m"}`]; v != 50 {
		t.Errorf("windowed 1m count = %v, want 50", v)
	}
	if v := samples[`kwsearch_server_latency_us{window="5m",quantile="0.99"}`]; v <= 0 {
		t.Errorf("windowed p99 = %v", v)
	}
	if v, ok := samples[`kwsearch_slo_burn_rate{slo="query_latency",window="1m"}`]; !ok || v != 0 {
		t.Errorf("burn rate sample = %v, ok=%v (all observations under threshold)", v, ok)
	}
	if v := samples[`kwsearch_slo_objective{slo="query_latency"}`]; v != 0.99 {
		t.Errorf("objective = %v", v)
	}
}

func TestPromTextDeterministic(t *testing.T) {
	reg := promFixture()
	var a, b strings.Builder
	if _, err := WritePromText(&a, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := WritePromText(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two scrapes of an idle registry differ")
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"cache.hits":     "kwsearch_cache_hits",
		"query elapsed":  "kwsearch_query_elapsed",
		"plan.hit/miss":  "kwsearch_plan_hit_miss",
		"ok_name:colons": "kwsearch_ok_name:colons",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if !promMetricNameRe.MatchString(promName(in)) {
			t.Errorf("promName(%q) = %q is not a legal metric name", in, promName(in))
		}
	}
}

func TestPromLabelEscaping(t *testing.T) {
	in := "a\"b\\c\nd"
	out := promLabel(in)
	for _, bad := range []string{"\n"} {
		if strings.Contains(out, bad) {
			t.Errorf("escaped label still contains %q: %q", bad, out)
		}
	}
	if !strings.Contains(out, `\"`) || !strings.Contains(out, `\\`) {
		t.Errorf("label escaping incomplete: %q", out)
	}
}

func TestPromHandlerEndToEnd(t *testing.T) {
	reg := promFixture()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics/prom", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("content type = %q, want %q", ct, promContentType)
	}
	samples, _ := parsePromText(t, string(raw))
	if samples["kwsearch_cache_hits_total"] != 42 {
		t.Errorf("scrape missing counter: %v", samples["kwsearch_cache_hits_total"])
	}
}
