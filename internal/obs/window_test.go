package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tickClock is an adjustable test clock.
type tickClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTickClock(start time.Time) *tickClock { return &tickClock{t: start} }

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *tickClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindowed(clk *tickClock) *WindowedHistogram {
	return NewWindowedHistogram(nil, 10*time.Second, 31).WithClock(clk.Now)
}

func TestWindowedObservationsAgeOut(t *testing.T) {
	clk := newTickClock(time.Unix(1_000_000, 0))
	w := newTestWindowed(clk)

	for i := 0; i < 100; i++ {
		w.Observe(100)
	}
	if got := w.Window(time.Minute).Count; got != 100 {
		t.Fatalf("fresh window count = %d, want 100", got)
	}
	if got := w.Window(5 * time.Minute).Count; got != 100 {
		t.Fatalf("5m window count = %d, want 100", got)
	}

	// 2 minutes later the observations left the 1m window but not 5m.
	clk.Advance(2 * time.Minute)
	if got := w.Window(time.Minute).Count; got != 0 {
		t.Errorf("1m window after 2m = %d, want 0", got)
	}
	if got := w.Window(5 * time.Minute).Count; got != 100 {
		t.Errorf("5m window after 2m = %d, want 100", got)
	}

	// 6 minutes later everything aged out.
	clk.Advance(4 * time.Minute)
	if got := w.Window(5 * time.Minute).Count; got != 0 {
		t.Errorf("5m window after 6m = %d, want 0", got)
	}
	if q := w.Quantile(5*time.Minute, 0.99); q != 0 {
		t.Errorf("empty window p99 = %v, want 0", q)
	}
}

func TestWindowedMergesAcrossSlots(t *testing.T) {
	clk := newTickClock(time.Unix(2_000_000, 0))
	w := newTestWindowed(clk)

	// Spread observations across 5 slots inside one minute.
	for slot := 0; slot < 5; slot++ {
		for i := 0; i < 10; i++ {
			w.Observe(math.Pow(4, float64(slot))) // 1, 4, 16, 64, 256
		}
		clk.Advance(10 * time.Second)
	}
	snap := w.Window(time.Minute)
	if snap.Count != 50 {
		t.Fatalf("merged count = %d, want 50", snap.Count)
	}
	wantSum := 10.0 * (1 + 4 + 16 + 64 + 256)
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Errorf("merged sum = %v, want %v", snap.Sum, wantSum)
	}
	// p50 = 25th smallest of 10×{1,4,16,64,256} → the 16-bucket.
	if snap.P50 < 4 || snap.P50 > 16 {
		t.Errorf("merged p50 = %v, want within (4,16]", snap.P50)
	}
}

func TestWindowedRingReusesSlots(t *testing.T) {
	clk := newTickClock(time.Unix(3_000_000, 0))
	w := newTestWindowed(clk)

	// Drive far more slots than the ring holds; counts must never
	// accumulate across reuse.
	for round := 0; round < 100; round++ {
		w.Observe(1)
		clk.Advance(10 * time.Second)
	}
	// The final Advance left the current slot empty; the 1m window spans
	// 6 slots (current + 5 back), of which the 5 older ones hold one
	// observation each. The 5m window spans 30 slots → 29 populated.
	got := w.Window(time.Minute).Count
	if got != 5 {
		t.Errorf("1m count after long run = %d, want 5", got)
	}
	if got5 := w.Window(5 * time.Minute).Count; got5 != 29 {
		t.Errorf("5m count after long run = %d, want 29", got5)
	}
}

func TestWindowedNaNDropped(t *testing.T) {
	clk := newTickClock(time.Unix(4_000_000, 0))
	w := newTestWindowed(clk)
	w.Observe(math.NaN())
	w.Observe(8)
	snap := w.Window(time.Minute)
	if snap.Count != 1 {
		t.Errorf("NaN was counted: count = %d", snap.Count)
	}
	if math.IsNaN(snap.Sum) {
		t.Error("NaN poisoned the windowed sum")
	}
}

func TestWindowedNilSafety(t *testing.T) {
	var w *WindowedHistogram
	w.Observe(1)
	if w.Window(time.Minute) != (HistogramSnapshot{}) {
		t.Error("nil Window should be zero")
	}
	if w.Quantile(time.Minute, 0.5) != 0 || w.BadFraction(time.Minute, 10) != 0 {
		t.Error("nil reads should be 0")
	}
	if w.WithClock(time.Now) != nil {
		t.Error("WithClock on nil should stay nil")
	}
}

func TestWindowedBadFractionAndBurnRate(t *testing.T) {
	clk := newTickClock(time.Unix(5_000_000, 0))
	reg := NewRegistry()
	w := reg.Windowed("lat").WithClock(clk.Now)
	reg.RegisterSLO("query_latency", SLO{Series: "lat", Threshold: 64, Objective: 0.9})

	// 90 good (≤64), 10 bad (>64): bad fraction 0.1, budget 0.1 → burn 1.0.
	for i := 0; i < 90; i++ {
		w.Observe(16)
	}
	for i := 0; i < 10; i++ {
		w.Observe(1024)
	}
	if bf := w.BadFraction(time.Minute, 64); math.Abs(bf-0.1) > 1e-9 {
		t.Errorf("bad fraction = %v, want 0.1", bf)
	}
	snap := reg.Snapshot()
	slo, ok := snap.SLOs["query_latency"]
	if !ok {
		t.Fatal("SLO missing from snapshot")
	}
	if math.Abs(slo.BurnRate1m-1.0) > 1e-9 || math.Abs(slo.BurnRate5m-1.0) > 1e-9 {
		t.Errorf("burn rates = %v / %v, want 1.0", slo.BurnRate1m, slo.BurnRate5m)
	}
	win, ok := snap.Windows["lat"]
	if !ok || win.Last1m.Count != 100 {
		t.Errorf("windows block missing or wrong: %+v", win)
	}

	// Empty window → burn 0, not NaN.
	clk.Advance(10 * time.Minute)
	slo = reg.Snapshot().SLOs["query_latency"]
	if slo.BurnRate1m != 0 || slo.BurnRate5m != 0 {
		t.Errorf("empty-window burn = %v / %v, want 0", slo.BurnRate1m, slo.BurnRate5m)
	}

	// Degenerate objective must not divide by zero.
	if r := burnRate(0.5, 1.0); math.IsInf(r, 0) || math.IsNaN(r) {
		t.Errorf("burnRate with objective 1.0 = %v", r)
	}
}

func TestWindowedConcurrentObserveAndRead(t *testing.T) {
	clk := newTickClock(time.Unix(6_000_000, 0))
	w := newTestWindowed(clk)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				w.Observe(float64(i % 1000))
				if i%100 == 0 {
					clk.Advance(time.Second)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		_ = w.Window(time.Minute)
		_ = w.BadFraction(5*time.Minute, 100)
	}
	stop.Store(true)
	wg.Wait()
}

func TestSearchBucketsMatchesSort(t *testing.T) {
	bounds := DefaultBuckets
	for _, v := range []float64{0, 0.5, 1, 2, 3.99, 4, 5, 1e6, 1e12} {
		got := searchBuckets(bounds, v)
		// Reference: first index with bounds[i] >= v.
		want := len(bounds)
		for i, b := range bounds {
			if b >= v {
				want = i
				break
			}
		}
		if got != want {
			t.Errorf("searchBuckets(%v) = %d, want %d", v, got, want)
		}
	}
}
