// Package diff builds comparison tables across keyword-search results —
// Structured Search Result Differentiation (Liu et al. VLDB'09, slides
// 149-153): select at most B features per result so that the table's
// Degree of Difference is maximized. The exact problem is NP-hard; the
// package provides the paper's local-search algorithms (weak and strong
// local optimality) plus an exhaustive oracle for small inputs.
package diff

import (
	"sort"
)

// Feature is one (type, value) pair extracted from a result, e.g.
// {"paper:title", "OLAP"}.
type Feature struct {
	Type  string
	Value string
}

// ResultFeatures is the feature pool of one result.
type ResultFeatures struct {
	Name     string
	Features []Feature
}

// Table is a chosen comparison table: per result, the selected features.
type Table struct {
	Selected [][]Feature
}

// DoD computes the Degree of Difference of a table: for every pair of
// results and every feature type appearing in either selection, one point
// when the two results' selected value sets for that type differ (one
// covers a value the other does not).
func DoD(t Table) int {
	score := 0
	for i := 0; i < len(t.Selected); i++ {
		for j := i + 1; j < len(t.Selected); j++ {
			score += pairDiff(t.Selected[i], t.Selected[j])
		}
	}
	return score
}

func pairDiff(a, b []Feature) int {
	types := map[string]bool{}
	av := map[string]map[string]bool{}
	bv := map[string]map[string]bool{}
	for _, f := range a {
		types[f.Type] = true
		if av[f.Type] == nil {
			av[f.Type] = map[string]bool{}
		}
		av[f.Type][f.Value] = true
	}
	for _, f := range b {
		types[f.Type] = true
		if bv[f.Type] == nil {
			bv[f.Type] = map[string]bool{}
		}
		bv[f.Type][f.Value] = true
	}
	d := 0
	for ty := range types {
		if !sameSet(av[ty], bv[ty]) {
			d++
		}
	}
	return d
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// Greedy builds an initial table: for each result, pick up to budget
// features preferring feature values that are rare across results (they
// differentiate the most).
func Greedy(results []ResultFeatures, budget int) Table {
	valueCount := map[Feature]int{}
	for _, r := range results {
		seen := map[Feature]bool{}
		for _, f := range r.Features {
			if !seen[f] {
				seen[f] = true
				valueCount[f]++
			}
		}
	}
	t := Table{Selected: make([][]Feature, len(results))}
	for i, r := range results {
		feats := append([]Feature(nil), r.Features...)
		sort.SliceStable(feats, func(a, b int) bool {
			ca, cb := valueCount[feats[a]], valueCount[feats[b]]
			if ca != cb {
				return ca < cb // rarer first
			}
			if feats[a].Type != feats[b].Type {
				return feats[a].Type < feats[b].Type
			}
			return feats[a].Value < feats[b].Value
		})
		if len(feats) > budget {
			feats = feats[:budget]
		}
		t.Selected[i] = feats
	}
	return t
}

// WeakLocalOptimal hill-climbs from the greedy table with single-feature
// swaps (replace one selected feature of one result by one unselected
// feature) until no swap improves DoD — the paper's weak local optimality.
func WeakLocalOptimal(results []ResultFeatures, budget int) Table {
	t := Greedy(results, budget)
	improved := true
	for improved {
		improved = false
		cur := DoD(t)
		for ri, r := range results {
			selected := t.Selected[ri]
			inSel := map[Feature]bool{}
			for _, f := range selected {
				inSel[f] = true
			}
			for si := range selected {
				old := selected[si]
				for _, cand := range r.Features {
					if inSel[cand] {
						continue
					}
					selected[si] = cand
					if nd := DoD(t); nd > cur {
						cur = nd
						improved = true
						inSel[cand] = true
						delete(inSel, old)
						old = cand
					} else {
						selected[si] = old
					}
				}
			}
		}
	}
	return t
}

// StrongLocalOptimal additionally tries, per result, every bounded subset
// of its features (feasible because budgets are small) — no replacement of
// any number of features within one result improves DoD.
func StrongLocalOptimal(results []ResultFeatures, budget int) Table {
	t := WeakLocalOptimal(results, budget)
	improved := true
	for improved {
		improved = false
		cur := DoD(t)
		for ri, r := range results {
			subsets := boundedSubsets(r.Features, budget)
			best := t.Selected[ri]
			for _, sub := range subsets {
				t.Selected[ri] = sub
				if nd := DoD(t); nd > cur {
					cur = nd
					best = sub
					improved = true
				}
			}
			t.Selected[ri] = best
		}
	}
	return t
}

// Exhaustive finds the true optimum by trying every combination of
// bounded subsets — usable only for tiny inputs; the test oracle.
func Exhaustive(results []ResultFeatures, budget int) Table {
	choices := make([][][]Feature, len(results))
	for i, r := range results {
		choices[i] = boundedSubsets(r.Features, budget)
	}
	best := Table{Selected: make([][]Feature, len(results))}
	cur := Table{Selected: make([][]Feature, len(results))}
	bestScore := -1
	var rec func(i int)
	rec = func(i int) {
		if i == len(results) {
			if s := DoD(cur); s > bestScore {
				bestScore = s
				for j := range cur.Selected {
					best.Selected[j] = append([]Feature(nil), cur.Selected[j]...)
				}
			}
			return
		}
		for _, sub := range choices[i] {
			cur.Selected[i] = sub
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// boundedSubsets enumerates all subsets of feats with size 1..budget
// (deduplicated features first).
func boundedSubsets(feats []Feature, budget int) [][]Feature {
	uniq := make([]Feature, 0, len(feats))
	seen := map[Feature]bool{}
	for _, f := range feats {
		if !seen[f] {
			seen[f] = true
			uniq = append(uniq, f)
		}
	}
	var out [][]Feature
	var rec func(start int, cur []Feature)
	rec = func(start int, cur []Feature) {
		if len(cur) > 0 {
			out = append(out, append([]Feature(nil), cur...))
		}
		if len(cur) == budget {
			return
		}
		for i := start; i < len(uniq); i++ {
			rec(i+1, append(cur, uniq[i]))
		}
	}
	rec(0, nil)
	return out
}
