package diff

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// slide151Results are the ICDE-2000 vs ICDE-2010 feature pools of E11.
func slide151Results() []ResultFeatures {
	return []ResultFeatures{
		{Name: "ICDE 2000", Features: []Feature{
			{Type: "conf:year", Value: "2000"},
			{Type: "paper:title", Value: "OLAP"},
			{Type: "paper:title", Value: "data mining"},
			{Type: "paper:title", Value: "network"},
			{Type: "paper:title", Value: "query"},
			{Type: "author:country", Value: "USA"},
		}},
		{Name: "ICDE 2010", Features: []Feature{
			{Type: "conf:year", Value: "2010"},
			{Type: "paper:title", Value: "cloud"},
			{Type: "paper:title", Value: "scalability"},
			{Type: "paper:title", Value: "search"},
			{Type: "paper:title", Value: "query"},
			{Type: "author:country", Value: "USA"},
		}},
	}
}

// TestSlide152DoD reproduces E11: the year+distinct-titles table reaches
// DoD 2 while the shared-value table (query titles + USA) reaches 0.
func TestSlide152DoD(t *testing.T) {
	good := Table{Selected: [][]Feature{
		{{Type: "conf:year", Value: "2000"}, {Type: "paper:title", Value: "OLAP"}, {Type: "paper:title", Value: "data mining"}},
		{{Type: "conf:year", Value: "2010"}, {Type: "paper:title", Value: "cloud"}, {Type: "paper:title", Value: "scalability"}},
	}}
	if got := DoD(good); got != 2 {
		t.Errorf("DoD(good) = %d, want 2 (year and titles both differ)", got)
	}
	bad := Table{Selected: [][]Feature{
		{{Type: "paper:title", Value: "query"}, {Type: "author:country", Value: "USA"}},
		{{Type: "paper:title", Value: "query"}, {Type: "author:country", Value: "USA"}},
	}}
	if got := DoD(bad); got != 0 {
		t.Errorf("DoD(bad) = %d, want 0 (all values shared)", got)
	}
}

func TestOptimizersReachSlideOptimum(t *testing.T) {
	rs := slide151Results()
	const budget = 3
	// The slide's illustrative table reaches DoD 2; the true optimum under
	// our set-difference DoD is 3 (select author:country on one side only,
	// making that type a third differing column).
	best := Exhaustive(rs, budget)
	if DoD(best) != 3 {
		t.Fatalf("exhaustive DoD = %d, want 3", DoD(best))
	}
	weak := WeakLocalOptimal(rs, budget)
	strong := StrongLocalOptimal(rs, budget)
	if DoD(weak) != DoD(best) {
		t.Errorf("weak local optimum DoD = %d, want %d", DoD(weak), DoD(best))
	}
	if DoD(strong) != DoD(best) {
		t.Errorf("strong local optimum DoD = %d, want %d", DoD(strong), DoD(best))
	}
}

func TestBudgetRespected(t *testing.T) {
	rs := slide151Results()
	for _, tb := range []Table{Greedy(rs, 2), WeakLocalOptimal(rs, 2), StrongLocalOptimal(rs, 2)} {
		for i, sel := range tb.Selected {
			if len(sel) > 2 {
				t.Fatalf("result %d selected %d features, budget 2", i, len(sel))
			}
		}
	}
}

func TestPairDiffSemantics(t *testing.T) {
	a := []Feature{{Type: "t", Value: "x"}}
	b := []Feature{{Type: "t", Value: "x"}}
	if pairDiff(a, b) != 0 {
		t.Errorf("identical selections must not differ")
	}
	// A type selected on one side only counts as a difference.
	c := []Feature{{Type: "t", Value: "x"}, {Type: "u", Value: "1"}}
	if pairDiff(a, c) != 1 {
		t.Errorf("one-sided type must count once, got %d", pairDiff(a, c))
	}
	// Multi-valued types compare as sets.
	d := []Feature{{Type: "t", Value: "x"}, {Type: "t", Value: "y"}}
	if pairDiff(a, d) != 1 {
		t.Errorf("value-set difference must count, got %d", pairDiff(a, d))
	}
}

// Property: local optimizers never do worse than greedy and never beat the
// exhaustive optimum; all tables respect the budget.
func TestOptimizerSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nRes := 2 + rng.Intn(2)
		types := []string{"a", "b", "c"}
		rs := make([]ResultFeatures, nRes)
		for i := range rs {
			nf := 1 + rng.Intn(4)
			for j := 0; j < nf; j++ {
				rs[i].Features = append(rs[i].Features, Feature{
					Type:  types[rng.Intn(len(types))],
					Value: strconv.Itoa(rng.Intn(3)),
				})
			}
			rs[i].Name = strconv.Itoa(i)
		}
		budget := 1 + rng.Intn(2)
		g := DoD(Greedy(rs, budget))
		w := DoD(WeakLocalOptimal(rs, budget))
		s := DoD(StrongLocalOptimal(rs, budget))
		opt := DoD(Exhaustive(rs, budget))
		return g <= w && w <= s && s <= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedSubsets(t *testing.T) {
	feats := []Feature{{Type: "a", Value: "1"}, {Type: "b", Value: "2"}, {Type: "a", Value: "1"}}
	subs := boundedSubsets(feats, 2)
	// Two unique features: subsets of size 1 and 2 -> 3 total.
	if len(subs) != 3 {
		t.Fatalf("subsets = %d, want 3", len(subs))
	}
}
