// Package community implements the subgraph-based result semantics of
// slide 31 and their RDBMS-friendly evaluation of slides 126-128: distinct
// core semantics (Qin et al. ICDE'09 — results are subgraphs induced by a
// distinct combination of keyword matches, found by joining bounded
// distance pair sets), and r-radius Steiner subgraphs with an EASE-style
// term-pair index (Li et al. SIGMOD'08).
package community

import (
	"sort"

	"kwsearch/internal/datagraph"
)

// Pair records that node N is within Dist of a keyword match M.
type Pair struct {
	Center datagraph.NodeID // the candidate center node x
	Match  datagraph.NodeID // the keyword match it reaches
	Dist   float64
}

// Pairs computes {(x, m, d) : d = dist(x, m) <= dmax} for every match m —
// the Pairs(n1, n2, dist) table of slide 126, realized with bounded
// Dijkstra instead of SQL semi-joins.
func Pairs(g *datagraph.Graph, matches []datagraph.NodeID, dmax float64) []Pair {
	var out []Pair
	for _, m := range matches {
		for n, d := range g.Dijkstra(m, dmax) {
			out = append(out, Pair{Center: n, Match: m, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Center != out[j].Center {
			return out[i].Center < out[j].Center
		}
		return out[i].Match < out[j].Match
	})
	return out
}

// Community is one distinct-core result: the combination of keyword
// matches (the core), the centers that reach all of them within the
// radius, and the best total distance.
type Community struct {
	// Core holds one match per keyword, aligned with the query terms.
	Core []datagraph.NodeID
	// Centers are the nodes within dmax of every core member.
	Centers []datagraph.NodeID
	// Cost is the minimum over centers of the summed distances.
	Cost float64
}

// DistinctCore computes communities for keyword match groups: the join of
// the per-keyword pair sets on the center, grouped by the distinct core
// (slide 126's S = Pairs_{k1} ⋈ Pairs_{k2} GROUP BY (a, b)). Results are
// sorted by ascending cost; k caps the output (0 = all).
func DistinctCore(g *datagraph.Graph, groups [][]datagraph.NodeID, dmax float64, k int) []Community {
	if len(groups) == 0 {
		return nil
	}
	// center -> per-keyword reachable matches with distances.
	type reach map[datagraph.NodeID]float64 // match -> dist
	byCenter := make([]map[datagraph.NodeID]reach, len(groups))
	for i, grp := range groups {
		if len(grp) == 0 {
			return nil
		}
		byCenter[i] = map[datagraph.NodeID]reach{}
		for _, p := range Pairs(g, grp, dmax) {
			r, ok := byCenter[i][p.Center]
			if !ok {
				r = reach{}
				byCenter[i][p.Center] = r
			}
			if d, ok := r[p.Match]; !ok || p.Dist < d {
				r[p.Match] = p.Dist
			}
		}
	}
	// Centers reaching all keywords.
	type coreKey string
	agg := map[coreKey]*Community{}
	encode := func(core []datagraph.NodeID) coreKey {
		b := make([]byte, 0, 4*len(core))
		for _, n := range core {
			b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		}
		return coreKey(b)
	}
	for center, r0 := range byCenter[0] {
		// Cross product of reachable matches per keyword from this center.
		ok := true
		for i := 1; i < len(groups); i++ {
			if _, has := byCenter[i][center]; !has {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		core := make([]datagraph.NodeID, len(groups))
		var rec func(i int, cost float64)
		rec = func(i int, cost float64) {
			if i == len(groups) {
				key := encode(core)
				c, has := agg[key]
				if !has {
					c = &Community{Core: append([]datagraph.NodeID(nil), core...), Cost: cost}
					agg[key] = c
				}
				c.Centers = append(c.Centers, center)
				if cost < c.Cost {
					c.Cost = cost
				}
				return
			}
			var r reach
			if i == 0 {
				r = r0
			} else {
				r = byCenter[i][center]
			}
			for m, d := range r {
				core[i] = m
				rec(i+1, cost+d)
			}
		}
		rec(0, 0)
	}
	out := make([]Community, 0, len(agg))
	for _, c := range agg {
		sort.Slice(c.Centers, func(i, j int) bool { return c.Centers[i] < c.Centers[j] })
		// Dedupe centers (one center may produce the same core several
		// ways through different distances).
		uniq := c.Centers[:0]
		for i, n := range c.Centers {
			if i == 0 || n != c.Centers[i-1] {
				uniq = append(uniq, n)
			}
		}
		c.Centers = uniq
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return lessCore(out[i].Core, out[j].Core)
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func lessCore(a, b []datagraph.NodeID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// RRadiusSubgraph returns the nodes within radius r of center — the
// r-radius subgraph a result of Li et al.'s EASE is drawn from. ok is
// false when the subgraph does not contain a match of every group
// (the Steiner-subgraph condition "matches each kᵢ", slide 31).
func RRadiusSubgraph(g *datagraph.Graph, center datagraph.NodeID, r float64, groups [][]datagraph.NodeID) ([]datagraph.NodeID, bool) {
	dist := g.Dijkstra(center, r)
	nodes := make([]datagraph.NodeID, 0, len(dist))
	for n := range dist {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	inside := map[datagraph.NodeID]bool{}
	for _, n := range nodes {
		inside[n] = true
	}
	for _, grp := range groups {
		hit := false
		for _, m := range grp {
			if inside[m] {
				hit = true
				break
			}
		}
		if !hit {
			return nodes, false
		}
	}
	return nodes, true
}

// PairIndex is the EASE-style index: for a pair of terms, the centers of
// maximal r-radius Steiner subgraphs containing both, with a similarity
// score (inverse of the best combined distance) — the
// (Term1, Term2) → (maximal r-radius graph, sim) mapping of slide 128.
type PairIndex struct {
	r       float64
	entries map[[2]string][]ScoredCenter
}

// ScoredCenter is one indexed center with its similarity.
type ScoredCenter struct {
	Center datagraph.NodeID
	Sim    float64
}

// BuildPairIndex precomputes the centers for every term pair.
func BuildPairIndex(g *datagraph.Graph, termMatches map[string][]datagraph.NodeID, r float64) *PairIndex {
	ix := &PairIndex{r: r, entries: map[[2]string][]ScoredCenter{}}
	terms := make([]string, 0, len(termMatches))
	for t := range termMatches {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			t1, t2 := terms[i], terms[j]
			groups := [][]datagraph.NodeID{termMatches[t1], termMatches[t2]}
			comms := DistinctCore(g, groups, r, 0)
			best := map[datagraph.NodeID]float64{}
			for _, c := range comms {
				for _, ctr := range c.Centers {
					sim := 1 / (1 + c.Cost)
					if sim > best[ctr] {
						best[ctr] = sim
					}
				}
			}
			var list []ScoredCenter
			for ctr, sim := range best {
				list = append(list, ScoredCenter{Center: ctr, Sim: sim})
			}
			sort.Slice(list, func(a, b int) bool {
				if list[a].Sim != list[b].Sim {
					return list[a].Sim > list[b].Sim
				}
				return list[a].Center < list[b].Center
			})
			ix.entries[[2]string{t1, t2}] = list
		}
	}
	return ix
}

// Lookup returns the indexed centers for a term pair (order-insensitive).
func (ix *PairIndex) Lookup(t1, t2 string) []ScoredCenter {
	if t1 > t2 {
		t1, t2 = t2, t1
	}
	return ix.entries[[2]string{t1, t2}]
}

// Entries reports the index size.
func (ix *PairIndex) Entries() int {
	n := 0
	for _, l := range ix.entries {
		n += len(l)
	}
	return n
}
