package community

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kwsearch/internal/datagraph"
)

// pathGraph: 0-1-2-3-4 with unit weights.
func pathGraph() *datagraph.Graph {
	g := datagraph.New(5)
	for i := 0; i+1 < 5; i++ {
		g.AddEdge(datagraph.NodeID(i), datagraph.NodeID(i+1), 1)
	}
	return g
}

func TestPairsBounded(t *testing.T) {
	g := pathGraph()
	ps := Pairs(g, []datagraph.NodeID{0}, 2)
	if len(ps) != 3 { // nodes 0,1,2
		t.Fatalf("pairs = %v", ps)
	}
	for _, p := range ps {
		if p.Dist > 2 {
			t.Errorf("pair beyond dmax: %+v", p)
		}
		if p.Match != 0 {
			t.Errorf("wrong match: %+v", p)
		}
	}
}

func TestDistinctCoreGroupsByCore(t *testing.T) {
	g := pathGraph()
	// k1 matches 0 and 4; k2 matches 2. Cores: (0,2) and (4,2).
	groups := [][]datagraph.NodeID{{0, 4}, {2}}
	comms := DistinctCore(g, groups, 2, 0)
	if len(comms) != 2 {
		t.Fatalf("communities = %+v", comms)
	}
	for _, c := range comms {
		if len(c.Core) != 2 || c.Core[1] != 2 {
			t.Errorf("core = %v", c.Core)
		}
		if len(c.Centers) == 0 {
			t.Errorf("no centers for %v", c.Core)
		}
		// Best cost: center 1 for (0,2): 1+1=2; center 3 for (4,2): 1+1=2.
		if c.Cost != 2 {
			t.Errorf("cost = %v, want 2", c.Cost)
		}
	}
}

func TestDistinctCoreRespectsRadius(t *testing.T) {
	g := pathGraph()
	// With dmax 1 no center reaches both 0 and 4 ... nor even 0 and 2.
	comms := DistinctCore(g, [][]datagraph.NodeID{{0}, {4}}, 1, 0)
	if len(comms) != 0 {
		t.Fatalf("radius not enforced: %+v", comms)
	}
	// dmax 2: center 2 reaches both ends.
	comms = DistinctCore(g, [][]datagraph.NodeID{{0}, {4}}, 2, 0)
	if len(comms) != 1 || comms[0].Cost != 4 {
		t.Fatalf("communities = %+v", comms)
	}
	if len(comms[0].Centers) != 1 || comms[0].Centers[0] != 2 {
		t.Fatalf("centers = %v, want [2]", comms[0].Centers)
	}
}

func TestDistinctCoreEmptyGroup(t *testing.T) {
	g := pathGraph()
	if got := DistinctCore(g, [][]datagraph.NodeID{{0}, {}}, 2, 0); got != nil {
		t.Errorf("empty group produced %v", got)
	}
	if got := DistinctCore(g, nil, 2, 0); got != nil {
		t.Errorf("no groups produced %v", got)
	}
}

func TestDistinctCoreKCap(t *testing.T) {
	g := pathGraph()
	comms := DistinctCore(g, [][]datagraph.NodeID{{0, 1, 2, 3, 4}, {2}}, 4, 2)
	if len(comms) != 2 {
		t.Fatalf("k cap ignored: %d", len(comms))
	}
	// Sorted by cost ascending.
	if comms[0].Cost > comms[1].Cost {
		t.Errorf("not sorted by cost")
	}
}

func TestRRadiusSubgraph(t *testing.T) {
	g := pathGraph()
	nodes, ok := RRadiusSubgraph(g, 2, 1, [][]datagraph.NodeID{{1}, {3}})
	if !ok {
		t.Fatalf("subgraph should cover both keywords: %v", nodes)
	}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v, want {1,2,3}", nodes)
	}
	_, ok = RRadiusSubgraph(g, 0, 1, [][]datagraph.NodeID{{4}})
	if ok {
		t.Fatalf("subgraph cannot reach node 4 at radius 1 from 0")
	}
}

func TestPairIndex(t *testing.T) {
	g := pathGraph()
	matches := map[string][]datagraph.NodeID{
		"a": {0},
		"b": {2},
		"c": {4},
	}
	ix := BuildPairIndex(g, matches, 2)
	ab := ix.Lookup("a", "b")
	if len(ab) == 0 {
		t.Fatal("no centers for (a,b)")
	}
	// Order-insensitive lookup.
	ba := ix.Lookup("b", "a")
	if len(ba) != len(ab) {
		t.Fatalf("lookup not symmetric")
	}
	// Best center for (a,c) is node 2 at cost 4 -> sim 1/5.
	ac := ix.Lookup("a", "c")
	if len(ac) != 1 || ac[0].Center != 2 || math.Abs(ac[0].Sim-0.2) > 1e-12 {
		t.Fatalf("ac = %+v", ac)
	}
	if ix.Entries() == 0 {
		t.Errorf("index empty")
	}
	if got := ix.Lookup("a", "zzz"); got != nil {
		t.Errorf("unknown pair = %v", got)
	}
}

// Property: every reported community cost equals the min over its centers
// of summed shortest distances to the core, and every center is within
// dmax of every core member.
func TestDistinctCoreCostsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		g := datagraph.New(n)
		for i := 0; i < n; i++ {
			g.AddEdge(datagraph.NodeID(i), datagraph.NodeID((i+1)%n), float64(1+rng.Intn(3)))
		}
		groups := [][]datagraph.NodeID{
			{datagraph.NodeID(rng.Intn(n)), datagraph.NodeID(rng.Intn(n))},
			{datagraph.NodeID(rng.Intn(n))},
		}
		dmax := float64(2 + rng.Intn(4))
		for _, c := range DistinctCore(g, groups, dmax, 0) {
			best := math.Inf(1)
			for _, ctr := range c.Centers {
				dist := g.Dijkstra(ctr, math.Inf(1))
				total := 0.0
				for _, m := range c.Core {
					d, ok := dist[m]
					if !ok || d > dmax+1e-9 {
						return false
					}
					total += d
				}
				if total < best {
					best = total
				}
			}
			if math.Abs(best-c.Cost) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
