// Package fmath holds the epsilon comparison helpers the float-equality
// lint rule (internal/analysis/rules) demands: score and cost values are
// sums of per-tuple terms, and floating-point addition is not
// associative, so two evaluation orders of the same result can differ in
// the last bits. Exact == / != on such values silently flips top-k
// tie-breaks; these helpers absorb that noise.
package fmath

import "math"

// Eps is the comparison tolerance: absolute for values near zero,
// relative (scaled by magnitude) otherwise. Scores in this engine are
// O(1)-magnitude TF·IDF sums, so 1e-9 is far above accumulated rounding
// error and far below any genuine score gap.
const Eps = 1e-9

// Eq reports whether a and b are equal within Eps (absolutely for small
// values, relatively for large ones).
func Eq(a, b float64) bool {
	if a == b { //lint:ignore float-equality fast path; exact hits (and infinities) are equal
		return true
	}
	d := math.Abs(a - b)
	if d <= Eps {
		return true
	}
	return d <= Eps*math.Max(math.Abs(a), math.Abs(b))
}

// Zero reports whether x is within Eps of zero — the divide-by-zero
// guard form of Eq(x, 0).
func Zero(x float64) bool { return math.Abs(x) <= Eps }
