// Package aggregate analyzes groups of results jointly (slides 16,
// 164-167): minimal group-bys answering aggregate keyword queries (Zhou &
// Pei EDBT'09 — "which month/state offers pool, motorcycle and American
// food together?") and top-k cells of a text cube (TopCells, Ding et al.
// ICDE'10).
package aggregate

import (
	"sort"
	"strings"

	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
)

// Cell is one group-by cell: per grouping attribute either a concrete
// value or "*" (any).
type Cell struct {
	Attrs  []string
	Values []string // aligned with Attrs; "*" = wildcard
}

// String renders "(Dec, TX)" style.
func (c Cell) String() string {
	return "(" + strings.Join(c.Values, ", ") + ")"
}

// matches reports whether row values (aligned with c.Attrs) satisfy the
// cell.
func (c Cell) matches(vals []string) bool {
	for i, v := range c.Values {
		if v != "*" && v != vals[i] {
			return false
		}
	}
	return true
}

// specializes reports whether c is a proper specialization of o (same
// attrs; c fixes a superset of o's values).
func (c Cell) specializes(o Cell) bool {
	proper := false
	for i := range c.Values {
		switch {
		case o.Values[i] == "*" && c.Values[i] != "*":
			proper = true
		case o.Values[i] != "*" && c.Values[i] != o.Values[i]:
			return false
		}
	}
	return proper
}

// coversPhrase reports whether the row text covers every token of the
// phrase.
func coversPhrase(rowText, phrase string) bool {
	for _, tok := range text.Tokenize(phrase) {
		if !text.Contains(rowText, tok) {
			return false
		}
	}
	return true
}

// MinimalGroupBys finds the minimal covering cells: value combinations
// over attrs (with wildcards) whose rows collectively cover every keyword
// phrase, such that no proper specialization also covers — exactly the
// slide-165 output {(Dec, TX), (*, MI)}.
func MinimalGroupBys(t *relstore.Table, rows []*relstore.Tuple, attrs []string, phrases []string) []Cell {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = t.ColumnIndex(a)
		if idx[i] < 0 {
			return nil
		}
	}
	// Row projections and per-row phrase coverage.
	rowVals := make([][]string, len(rows))
	rowCover := make([][]bool, len(rows))
	for ri, r := range rows {
		vals := make([]string, len(attrs))
		for i, ci := range idx {
			vals[i] = r.Values[ci].Text()
		}
		rowVals[ri] = vals
		txt := r.Text(t.Schema)
		cov := make([]bool, len(phrases))
		for pi, p := range phrases {
			cov[pi] = coversPhrase(txt, p)
		}
		rowCover[ri] = cov
	}
	// Candidate values per attribute (plus wildcard).
	domains := make([][]string, len(attrs))
	for i := range attrs {
		seen := map[string]bool{}
		vals := []string{"*"}
		for _, rv := range rowVals {
			if !seen[rv[i]] {
				seen[rv[i]] = true
				vals = append(vals, rv[i])
			}
		}
		domains[i] = vals
	}
	// Enumerate all cells and keep the covering ones.
	var covering []Cell
	var cur []string
	var rec func(i int)
	rec = func(i int) {
		if i == len(attrs) {
			cell := Cell{Attrs: attrs, Values: append([]string(nil), cur...)}
			need := make([]bool, len(phrases))
			got := 0
			for ri := range rows {
				if !cell.matches(rowVals[ri]) {
					continue
				}
				for pi := range phrases {
					if rowCover[ri][pi] && !need[pi] {
						need[pi] = true
						got++
					}
				}
			}
			if got == len(phrases) {
				covering = append(covering, cell)
			}
			return
		}
		for _, v := range domains[i] {
			cur = append(cur, v)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	// Keep only cells with no covering proper specialization.
	var out []Cell
	for _, c := range covering {
		minimal := true
		for _, o := range covering {
			if o.specializes(c) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].Values, ",") < strings.Join(out[j].Values, ",")
	})
	return out
}
