package aggregate

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
)

// TestSlide165MinimalGroupBys reproduces E10: the query {pool, motorcycle,
// american food} over {month, state} yields exactly the cells (Dec, TX)
// and (*, MI).
func TestSlide165MinimalGroupBys(t *testing.T) {
	db := dataset.EventsDB()
	tbl := db.Table("event")
	cells := MinimalGroupBys(tbl, tbl.Tuples(), []string{"month", "state"},
		[]string{"pool", "motorcycle", "american food"})
	if len(cells) != 2 {
		for _, c := range cells {
			t.Logf("cell %s", c)
		}
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	got := cells[0].String() + " " + cells[1].String()
	if !strings.Contains(got, "(*, MI)") || !strings.Contains(got, "(Dec, TX)") {
		t.Errorf("cells = %s, want (Dec, TX) and (*, MI)", got)
	}
}

func TestMinimalGroupBysPrunesGeneralizations(t *testing.T) {
	db := dataset.EventsDB()
	tbl := db.Table("event")
	cells := MinimalGroupBys(tbl, tbl.Tuples(), []string{"month", "state"},
		[]string{"pool", "motorcycle", "american food"})
	for _, c := range cells {
		if c.Values[0] == "*" && c.Values[1] == "*" {
			t.Errorf("the all-wildcard cell is never minimal when a cover exists")
		}
	}
	// (Dec, *) covers but specializes to (Dec, TX), so it must be absent.
	for _, c := range cells {
		if c.Values[0] == "Dec" && c.Values[1] == "*" {
			t.Errorf("(Dec, *) should be pruned by its specialization (Dec, TX)")
		}
	}
}

func TestMinimalGroupBysNoCover(t *testing.T) {
	db := dataset.EventsDB()
	tbl := db.Table("event")
	cells := MinimalGroupBys(tbl, tbl.Tuples(), []string{"month", "state"},
		[]string{"pool", "spaceflight"})
	if cells != nil {
		t.Errorf("uncoverable query yielded %v", cells)
	}
	if got := MinimalGroupBys(tbl, tbl.Tuples(), []string{"nosuch"}, []string{"pool"}); got != nil {
		t.Errorf("unknown attribute yielded %v", got)
	}
}

func TestCellSpecializes(t *testing.T) {
	a := Cell{Values: []string{"Dec", "TX"}}
	b := Cell{Values: []string{"Dec", "*"}}
	c := Cell{Values: []string{"*", "*"}}
	if !a.specializes(b) || !b.specializes(c) || !a.specializes(c) {
		t.Errorf("specialization chain broken")
	}
	if b.specializes(a) || a.specializes(a) {
		t.Errorf("specializes must be strict")
	}
}

func laptopDocs() []Doc {
	var out []Doc
	for _, r := range dataset.Laptops() {
		out = append(out, Doc{
			Dims: map[string]string{
				"Brand": r.Brand, "Model": r.Model, "CPU": r.CPU, "OS": r.OS,
			},
			Text: r.Description,
		})
	}
	return out
}

// TestSlide166TopCells reproduces E14: "powerful laptop" with minsup 2
// surfaces the cells {Brand:Acer, Model:AOA110} and {CPU:1.7GHz}.
func TestSlide166TopCells(t *testing.T) {
	cells := TopCells(laptopDocs(), []string{"Brand", "Model", "CPU", "OS"},
		[]string{"powerful", "laptop"}, 2, 0)
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	var labels []string
	for _, c := range cells {
		labels = append(labels, c.String())
		if c.Support < 2 {
			t.Errorf("cell %s below min support", c)
		}
	}
	joined := strings.Join(labels, " | ")
	if !strings.Contains(joined, "CPU:1.7GHz") {
		t.Errorf("missing CPU:1.7GHz cell: %s", joined)
	}
	foundAcer := false
	for _, l := range labels {
		if strings.Contains(l, "Brand:Acer") || strings.Contains(l, "Model:AOA110") {
			foundAcer = true
		}
	}
	if !foundAcer {
		t.Errorf("missing Acer/AOA110 cell: %s", joined)
	}
}

func TestTopCellsMinSupportFiltersAndK(t *testing.T) {
	cells := TopCells(laptopDocs(), []string{"Brand", "Model", "CPU", "OS"},
		[]string{"powerful", "laptop"}, 3, 0)
	for _, c := range cells {
		if c.Support < 3 {
			t.Fatalf("support filter failed: %+v", c)
		}
	}
	top1 := TopCells(laptopDocs(), []string{"Brand"}, []string{"laptop"}, 1, 1)
	if len(top1) != 1 {
		t.Fatalf("k limit failed: %v", top1)
	}
	if got := TopCells(laptopDocs(), []string{"Brand"}, nil, 1, 5); got != nil {
		t.Errorf("empty query cells = %v", got)
	}
}

func TestTopCellsRelevanceOrdering(t *testing.T) {
	cells := TopCells(laptopDocs(), []string{"Brand", "CPU"}, []string{"laptop"}, 1, 0)
	for i := 1; i < len(cells); i++ {
		if cells[i].Relevance > cells[i-1].Relevance {
			t.Fatalf("cells not sorted by relevance")
		}
	}
}
