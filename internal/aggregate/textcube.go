package aggregate

import (
	"sort"
	"strings"

	"kwsearch/internal/text"
)

// Doc is one row of a text cube: dimension values plus a text document.
type Doc struct {
	Dims map[string]string
	Text string
}

// CubeCell is one cube cell with its query statistics.
type CubeCell struct {
	// Fixed maps the constrained dimensions to values; unmentioned
	// dimensions are aggregated ("*").
	Fixed map[string]string
	// Support counts the cell's documents that match the query.
	Support int
	// Relevance is the average per-document query relevance (matched
	// query-term count) over the matching documents.
	Relevance float64
}

// label renders the fixed dimensions deterministically.
func (c CubeCell) label(dims []string) string {
	parts := make([]string, 0, len(dims))
	for _, d := range dims {
		if v, ok := c.Fixed[d]; ok {
			parts = append(parts, d+":"+v)
		} else {
			parts = append(parts, d+":*")
		}
	}
	return strings.Join(parts, ",")
}

// String renders "Brand:Acer,Model:AOA110,CPU:*,OS:*" style using the
// cell's own dimension order.
func (c CubeCell) String() string {
	keys := make([]string, 0, len(c.Fixed))
	for k := range c.Fixed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + ":" + c.Fixed[k]
	}
	return strings.Join(parts, ",")
}

// TopCells searches the text cube: it enumerates cells over every
// dimension subset, keeps those whose matching-document support reaches
// minSupport, and returns the top k by average relevance (slides 166-167).
// Cells whose document sets coincide with a more general cell are dropped
// in favour of the general one.
func TopCells(docs []Doc, dims []string, query []string, minSupport, k int) []CubeCell {
	terms := make([]string, 0, len(query))
	for _, q := range query {
		if n := text.Normalize(q); n != "" {
			terms = append(terms, n)
		}
	}
	if len(terms) == 0 {
		return nil
	}
	// Per-document match status and relevance.
	match := make([]bool, len(docs))
	rel := make([]float64, len(docs))
	for i, d := range docs {
		all := true
		score := 0.0
		for _, t := range terms {
			cnt := 0
			for _, tok := range text.Tokenize(d.Text) {
				if tok == t {
					cnt++
				}
			}
			if cnt == 0 {
				all = false
				break
			}
			score += float64(cnt)
		}
		match[i] = all
		if all {
			rel[i] = score
		}
	}

	// Enumerate dimension subsets and their observed value combinations.
	cells := map[string]*CubeCell{}
	docsOf := map[string][]int{}
	var subsets func(i int, fixedDims []string)
	subsets = func(i int, fixedDims []string) {
		if i == len(dims) {
			// Group matching docs by their values on fixedDims.
			for di, d := range docs {
				if !match[di] {
					continue
				}
				fixed := map[string]string{}
				ok := true
				for _, fd := range fixedDims {
					v, has := d.Dims[fd]
					if !has {
						ok = false
						break
					}
					fixed[fd] = v
				}
				if !ok {
					continue
				}
				c := CubeCell{Fixed: fixed}
				key := c.label(dims)
				if _, seen := cells[key]; !seen {
					cells[key] = &CubeCell{Fixed: fixed}
				}
				docsOf[key] = append(docsOf[key], di)
			}
			return
		}
		subsets(i+1, fixedDims)
		with := make([]string, len(fixedDims)+1)
		copy(with, fixedDims)
		with[len(fixedDims)] = dims[i]
		subsets(i+1, with)
	}
	subsets(0, nil)

	var out []CubeCell
	for key, c := range cells {
		ds := docsOf[key]
		if len(ds) < minSupport {
			continue
		}
		sum := 0.0
		for _, di := range ds {
			sum += rel[di]
		}
		c.Support = len(ds)
		c.Relevance = sum / float64(len(ds))
		out = append(out, *c)
	}
	// Drop cells subsumed by a more general cell with the same documents.
	filtered := out[:0]
	for _, c := range out {
		subsumed := false
		for _, o := range out {
			if len(o.Fixed) < len(c.Fixed) && o.Support == c.Support && sameDocs(docsOf, dims, o, c) && generalizes(o, c) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			filtered = append(filtered, c)
		}
	}
	out = filtered
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relevance != out[j].Relevance {
			return out[i].Relevance > out[j].Relevance
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].String() < out[j].String()
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func generalizes(gen, spec CubeCell) bool {
	for d, v := range gen.Fixed {
		if spec.Fixed[d] != v {
			return false
		}
	}
	return true
}

func sameDocs(docsOf map[string][]int, dims []string, a, b CubeCell) bool {
	da := docsOf[a.label(dims)]
	db := docsOf[b.label(dims)]
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}
