// Package relstore implements an in-memory relational store: typed tuples,
// tables with primary and foreign keys, selections and hash joins. It is the
// substrate the relational keyword-search engines (DISCOVER-style candidate
// networks, SPARK, BANKS) are built on, standing in for the RDBMS back ends
// used by the systems the tutorial surveys.
package relstore

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types the store supports.
type Kind uint8

const (
	// KindNull is the zero Kind; it compares equal only to itself.
	KindNull Kind = iota
	// KindString holds free text or categorical values.
	KindString
	// KindInt holds 64-bit integers (also used for keys).
	KindInt
	// KindFloat holds 64-bit floating point numbers.
	KindFloat
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a dynamically typed cell value. The zero Value is NULL. Value is
// comparable and therefore usable as a map key, which the hash join relies
// on.
type Value struct {
	Kind  Kind
	Str   string
	Int   int64
	Float float64
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// String wraps s as a Value.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int wraps i as a Value.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Float wraps f as a Value.
func Float(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Equal reports whether v and o hold the same kind and payload. NULL equals
// only NULL (the store uses this for key lookups, not SQL ternary logic).
func (v Value) Equal(o Value) bool { return v == o }

// Less orders values: NULL < ints/floats (numerically interleaved) < strings.
// Mixed int/float comparisons are performed in float64.
func (v Value) Less(o Value) bool {
	ra, rb := v.rank(), o.rank()
	if ra != rb {
		return ra < rb
	}
	switch v.Kind {
	case KindNull:
		return false
	case KindString:
		return v.Str < o.Str
	default:
		return v.numeric() < o.numeric()
	}
}

func (v Value) rank() int {
	switch v.Kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

func (v Value) numeric() float64 {
	if v.Kind == KindInt {
		return float64(v.Int)
	}
	return v.Float
}

// AsFloat returns the numeric payload of an int or float value, and false
// for anything else.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	}
	return 0, false
}

// Text renders the value for tokenization and display. NULL renders as "".
func (v Value) Text() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	}
	return ""
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.Kind == KindString {
		return v.Str
	}
	return v.Text()
}
