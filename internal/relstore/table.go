package relstore

import (
	"fmt"
	"strings"
)

// TupleID identifies a tuple globally across all tables of a DB. IDs are
// dense and assigned in insertion order, which lets the data-graph layer use
// them directly as node identifiers.
type TupleID int32

// Tuple is one row of a table. Values are positional, aligned with the
// table schema's columns.
type Tuple struct {
	ID     TupleID
	Table  string
	Values []Value
}

// Text concatenates the tuple's text-column contents for tokenization.
func (t *Tuple) Text(schema *TableSchema) string {
	var b strings.Builder
	for i, c := range schema.Columns {
		if !c.Text {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Values[i].Text())
	}
	return b.String()
}

// Table is a relation instance: a schema plus its rows and a primary-key
// index.
type Table struct {
	Schema *TableSchema

	tuples []*Tuple
	byKey  map[Value]*Tuple
	colIdx map[string]int
	keyPos int
}

func newTable(schema *TableSchema) *Table {
	t := &Table{
		Schema: schema,
		colIdx: make(map[string]int, len(schema.Columns)),
		keyPos: -1,
	}
	for i, c := range schema.Columns {
		t.colIdx[c.Name] = i
	}
	if schema.Key != "" {
		t.keyPos = t.colIdx[schema.Key]
		t.byKey = make(map[Value]*Tuple)
	}
	return t
}

// Len returns the number of tuples in the table.
func (t *Table) Len() int { return len(t.tuples) }

// Tuples returns the table's rows in insertion order. The slice is shared;
// callers must not mutate it.
func (t *Table) Tuples() []*Tuple { return t.tuples }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// ByKey looks up a tuple by primary key value.
func (t *Table) ByKey(key Value) (*Tuple, bool) {
	if t.byKey == nil {
		return nil, false
	}
	tp, ok := t.byKey[key]
	return tp, ok
}

// Value returns the named column's value of tuple tp, which must belong to
// this table.
func (t *Table) Value(tp *Tuple, column string) Value {
	i, ok := t.colIdx[column]
	if !ok {
		return Null()
	}
	return tp.Values[i]
}

func (t *Table) insert(tp *Tuple) error {
	if len(tp.Values) != len(t.Schema.Columns) {
		return fmt.Errorf("relstore: table %s: got %d values, want %d",
			t.Schema.Name, len(tp.Values), len(t.Schema.Columns))
	}
	for i, c := range t.Schema.Columns {
		v := tp.Values[i]
		if v.IsNull() {
			continue
		}
		if v.Kind != c.Type {
			return fmt.Errorf("relstore: table %s column %s: got %s, want %s",
				t.Schema.Name, c.Name, v.Kind, c.Type)
		}
	}
	if t.keyPos >= 0 {
		k := tp.Values[t.keyPos]
		if _, dup := t.byKey[k]; dup {
			return fmt.Errorf("relstore: table %s: duplicate key %v", t.Schema.Name, k)
		}
		t.byKey[k] = tp
	}
	t.tuples = append(t.tuples, tp)
	return nil
}

// Select returns the tuples satisfying pred, in insertion order.
func (t *Table) Select(pred func(*Tuple) bool) []*Tuple {
	var out []*Tuple
	for _, tp := range t.tuples {
		if pred(tp) {
			out = append(out, tp)
		}
	}
	return out
}

// SelectEq returns tuples whose column equals v.
func (t *Table) SelectEq(column string, v Value) []*Tuple {
	i, ok := t.colIdx[column]
	if !ok {
		return nil
	}
	if i == t.keyPos && t.byKey != nil {
		if tp, ok := t.byKey[v]; ok {
			return []*Tuple{tp}
		}
		return nil
	}
	return t.Select(func(tp *Tuple) bool { return tp.Values[i].Equal(v) })
}
