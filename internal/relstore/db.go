package relstore

import (
	"fmt"
	"sort"
)

// DB is a collection of tables with globally unique tuple IDs.
type DB struct {
	tables map[string]*Table
	order  []string
	byID   []*Tuple // index: TupleID -> tuple
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable validates schema and adds an empty table.
func (db *DB) CreateTable(schema *TableSchema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("relstore: table %s already exists", schema.Name)
	}
	for _, fk := range schema.ForeignKeys {
		ref, ok := db.tables[fk.RefTable]
		if !ok {
			return nil, fmt.Errorf("relstore: table %s: foreign key references unknown table %s",
				schema.Name, fk.RefTable)
		}
		if ref.ColumnIndex(fk.RefColumn) < 0 {
			return nil, fmt.Errorf("relstore: table %s: foreign key references unknown column %s.%s",
				schema.Name, fk.RefTable, fk.RefColumn)
		}
	}
	t := newTable(schema)
	db.tables[schema.Name] = t
	db.order = append(db.order, schema.Name)
	return t, nil
}

// MustCreateTable is CreateTable that panics on error, for dataset builders.
func (db *DB) MustCreateTable(schema *TableSchema) *Table {
	t, err := db.CreateTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// TableNames returns table names in creation order.
func (db *DB) TableNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// NumTuples returns the total number of tuples across all tables.
func (db *DB) NumTuples() int { return len(db.byID) }

// TupleByID resolves a global tuple ID.
func (db *DB) TupleByID(id TupleID) *Tuple {
	if int(id) < 0 || int(id) >= len(db.byID) {
		return nil
	}
	return db.byID[id]
}

// Insert appends a row given as column->value map; unspecified columns are
// NULL. It returns the stored tuple with its global ID assigned.
func (db *DB) Insert(table string, row map[string]Value) (*Tuple, error) {
	t, ok := db.tables[table]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown table %s", table)
	}
	vals := make([]Value, len(t.Schema.Columns))
	for name, v := range row {
		i := t.ColumnIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("relstore: table %s: unknown column %s", table, name)
		}
		vals[i] = v
	}
	return db.insertValues(t, vals)
}

// InsertValues appends a row given positionally.
func (db *DB) InsertValues(table string, vals ...Value) (*Tuple, error) {
	t, ok := db.tables[table]
	if !ok {
		return nil, fmt.Errorf("relstore: unknown table %s", table)
	}
	own := make([]Value, len(vals))
	copy(own, vals)
	return db.insertValues(t, own)
}

// MustInsert is Insert that panics on error, for dataset builders.
func (db *DB) MustInsert(table string, row map[string]Value) *Tuple {
	tp, err := db.Insert(table, row)
	if err != nil {
		panic(err)
	}
	return tp
}

func (db *DB) insertValues(t *Table, vals []Value) (*Tuple, error) {
	tp := &Tuple{ID: TupleID(len(db.byID)), Table: t.Schema.Name, Values: vals}
	if err := t.insert(tp); err != nil {
		return nil, err
	}
	db.byID = append(db.byID, tp)
	return tp, nil
}

// ForeignMatches resolves the tuples in fk.RefTable referenced by tp via fk.
// For a key-indexed referenced column this is a point lookup.
func (db *DB) ForeignMatches(tp *Tuple, fk ForeignKey) []*Tuple {
	src := db.tables[tp.Table]
	ref := db.tables[fk.RefTable]
	if src == nil || ref == nil {
		return nil
	}
	v := src.Value(tp, fk.Column)
	if v.IsNull() {
		return nil
	}
	return ref.SelectEq(fk.RefColumn, v)
}

// Stats summarizes table cardinalities, for planners and reports.
func (db *DB) Stats() map[string]int {
	out := make(map[string]int, len(db.tables))
	for name, t := range db.tables {
		out[name] = t.Len()
	}
	return out
}

// SortedTables returns tables sorted by name, for deterministic iteration.
func (db *DB) SortedTables() []*Table {
	names := db.TableNames()
	sort.Strings(names)
	out := make([]*Table, 0, len(names))
	for _, n := range names {
		out = append(out, db.tables[n])
	}
	return out
}
