package relstore

// JoinPair is one matched pair produced by HashJoin.
type JoinPair struct {
	Left, Right *Tuple
}

// HashJoin equi-joins two tuple sets on leftCol = rightCol, building the
// hash table on the smaller input. All tuples in left must belong to
// leftTable and all tuples in right to rightTable.
func HashJoin(db *DB, left []*Tuple, leftTable, leftCol string, right []*Tuple, rightTable, rightCol string) []JoinPair {
	lt := db.Table(leftTable)
	rt := db.Table(rightTable)
	if lt == nil || rt == nil {
		return nil
	}
	li := lt.ColumnIndex(leftCol)
	ri := rt.ColumnIndex(rightCol)
	if li < 0 || ri < 0 {
		return nil
	}

	// Build on the smaller side, probe with the larger.
	if len(left) <= len(right) {
		ht := make(map[Value][]*Tuple, len(left))
		for _, tp := range left {
			v := tp.Values[li]
			if v.IsNull() {
				continue
			}
			ht[v] = append(ht[v], tp)
		}
		var out []JoinPair
		for _, rp := range right {
			v := rp.Values[ri]
			if v.IsNull() {
				continue
			}
			for _, lp := range ht[v] {
				out = append(out, JoinPair{Left: lp, Right: rp})
			}
		}
		return out
	}

	ht := make(map[Value][]*Tuple, len(right))
	for _, tp := range right {
		v := tp.Values[ri]
		if v.IsNull() {
			continue
		}
		ht[v] = append(ht[v], tp)
	}
	var out []JoinPair
	for _, lp := range left {
		v := lp.Values[li]
		if v.IsNull() {
			continue
		}
		for _, rp := range ht[v] {
			out = append(out, JoinPair{Left: lp, Right: rp})
		}
	}
	return out
}

// SemiJoin returns the left tuples that have at least one match in right on
// leftCol = rightCol. Used by the RDBMS-powered evaluation strategies
// (Qin et al. SIGMOD'09) to prune intermediate relations.
func SemiJoin(db *DB, left []*Tuple, leftTable, leftCol string, right []*Tuple, rightTable, rightCol string) []*Tuple {
	lt := db.Table(leftTable)
	rt := db.Table(rightTable)
	if lt == nil || rt == nil {
		return nil
	}
	li := lt.ColumnIndex(leftCol)
	ri := rt.ColumnIndex(rightCol)
	if li < 0 || ri < 0 {
		return nil
	}
	keys := make(map[Value]bool, len(right))
	for _, rp := range right {
		v := rp.Values[ri]
		if !v.IsNull() {
			keys[v] = true
		}
	}
	var out []*Tuple
	for _, lp := range left {
		if keys[lp.Values[li]] {
			out = append(out, lp)
		}
	}
	return out
}
