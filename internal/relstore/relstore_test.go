package relstore

import (
	"sort"
	"testing"
	"testing/quick"
)

func bibDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustCreateTable(&TableSchema{
		Name: "author",
		Columns: []Column{
			{Name: "aid", Type: KindInt},
			{Name: "name", Type: KindString, Text: true},
		},
		Key: "aid",
	})
	db.MustCreateTable(&TableSchema{
		Name: "paper",
		Columns: []Column{
			{Name: "pid", Type: KindInt},
			{Name: "title", Type: KindString, Text: true},
		},
		Key: "pid",
	})
	db.MustCreateTable(&TableSchema{
		Name: "write",
		Columns: []Column{
			{Name: "aid", Type: KindInt},
			{Name: "pid", Type: KindInt},
		},
		ForeignKeys: []ForeignKey{
			{Column: "aid", RefTable: "author", RefColumn: "aid"},
			{Column: "pid", RefTable: "paper", RefColumn: "pid"},
		},
	})
	db.MustInsert("author", map[string]Value{"aid": Int(1), "name": String("Widom")})
	db.MustInsert("author", map[string]Value{"aid": Int(2), "name": String("Ullman")})
	db.MustInsert("paper", map[string]Value{"pid": Int(10), "title": String("XML query processing")})
	db.MustInsert("paper", map[string]Value{"pid": Int(11), "title": String("Datalog evaluation")})
	db.MustInsert("write", map[string]Value{"aid": Int(1), "pid": Int(10)})
	db.MustInsert("write", map[string]Value{"aid": Int(1), "pid": Int(11)})
	db.MustInsert("write", map[string]Value{"aid": Int(2), "pid": Int(11)})
	return db
}

func TestValueOrderingAndText(t *testing.T) {
	if !Null().Less(Int(0)) {
		t.Errorf("NULL should sort before ints")
	}
	if !Int(3).Less(Float(3.5)) {
		t.Errorf("mixed numeric comparison failed")
	}
	if !Float(9.5).Less(String("a")) {
		t.Errorf("numbers should sort before strings")
	}
	if Int(5).Less(Int(5)) {
		t.Errorf("equal ints must not be Less")
	}
	if got := Int(42).Text(); got != "42" {
		t.Errorf("Int text = %q, want 42", got)
	}
	if got := Float(2.5).Text(); got != "2.5" {
		t.Errorf("Float text = %q, want 2.5", got)
	}
	if got := Null().Text(); got != "" {
		t.Errorf("Null text = %q, want empty", got)
	}
}

func TestValueLessIsStrictWeakOrder(t *testing.T) {
	gen := func(k uint8, s string, i int64, f float64) Value {
		switch k % 4 {
		case 0:
			return Null()
		case 1:
			return String(s)
		case 2:
			return Int(i)
		default:
			return Float(f)
		}
	}
	irreflexive := func(k uint8, s string, i int64, f float64) bool {
		v := gen(k, s, i, f)
		return !v.Less(v)
	}
	if err := quick.Check(irreflexive, nil); err != nil {
		t.Errorf("Less not irreflexive: %v", err)
	}
	asymmetric := func(k1, k2 uint8, s1, s2 string, i1, i2 int64, f1, f2 float64) bool {
		a, b := gen(k1, s1, i1, f1), gen(k2, s2, i2, f2)
		return !(a.Less(b) && b.Less(a))
	}
	if err := quick.Check(asymmetric, nil); err != nil {
		t.Errorf("Less not asymmetric: %v", err)
	}
}

func TestSchemaValidate(t *testing.T) {
	bad := []*TableSchema{
		{Name: "", Columns: []Column{{Name: "a", Type: KindInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}, {Name: "a", Type: KindInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}}, Key: "b"},
		{Name: "t", Columns: []Column{{Name: "a", Type: KindInt}},
			ForeignKeys: []ForeignKey{{Column: "x", RefTable: "t", RefColumn: "a"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d: expected validation error", i)
		}
	}
}

func TestCreateTableRejectsBadFK(t *testing.T) {
	db := NewDB()
	_, err := db.CreateTable(&TableSchema{
		Name:    "w",
		Columns: []Column{{Name: "aid", Type: KindInt}},
		ForeignKeys: []ForeignKey{
			{Column: "aid", RefTable: "nosuch", RefColumn: "aid"},
		},
	})
	if err == nil {
		t.Fatalf("expected error for FK to unknown table")
	}
}

func TestInsertAndLookup(t *testing.T) {
	db := bibDB(t)
	a := db.Table("author")
	if a.Len() != 2 {
		t.Fatalf("author len = %d, want 2", a.Len())
	}
	tp, ok := a.ByKey(Int(1))
	if !ok {
		t.Fatalf("key 1 not found")
	}
	if got := a.Value(tp, "name").Str; got != "Widom" {
		t.Errorf("name = %q, want Widom", got)
	}
	// Global IDs resolve back.
	if db.TupleByID(tp.ID) != tp {
		t.Errorf("TupleByID roundtrip failed")
	}
	if db.TupleByID(-1) != nil || db.TupleByID(9999) != nil {
		t.Errorf("out-of-range TupleByID should be nil")
	}
}

func TestInsertRejectsTypeMismatchAndDupKey(t *testing.T) {
	db := bibDB(t)
	if _, err := db.Insert("author", map[string]Value{"aid": String("x"), "name": String("B")}); err == nil {
		t.Errorf("expected type mismatch error")
	}
	if _, err := db.Insert("author", map[string]Value{"aid": Int(1), "name": String("Dup")}); err == nil {
		t.Errorf("expected duplicate key error")
	}
	if _, err := db.Insert("author", map[string]Value{"nosuch": Int(3)}); err == nil {
		t.Errorf("expected unknown column error")
	}
	if _, err := db.Insert("nosuch", nil); err == nil {
		t.Errorf("expected unknown table error")
	}
}

func TestSelectEqUsesKeyIndex(t *testing.T) {
	db := bibDB(t)
	got := db.Table("paper").SelectEq("pid", Int(11))
	if len(got) != 1 || got[0].Values[1].Str != "Datalog evaluation" {
		t.Fatalf("SelectEq by key = %v", got)
	}
	// Non-key column scan.
	got = db.Table("write").SelectEq("aid", Int(1))
	if len(got) != 2 {
		t.Fatalf("SelectEq scan returned %d rows, want 2", len(got))
	}
	if got2 := db.Table("write").SelectEq("nosuch", Int(1)); got2 != nil {
		t.Errorf("SelectEq unknown column should be nil")
	}
}

func TestTupleText(t *testing.T) {
	db := bibDB(t)
	a := db.Table("author")
	tp, _ := a.ByKey(Int(1))
	if got := tp.Text(a.Schema); got != "Widom" {
		t.Errorf("Text = %q, want Widom (only text columns)", got)
	}
}

func TestForeignMatches(t *testing.T) {
	db := bibDB(t)
	w := db.Table("write")
	fkPaper := w.Schema.ForeignKeys[1]
	row := w.Tuples()[0] // (1, 10)
	got := db.ForeignMatches(row, fkPaper)
	if len(got) != 1 || got[0].Values[0].Int != 10 {
		t.Fatalf("ForeignMatches = %v", got)
	}
}

func TestHashJoin(t *testing.T) {
	db := bibDB(t)
	authors := db.Table("author").Tuples()
	writes := db.Table("write").Tuples()
	pairs := HashJoin(db, authors, "author", "aid", writes, "write", "aid")
	if len(pairs) != 3 {
		t.Fatalf("join produced %d pairs, want 3", len(pairs))
	}
	// Join is symmetric in result content regardless of build side.
	pairs2 := HashJoin(db, writes, "write", "aid", authors, "author", "aid")
	if len(pairs2) != 3 {
		t.Fatalf("reversed join produced %d pairs, want 3", len(pairs2))
	}
	// Count Widom's papers through the join.
	n := 0
	for _, p := range pairs {
		if p.Left.Values[1].Str == "Widom" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("Widom writes %d rows, want 2", n)
	}
}

func TestHashJoinSkipsNulls(t *testing.T) {
	db := NewDB()
	db.MustCreateTable(&TableSchema{
		Name:    "l",
		Columns: []Column{{Name: "k", Type: KindInt}},
	})
	db.MustCreateTable(&TableSchema{
		Name:    "r",
		Columns: []Column{{Name: "k", Type: KindInt}},
	})
	db.MustInsert("l", map[string]Value{"k": Int(1)})
	db.MustInsert("l", map[string]Value{}) // NULL key
	db.MustInsert("r", map[string]Value{"k": Int(1)})
	db.MustInsert("r", map[string]Value{}) // NULL key
	pairs := HashJoin(db, db.Table("l").Tuples(), "l", "k", db.Table("r").Tuples(), "r", "k")
	if len(pairs) != 1 {
		t.Fatalf("NULLs must not join: got %d pairs, want 1", len(pairs))
	}
}

func TestSemiJoin(t *testing.T) {
	db := bibDB(t)
	papers := db.Table("paper").Tuples()
	writes := db.Table("write").SelectEq("aid", Int(2))
	got := SemiJoin(db, papers, "paper", "pid", writes, "write", "pid")
	if len(got) != 1 || got[0].Values[1].Str != "Datalog evaluation" {
		t.Fatalf("SemiJoin = %v", got)
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	// Property: hash join result equals the nested-loop result for
	// arbitrary small key multisets.
	f := func(lk, rk []uint8) bool {
		if len(lk) > 40 {
			lk = lk[:40]
		}
		if len(rk) > 40 {
			rk = rk[:40]
		}
		db := NewDB()
		db.MustCreateTable(&TableSchema{Name: "l", Columns: []Column{{Name: "k", Type: KindInt}}})
		db.MustCreateTable(&TableSchema{Name: "r", Columns: []Column{{Name: "k", Type: KindInt}}})
		for _, k := range lk {
			db.MustInsert("l", map[string]Value{"k": Int(int64(k % 8))})
		}
		for _, k := range rk {
			db.MustInsert("r", map[string]Value{"k": Int(int64(k % 8))})
		}
		pairs := HashJoin(db, db.Table("l").Tuples(), "l", "k", db.Table("r").Tuples(), "r", "k")
		var want, got []int64
		for _, lp := range db.Table("l").Tuples() {
			for _, rp := range db.Table("r").Tuples() {
				if lp.Values[0].Equal(rp.Values[0]) {
					want = append(want, int64(lp.ID)<<32|int64(rp.ID))
				}
			}
		}
		for _, p := range pairs {
			got = append(got, int64(p.Left.ID)<<32|int64(p.Right.ID))
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndSortedTables(t *testing.T) {
	db := bibDB(t)
	stats := db.Stats()
	if stats["author"] != 2 || stats["paper"] != 2 || stats["write"] != 3 {
		t.Errorf("Stats = %v", stats)
	}
	names := []string{}
	for _, tbl := range db.SortedTables() {
		names = append(names, tbl.Schema.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("SortedTables not sorted: %v", names)
	}
	if len(db.TableNames()) != 3 {
		t.Errorf("TableNames = %v", db.TableNames())
	}
}
