package relstore

import "fmt"

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Kind
	// Text marks columns whose contents should be tokenized into the
	// inverted index (titles, names, descriptions).
	Text bool
}

// ForeignKey declares that Column of the owning table references
// RefColumn of RefTable.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// TableSchema declares a relation: its columns, primary key and foreign
// keys. Key may be empty for keyless relations (e.g. join tables), in which
// case key lookups are unavailable.
type TableSchema struct {
	Name        string
	Columns     []Column
	Key         string
	ForeignKeys []ForeignKey
}

// ColumnIndex returns the position of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency: unique column names, the key column
// exists, FK columns exist.
func (s *TableSchema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relstore: schema with empty table name")
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relstore: table %s: empty column name", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("relstore: table %s: duplicate column %s", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if s.Key != "" && !seen[s.Key] {
		return fmt.Errorf("relstore: table %s: key column %s not declared", s.Name, s.Key)
	}
	for _, fk := range s.ForeignKeys {
		if !seen[fk.Column] {
			return fmt.Errorf("relstore: table %s: foreign key column %s not declared", s.Name, fk.Column)
		}
	}
	return nil
}
