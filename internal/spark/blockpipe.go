package spark

import (
	"container/heap"

	"kwsearch/internal/cn"
	"kwsearch/internal/relstore"
)

// TopKBlockPipeline is SPARK's Block-Pipeline: each keyword-node list is
// cut into blocks of size blockSize; block combinations are explored
// best-first by the block-level WATF bound (the block head's WATF, since
// lists are sorted), and only block combinations that can still beat the
// current k-th are unpacked into tuple-level probes. Compared with
// Skyline-Sweeping this keeps the frontier small and batches bound checks.
func TopKBlockPipeline(s *Scorer, cns []*cn.CN, k, blockSize int) ([]Result, Stats) {
	var stats Stats
	if blockSize < 1 {
		blockSize = 8
	}
	type cnState struct {
		c      *cn.CN
		nodes  []int
		lists  [][]*relstore.Tuple
		watf   [][]float64
		blocks []int // number of blocks per dimension
	}
	states := make([]cnState, len(cns))

	frontier := &ubHeap{}
	seen := map[string]bool{}

	blockUB := func(st cnState, blk []int) float64 {
		ub := 0.0
		for i, b := range blk {
			head := b * blockSize
			if head >= len(st.watf[i]) {
				return -1
			}
			ub += st.watf[i][head]
		}
		return ub * s.SizeNorm(st.c.Size())
	}
	push := func(ci int, blk []int) {
		key := comboKey(ci, blk)
		if seen[key] {
			return
		}
		seen[key] = true
		ub := blockUB(states[ci], blk)
		if ub < 0 {
			return
		}
		heap.Push(frontier, ubEntry{cnIdx: ci, pos: blk, ub: ub})
	}

	for ci, c := range cns {
		nodes, lists, watf := s.lists(c)
		st := cnState{c: c, nodes: nodes, lists: lists, watf: watf}
		empty := len(nodes) == 0
		for _, l := range lists {
			if len(l) == 0 {
				empty = true
			}
		}
		states[ci] = st
		if empty {
			continue
		}
		push(ci, make([]int, len(nodes)))
	}

	var top []Result
	for frontier.Len() > 0 {
		if s.MaxCombinations > 0 && stats.Combinations >= s.MaxCombinations {
			break
		}
		e := heap.Pop(frontier).(ubEntry)
		if len(top) >= k && top[k-1].SparkScore >= e.ub {
			break
		}
		st := states[e.cnIdx]

		// Unpack the block combination into tuple combinations.
		var walk func(dim int, pos []int)
		pos := make([]int, len(e.pos))
		walk = func(dim int, pos []int) {
			if dim == len(e.pos) {
				stats.Combinations++
				// Tuple-level bound check before the expensive probe.
				if len(top) >= k && top[k-1].SparkScore >= s.comboUB(st.c, st.watf, pos) {
					return
				}
				top = append(top, s.probe(st.c, st.nodes, st.lists, pos, &stats)...)
				sortSpark(top)
				if len(top) > k {
					top = top[:k]
				}
				return
			}
			start := e.pos[dim] * blockSize
			end := start + blockSize
			if end > len(st.lists[dim]) {
				end = len(st.lists[dim])
			}
			for p := start; p < end; p++ {
				pos[dim] = p
				walk(dim+1, pos)
			}
		}
		walk(0, pos)

		// Successors: next block in each dimension.
		for i := range e.pos {
			next := append([]int(nil), e.pos...)
			next[i]++
			push(e.cnIdx, next)
		}
	}
	return top, stats
}
