// Package spark implements SPARK's top-k keyword query processing over
// candidate networks (Luo et al. SIGMOD'07, slide 117): the non-monotonic
// virtual-document score and the Skyline-Sweeping and Block-Pipeline
// algorithms that remain correct under it, against a naive full-evaluation
// baseline.
package spark

import (
	"container/heap"
	"math"
	"sort"

	"kwsearch/internal/fmath"

	"kwsearch/internal/cn"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
)

// ubHeap is a max-heap of frontier entries ordered by upper bound; both
// top-k strategies pop their best pending combination from it.
type ubEntry struct {
	cnIdx int
	pos   []int
	ub    float64
}

type ubHeap []ubEntry

func (h ubHeap) Len() int            { return len(h) }
func (h ubHeap) Less(i, j int) bool  { return h[i].ub > h[j].ub }
func (h ubHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *ubHeap) Push(x interface{}) { *h = append(*h, x.(ubEntry)) }
func (h *ubHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Scorer computes the SPARK score of joining trees. The score treats the
// result's tuples as one virtual document: per-term frequencies add up
// before the doubly-logarithmic damping, so the total is NOT the sum of
// per-tuple scores (the non-monotonicity of slide 117).
type Scorer struct {
	ev *cn.Evaluator
	ix *invindex.Index
	// SizePenalty s: results are scaled by 1/(1 + s·(size-1)).
	SizePenalty float64
	// MaxCombinations budgets the pipelined strategies: when a sweep has
	// considered this many combinations it stops and returns the current
	// top-k, which may then be approximate. Large multi-node CNs over
	// flat score distributions make the WATF bound loose, and the
	// combination space is the product of the keyword-set sizes; the
	// budget keeps worst-case queries interactive. 0 means unlimited.
	MaxCombinations int
}

// NewScorer wraps a CN evaluator with SPARK scoring.
func NewScorer(ev *cn.Evaluator, ix *invindex.Index) *Scorer {
	return &Scorer{ev: ev, ix: ix, SizePenalty: 0.2, MaxCombinations: 1 << 20}
}

// damp is SPARK's w(tf) = 1 + ln(1 + ln(tf)) for tf >= 1, else 0. It is
// concave and subadditive on tf >= 1, which makes WATF a sound upper bound.
func damp(tf int) float64 {
	if tf < 1 {
		return 0
	}
	return 1 + math.Log(1+math.Log(float64(tf)))
}

// ScoreA is the virtual-document IR score: Σ_t w(tf_t(D)) · idf_t where D
// concatenates all bound tuples.
func (s *Scorer) ScoreA(tuples []*relstore.Tuple) float64 {
	total := 0.0
	for _, term := range s.ev.Terms {
		tf := 0
		for _, tp := range tuples {
			tf += s.ix.TF(term, invindex.DocID(tp.ID))
		}
		total += damp(tf) * s.ix.IDF(term)
	}
	return total
}

// SizeNorm is the size-normalization factor score_c.
func (s *Scorer) SizeNorm(size int) float64 {
	return 1 / (1 + s.SizePenalty*float64(size-1))
}

// Score is the full result score: ScoreA · SizeNorm. (The completeness
// factor score_b of the paper is identically 1 under the evaluator's AND
// semantics and is omitted.)
func (s *Scorer) Score(r cn.Result) float64 {
	return s.ScoreA(r.Tuples) * s.SizeNorm(len(r.Tuples))
}

// WATF is the per-tuple upper-bound contribution w(tf_t(tuple))·idf_t
// summed over terms: by subadditivity of w, ScoreA(T) <= Σ WATF(tᵢ) over
// T's keyword tuples — the bound Skyline-Sweeping and Block-Pipeline order
// their lists by.
func (s *Scorer) WATF(tp *relstore.Tuple) float64 {
	total := 0.0
	for _, term := range s.ev.Terms {
		total += damp(s.ix.TF(term, invindex.DocID(tp.ID))) * s.ix.IDF(term)
	}
	return total
}

// Result pairs a joining tree with its SPARK score.
type Result struct {
	cn.Result
	SparkScore float64
}

// Stats counts the work a strategy performed, for E18.
type Stats struct {
	// Probes counts EvaluateCNBound calls (the expensive join checks).
	Probes int
	// Combinations counts candidate keyword-tuple combinations considered.
	Combinations int
}

func sortSpark(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if !fmath.Eq(rs[i].SparkScore, rs[j].SparkScore) {
			return rs[i].SparkScore > rs[j].SparkScore
		}
		return len(rs[i].Tuples) < len(rs[j].Tuples)
	})
}

// TopKNaive fully evaluates every CN and sorts by SPARK score.
func TopKNaive(s *Scorer, cns []*cn.CN, k int) ([]Result, Stats) {
	var stats Stats
	var all []Result
	for _, c := range cns {
		stats.Probes++
		for _, r := range s.ev.EvaluateCN(c) {
			stats.Combinations++
			all = append(all, Result{Result: r, SparkScore: s.Score(r)})
		}
	}
	sortSpark(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, stats
}

// lists returns, per keyword node of c, that node's R^Q sorted by
// descending WATF.
func (s *Scorer) lists(c *cn.CN) (nodes []int, lists [][]*relstore.Tuple, watf [][]float64) {
	nodes = c.KeywordNodes()
	lists = make([][]*relstore.Tuple, len(nodes))
	watf = make([][]float64, len(nodes))
	for i, n := range nodes {
		set := append([]*relstore.Tuple(nil), s.ev.KeywordSet(c.Nodes[n].Table)...)
		sort.SliceStable(set, func(a, b int) bool { return s.WATF(set[a]) > s.WATF(set[b]) })
		lists[i] = set
		watf[i] = make([]float64, len(set))
		for j, tp := range set {
			watf[i][j] = s.WATF(tp)
		}
	}
	return nodes, lists, watf
}

func (s *Scorer) comboUB(c *cn.CN, watf [][]float64, pos []int) float64 {
	ub := 0.0
	for i, p := range pos {
		if p >= len(watf[i]) {
			return -1
		}
		ub += watf[i][p]
	}
	return ub * s.SizeNorm(c.Size())
}

// probe evaluates the CN with all keyword nodes fixed to the combination's
// tuples, returning scored results.
func (s *Scorer) probe(c *cn.CN, nodes []int, lists [][]*relstore.Tuple, pos []int, stats *Stats) []Result {
	fixed := map[int]*relstore.Tuple{}
	seen := map[relstore.TupleID]bool{}
	for i, n := range nodes {
		tp := lists[i][pos[i]]
		if seen[tp.ID] {
			return nil // a tuple cannot be bound to two nodes
		}
		seen[tp.ID] = true
		fixed[n] = tp
	}
	stats.Probes++
	var out []Result
	for _, r := range s.ev.EvaluateCNBound(c, fixed) {
		out = append(out, Result{Result: r, SparkScore: s.Score(r)})
	}
	return out
}

// TopKSkyline is Skyline-Sweeping: explore combinations of keyword-node
// tuples in a best-first frontier ordered by the WATF upper bound; each
// popped combination is probed and its +1 successors enqueued. Stops when
// the k-th score dominates the best pending bound.
func TopKSkyline(s *Scorer, cns []*cn.CN, k int) ([]Result, Stats) {
	var stats Stats
	frontier := &ubHeap{}
	seen := map[string]bool{}

	type cnState struct {
		c     *cn.CN
		nodes []int
		lists [][]*relstore.Tuple
		watf  [][]float64
	}
	states := make([]cnState, len(cns))
	push := func(ci int, pos []int) {
		st := states[ci]
		key := comboKey(ci, pos)
		if seen[key] {
			return
		}
		seen[key] = true
		ub := s.comboUB(st.c, st.watf, pos)
		if ub < 0 {
			return
		}
		heap.Push(frontier, ubEntry{cnIdx: ci, pos: pos, ub: ub})
	}
	for ci, c := range cns {
		nodes, lists, watf := s.lists(c)
		states[ci] = cnState{c: c, nodes: nodes, lists: lists, watf: watf}
		empty := false
		for _, l := range lists {
			if len(l) == 0 {
				empty = true
			}
		}
		if len(nodes) == 0 || empty {
			continue
		}
		push(ci, make([]int, len(nodes)))
	}

	var top []Result
	for frontier.Len() > 0 {
		if s.MaxCombinations > 0 && stats.Combinations >= s.MaxCombinations {
			break
		}
		e := heap.Pop(frontier).(ubEntry)
		if len(top) >= k && top[k-1].SparkScore >= e.ub {
			break
		}
		st := states[e.cnIdx]
		stats.Combinations++
		top = append(top, s.probe(st.c, st.nodes, st.lists, e.pos, &stats)...)
		sortSpark(top)
		if len(top) > k {
			top = top[:k]
		}
		// Successors: advance each dimension by one.
		for i := range e.pos {
			next := append([]int(nil), e.pos...)
			next[i]++
			push(e.cnIdx, next)
		}
	}
	return top, stats
}

func comboKey(ci int, pos []int) string {
	key := make([]byte, 0, 4+4*len(pos))
	key = append(key, byte(ci), byte(ci>>8), ':')
	for _, p := range pos {
		key = append(key, byte(p), byte(p>>8), byte(p>>16), ',')
	}
	return string(key)
}
