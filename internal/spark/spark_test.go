package spark

import (
	"math"
	"testing"

	"kwsearch/internal/cn"
	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
)

func setup(t *testing.T, terms []string, seed int64) (*Scorer, []*cn.CN) {
	t.Helper()
	db := dataset.DBLP(dataset.DBLPConfig{
		Authors: 80, Papers: 200, Conferences: 6, AuthorsPerPaper: 2,
		CitesPerPaper: 1, TitleTermCount: 3, ExtraVocab: 40, Seed: seed,
	})
	ix := invindex.FromDB(db)
	ev := cn.NewEvaluator(db, ix, terms)
	g := schemagraph.FromDB(db)
	cns := cn.Enumerate(g, cn.EnumerateOptions{
		MaxSize:       4,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	})
	return NewScorer(ev, ix), cns
}

func TestDampProperties(t *testing.T) {
	if damp(0) != 0 {
		t.Errorf("damp(0) = %v", damp(0))
	}
	if damp(1) != 1 {
		t.Errorf("damp(1) = %v, want 1", damp(1))
	}
	prev := 0.0
	for tf := 1; tf < 100; tf++ {
		d := damp(tf)
		if d < prev {
			t.Fatalf("damp not monotone at %d", tf)
		}
		prev = d
	}
	// Subadditive on tf >= 1: damp(a+b) <= damp(a)+damp(b) — the property
	// that makes WATF a sound upper bound.
	for a := 1; a < 40; a++ {
		for b := 1; b < 40; b++ {
			if damp(a+b) > damp(a)+damp(b)+1e-12 {
				t.Fatalf("damp not subadditive at %d,%d", a, b)
			}
		}
	}
}

func TestScoreIsNonMonotonic(t *testing.T) {
	// Two tuples matching the same term: the virtual-document score is
	// less than the sum of their individual WATFs (slide 117's reason
	// monotone top-k machinery breaks for SPARK).
	s, _ := setup(t, []string{"keyword"}, 5)
	set := s.ev.KeywordSet("paper")
	if len(set) < 2 {
		t.Fatalf("need two matching papers, got %d", len(set))
	}
	a, b := set[0], set[1]
	joint := s.ScoreA([]*relstore.Tuple{a, b})
	sum := s.WATF(a) + s.WATF(b)
	if !(joint < sum) {
		t.Errorf("ScoreA(joint)=%v should be < WATF sum=%v", joint, sum)
	}
	if joint <= 0 {
		t.Errorf("joint score must be positive")
	}
}

func TestWATFBoundSound(t *testing.T) {
	// For every actual result, the SPARK score must not exceed the WATF
	// bound of its keyword tuples.
	s, cns := setup(t, []string{"keyword", "search"}, 7)
	for _, c := range cns {
		for _, r := range s.ev.EvaluateCN(c) {
			score := s.Score(r)
			bound := 0.0
			for i, n := range c.Nodes {
				if !n.Free {
					bound += s.WATF(r.Tuples[i])
				}
			}
			bound *= s.SizeNorm(c.Size())
			if score > bound+1e-9 {
				t.Fatalf("score %v exceeds bound %v for %s", score, bound, c)
			}
		}
	}
}

func scores(rs []Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.SparkScore
	}
	return out
}

func sameScores(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestStrategiesAgree(t *testing.T) {
	for _, seed := range []int64{3, 7, 11, 19} {
		s, cns := setup(t, []string{"keyword", "search"}, seed)
		const k = 5
		naive, _ := TopKNaive(s, cns, k)
		sky, _ := TopKSkyline(s, cns, k)
		blk, _ := TopKBlockPipeline(s, cns, k, 4)
		ns, ss, bs := scores(naive), scores(sky), scores(blk)
		if !sameScores(ns, ss) {
			t.Errorf("seed %d: skyline differs from naive:\n%v\n%v", seed, ns, ss)
		}
		if !sameScores(ns, bs) {
			t.Errorf("seed %d: block-pipeline differs from naive:\n%v\n%v", seed, ns, bs)
		}
		// Scores descend.
		for i := 1; i < len(ns); i++ {
			if ns[i] > ns[i-1] {
				t.Errorf("seed %d: scores not sorted: %v", seed, ns)
			}
		}
	}
}

func TestPipelinesTerminateEarly(t *testing.T) {
	// The E18 shape: when results are plentiful, the bound lets the
	// pipelines certify top-1 after probing a small fraction of the
	// keyword-tuple cross product.
	s, cns := setup(t, []string{"keyword", "search"}, 13)
	full := 0
	for _, c := range cns {
		p := 1
		for _, n := range c.KeywordNodes() {
			p *= len(s.ev.KeywordSet(c.Nodes[n].Table))
		}
		full += p
	}
	_, sStats := TopKSkyline(s, cns, 1)
	_, bStats := TopKBlockPipeline(s, cns, 1, 4)
	if sStats.Probes*4 >= full {
		t.Errorf("skyline probed %d of %d combinations — no early termination", sStats.Probes, full)
	}
	if bStats.Probes*4 >= full {
		t.Errorf("block-pipeline probed %d of %d combinations — no early termination", bStats.Probes, full)
	}
}

func TestEmptyQueryAndNoMatches(t *testing.T) {
	s, cns := setup(t, []string{"zzzznomatch"}, 5)
	if got, _ := TopKSkyline(s, cns, 3); len(got) != 0 {
		t.Errorf("no-match query returned %v", got)
	}
	if got, _ := TopKBlockPipeline(s, cns, 3, 4); len(got) != 0 {
		t.Errorf("no-match query returned %v", got)
	}
}
