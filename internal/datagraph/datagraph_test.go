package datagraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kwsearch/internal/relstore"
)

// diamond builds:
//
//	0 --1-- 1 --1-- 3
//	 \             /
//	  --5-- 2 --1--
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	return g
}

func TestDijkstraShortestPaths(t *testing.T) {
	g := diamond()
	dist := g.Dijkstra(0, Inf)
	want := map[NodeID]float64{0: 0, 1: 1, 2: 3, 3: 2}
	for n, w := range want {
		if dist[n] != w {
			t.Errorf("dist[%d] = %v, want %v", n, dist[n], w)
		}
	}
}

func TestDijkstraMaxDist(t *testing.T) {
	g := diamond()
	dist := g.Dijkstra(0, 1.5)
	if _, ok := dist[3]; ok {
		t.Errorf("node 3 at distance 2 should be cut off at maxDist 1.5")
	}
	if dist[1] != 1 {
		t.Errorf("dist[1] = %v, want 1", dist[1])
	}
}

func TestDijkstraWithParentsPath(t *testing.T) {
	g := diamond()
	_, parent := g.DijkstraWithParents(0, Inf)
	path := PathTo(parent, 0, 3)
	want := []NodeID{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := PathTo(parent, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Errorf("trivial path = %v", p)
	}
}

func TestPathToUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	_, parent := g.DijkstraWithParents(0, Inf)
	if p := PathTo(parent, 0, 2); p != nil {
		t.Errorf("unreachable path = %v, want nil", p)
	}
}

func TestBFSHops(t *testing.T) {
	g := diamond()
	hops := g.BFSHops(0, 10)
	if hops[3] != 2 {
		t.Errorf("hops[3] = %d, want 2 (BFS ignores weights)", hops[3])
	}
	limited := g.BFSHops(0, 1)
	if _, ok := limited[3]; ok {
		t.Errorf("node 3 should be beyond 1 hop")
	}
}

func TestConnectedComponent(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comp := g.ConnectedComponent(0)
	if len(comp) != 3 {
		t.Errorf("component of 0 has %d nodes, want 3", len(comp))
	}
	comp = g.ConnectedComponent(3)
	if len(comp) != 2 {
		t.Errorf("component of 3 has %d nodes, want 2", len(comp))
	}
}

func TestSelfLoopStoredOnce(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0, 1)
	if g.Degree(0) != 1 {
		t.Errorf("self-loop degree = %d, want 1", g.Degree(0))
	}
}

func TestFromDB(t *testing.T) {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name:    "a",
		Columns: []relstore.Column{{Name: "id", Type: relstore.KindInt}},
		Key:     "id",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "b",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.KindInt},
			{Name: "aid", Type: relstore.KindInt},
		},
		Key: "id",
		ForeignKeys: []relstore.ForeignKey{
			{Column: "aid", RefTable: "a", RefColumn: "id"},
		},
	})
	a1 := db.MustInsert("a", map[string]relstore.Value{"id": relstore.Int(1)})
	b1 := db.MustInsert("b", map[string]relstore.Value{"id": relstore.Int(10), "aid": relstore.Int(1)})
	b2 := db.MustInsert("b", map[string]relstore.Value{"id": relstore.Int(11), "aid": relstore.Int(1)})

	g := FromDB(db, nil)
	if g.Len() != 3 {
		t.Fatalf("graph has %d nodes, want 3", g.Len())
	}
	if g.Degree(NodeID(a1.ID)) != 2 {
		t.Errorf("a1 degree = %d, want 2", g.Degree(NodeID(a1.ID)))
	}
	dist := g.Dijkstra(NodeID(b1.ID), Inf)
	if dist[NodeID(b2.ID)] != 2 {
		t.Errorf("b1->b2 dist = %v, want 2 (via a1)", dist[NodeID(b2.ID)])
	}

	// Custom weights are honored.
	g2 := FromDB(db, func(from, to *relstore.Tuple) float64 { return 0.5 })
	dist2 := g2.Dijkstra(NodeID(b1.ID), Inf)
	if dist2[NodeID(a1.ID)] != 0.5 {
		t.Errorf("weighted dist = %v, want 0.5", dist2[NodeID(a1.ID)])
	}
}

// TestDijkstraMatchesBFSOnUnitWeights is a property test: on unit-weight
// random graphs, Dijkstra distance equals BFS hop count.
func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			g.AddEdge(a, b, 1)
		}
		src := NodeID(rng.Intn(n))
		d := g.Dijkstra(src, Inf)
		h := g.BFSHops(src, n+1)
		if len(d) != len(h) {
			return false
		}
		for node, hops := range h {
			if d[node] != float64(hops) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDijkstraTriangleInequality: for random weighted graphs,
// d(s,v) <= d(s,u) + w(u,v) for every edge (u,v).
func TestDijkstraTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := New(n)
		type edge struct {
			a, b NodeID
			w    float64
		}
		var edges []edge
		for i := 0; i < 3*n; i++ {
			a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			w := 0.1 + rng.Float64()*5
			g.AddEdge(a, b, w)
			edges = append(edges, edge{a, b, w})
		}
		d := g.Dijkstra(0, Inf)
		const eps = 1e-9
		for _, e := range edges {
			da, oka := d[e.a]
			db, okb := d[e.b]
			if oka && okb {
				if db > da+e.w+eps || da > db+e.w+eps {
					return false
				}
			}
			if oka != okb {
				return false // one endpoint reached implies the other is too
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
