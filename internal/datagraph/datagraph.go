// Package datagraph models a database instance as a weighted undirected
// graph: one node per tuple, one edge per foreign-key reference between
// tuples. BANKS, BLINKS and the Steiner-tree search all operate on this
// graph; it is the "data graph" of the tutorial's Option 3 (search candidate
// structures on the data graph).
package datagraph

import (
	"container/heap"
	"math"

	"kwsearch/internal/relstore"
)

// NodeID identifies a graph node. When the graph is built from a relstore
// database, NodeID equals the tuple's global relstore.TupleID.
type NodeID int32

// Edge is one weighted, undirected adjacency entry.
type Edge struct {
	To     NodeID
	Weight float64
}

// Graph is a weighted undirected multigraph with dense node IDs [0, N).
type Graph struct {
	adj [][]Edge
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// FromDB builds the data graph of a database: nodes are tuples (IDs shared
// with the store) and each foreign-key reference contributes one undirected
// edge. Edge weights default to 1; weightFn, if non-nil, may override the
// weight per (referencing, referenced) tuple pair — e.g. BANKS' log(1+deg)
// weighting.
func FromDB(db *relstore.DB, weightFn func(from, to *relstore.Tuple) float64) *Graph {
	g := New(db.NumTuples())
	for _, name := range db.TableNames() {
		t := db.Table(name)
		for _, fk := range t.Schema.ForeignKeys {
			for _, tp := range t.Tuples() {
				for _, ref := range db.ForeignMatches(tp, fk) {
					w := 1.0
					if weightFn != nil {
						w = weightFn(tp, ref)
					}
					g.AddEdge(NodeID(tp.ID), NodeID(ref.ID), w)
				}
			}
		}
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge inserts an undirected edge of the given weight. Self-loops are
// stored once.
func (g *Graph) AddEdge(a, b NodeID, w float64) {
	g.adj[a] = append(g.adj[a], Edge{To: b, Weight: w})
	if a != b {
		g.adj[b] = append(g.adj[b], Edge{To: a, Weight: w})
	}
}

// Neighbors returns the adjacency list of n. The slice is shared; callers
// must not mutate it.
func (g *Graph) Neighbors(n NodeID) []Edge { return g.adj[n] }

// Degree returns the number of incident edges of n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest-path distances from src, stopping
// at maxDist (use Inf for no bound). The result maps only reached nodes.
func (g *Graph) Dijkstra(src NodeID, maxDist float64) map[NodeID]float64 {
	dist := map[NodeID]float64{src: 0}
	h := &pq{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.Weight
			if nd > maxDist {
				continue
			}
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				heap.Push(h, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

// DijkstraWithParents is Dijkstra that also records a shortest-path tree,
// mapping each reached node (except src) to its predecessor.
func (g *Graph) DijkstraWithParents(src NodeID, maxDist float64) (map[NodeID]float64, map[NodeID]NodeID) {
	dist := map[NodeID]float64{src: 0}
	parent := map[NodeID]NodeID{}
	h := &pq{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.Weight
			if nd > maxDist {
				continue
			}
			if cur, ok := dist[e.To]; !ok || nd < cur {
				dist[e.To] = nd
				parent[e.To] = it.node
				heap.Push(h, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist, parent
}

// BFSHops computes hop distances (unit weights) from src up to maxHops.
func (g *Graph) BFSHops(src NodeID, maxHops int) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	frontier := []NodeID{src}
	for hops := 0; hops < maxHops && len(frontier) > 0; hops++ {
		var next []NodeID
		for _, n := range frontier {
			for _, e := range g.adj[n] {
				if _, seen := dist[e.To]; !seen {
					dist[e.To] = hops + 1
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return dist
}

// PathTo reconstructs the node path src..dst from a parent map produced by
// DijkstraWithParents with source src. It returns nil if dst is unreachable.
func PathTo(parent map[NodeID]NodeID, src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	if _, ok := parent[dst]; !ok {
		return nil
	}
	var rev []NodeID
	for cur := dst; ; {
		rev = append(rev, cur)
		if cur == src {
			break
		}
		p, ok := parent[cur]
		if !ok {
			return nil
		}
		cur = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ConnectedComponent returns all nodes reachable from src.
func (g *Graph) ConnectedComponent(src NodeID) []NodeID {
	seen := map[NodeID]bool{src: true}
	stack := []NodeID{src}
	var out []NodeID
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		for _, e := range g.adj[n] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return out
}
