package cn

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
)

// corpusVocab is small on purpose: terms collide across tables and
// tuples, exercising multi-term tuples, multi-table terms and the
// ID-sort/dedup path of the merge.
var corpusVocab = []string{
	"query", "keyword", "search", "database", "join", "index",
	"graph", "rank", "tuple", "stream", "cache", "widom",
}

// randomCorpusDB builds a random bibliography-shaped database: nEnt
// entity tables (id key + text column) chained by link tables, with
// random text drawn from corpusVocab. It returns the DB and the link
// (free) table names.
func randomCorpusDB(rng *rand.Rand, nEnt int) (*relstore.DB, []string) {
	db := relstore.NewDB()
	for i := 0; i < nEnt; i++ {
		db.MustCreateTable(&relstore.TableSchema{
			Name: fmt.Sprintf("ent%d", i),
			Columns: []relstore.Column{
				{Name: "id", Type: relstore.KindInt},
				{Name: "txt", Type: relstore.KindString, Text: true},
			},
			Key: "id",
		})
	}
	var free []string
	for i := 1; i < nEnt; i++ {
		name := fmt.Sprintf("link%d", i)
		free = append(free, name)
		db.MustCreateTable(&relstore.TableSchema{
			Name: name,
			Columns: []relstore.Column{
				{Name: "a", Type: relstore.KindInt},
				{Name: "b", Type: relstore.KindInt},
			},
			ForeignKeys: []relstore.ForeignKey{
				{Column: "a", RefTable: fmt.Sprintf("ent%d", i-1), RefColumn: "id"},
				{Column: "b", RefTable: fmt.Sprintf("ent%d", i), RefColumn: "id"},
			},
		})
	}
	rows := make([]int, nEnt)
	for i := 0; i < nEnt; i++ {
		rows[i] = 5 + rng.Intn(25)
		for r := 0; r < rows[i]; r++ {
			words := make([]string, 1+rng.Intn(3))
			for w := range words {
				words[w] = corpusVocab[rng.Intn(len(corpusVocab))]
			}
			db.MustInsert(fmt.Sprintf("ent%d", i), map[string]relstore.Value{
				"id":  relstore.Int(int64(r)),
				"txt": relstore.String(strings.Join(words, " ")),
			})
		}
	}
	for i := 1; i < nEnt; i++ {
		for r := 0; r < 10+rng.Intn(30); r++ {
			db.MustInsert(fmt.Sprintf("link%d", i), map[string]relstore.Value{
				"a": relstore.Int(int64(rng.Intn(rows[i-1]))),
				"b": relstore.Int(int64(rng.Intn(rows[i]))),
			})
		}
	}
	return db, free
}

// assertBindingsEqual compares two BindSources bit-for-bit over every
// observable: table membership, set contents and order, masks, scores
// and max-scores.
func assertBindingsEqual(t *testing.T, db *relstore.DB, want, got BindSource, label string) {
	t.Helper()
	w, g := want.KeywordTables(), got.KeywordTables()
	if fmt.Sprint(w) != fmt.Sprint(g) {
		t.Fatalf("%s: keyword tables %v != %v", label, g, w)
	}
	ids := func(set []*relstore.Tuple) string {
		var b strings.Builder
		for _, tp := range set {
			b.WriteString(strconv.Itoa(int(tp.ID)))
			b.WriteByte(' ')
		}
		return b.String()
	}
	for _, name := range db.TableNames() {
		if w, g := ids(want.KeywordSet(name)), ids(got.KeywordSet(name)); w != g {
			t.Fatalf("%s: R^Q(%s) = [%s], want [%s]", label, name, g, w)
		}
		if w, g := ids(want.FreeSet(name)), ids(got.FreeSet(name)); w != g {
			t.Fatalf("%s: R^{}(%s) = [%s], want [%s]", label, name, g, w)
		}
		wm, gm := want.MaxNodeScore(name), got.MaxNodeScore(name)
		if math.Float64bits(wm) != math.Float64bits(gm) {
			t.Fatalf("%s: max score (%s) = %v, want %v", label, name, gm, wm)
		}
		for _, tp := range db.Table(name).Tuples() {
			if want.TermMask(tp.ID) != got.TermMask(tp.ID) {
				t.Fatalf("%s: mask(%d) = %b, want %b", label, tp.ID, got.TermMask(tp.ID), want.TermMask(tp.ID))
			}
			ws, gs := want.TupleScore(tp), got.TupleScore(tp)
			if math.Float64bits(ws) != math.Float64bits(gs) {
				t.Fatalf("%s: score(%d) = %v, want %v", label, tp.ID, gs, ws)
			}
		}
	}
}

// renderBinderResults serializes results bit-exactly (canonical CN,
// tuple IDs, raw score bits): two lists render equal iff they are
// byte-identical answers.
func renderBinderResults(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.CN.Canonical())
		for _, tp := range r.Tuples {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(int(tp.ID)))
		}
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(math.Float64bits(r.Score), 16))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestBindingMatchesScanRandomCorpus is the acceptance check for the
// index-driven binder: over a randomized corpus of schemas, data and
// queries, the cold one-shot binding, the cold shared-binder binding and
// the warm (fully cached) shared-binder binding must all be bit-equal to
// the full-scan reference — and so must the complete top-k answers
// evaluated through them.
func TestBindingMatchesScanRandomCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		db, freeTables := randomCorpusDB(rng, 2+rng.Intn(3))
		ix := invindex.FromDB(db)
		binder := NewBinder(db, ix, BinderOptions{})
		for q := 0; q < 4; q++ {
			terms := make([]string, 1+rng.Intn(3))
			for i := range terms {
				terms[i] = corpusVocab[rng.Intn(len(corpusVocab))]
			}
			label := fmt.Sprintf("trial %d %v", trial, terms)
			scan := NewScanBinding(db, ix, terms)
			oneShot := bindTerms(db, ix, normalizeTerms(terms), nil, nil)
			cold := binder.Bind(terms)
			warm := binder.Bind(terms)
			if warm.TermsCached() != len(terms) || warm.TermsBuilt() != 0 {
				t.Fatalf("%s: warm bind built %d terms (cached %d), want all %d cached",
					label, warm.TermsBuilt(), warm.TermsCached(), len(terms))
			}
			assertBindingsEqual(t, db, scan, oneShot, label+" one-shot")
			assertBindingsEqual(t, db, scan, cold, label+" cold-binder")
			assertBindingsEqual(t, db, scan, warm, label+" warm-binder")

			sg := schemagraph.FromDB(db)
			cns := Enumerate(sg, EnumerateOptions{
				MaxSize:       4,
				KeywordTables: scan.KeywordTables(),
				FreeTables:    freeTables,
			})
			wantRs := renderBinderResults(TopKNaive(NewScanEvaluator(db, ix, terms), cns, 10))
			gotRs := renderBinderResults(TopKNaive(NewEvaluatorFrom(db, ix, warm), cns, 10))
			if wantRs != gotRs {
				t.Fatalf("%s: top-k differs\ngot:\n%swant:\n%s", label, gotRs, wantRs)
			}
		}
	}
}

// TestBinderGenChurnRace hammers one binder from concurrent queries
// while another goroutine keeps bumping the cache generation (the churn
// a live write path would produce). Every query's answer must equal the
// scan baseline — a stale R^Q slice or a torn lookup map would either
// diverge or trip the race detector (internal/cn is in verify.sh's
// -race gate).
func TestBinderGenChurnRace(t *testing.T) {
	db := dataset.WidomBib()
	ix := invindex.FromDB(db)
	binder := NewBinder(db, ix, BinderOptions{TermCacheSize: 8})
	terms := []string{"Widom", "XML"}
	sg := schemagraph.FromDB(db)
	scan := NewScanBinding(db, ix, terms)
	cns := Enumerate(sg, EnumerateOptions{
		MaxSize:       5,
		KeywordTables: scan.KeywordTables(),
		FreeTables:    []string{"write"},
	})
	want := renderBinderResults(TopKNaive(NewScanEvaluator(db, ix, terms), cns, 10))

	const workers, iters = 4, 50
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				binder.Invalidate()
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ev := NewEvaluatorFrom(db, ix, binder.Bind(terms))
				if got := renderBinderResults(TopKNaive(ev, cns, 10)); got != want {
					select {
					case errs <- got:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	select {
	case got := <-errs:
		t.Fatalf("answer diverged under generation churn:\ngot:\n%swant:\n%s", got, want)
	default:
	}
}

// TestBinderInvalidateSeesNewData pins the generation contract: a bound
// query is a snapshot (later index growth does not leak into it), the
// binder keeps serving cached bindings until Invalidate, and the first
// Bind after Invalidate sees the new data.
func TestBinderInvalidateSeesNewData(t *testing.T) {
	db, _ := randomCorpusDB(rand.New(rand.NewSource(3)), 2)
	ix := invindex.FromDB(db)
	binder := NewBinder(db, ix, BinderOptions{})

	before := binder.Bind([]string{"widom"})
	n := len(before.KeywordSet("ent0"))

	tp := db.MustInsert("ent0", map[string]relstore.Value{
		"id":  relstore.Int(9999),
		"txt": relstore.String("widom widom"),
	})
	ix.Add(invindex.DocID(tp.ID), "widom widom")

	stale := binder.Bind([]string{"widom"})
	if got := len(stale.KeywordSet("ent0")); got != n {
		t.Fatalf("pre-invalidate bind saw %d matches, want cached %d", got, n)
	}

	gen := binder.Gen()
	binder.Invalidate()
	if binder.Gen() != gen+1 {
		t.Fatalf("Gen = %d after Invalidate, want %d", binder.Gen(), gen+1)
	}
	fresh := binder.Bind([]string{"widom"})
	if got := len(fresh.KeywordSet("ent0")); got != n+1 {
		t.Fatalf("post-invalidate bind saw %d matches, want %d", got, n+1)
	}
	found := false
	for _, k := range fresh.KeywordSet("ent0") {
		if k.ID == tp.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("post-invalidate bind is missing the new tuple")
	}
	// The pre-growth binding stays a consistent snapshot.
	if got := len(before.KeywordSet("ent0")); got != n {
		t.Fatalf("snapshot mutated: %d matches, want %d", got, n)
	}
	// Equivalence holds again against a fresh scan of the grown data.
	assertBindingsEqual(t, db, NewScanBinding(db, ix, []string{"widom"}), fresh, "post-growth")
}

// TestTupleScoreZeroFastPath pins the satellite bugfix: the pre-binder
// evaluator recomputed (and never cached) scores for free tuples on
// every call; the binding returns an exact 0.0 without touching the
// index, which is provably the same value — a tuple matching no query
// term has TF 0 for each, so its Σ TFIDF is exactly 0.
func TestTupleScoreZeroFastPath(t *testing.T) {
	db := dataset.WidomBib()
	ix := invindex.FromDB(db)
	terms := []string{"Widom", "XML"}
	b := NewBinder(db, ix, BinderOptions{}).Bind(terms)
	checked := 0
	for _, name := range db.TableNames() {
		for _, tp := range db.Table(name).Tuples() {
			want := ix.Score(b.Terms(), invindex.DocID(tp.ID))
			got := b.TupleScore(tp)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("score(%s#%d) = %v, want %v", name, tp.ID, got, want)
			}
			if b.TermMask(tp.ID) == 0 {
				if got != 0 {
					t.Fatalf("free tuple %s#%d scored %v, want exact 0", name, tp.ID, got)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("corpus has no free tuples; the fast path went unexercised")
	}
}
