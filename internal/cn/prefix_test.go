package cn

import (
	"fmt"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/schemagraph"
)

func prefixSetup(t *testing.T) (*Evaluator, []*CN) {
	t.Helper()
	db := dataset.DBLP(dataset.DefaultDBLPConfig())
	ix := invindex.FromDB(db)
	ev := NewEvaluator(db, ix, []string{"keyword", "search"})
	cns := Enumerate(schemagraph.FromDB(db), EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	})
	if len(cns) == 0 {
		t.Fatal("no CNs")
	}
	return ev, cns
}

// resultSig renders a result into a canonical comparison string.
func resultSig(r Result) string {
	return fmt.Sprintf("%s|%s|%.12f", r.CN.Canonical(), resultKey(r), r.Score)
}

func sigSet(rs []Result) map[string]int {
	m := map[string]int{}
	for _, r := range rs {
		m[resultSig(r)]++
	}
	return m
}

// TestEvaluatePrefixMatchesEvaluateCN asserts the level-order prefix
// materialization path produces exactly EvaluateCN's result multiset for
// every enumerated CN, both in one shot and when resumed from every
// intermediate prefix depth.
func TestEvaluatePrefixMatchesEvaluateCN(t *testing.T) {
	ev, cns := prefixSetup(t)
	for ci, c := range cns {
		want := sigSet(ev.EvaluateCN(c))

		// One shot: materialize the full binding set, then finish.
		full := ev.EvaluatePrefix(c, nil, len(c.Nodes))
		got := sigSet(ev.BindingResults(c, full))
		if len(got) != len(want) {
			t.Fatalf("CN %d (%s): prefix path %d distinct results, want %d", ci, c, len(got), len(want))
		}
		for sig, n := range want {
			if got[sig] != n {
				t.Fatalf("CN %d (%s): result %q count %d, want %d", ci, c, sig, got[sig], n)
			}
		}

		// Resumed: stop at every intermediate depth and continue from it,
		// as the executor's per-worker prefix cache does.
		for depth := 1; depth < len(c.Nodes); depth++ {
			mid := ev.EvaluatePrefix(c, nil, depth)
			rest := ev.EvaluatePrefix(c, mid, len(c.Nodes))
			got := sigSet(ev.BindingResults(c, rest))
			for sig, n := range want {
				if got[sig] != n {
					t.Fatalf("CN %d resumed at depth %d: result %q count %d, want %d", ci, depth, sig, got[sig], n)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("CN %d resumed at depth %d: %d results, want %d", ci, depth, len(got), len(want))
			}
		}
	}
}

// TestPrefixKeyOrderSensitive pins the property the executor's binding
// cache relies on: PrefixKey distinguishes mirrored growth orders that
// Canonical (correctly) identifies.
func TestPrefixKeyOrderSensitive(t *testing.T) {
	_, cns := prefixSetup(t)
	// Find two distinct CNs whose full canonicals differ but whose
	// size-1 prefixes start from different tables; their PrefixKeys must
	// differ even when prefix canonicals collide across mirror orders.
	keys := map[string]string{} // PrefixKey -> canonical of first prefix holder
	for _, c := range cns {
		for n := 1; n <= len(c.Nodes); n++ {
			pk := c.PrefixKey(n)
			if pk == "" {
				t.Fatalf("empty PrefixKey for %s at %d", c, n)
			}
			sub := &CN{Nodes: append([]NodeSpec(nil), c.Nodes[:n]...)}
			for _, e := range c.Edges {
				if e.A < n && e.B < n {
					sub.Edges = append(sub.Edges, e)
				}
			}
			canon := sub.Canonical()
			if prev, ok := keys[pk]; ok && prev != canon {
				t.Fatalf("PrefixKey %q maps to two canonicals: %q vs %q", pk, prev, canon)
			}
			keys[pk] = canon
		}
	}
	// Degenerate arguments.
	c := cns[0]
	if c.PrefixKey(0) != "" || c.PrefixKey(len(c.Nodes)+1) != "" {
		t.Fatal("out-of-range PrefixKey should be empty")
	}
}
