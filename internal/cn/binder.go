package cn

import (
	"sync"

	"kwsearch/internal/cache"
	"kwsearch/internal/invindex"
	"kwsearch/internal/obs"
	"kwsearch/internal/relstore"
)

// BinderOptions configures a Binder.
type BinderOptions struct {
	// TermCacheSize bounds the per-term binding cache (entries; 0 = 1024).
	TermCacheSize int
	// CacheShards stripes the term cache (0 = 16).
	CacheShards int
	// Metrics, when non-nil, receives the binder's counters: the term
	// cache under "cache.bind.*" and the build counter as "bind.builds".
	Metrics *obs.Registry
}

func (o BinderOptions) withDefaults() BinderOptions {
	if o.TermCacheSize <= 0 {
		o.TermCacheSize = 1024
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	return o
}

// Binder is the shared, generation-aware keyword-binding layer: it turns
// query terms into Bindings (the per-query R^Q sets, scores and join
// state an Evaluator consumes) while caching the expensive parts across
// queries —
//
//   - per-(term, generation) bindings: each term's matching tuples and
//     TF·IDF weights, derived from its posting list in O(postings) and
//     reused by every later query containing the term (the
//     Hristidis-et-al. VLDB'03 move: R^Q comes from the inverted index,
//     never from scanning relations);
//   - per-(query terms, generation) merged products: the R^Q sets, term
//     masks, scores and max-scores of a whole query, so a repeated
//     query skips even the merge and ID sort;
//   - join-column lookup maps, built once per engine instead of once
//     per query and handed to bindings by reference.
//
// Invalidate bumps the term cache's generation and drops the lookup
// maps, so after index or data growth the next Bind sees fresh state
// while in-flight Bindings keep their consistent snapshot. A Binder is
// safe for concurrent use; the Bindings it returns follow the
// BindSource sealing contract.
type Binder struct {
	db     *relstore.DB
	ix     *invindex.Index
	terms  *cache.Cache[termBinding]
	merged *cache.Cache[*mergedBinding]
	builds *obs.Counter

	mu      sync.RWMutex
	lookups map[lookupKey]map[relstore.Value][]*relstore.Tuple
}

// NewBinder builds a binder over one database + index pair. When
// opts.Metrics is set the binder instruments itself (see
// BinderOptions.Metrics); do not call Instrument again.
func NewBinder(db *relstore.DB, ix *invindex.Index, opts BinderOptions) *Binder {
	opts = opts.withDefaults()
	b := &Binder{
		db:      db,
		ix:      ix,
		terms:   cache.New[termBinding](opts.TermCacheSize, opts.CacheShards),
		merged:  cache.New[*mergedBinding](opts.TermCacheSize, opts.CacheShards),
		builds:  &obs.Counter{},
		lookups: make(map[lookupKey]map[relstore.Value][]*relstore.Tuple),
	}
	if opts.Metrics != nil {
		b.Instrument(opts.Metrics)
	}
	return b
}

// Instrument surfaces the binder's counters in reg: the term cache as
// "cache.bind.*", the merged whole-query cache as "cache.bindq.*" and
// the term-binding build counter as "bind.builds". Call once, before
// concurrent use (NewBinder does, when BinderOptions.Metrics is set).
func (bd *Binder) Instrument(reg *obs.Registry) {
	bd.terms.Instrument(reg, "cache.bind")
	bd.merged.Instrument(reg, "cache.bindq")
	bd.builds = reg.Attach("bind.builds", bd.builds)
}

// Bind builds the binding for a query's terms (normalized internally),
// serving per-term work from the cache where current.
func (bd *Binder) Bind(terms []string) *Binding {
	return bd.BindTraced(terms, nil)
}

// BindTraced is Bind with the work recorded as child spans of sp (the
// caller's "bind" span): "postings" covers the per-term cache probes and
// posting-list walks (attrs terms/cached_terms/built_terms), and
// "materialize" the merge into per-table R^Q sets and max-scores (attrs
// matched_tuples/keyword_tables). A nil sp costs nothing.
func (bd *Binder) BindTraced(terms []string, sp *obs.Span) *Binding {
	return bindTerms(bd.db, bd.ix, normalizeTerms(terms), bd, sp)
}

// lookup returns the shared join map for table.column, building it on
// first use. Concurrent first uses may build twice; the first writer
// wins so every caller observes one canonical map.
func (bd *Binder) lookup(table, column string) map[relstore.Value][]*relstore.Tuple {
	key := lookupKey{table, column}
	bd.mu.RLock()
	m, ok := bd.lookups[key]
	bd.mu.RUnlock()
	if ok {
		return m
	}
	built := buildLookup(bd.db, table, column)
	bd.mu.Lock()
	if m, ok := bd.lookups[key]; ok {
		bd.mu.Unlock()
		return m
	}
	bd.lookups[key] = built
	bd.mu.Unlock()
	return built
}

// Invalidate flushes the binder after index or data growth: the term
// cache's generation is bumped (O(1); stale entries drop lazily) and the
// join lookup maps are rebuilt on next use. In-flight Bindings are
// unaffected — they hold their own references and stay internally
// consistent.
func (bd *Binder) Invalidate() {
	bd.terms.Invalidate()
	bd.merged.Invalidate()
	bd.mu.Lock()
	bd.lookups = make(map[lookupKey]map[relstore.Value][]*relstore.Tuple)
	bd.mu.Unlock()
}

// Stats returns the term cache's counters.
func (bd *Binder) Stats() cache.Stats { return bd.terms.Stats() }

// MergedStats returns the whole-query merged-binding cache's counters.
func (bd *Binder) MergedStats() cache.Stats { return bd.merged.Stats() }

// Builds returns the lifetime count of term bindings built (cache
// misses that did the posting-list walk).
func (bd *Binder) Builds() uint64 { return bd.builds.Value() }

// Gen returns the term cache's current generation (see cache.Gen).
func (bd *Binder) Gen() uint64 { return bd.terms.Gen() }
