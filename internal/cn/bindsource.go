package cn

import (
	"context"

	"kwsearch/internal/relstore"
)

// BindSource is the binding layer an Evaluator consumes: everything the
// candidate-network machinery needs to know about how one query's
// keywords map onto the database. It decouples CN evaluation from how
// that mapping is produced — per-query full table scans (NewScanBinding,
// the reference implementation), a one-shot index-driven binding
// (NewEvaluator), or the shared generation-aware Binder that caches
// per-term bindings across queries.
//
// A BindSource is a snapshot: its keyword sets, scores and masks are
// fixed at construction and never change, even if the underlying index
// is invalidated afterwards — in-flight queries keep a consistent view.
// The lazy accessors (FreeSet, Lookup) may memoize on first use; Prewarm
// materializes everything the given CNs can touch and then seals the
// source, after which it is read-only and safe for concurrent use. This
// is the type-level form of the old "read-only after Prewarm"
// convention: post-seal accesses of unmaterialized state compute fresh
// values without writing, so a sealed source can never race.
type BindSource interface {
	// Terms returns the normalized query terms, in query order. The
	// slice is shared; callers must not mutate it.
	Terms() []string
	// KeywordTables returns the tables with a non-empty R^Q, sorted —
	// the input Enumerate (and the plan cache's membership signature)
	// needs.
	KeywordTables() []string
	// KeywordSet returns R^Q for a table: the tuples matching at least
	// one query term, in ascending tuple-ID order (which equals the
	// table's insertion order — relstore IDs are assigned monotonically).
	KeywordSet(table string) []*relstore.Tuple
	// FreeSet returns R^{} for a table: the tuples matching no query
	// term, in insertion order. May materialize lazily on first use.
	FreeSet(table string) []*relstore.Tuple
	// MaxNodeScore returns the best tuple score available in table's
	// R^Q (0 when the table has no matches) — the ingredient of the
	// pipelined strategies' score bounds.
	MaxNodeScore(table string) float64
	// TupleScore returns the IR score of one tuple for the query:
	// Σ TFIDF over the query terms, exactly 0 for tuples outside every
	// R^Q (a tuple matching no term has TF 0 for each of them).
	TupleScore(tp *relstore.Tuple) float64
	// TermMask returns the bitmask of query terms tuple id contains
	// (bit i set ⇔ the tuple matches Terms()[i]); 0 for free tuples.
	TermMask(id relstore.TupleID) uint32
	// Lookup returns the join map value→tuples for a table column. May
	// materialize lazily on first use; the map and its slices are
	// shared and must not be mutated.
	Lookup(table, column string) map[relstore.Value][]*relstore.Tuple
	// Prewarm materializes every free set and join lookup the given CNs
	// can touch, then seals the source: afterwards it is read-only and
	// safe for concurrent evaluation. Cancellation returns ctx's error
	// with the source unsealed; the state built so far stays valid and
	// the next call resumes where this one stopped.
	Prewarm(ctx context.Context, cns []*CN) error
}
