package cn

import (
	"context"
	"sort"

	"kwsearch/internal/resilience"
	"kwsearch/internal/schemagraph"
)

// EnumerateOptions controls candidate-network generation.
type EnumerateOptions struct {
	// MaxSize bounds the number of tuple sets per CN (Tmax).
	MaxSize int
	// MaxCNs caps how many CNs are produced (0 = unlimited); enumeration
	// is breadth-first so the smallest CNs always survive the cap.
	MaxCNs int
	// KeywordTables lists the relations with a non-empty keyword tuple set
	// R^Q for the current query; only these may appear as keyword nodes.
	KeywordTables []string
	// FreeTables lists the relations allowed to appear as free tuple sets
	// R^{}. The tutorial's slide-28 count treats only text-free link
	// relations (write) as fillers; pass all tables for the general
	// DISCOVER behaviour.
	FreeTables []string
}

// Enumerate generates all valid candidate networks up to MaxSize,
// duplicate-free, in nondecreasing size order (breadth-first on the schema
// graph, the strategy of Hristidis et al. VLDB'02).
//
// A CN is valid iff every leaf is a keyword node (free leaves would add
// tuples that contribute neither keywords nor connectivity), and no node
// uses the same single-valued foreign key twice (such a CN can only bind
// both neighbours to the same tuple, duplicating a smaller CN's results).
func Enumerate(g *schemagraph.Graph, opts EnumerateOptions) []*CN {
	cns, _ := EnumerateCtx(context.Background(), g, opts)
	return cns
}

// EnumerateCtx is Enumerate with cancellation checked at every frontier
// expansion. A cancelled enumeration returns nil and ctx's error — a
// partial CN set would silently change which answers exist, so the caller
// gets nothing rather than a truncated search space.
func EnumerateCtx(ctx context.Context, g *schemagraph.Graph, opts EnumerateOptions) ([]*CN, error) {
	levels, err := enumerateLevels(ctx, g, opts, opts.KeywordTables)
	if err != nil {
		return nil, err
	}
	var results []*CN
	for _, lvl := range levels {
		results = append(results, lvl...)
	}
	return results, nil
}

// Grown is one frontier expansion produced by Expand: a partial CN one
// node larger than its parent, plus its canonical key (computed once, so
// callers dedupe without re-canonicalizing).
type Grown struct {
	CN  *CN
	Key string
}

// Expand is the enumeration primitive behind the parallel cold path
// (internal/plan): it applies one breadth-first growth step to each
// partial CN, returning per-partial child lists in the exact order the
// serial enumerator would visit them — out[i] lists the one-node
// extensions of partials[i], undeduplicated and unvalidated. Expanding
// disjoint frontier slices concurrently and concatenating the outputs
// in slice order therefore reproduces the serial visit order byte for
// byte; the caller owns deduplication (by Grown.Key, first occurrence
// wins) and validity filtering, exactly as enumerateLevels does.
// Cancellation and the fault injector's enumerate stage are honored per
// partial.
func Expand(ctx context.Context, g *schemagraph.Graph, opts EnumerateOptions, partials []*CN) ([][]Grown, error) {
	inj := resilience.From(ctx)
	kw := map[string]bool{}
	for _, t := range opts.KeywordTables {
		kw[t] = true
	}
	free := map[string]bool{}
	for _, t := range opts.FreeTables {
		free[t] = true
	}
	out := make([][]Grown, len(partials))
	for i, c := range partials {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := inj.At(ctx, resilience.StageEnumerate); err != nil {
			return nil, err
		}
		children := growCN(g, c, kw, free)
		gs := make([]Grown, len(children))
		for j, child := range children {
			gs[j] = Grown{CN: child, Key: child.Canonical()}
		}
		out[i] = gs
	}
	return out, nil
}

// Valid reports whether the CN is a complete candidate network: every
// leaf is a keyword node. Partial CNs handed out by Expand fail this
// until growth closes their free leaves; only valid CNs are emitted.
func (c *CN) Valid() bool { return c.valid() }

// enumerateLevels is the shared breadth-first core: grow partial CNs
// level by level from the seed tables, deduplicate by canonical form,
// and collect the valid CNs per size level. Cancellation (and the fault
// injector's enumerate stage) is honored at every frontier expansion; a
// cancelled run returns nil levels and the error.
func enumerateLevels(ctx context.Context, g *schemagraph.Graph, opts EnumerateOptions, seeds []string) ([][]*CN, error) {
	if opts.MaxSize <= 0 {
		opts.MaxSize = 5
	}
	inj := resilience.From(ctx)
	kw := map[string]bool{}
	for _, t := range opts.KeywordTables {
		kw[t] = true
	}
	free := map[string]bool{}
	for _, t := range opts.FreeTables {
		free[t] = true
	}

	levels := make([][]*CN, opts.MaxSize)
	emitted := 0
	// emit records a valid CN; the caller supplies the canonical key it
	// already computed for frontier dedupe (canonicalization is the
	// enumeration hot spot, so it runs exactly once per grown partial).
	emit := func(c *CN) bool {
		if c.valid() {
			levels[c.Size()-1] = append(levels[c.Size()-1], c)
			emitted++
			if opts.MaxCNs > 0 && emitted >= opts.MaxCNs {
				return false
			}
		}
		return true
	}

	// Frontier of partial CNs (not necessarily valid yet). Seed with the
	// single keyword nodes, sorted for determinism. frontierSeen gates
	// both the frontier and emission: every emitted CN enters the
	// frontier, so one canonical-keyed set suffices.
	kwTables := append([]string(nil), seeds...)
	sort.Strings(kwTables)
	var frontier []*CN
	frontierSeen := map[string]bool{}
	for _, t := range kwTables {
		if !g.HasTable(t) || !kw[t] {
			continue
		}
		c := &CN{Nodes: []NodeSpec{{Table: t}}}
		if frontierSeen[c.Canonical()] {
			continue
		}
		frontierSeen[c.Canonical()] = true
		if !emit(c) {
			return levels, nil
		}
		frontier = append(frontier, c)
	}

	for size := 1; size < opts.MaxSize; size++ {
		var next []*CN
		for _, c := range frontier {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := inj.At(ctx, resilience.StageEnumerate); err != nil {
				return nil, err
			}
			if c.Size() != size {
				continue
			}
			for _, grown := range growCN(g, c, kw, free) {
				key := grown.Canonical()
				if frontierSeen[key] {
					continue
				}
				frontierSeen[key] = true
				if !emit(grown) {
					return levels, nil
				}
				next = append(next, grown)
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return levels, nil
}

// growCN returns all one-node extensions of c obeying the same-FK pruning
// rule.
func growCN(g *schemagraph.Graph, c *CN, kw, free map[string]bool) []*CN {
	var out []*CN
	for ni, n := range c.Nodes {
		for _, e := range g.Adjacent(n.Table) {
			other := e.To
			if e.From != n.Table {
				other = e.From
			} else if e.To == n.Table && e.From == n.Table {
				other = n.Table
			}
			// Same-FK duplication check: if the existing node is the
			// referencing side (e.From == n.Table), it may use each FK
			// column once.
			if e.From == n.Table && c.usesFK(ni, e) {
				continue
			}
			// Attach as a keyword node and/or as a free node.
			if kw[other] {
				out = append(out, c.attach(ni, other, false, e))
			}
			if free[other] {
				out = append(out, c.attach(ni, other, true, e))
			}
		}
	}
	return out
}

// usesFK reports whether node ni already has an incident edge using the
// same referencing foreign key (same From table and column).
func (c *CN) usesFK(ni int, e schemagraph.Edge) bool {
	for _, ex := range c.Edges {
		if ex.A != ni && ex.B != ni {
			continue
		}
		v := ex.Via
		if v.From == e.From && v.FromCol == e.FromCol && v.To == e.To && v.ToCol == e.ToCol {
			// The node must be on the referencing side of the existing
			// edge for the single-valued restriction to apply.
			if (ex.A == ni && c.Nodes[ni].Table == v.From) || (ex.B == ni && c.Nodes[ni].Table == v.From) {
				return true
			}
		}
	}
	return false
}

// attach returns a copy of c with a new node linked to ni via e.
func (c *CN) attach(ni int, table string, freeNode bool, e schemagraph.Edge) *CN {
	nc := c.clone()
	nc.Nodes = append(nc.Nodes, NodeSpec{Table: table, Free: freeNode})
	nc.Edges = append(nc.Edges, EdgeSpec{A: ni, B: len(nc.Nodes) - 1, Via: e})
	return nc
}

// valid reports whether every leaf is a keyword node.
func (c *CN) valid() bool {
	for _, li := range c.leaves() {
		if c.Nodes[li].Free {
			return false
		}
	}
	return true
}
