package cn

import (
	"context"
	"sort"

	"kwsearch/internal/resilience"
	"kwsearch/internal/schemagraph"
)

// EnumerateOptions controls candidate-network generation.
type EnumerateOptions struct {
	// MaxSize bounds the number of tuple sets per CN (Tmax).
	MaxSize int
	// MaxCNs caps how many CNs are produced (0 = unlimited); enumeration
	// is breadth-first so the smallest CNs always survive the cap.
	MaxCNs int
	// KeywordTables lists the relations with a non-empty keyword tuple set
	// R^Q for the current query; only these may appear as keyword nodes.
	KeywordTables []string
	// FreeTables lists the relations allowed to appear as free tuple sets
	// R^{}. The tutorial's slide-28 count treats only text-free link
	// relations (write) as fillers; pass all tables for the general
	// DISCOVER behaviour.
	FreeTables []string
}

// Enumerate generates all valid candidate networks up to MaxSize,
// duplicate-free, in nondecreasing size order (breadth-first on the schema
// graph, the strategy of Hristidis et al. VLDB'02).
//
// A CN is valid iff every leaf is a keyword node (free leaves would add
// tuples that contribute neither keywords nor connectivity), and no node
// uses the same single-valued foreign key twice (such a CN can only bind
// both neighbours to the same tuple, duplicating a smaller CN's results).
func Enumerate(g *schemagraph.Graph, opts EnumerateOptions) []*CN {
	cns, _ := EnumerateCtx(context.Background(), g, opts)
	return cns
}

// EnumerateCtx is Enumerate with cancellation checked at every frontier
// expansion. A cancelled enumeration returns nil and ctx's error — a
// partial CN set would silently change which answers exist, so the caller
// gets nothing rather than a truncated search space.
func EnumerateCtx(ctx context.Context, g *schemagraph.Graph, opts EnumerateOptions) ([]*CN, error) {
	if opts.MaxSize <= 0 {
		opts.MaxSize = 5
	}
	inj := resilience.From(ctx)
	kw := map[string]bool{}
	for _, t := range opts.KeywordTables {
		kw[t] = true
	}
	free := map[string]bool{}
	for _, t := range opts.FreeTables {
		free[t] = true
	}

	var results []*CN
	seen := map[string]bool{}
	emit := func(c *CN) bool {
		key := c.Canonical()
		if seen[key] {
			return true
		}
		if c.valid() {
			seen[key] = true
			results = append(results, c)
			if opts.MaxCNs > 0 && len(results) >= opts.MaxCNs {
				return false
			}
		}
		return true
	}

	// Frontier of partial CNs (not necessarily valid yet). Seed with the
	// single keyword nodes, sorted for determinism.
	kwTables := append([]string(nil), opts.KeywordTables...)
	sort.Strings(kwTables)
	var frontier []*CN
	frontierSeen := map[string]bool{}
	push := func(c *CN) {
		key := c.Canonical()
		if !frontierSeen[key] {
			frontierSeen[key] = true
			frontier = append(frontier, c)
		}
	}
	for _, t := range kwTables {
		if !g.HasTable(t) {
			continue
		}
		c := &CN{Nodes: []NodeSpec{{Table: t}}}
		if !emit(c) {
			return results, nil
		}
		push(c)
	}

	for size := 1; size < opts.MaxSize; size++ {
		var next []*CN
		for _, c := range frontier {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := inj.At(ctx, resilience.StageEnumerate); err != nil {
				return nil, err
			}
			if c.Size() != size {
				continue
			}
			for _, grown := range growCN(g, c, kw, free) {
				key := grown.Canonical()
				if frontierSeen[key] {
					continue
				}
				frontierSeen[key] = true
				if !emit(grown) {
					return results, nil
				}
				next = append(next, grown)
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return results, nil
}

// growCN returns all one-node extensions of c obeying the same-FK pruning
// rule.
func growCN(g *schemagraph.Graph, c *CN, kw, free map[string]bool) []*CN {
	var out []*CN
	for ni, n := range c.Nodes {
		for _, e := range g.Adjacent(n.Table) {
			other := e.To
			if e.From != n.Table {
				other = e.From
			} else if e.To == n.Table && e.From == n.Table {
				other = n.Table
			}
			// Same-FK duplication check: if the existing node is the
			// referencing side (e.From == n.Table), it may use each FK
			// column once.
			if e.From == n.Table && c.usesFK(ni, e) {
				continue
			}
			// Attach as a keyword node and/or as a free node.
			if kw[other] {
				out = append(out, c.attach(ni, other, false, e))
			}
			if free[other] {
				out = append(out, c.attach(ni, other, true, e))
			}
		}
	}
	return out
}

// usesFK reports whether node ni already has an incident edge using the
// same referencing foreign key (same From table and column).
func (c *CN) usesFK(ni int, e schemagraph.Edge) bool {
	for _, ex := range c.Edges {
		if ex.A != ni && ex.B != ni {
			continue
		}
		v := ex.Via
		if v.From == e.From && v.FromCol == e.FromCol && v.To == e.To && v.ToCol == e.ToCol {
			// The node must be on the referencing side of the existing
			// edge for the single-valued restriction to apply.
			if (ex.A == ni && c.Nodes[ni].Table == v.From) || (ex.B == ni && c.Nodes[ni].Table == v.From) {
				return true
			}
		}
	}
	return false
}

// attach returns a copy of c with a new node linked to ni via e.
func (c *CN) attach(ni int, table string, freeNode bool, e schemagraph.Edge) *CN {
	nc := c.clone()
	nc.Nodes = append(nc.Nodes, NodeSpec{Table: table, Free: freeNode})
	nc.Edges = append(nc.Edges, EdgeSpec{A: ni, B: len(nc.Nodes) - 1, Via: e})
	return nc
}

// valid reports whether every leaf is a keyword node.
func (c *CN) valid() bool {
	for _, li := range c.leaves() {
		if c.Nodes[li].Free {
			return false
		}
	}
	return true
}
