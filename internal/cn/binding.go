package cn

import (
	"context"
	"sort"
	"strings"

	"kwsearch/internal/invindex"
	"kwsearch/internal/obs"
	"kwsearch/internal/relstore"
	"kwsearch/internal/text"
)

// termBinding is the index-derived binding of one query term: for each
// relation with matches, the matching tuples (ascending tuple ID — the
// posting-list order) and their TF·IDF weights. It depends only on
// (term, index generation), which is what makes it shareable across
// queries in the Binder's cache.
type termBinding struct {
	rels []termRel
}

// termRel is one relation's slice of a term binding. tuples[i] weighs
// weights[i]; both are immutable once built.
type termRel struct {
	table   string
	tuples  []*relstore.Tuple
	weights []float64
}

// lookupKey addresses one join map.
type lookupKey struct {
	table, column string
}

// mergedBinding is the immutable merged product of one query's term
// bindings — everything in a Binding that depends only on (terms,
// generation), not on which CNs later execute. It is what the Binder
// caches per query term list, so a repeated query skips the merge and
// sort entirely; all maps and slices are read-only after construction.
type mergedBinding struct {
	masks     map[relstore.TupleID]uint32
	scores    map[relstore.TupleID]float64
	kwSets    map[string][]*relstore.Tuple
	maxScores map[string]float64
	kwTables  []string
}

// Binding is one query's keyword→tuple binding: the R^Q sets, term
// masks, tuple scores and max-scores, built either from posting lists
// (bindTerms) or by full table scans (NewScanBinding). It implements
// BindSource; see that interface for the snapshot and sealing contract.
type Binding struct {
	db     *relstore.DB
	ix     *invindex.Index
	terms  []string
	binder *Binder // non-nil when term bindings and lookups are shared

	masks     map[relstore.TupleID]uint32
	scores    map[relstore.TupleID]float64
	kwSets    map[string][]*relstore.Tuple
	maxScores map[string]float64
	kwTables  []string // sorted names of tables with a non-empty R^Q

	// freeSets and lookups memoize the lazy accessors until sealed.
	// lookups additionally caches maps fetched from the shared binder,
	// so sealed concurrent evaluation reads plain maps without locking.
	freeSets map[string][]*relstore.Tuple
	lookups  map[lookupKey]map[relstore.Value][]*relstore.Tuple
	sealed   bool

	cachedTerms, builtTerms int
}

// normalizeTerms applies the shared tokenizer normalization and drops
// empty tokens, preserving order (and duplicates — coverage masks give
// each occurrence its own bit, as the scan path always has).
func normalizeTerms(terms []string) []string {
	norm := make([]string, 0, len(terms))
	for _, t := range terms {
		if n := text.Normalize(t); n != "" {
			norm = append(norm, n)
		}
	}
	return norm
}

func newBinding(db *relstore.DB, ix *invindex.Index, norm []string, binder *Binder) *Binding {
	return &Binding{
		db:        db,
		ix:        ix,
		terms:     norm,
		binder:    binder,
		masks:     make(map[relstore.TupleID]uint32),
		scores:    make(map[relstore.TupleID]float64),
		kwSets:    make(map[string][]*relstore.Tuple),
		maxScores: make(map[string]float64),
		freeSets:  make(map[string][]*relstore.Tuple),
		lookups:   make(map[lookupKey]map[relstore.Value][]*relstore.Tuple),
	}
}

// buildTermBinding derives one term's binding by walking its posting
// list once: resolve each document to its tuple (skipping documents that
// are not tuples of db) and group by relation. Postings arrive in
// ascending DocID order and relstore IDs rise with insertion, so each
// relation's slice lands in insertion order without sorting.
func buildTermBinding(db *relstore.DB, ix *invindex.Index, term string) termBinding {
	ps, ws := ix.TermWeights(term)
	var tb termBinding
	idx := make(map[string]int)
	for i, p := range ps {
		tp := db.TupleByID(relstore.TupleID(p.Doc))
		if tp == nil {
			continue
		}
		j, ok := idx[tp.Table]
		if !ok {
			j = len(tb.rels)
			idx[tp.Table] = j
			tb.rels = append(tb.rels, termRel{table: tp.Table})
		}
		tb.rels[j].tuples = append(tb.rels[j].tuples, tp)
		tb.rels[j].weights = append(tb.rels[j].weights, ws[i])
	}
	return tb
}

// bindTerms builds an index-driven Binding for the (already normalized)
// terms: per-term bindings come from binder's cache when one is given
// (built and stored on miss), then merge into the query's R^Q sets,
// masks and scores. Work is O(total postings of the query terms), never
// O(database size).
//
// The result is byte-identical to the scan path: tuple IDs rise with
// insertion order, so the ID-sorted R^Q sets equal the scan order, and
// scores accumulate per-term weights in term order — each absent term
// contributed an exact 0.0 in the scan path's Σ TFIDF, and x+0.0 == x
// for the non-negative partial sums, so skipping them preserves every
// bit.
//
// The two sub-spans of sp split the work the way traces have always
// reported it: "postings" covers fetching per-term bindings (cache
// probes + posting walks), "materialize" the merge into per-table sets.
func bindTerms(db *relstore.DB, ix *invindex.Index, norm []string, binder *Binder, sp *obs.Span) *Binding {
	// A repeat of the whole query (same normalized term list, current
	// generation) reuses the merged product outright: the binding wraps
	// the cached immutable maps with fresh lazy state.
	var mergedKey string
	if binder != nil {
		mergedKey = strings.Join(norm, "\x00")
		if mb, ok := binder.merged.Get(mergedKey); ok {
			b := newBinding(db, ix, norm, binder)
			b.masks, b.scores = mb.masks, mb.scores
			b.kwSets, b.maxScores = mb.kwSets, mb.maxScores
			b.kwTables = mb.kwTables
			b.cachedTerms = len(norm)
			psp := sp.Child("postings")
			psp.SetAttr("terms", len(norm))
			psp.SetAttr("cached_terms", b.cachedTerms)
			psp.SetAttr("built_terms", 0)
			psp.End()
			msp := sp.Child("materialize")
			msp.SetAttr("matched_tuples", len(b.masks))
			msp.SetAttr("keyword_tables", len(b.kwTables))
			msp.End()
			return b
		}
	}

	b := newBinding(db, ix, norm, binder)
	psp := sp.Child("postings")
	tbs := make([]termBinding, len(norm))
	for i, term := range norm {
		if binder != nil {
			if tb, ok := binder.terms.Get(term); ok {
				tbs[i] = tb
				b.cachedTerms++
				continue
			}
		}
		tbs[i] = buildTermBinding(db, ix, term)
		b.builtTerms++
		if binder != nil {
			binder.terms.Put(term, tbs[i])
			binder.builds.Inc()
		}
	}
	psp.SetAttr("terms", len(norm))
	psp.SetAttr("cached_terms", b.cachedTerms)
	psp.SetAttr("built_terms", b.builtTerms)
	psp.End()

	msp := sp.Child("materialize")
	for ti, tb := range tbs {
		bit := uint32(1) << uint(ti)
		for _, r := range tb.rels {
			for i, tp := range r.tuples {
				if b.masks[tp.ID] == 0 {
					b.kwSets[r.table] = append(b.kwSets[r.table], tp)
				}
				b.masks[tp.ID] |= bit
				b.scores[tp.ID] += r.weights[i]
			}
		}
	}
	for table, set := range b.kwSets {
		// A tuple matching several terms was appended at its first term;
		// restore global insertion order by ID (IDs rise with insertion).
		sort.Slice(set, func(i, j int) bool { return set[i].ID < set[j].ID })
		best := 0.0
		for _, tp := range set {
			if s := b.scores[tp.ID]; s > best {
				best = s
			}
		}
		b.maxScores[table] = best
		b.kwTables = append(b.kwTables, table)
	}
	sort.Strings(b.kwTables)
	msp.SetAttr("matched_tuples", len(b.masks))
	msp.SetAttr("keyword_tables", len(b.kwTables))
	msp.End()
	if binder != nil {
		binder.merged.Put(mergedKey, &mergedBinding{
			masks: b.masks, scores: b.scores,
			kwSets: b.kwSets, maxScores: b.maxScores, kwTables: b.kwTables,
		})
	}
	return b
}

// NewScanBinding builds a Binding the pre-binder way: one full scan of
// every table, partitioning tuples into R^Q/R^{} and scoring matches
// through Index.Score. It is the reference implementation the
// index-driven path is asserted byte-identical against (and the oracle
// exec.TopKSerial evaluates with), deliberately kept as an independent
// computation path.
func NewScanBinding(db *relstore.DB, ix *invindex.Index, terms []string) *Binding {
	norm := normalizeTerms(terms)
	b := newBinding(db, ix, norm, nil)
	for ti, term := range norm {
		for _, doc := range ix.Docs(term) {
			b.masks[relstore.TupleID(doc)] |= 1 << uint(ti)
		}
	}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		var kw, free []*relstore.Tuple
		for _, tp := range t.Tuples() {
			if b.masks[tp.ID] != 0 {
				kw = append(kw, tp)
			} else {
				free = append(free, tp)
			}
		}
		if len(kw) > 0 {
			b.kwSets[name] = kw
			b.kwTables = append(b.kwTables, name)
		}
		b.freeSets[name] = free
		best := 0.0
		for _, tp := range kw {
			s := ix.Score(norm, invindex.DocID(tp.ID))
			b.scores[tp.ID] = s
			if s > best {
				best = s
			}
		}
		b.maxScores[name] = best
	}
	sort.Strings(b.kwTables)
	return b
}

// Terms returns the normalized query terms. Shared; do not mutate.
func (b *Binding) Terms() []string { return b.terms }

// TermsCached and TermsBuilt split the query's terms by whether their
// bindings came from the shared binder cache or were built fresh from
// posting lists (always "built" for scan and one-shot bindings).
func (b *Binding) TermsCached() int { return b.cachedTerms }

// TermsBuilt reports the terms whose bindings were built on this call.
func (b *Binding) TermsBuilt() int { return b.builtTerms }

// KeywordTables returns the tables with a non-empty R^Q, sorted.
func (b *Binding) KeywordTables() []string {
	return append([]string(nil), b.kwTables...)
}

// KeywordSet returns R^Q for a table, in insertion (ascending ID) order.
func (b *Binding) KeywordSet(table string) []*relstore.Tuple { return b.kwSets[table] }

// FreeSet returns R^{} for a table, materialized lazily: a table with no
// matching tuple reuses the table's own tuple slice (for text-less link
// tables — the common free fillers — this makes R^{} engine-lifetime
// state, not per-query work), a matched table pays one complement scan,
// memoized until the binding is sealed.
func (b *Binding) FreeSet(table string) []*relstore.Tuple {
	if fs, ok := b.freeSets[table]; ok {
		return fs
	}
	fs := b.computeFreeSet(table)
	if !b.sealed {
		b.freeSets[table] = fs
	}
	return fs
}

func (b *Binding) computeFreeSet(table string) []*relstore.Tuple {
	t := b.db.Table(table)
	if t == nil {
		return nil
	}
	if len(b.kwSets[table]) == 0 {
		return t.Tuples() // nothing matched: R^{} is the whole table
	}
	var free []*relstore.Tuple
	for _, tp := range t.Tuples() {
		if b.masks[tp.ID] == 0 {
			free = append(free, tp)
		}
	}
	return free
}

// MaxNodeScore returns the best tuple score available in table's R^Q.
func (b *Binding) MaxNodeScore(table string) float64 { return b.maxScores[table] }

// TupleScore returns the IR score of tp for the query. Matching tuples
// were scored at construction; every other tuple scores exactly 0 — a
// tuple outside all R^Q sets has TF 0 for each query term, so its
// Σ TFIDF is an exact 0.0 and nothing needs recomputing (the pre-binder
// evaluator silently re-derived that zero through the index on every
// call; assertZeroScore in the tests pins the equivalence).
func (b *Binding) TupleScore(tp *relstore.Tuple) float64 {
	return b.scores[tp.ID] // zero value is the exact score of a free tuple
}

// TermMask returns the query-term bitmask of tuple id (0 = free tuple).
func (b *Binding) TermMask(id relstore.TupleID) uint32 { return b.masks[id] }

// Lookup returns the join map value→tuples for table.column. Maps come
// from the shared binder when one backs this binding (built once per
// engine, not per query) and are memoized locally until sealed so
// sealed concurrent evaluation never takes the binder's lock.
func (b *Binding) Lookup(table, column string) map[relstore.Value][]*relstore.Tuple {
	key := lookupKey{table, column}
	if m, ok := b.lookups[key]; ok {
		return m
	}
	var m map[relstore.Value][]*relstore.Tuple
	if b.binder != nil {
		m = b.binder.lookup(table, column)
	} else {
		m = buildLookup(b.db, table, column)
	}
	if !b.sealed {
		b.lookups[key] = m
	}
	return m
}

// buildLookup materializes the value→tuples join map for table.column.
func buildLookup(db *relstore.DB, table, column string) map[relstore.Value][]*relstore.Tuple {
	m := make(map[relstore.Value][]*relstore.Tuple)
	t := db.Table(table)
	if t == nil {
		return m
	}
	ci := t.ColumnIndex(column)
	if ci >= 0 {
		for _, tp := range t.Tuples() {
			v := tp.Values[ci]
			if !v.IsNull() {
				m[v] = append(m[v], tp)
			}
		}
	}
	return m
}

// Prewarm materializes every free set and join lookup the given CNs can
// touch, then seals the binding (see BindSource). The posting lists are
// touched too, preserving the old contract that sorts them in place
// before any concurrent reader exists.
func (b *Binding) Prewarm(ctx context.Context, cns []*CN) error {
	for _, term := range b.terms {
		b.ix.Postings(term)
	}
	for _, c := range cns {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, n := range c.Nodes {
			if n.Free {
				b.FreeSet(n.Table)
			}
		}
		for _, e := range c.Edges {
			b.Lookup(e.Via.From, e.Via.FromCol)
			b.Lookup(e.Via.To, e.Via.ToCol)
		}
	}
	b.sealed = true
	return nil
}
