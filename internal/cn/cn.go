// Package cn implements DISCOVER-style candidate networks: enumeration of
// join trees over the schema graph that can connect keyword matches
// (Hristidis & Papakonstantinou VLDB'02, Hristidis et al. VLDB'03), their
// evaluation into joining trees of tuples, and the Naive / Sparse /
// Global-Pipeline top-k strategies of slide 116.
package cn

import (
	"sort"
	"strings"

	"kwsearch/internal/schemagraph"
)

// NodeSpec is one tuple set in a candidate network: a relation, either
// restricted to keyword matches (R^Q, Free=false) or unrestricted filler
// (R^{}, Free=true).
type NodeSpec struct {
	Table string
	Free  bool
}

// String renders "author^Q" or "write^{}".
func (n NodeSpec) String() string {
	if n.Free {
		return n.Table + "^{}"
	}
	return n.Table + "^Q"
}

// EdgeSpec connects two nodes of a CN via a schema-graph foreign key.
type EdgeSpec struct {
	A, B int // node indices
	Via  schemagraph.Edge
}

// CN is one candidate network: a tree over tuple sets.
type CN struct {
	Nodes []NodeSpec
	Edges []EdgeSpec
}

// Size returns the number of tuple sets.
func (c *CN) Size() int { return len(c.Nodes) }

// KeywordNodes returns the indices of non-free nodes.
func (c *CN) KeywordNodes() []int {
	var out []int
	for i, n := range c.Nodes {
		if !n.Free {
			out = append(out, i)
		}
	}
	return out
}

// adjacency returns, per node, the incident edge indices. The rows are
// carved from one backing array sized by a degree-counting pass — the
// function runs once per Canonical call, so per-row append growth
// showed up in the cold-plan profile.
func (c *CN) adjacency() [][]int {
	deg := make([]int, len(c.Nodes))
	for _, e := range c.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	adj := make([][]int, len(c.Nodes))
	backing := make([]int, 0, 2*len(c.Edges))
	for i, d := range deg {
		start := len(backing)
		backing = backing[:start+d]
		adj[i] = backing[start:start : start+d]
	}
	for ei, e := range c.Edges {
		adj[e.A] = append(adj[e.A], ei)
		adj[e.B] = append(adj[e.B], ei)
	}
	return adj
}

// leaves returns the indices of degree<=1 nodes.
func (c *CN) leaves() []int {
	deg := make([]int, len(c.Nodes))
	for _, e := range c.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	var out []int
	for i, d := range deg {
		if d <= 1 {
			out = append(out, i)
		}
	}
	return out
}

// String renders a compact linear form, e.g.
// "author^Q ⋈ write^{} ⋈ paper^Q" for path CNs and a nested form otherwise.
func (c *CN) String() string {
	if len(c.Nodes) == 1 {
		return c.Nodes[0].String()
	}
	// Render as a rooted term from the first leaf for readability.
	root := c.leaves()[0]
	var render func(node, from int) string
	adj := c.adjacency()
	render = func(node, from int) string {
		var parts []string
		for _, ei := range adj[node] {
			e := c.Edges[ei]
			other := e.A
			if other == node {
				other = e.B
			}
			if other == from {
				continue
			}
			parts = append(parts, render(other, node))
		}
		s := c.Nodes[node].String()
		if len(parts) > 0 {
			s += "(" + strings.Join(parts, ", ") + ")"
		}
		return s
	}
	return render(root, -1)
}

// edgeLabel renders a direction-aware label for canonicalization: the FK
// identity matters (cite.citing vs cite.cited) but which endpoint the tree
// grew from does not.
func edgeLabel(e schemagraph.Edge) string {
	// Hand-rolled concatenation: this sits on the canonicalization hot
	// path (once per grown partial per enumeration level), where
	// fmt.Sprintf's boxing dominated the cold-plan profile.
	n := len(e.From) + len(e.FromCol) + len(e.To) + len(e.ToCol) + 4
	b := make([]byte, 0, n)
	b = append(b, e.From...)
	b = append(b, '.')
	b = append(b, e.FromCol...)
	b = append(b, "->"...)
	b = append(b, e.To...)
	b = append(b, '.')
	b = append(b, e.ToCol...)
	return string(b)
}

// Canonical returns a string that is identical for isomorphic CNs
// (same multiset of tuple sets connected through the same foreign keys),
// regardless of construction order. Trees are canonicalized by rooting at
// the tree center(s) and sorting subtree encodings. Edge endpoints are
// treated as unordered: for a foreign key whose two endpoint tables are
// the same relation AND the same column (a true self-loop), the encoding
// cannot distinguish the two orientations — such schemas do not occur in
// practice (self-references use distinct columns, like cite.citing and
// cite.cited, which the Via label distinguishes).
func (c *CN) Canonical() string {
	if len(c.Nodes) == 1 {
		return c.Nodes[0].String()
	}
	adj := c.adjacency()

	var encode func(node, fromEdge int) string
	encode = func(node, fromEdge int) string {
		var parts []string
		for _, ei := range adj[node] {
			if ei == fromEdge {
				continue
			}
			e := c.Edges[ei]
			other := e.A
			if other == node {
				other = e.B
			}
			parts = append(parts, "["+edgeLabel(e.Via)+" "+encode(other, ei)+"]")
		}
		sort.Strings(parts)
		return c.Nodes[node].String() + strings.Join(parts, "")
	}

	centers := c.centers(adj)
	var encs []string
	for _, ctr := range centers {
		encs = append(encs, encode(ctr, -1))
	}
	sort.Strings(encs)
	return encs[0]
}

// centers returns the 1 or 2 centers of the tree (iterative leaf pruning).
func (c *CN) centers(adj [][]int) []int {
	n := len(c.Nodes)
	if n == 1 {
		return []int{0}
	}
	deg := make([]int, n)
	for _, e := range c.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	removed := make([]bool, n)
	frontier := []int{}
	for i, d := range deg {
		if d == 1 {
			frontier = append(frontier, i)
		}
	}
	remaining := n
	for remaining > 2 {
		var next []int
		for _, leaf := range frontier {
			removed[leaf] = true
			remaining--
			for _, ei := range adj[leaf] {
				e := c.Edges[ei]
				other := e.A
				if other == leaf {
					other = e.B
				}
				if removed[other] {
					continue
				}
				deg[other]--
				if deg[other] == 1 {
					next = append(next, other)
				}
			}
		}
		frontier = next
	}
	var out []int
	for i := range deg {
		if !removed[i] {
			out = append(out, i)
		}
	}
	return out
}

// clone deep-copies the CN.
func (c *CN) clone() *CN {
	nc := &CN{
		Nodes: make([]NodeSpec, len(c.Nodes)),
		Edges: make([]EdgeSpec, len(c.Edges)),
	}
	copy(nc.Nodes, c.Nodes)
	copy(nc.Edges, c.Edges)
	return nc
}
