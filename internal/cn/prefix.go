package cn

import (
	"strconv"
	"strings"

	"kwsearch/internal/relstore"
)

// Prefix evaluation: the enumerator grows every CN by attaching node j to
// an earlier node via edge j-1, so the first n nodes of a CN always form
// a connected sub-tree — the "construction-order prefix" that
// parallel.Decompose names with Canonical strings. The internal/exec
// worker pool materializes these prefixes once per worker and extends
// them level by level, which is how CNs sharing a prefix (slide 132's
// sharing-aware partitioning) actually reuse each other's work at
// evaluation time, not just in the cost model.

// PrefixKey identifies the construction-order prefix of c's first n
// nodes: node specs and attaching edges in growth order. Unlike
// Canonical (which is isomorphism-invariant), PrefixKey is
// position-sensitive — two CNs share a PrefixKey only when their first n
// nodes are bound in the same order, which is exactly the condition for
// reusing position-indexed binding slices between them. (Canonical
// prefixes can match across mirrored growth orders, where reusing
// bindings would misalign tuples and tables.)
func (c *CN) PrefixKey(n int) string {
	if n <= 0 || n > len(c.Nodes) {
		return ""
	}
	var b strings.Builder
	b.WriteString(c.Nodes[0].String())
	for j := 1; j < n; j++ {
		e := c.Edges[j-1]
		parent := e.A
		if parent == j {
			parent = e.B
		}
		b.WriteByte('|')
		b.WriteString(strings.Join([]string{
			strconv.Itoa(parent), edgeLabel(e.Via), c.Nodes[j].String(),
		}, ":"))
	}
	return b.String()
}

// EvaluatePrefix returns every join-consistent partial binding of the
// first n nodes of c, extending prior (bindings over the first m nodes,
// m < n; nil means start from node 0). Each returned binding is a fresh
// slice of length n with Tuples[i] bound to CN node i; bindings never
// repeat a tuple (the joining-tree constraint). Callers evaluating from
// multiple goroutines must Prewarm first, as with EvaluateCN.
func (ev *Evaluator) EvaluatePrefix(c *CN, prior [][]*relstore.Tuple, n int) [][]*relstore.Tuple {
	if n <= 0 || n > len(c.Nodes) {
		return nil
	}
	m := 0
	bindings := prior
	if len(prior) > 0 {
		m = len(prior[0])
	}
	if m == 0 {
		bindings = nil
		// The owner filter cuts the partition here, at the root of the
		// prefix tree: every binding grown below it inherits the node-0
		// restriction (prior bindings arriving with m > 0 were already
		// filtered the same way when their first level was built).
		for _, tp := range ev.filterOwned(ev.nodeSet(c.Nodes[0])) {
			bindings = append(bindings, []*relstore.Tuple{tp})
		}
		m = 1
	}
	for j := m; j < n; j++ {
		// Edge j-1 attaches node j to an earlier node (the enumerator's
		// growth invariant); its other endpoint is the join parent.
		e := c.Edges[j-1]
		parent := e.A
		if parent == j {
			parent = e.B
		}
		var next [][]*relstore.Tuple
		for _, b := range bindings {
			for _, tp := range ev.joinCandidates(c, e, parent, b[parent]) {
				if containsTuple(b, tp) {
					continue
				}
				nb := make([]*relstore.Tuple, j+1)
				copy(nb, b)
				nb[j] = tp
				next = append(next, nb)
			}
		}
		bindings = next
		if len(bindings) == 0 {
			return nil
		}
	}
	return bindings
}

// BindingResults filters complete bindings of c (length == len(c.Nodes),
// as produced by EvaluatePrefix) through the totality and minimality
// checks and scores the survivors — the finishing step EvaluateCN applies
// to its own search tree. EvaluatePrefix + BindingResults produce exactly
// EvaluateCN's result set (possibly in a different order; SortResults
// normalizes).
func (ev *Evaluator) BindingResults(c *CN, bindings [][]*relstore.Tuple) []Result {
	var out []Result
	for _, b := range bindings {
		if len(b) != len(c.Nodes) {
			continue
		}
		if r, ok := ev.finishRow(c, b); ok {
			out = append(out, r)
		}
	}
	return out
}
