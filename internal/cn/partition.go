package cn

import "kwsearch/internal/relstore"

// Partition is a predicate over owner tuples: it decides which slice of
// the result space an Evaluator produces. A result's owner is the tuple
// bound to its CN's node 0 — always a keyword node, because enumeration
// seeds every CN with a single keyword node and grows it by attaching
// (see enumerateLevels), so ownership is defined for every result under
// every semantics-preserving evaluation order. Each result has exactly
// one owner, which gives partitions their load-bearing property: a
// family of Partitions that tiles the tuple-ID space tiles the result
// space — the per-partition result sets are pairwise disjoint and their
// union is exactly the unpartitioned result set, with bit-identical
// scores (the score of a result does not depend on the partition). The
// sharding coordinator (internal/shard) builds on exactly this to run
// one logical query as N disjoint shard queries.
type Partition func(relstore.TupleID) bool

// Restrict returns a copy of ev that produces only the results whose
// owner tuple (the binding of CN node 0) satisfies keep. A nil keep
// returns ev unchanged. The restricted evaluator shares all binding
// state with ev — the filter applies at the node-0 candidate sets of
// every evaluation path (EvaluateCN, EvaluatePrefix, the pipelined
// top-k), never to join candidates of other nodes, so non-owner nodes
// still range over the full store and restricted results are
// byte-identical to the matching subset of the unrestricted ones.
func (ev *Evaluator) Restrict(keep Partition) *Evaluator {
	if keep == nil {
		return ev
	}
	cp := *ev
	cp.keep = keep
	return &cp
}

// Partitioned reports whether a Restrict partition is installed.
func (ev *Evaluator) Partitioned() bool { return ev.keep != nil }

// filterOwned returns the subset of tps the partition owns; without a
// partition it returns tps unchanged (no copy — callers must not
// mutate the returned slice either way).
func (ev *Evaluator) filterOwned(tps []*relstore.Tuple) []*relstore.Tuple {
	if ev.keep == nil {
		return tps
	}
	out := make([]*relstore.Tuple, 0, len(tps))
	for _, tp := range tps {
		if ev.keep(tp.ID) {
			out = append(out, tp)
		}
	}
	return out
}
