package cn

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"kwsearch/internal/dataset"
	"kwsearch/internal/invindex"
	"kwsearch/internal/relstore"
	"kwsearch/internal/schemagraph"
)

// awpGraph is the slide-28 schema: author <- write -> paper.
func awpGraph(t *testing.T) *schemagraph.Graph {
	t.Helper()
	g, err := schemagraph.New(
		[]string{"author", "write", "paper"},
		[]schemagraph.Edge{
			{From: "write", FromCol: "aid", To: "author", ToCol: "aid"},
			{From: "write", FromCol: "pid", To: "paper", ToCol: "pid"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEnumerateSlide28 reproduces E2: Q = "Widom XML" on A-W-P yields
// exactly the five CNs of the slide table when only the text-free link
// table may act as a free tuple set.
func TestEnumerateSlide28(t *testing.T) {
	g := awpGraph(t)
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       5,
		KeywordTables: []string{"author", "paper"},
		FreeTables:    []string{"write"},
	})
	var got []string
	for _, c := range cns {
		got = append(got, c.Canonical())
	}
	if len(cns) != 5 {
		t.Fatalf("got %d CNs, want 5:\n%s", len(cns), strings.Join(got, "\n"))
	}
	// Size distribution: two singletons, one 3-node path, two 5-node paths.
	sizes := map[int]int{}
	for _, c := range cns {
		sizes[c.Size()]++
	}
	if sizes[1] != 2 || sizes[3] != 1 || sizes[5] != 2 {
		t.Errorf("size histogram = %v, want map[1:2 3:1 5:2]", sizes)
	}
	// CNs arrive in nondecreasing size order (breadth-first).
	for i := 1; i < len(cns); i++ {
		if cns[i-1].Size() > cns[i].Size() {
			t.Errorf("CNs not in size order: %v", sizes)
		}
	}
}

// TestEnumerateGeneralFreeTables checks the unrestricted DISCOVER
// behaviour: allowing author and paper as free fillers adds the two CNs
// A^Q - W - P^{} - W - A^Q (two authors of a shared non-matching paper)
// and its dual P^Q - W - A^{} - W - P^Q, for 7 total.
func TestEnumerateGeneralFreeTables(t *testing.T) {
	g := awpGraph(t)
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       5,
		KeywordTables: []string{"author", "paper"},
		FreeTables:    []string{"write", "author", "paper"},
	})
	if len(cns) != 7 {
		var all []string
		for _, c := range cns {
			all = append(all, c.Canonical())
		}
		t.Fatalf("got %d CNs, want 7:\n%s", len(cns), strings.Join(all, "\n"))
	}
}

// TestSameFKPruning: conference is referenced by paper via a single-valued
// FK, so C^Q <- P -> C^Q must be pruned (slide 115's duplicate-free
// requirement), while A^Q <- W -> P <- W -> A^Q stays (different W copies).
func TestSameFKPruning(t *testing.T) {
	g, err := schemagraph.New(
		[]string{"paper", "conference"},
		[]schemagraph.Edge{
			{From: "paper", FromCol: "cid", To: "conference", ToCol: "cid"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       3,
		KeywordTables: []string{"conference"},
		FreeTables:    []string{"paper"},
	})
	for _, c := range cns {
		if c.Size() == 3 {
			t.Errorf("C-P-C must be pruned, got %s", c)
		}
	}
}

func TestCanonicalInvariantUnderConstruction(t *testing.T) {
	e1 := schemagraph.Edge{From: "write", FromCol: "aid", To: "author", ToCol: "aid", Weight: 1}
	e2 := schemagraph.Edge{From: "write", FromCol: "pid", To: "paper", ToCol: "pid", Weight: 1}
	// author - write - paper built in two different orders.
	a := &CN{
		Nodes: []NodeSpec{{Table: "author"}, {Table: "write", Free: true}, {Table: "paper"}},
		Edges: []EdgeSpec{{A: 0, B: 1, Via: e1}, {B: 2, A: 1, Via: e2}},
	}
	b := &CN{
		Nodes: []NodeSpec{{Table: "paper"}, {Table: "write", Free: true}, {Table: "author"}},
		Edges: []EdgeSpec{{A: 0, B: 1, Via: e2}, {A: 1, B: 2, Via: e1}},
	}
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical forms differ:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if a.Canonical() == (&CN{Nodes: []NodeSpec{{Table: "author"}}}).Canonical() {
		t.Errorf("different CNs must differ")
	}
	if got := a.String(); !strings.Contains(got, "write") {
		t.Errorf("String() = %q", got)
	}
}

func TestKeywordNodesAndLeaves(t *testing.T) {
	g := awpGraph(t)
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       5,
		KeywordTables: []string{"author", "paper"},
		FreeTables:    []string{"write"},
	})
	for _, c := range cns {
		for _, li := range c.leaves() {
			if c.Nodes[li].Free {
				t.Errorf("free leaf in %s", c)
			}
		}
		if len(c.KeywordNodes()) == 0 {
			t.Errorf("no keyword nodes in %s", c)
		}
	}
}

func TestEnumerateMaxCNs(t *testing.T) {
	g := awpGraph(t)
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       7,
		MaxCNs:        3,
		KeywordTables: []string{"author", "paper"},
		FreeTables:    []string{"write"},
	})
	if len(cns) != 3 {
		t.Fatalf("cap not honored: %d", len(cns))
	}
}

func widomEvaluator(t *testing.T) (*Evaluator, []*CN) {
	t.Helper()
	db := dataset.WidomBib()
	ix := invindex.FromDB(db)
	ev := NewEvaluator(db, ix, []string{"widom", "xml"})
	g := schemagraph.FromDB(db)
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       5,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write"},
	})
	return ev, cns
}

func TestEvaluatorTupleSets(t *testing.T) {
	ev, _ := widomEvaluator(t)
	if got := ev.KeywordTables(); !reflect.DeepEqual(got, []string{"author", "paper"}) {
		t.Fatalf("KeywordTables = %v", got)
	}
	if len(ev.KeywordSet("author")) != 1 {
		t.Errorf("author^Q = %d, want 1 (Widom)", len(ev.KeywordSet("author")))
	}
	if len(ev.KeywordSet("paper")) != 2 {
		t.Errorf("paper^Q = %d, want 2 (XML papers)", len(ev.KeywordSet("paper")))
	}
	if len(ev.FreeSet("paper")) != 1 {
		t.Errorf("paper^{} = %d, want 1 (Datalog paper)", len(ev.FreeSet("paper")))
	}
	if ev.MaxNodeScore("author") <= 0 {
		t.Errorf("MaxNodeScore(author) must be positive")
	}
}

func TestEvaluateCNProducesJoinTrees(t *testing.T) {
	ev, cns := widomEvaluator(t)
	total := 0
	for _, c := range cns {
		rs := ev.EvaluateCN(c)
		total += len(rs)
		for _, r := range rs {
			if len(r.Tuples) != c.Size() {
				t.Fatalf("row arity %d != CN size %d", len(r.Tuples), c.Size())
			}
			// AND semantics: the result must cover both keywords.
			text := ""
			for i, tp := range r.Tuples {
				tbl := ev.DB.Table(c.Nodes[i].Table)
				text += " " + tp.Text(tbl.Schema)
			}
			lower := strings.ToLower(text)
			if !strings.Contains(lower, "widom") || !strings.Contains(lower, "xml") {
				t.Errorf("result does not cover both terms: %q", text)
			}
			if r.Score <= 0 {
				t.Errorf("score must be positive")
			}
		}
	}
	// Widom wrote the XML streams paper: the A-W-P CN yields exactly that
	// result; no single tuple covers both keywords so singleton CNs are
	// empty.
	if total == 0 {
		t.Fatalf("no results at all")
	}
	for _, c := range cns {
		if c.Size() == 1 {
			if n := len(ev.EvaluateCN(c)); n != 0 {
				t.Errorf("singleton CN %s yielded %d results, want 0", c, n)
			}
		}
		if c.Size() == 3 {
			rs := ev.EvaluateCN(c)
			if len(rs) != 1 {
				t.Errorf("A-W-P yielded %d results, want 1 (Widom's XML streams)", len(rs))
			}
		}
	}
}

func TestMinimalityRejectsRedundantLeaves(t *testing.T) {
	ev, cns := widomEvaluator(t)
	// In the 5-node CN P^Q - W - A^Q - W - P^Q, valid results need the
	// author to contribute "widom" and each paper to contribute "xml"...
	// but any result whose two papers both match and author matches too
	// would stay total after dropping one paper; minimality must reject
	// rows where a leaf is redundant.
	for _, c := range cns {
		if c.Size() != 5 {
			continue
		}
		for _, r := range ev.EvaluateCN(c) {
			for _, li := range c.leaves() {
				cover := map[string]bool{}
				for i, tp := range r.Tuples {
					if i == li {
						continue
					}
					tbl := ev.DB.Table(c.Nodes[i].Table)
					low := strings.ToLower(tp.Text(tbl.Schema))
					for _, term := range ev.Terms {
						if strings.Contains(low, term) {
							cover[term] = true
						}
					}
				}
				if len(cover) == len(ev.Terms) {
					t.Errorf("non-minimal result survived in %s", c)
				}
			}
		}
	}
}

func TestTopKStrategiesAgree(t *testing.T) {
	db := dataset.DBLP(dataset.DBLPConfig{
		Authors: 60, Papers: 150, Conferences: 5, AuthorsPerPaper: 2,
		CitesPerPaper: 1, TitleTermCount: 3, ExtraVocab: 30, Seed: 11,
	})
	ix := invindex.FromDB(db)
	ev := NewEvaluator(db, ix, []string{"keyword", "search"})
	g := schemagraph.FromDB(db)
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       4,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"write", "cite"},
	})
	if len(cns) == 0 {
		t.Fatalf("no CNs")
	}
	const k = 5
	naive := TopKNaive(ev, cns, k)
	sparse := TopKSparse(ev, cns, k)
	gp := TopKGlobalPipeline(ev, cns, k)
	if len(naive) == 0 {
		t.Fatalf("no results")
	}
	scoresOf := func(rs []Result) []float64 {
		out := make([]float64, len(rs))
		for i, r := range rs {
			out[i] = r.Score
		}
		return out
	}
	ns, ss, gs := scoresOf(naive), scoresOf(sparse), scoresOf(gp)
	if !reflect.DeepEqual(ns, ss) {
		t.Errorf("sparse top-k scores differ from naive:\n%v\n%v", ns, ss)
	}
	if !reflect.DeepEqual(ns, gs) {
		t.Errorf("global-pipeline top-k scores differ from naive:\n%v\n%v", ns, gs)
	}
	if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] > ns[j] }) {
		t.Errorf("results not sorted by score: %v", ns)
	}
}

func TestTopKWithFewerResultsThanK(t *testing.T) {
	ev, cns := widomEvaluator(t)
	naive := TopKNaive(ev, cns, 50)
	sparse := TopKSparse(ev, cns, 50)
	gp := TopKGlobalPipeline(ev, cns, 50)
	if len(naive) != len(sparse) || len(naive) != len(gp) {
		t.Errorf("result counts differ: naive=%d sparse=%d gp=%d",
			len(naive), len(sparse), len(gp))
	}
}

// TestSelfLoopEdgeOrientation: the cite table references paper twice
// (citing, cited). The P-cite-P candidate network must bind the citing and
// cited sides correctly and not fabricate reversed citations.
func TestSelfLoopEdgeOrientation(t *testing.T) {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "paper",
		Columns: []relstore.Column{
			{Name: "pid", Type: relstore.KindInt},
			{Name: "title", Type: relstore.KindString, Text: true},
		},
		Key: "pid",
	})
	db.MustCreateTable(&relstore.TableSchema{
		Name: "cite",
		Columns: []relstore.Column{
			{Name: "citing", Type: relstore.KindInt},
			{Name: "cited", Type: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "citing", RefTable: "paper", RefColumn: "pid"},
			{Column: "cited", RefTable: "paper", RefColumn: "pid"},
		},
	})
	a := db.MustInsert("paper", map[string]relstore.Value{"pid": relstore.Int(1), "title": relstore.String("xml processing")})
	bp := db.MustInsert("paper", map[string]relstore.Value{"pid": relstore.Int(2), "title": relstore.String("keyword search")})
	db.MustInsert("cite", map[string]relstore.Value{"citing": relstore.Int(1), "cited": relstore.Int(2)})

	ix := invindex.FromDB(db)
	ev := NewEvaluator(db, ix, []string{"xml", "keyword"})
	g := schemagraph.FromDB(db)
	cns := Enumerate(g, EnumerateOptions{
		MaxSize:       3,
		KeywordTables: ev.KeywordTables(),
		FreeTables:    []string{"cite"},
	})
	var results []Result
	for _, c := range cns {
		results = append(results, ev.EvaluateCN(c)...)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want exactly 1 (A cites B)", len(results))
	}
	// The bound papers are exactly A and B (each once).
	seen := map[relstore.TupleID]int{}
	for _, tp := range results[0].Tuples {
		if tp.Table == "paper" {
			seen[tp.ID]++
		}
	}
	if seen[a.ID] != 1 || seen[bp.ID] != 1 {
		t.Fatalf("paper bindings = %v", seen)
	}
	// Verify directionality: the citing node binds A ("xml"), the cited
	// node binds B — check by locating the Via columns.
	r := results[0]
	for _, e := range r.CN.Edges {
		node := e.A
		if r.CN.Nodes[node].Table != "paper" {
			node = e.B
		}
		tp := r.Tuples[node]
		if e.Via.FromCol == "citing" && tp.ID != a.ID {
			t.Errorf("citing side bound to %d, want %d", tp.ID, a.ID)
		}
		if e.Via.FromCol == "cited" && tp.ID != bp.ID {
			t.Errorf("cited side bound to %d, want %d", tp.ID, bp.ID)
		}
	}
	// No reversed citation exists: a second query direction must not
	// invent (B cites A).
	ev2 := NewEvaluator(db, ix, []string{"keyword", "xml"})
	total := 0
	for _, c := range cns {
		total += len(ev2.EvaluateCN(c))
	}
	if total != 1 {
		t.Fatalf("reversed-term query results = %d, want 1", total)
	}
}

// Property: Canonical is invariant under node/edge permutation — two CNs
// that differ only in construction order encode identically.
func TestCanonicalPermutationInvariant(t *testing.T) {
	e1 := schemagraph.Edge{From: "write", FromCol: "aid", To: "author", ToCol: "aid", Weight: 1}
	e2 := schemagraph.Edge{From: "write", FromCol: "pid", To: "paper", ToCol: "pid", Weight: 1}
	base := &CN{
		Nodes: []NodeSpec{
			{Table: "author"}, {Table: "write", Free: true}, {Table: "paper"},
			{Table: "write", Free: true}, {Table: "author"},
		},
		Edges: []EdgeSpec{
			{A: 0, B: 1, Via: e1}, {A: 1, B: 2, Via: e2},
			{A: 2, B: 3, Via: e2}, {A: 3, B: 4, Via: e1},
		},
	}
	want := base.Canonical()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(len(base.Nodes))
		inv := make([]int, len(perm))
		for i, p := range perm {
			inv[i] = p
		}
		c := &CN{Nodes: make([]NodeSpec, len(base.Nodes))}
		for i, p := range inv {
			c.Nodes[p] = base.Nodes[i]
		}
		edges := append([]EdgeSpec(nil), base.Edges...)
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges {
			ne := EdgeSpec{A: inv[e.A], B: inv[e.B], Via: e.Via}
			if rng.Intn(2) == 0 {
				ne.A, ne.B = ne.B, ne.A
			}
			c.Edges = append(c.Edges, ne)
		}
		return c.Canonical() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
