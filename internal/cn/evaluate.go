package cn

import (
	"context"

	"kwsearch/internal/invindex"
	"kwsearch/internal/obs"
	"kwsearch/internal/relstore"
)

// Result is one joining tree of tuples produced by a CN: Tuples[i] is bound
// to CN node i. Score is the monotone IR-style score of Hristidis et al.
// VLDB'03 (sum of tuple scores normalized by CN size).
type Result struct {
	CN     *CN
	Tuples []*relstore.Tuple
	Score  float64
}

// Evaluator executes candidate networks against a database. All binding
// state — the per-relation keyword (R^Q) and free (R^{}) tuple sets,
// term masks, tuple scores and join-column lookups — comes from its
// BindSource, so the same evaluation machinery runs over a one-shot
// index-driven binding (NewEvaluator), the full-scan reference binding
// (NewScanEvaluator) or a Binding served by the shared generation-aware
// Binder (NewEvaluatorFrom).
type Evaluator struct {
	DB    *relstore.DB
	Index *invindex.Index
	Terms []string

	src BindSource
	// keep, when non-nil, restricts evaluation to results whose owner
	// tuple (CN node 0's binding) it admits; see Restrict in partition.go.
	keep Partition
}

// NewEvaluator prepares an evaluator for the given query terms
// (normalized through the shared tokenizer), binding them through the
// index in O(matched tuples) without a shared cache.
func NewEvaluator(db *relstore.DB, ix *invindex.Index, terms []string) *Evaluator {
	return NewEvaluatorTraced(db, ix, terms, nil)
}

// NewEvaluatorTraced is NewEvaluator with the binding work recorded as
// child spans of sp (the caller's "bind" span); see Binder.BindTraced
// for the span split. A nil sp costs nothing.
func NewEvaluatorTraced(db *relstore.DB, ix *invindex.Index, terms []string, sp *obs.Span) *Evaluator {
	return NewEvaluatorFrom(db, ix, bindTerms(db, ix, normalizeTerms(terms), nil, sp))
}

// NewScanEvaluator prepares an evaluator over the full-scan reference
// binding (NewScanBinding) — the oracle the index-driven paths are
// asserted byte-identical against.
func NewScanEvaluator(db *relstore.DB, ix *invindex.Index, terms []string) *Evaluator {
	return NewEvaluatorFrom(db, ix, NewScanBinding(db, ix, terms))
}

// NewEvaluatorFrom wraps an existing binding source — the constructor
// exec.TopK and core.Engine use to consume the shared Binder.
func NewEvaluatorFrom(db *relstore.DB, ix *invindex.Index, src BindSource) *Evaluator {
	return &Evaluator{DB: db, Index: ix, Terms: src.Terms(), src: src}
}

// Source returns the evaluator's binding source.
func (ev *Evaluator) Source() BindSource { return ev.src }

// KeywordTables returns the tables with a non-empty R^Q, sorted — the input
// Enumerate needs.
func (ev *Evaluator) KeywordTables() []string { return ev.src.KeywordTables() }

// KeywordSet returns R^Q for a table.
func (ev *Evaluator) KeywordSet(table string) []*relstore.Tuple { return ev.src.KeywordSet(table) }

// FreeSet returns R^{} (tuples matching no query term) for a table.
func (ev *Evaluator) FreeSet(table string) []*relstore.Tuple { return ev.src.FreeSet(table) }

// TupleScore is the IR score of one tuple for the query (exactly 0 for
// tuples matching no term; see Binding.TupleScore).
func (ev *Evaluator) TupleScore(tp *relstore.Tuple) float64 { return ev.src.TupleScore(tp) }

// MaxNodeScore returns the best tuple score available in table's R^Q.
func (ev *Evaluator) MaxNodeScore(table string) float64 { return ev.src.MaxNodeScore(table) }

// Prewarm materializes the join lookup tables and free sets the given
// CNs will touch and seals the binding source, making subsequent
// EvaluateCN calls read-only — required before evaluating from multiple
// goroutines (the parallel package does this).
func (ev *Evaluator) Prewarm(cns []*CN) {
	_ = ev.PrewarmCtx(context.Background(), cns)
}

// PrewarmCtx is Prewarm with cancellation checked between CNs. A
// cancelled prewarm returns ctx's error; the state built so far stays
// valid (the next call resumes where this one stopped).
func (ev *Evaluator) PrewarmCtx(ctx context.Context, cns []*CN) error {
	return ev.src.Prewarm(ctx, cns)
}

// nodeSet returns the tuple set (keyword or free) for CN node n.
func (ev *Evaluator) nodeSet(n NodeSpec) []*relstore.Tuple {
	if n.Free {
		return ev.src.FreeSet(n.Table)
	}
	return ev.src.KeywordSet(n.Table)
}

// joinCandidates returns the tuples of CN node `to` that join with tuple tp
// bound to node `from` via edge e.
func (ev *Evaluator) joinCandidates(c *CN, e EdgeSpec, from int, tp *relstore.Tuple) []*relstore.Tuple {
	to := e.A
	if to == from {
		to = e.B
	}
	toSpec := c.Nodes[to]
	fromTable := ev.DB.Table(c.Nodes[from].Table)

	var fromCol, toCol string
	if e.Via.From == c.Nodes[from].Table && (e.Via.To == toSpec.Table) {
		fromCol, toCol = e.Via.FromCol, e.Via.ToCol
	} else {
		fromCol, toCol = e.Via.ToCol, e.Via.FromCol
	}
	// Self-referencing edges (cite) need orientation by node position: the
	// node attached later is always EdgeSpec.B, and Via is stored from the
	// perspective of growing A->B; when from==e.B the roles reverse.
	if e.Via.From == e.Via.To {
		if from == e.A {
			fromCol, toCol = e.Via.FromCol, e.Via.ToCol
		} else {
			fromCol, toCol = e.Via.ToCol, e.Via.FromCol
		}
	}

	v := fromTable.Value(tp, fromCol)
	if v.IsNull() {
		return nil
	}
	cands := ev.src.Lookup(toSpec.Table, toCol)[v]
	if len(cands) == 0 {
		return nil
	}
	// Filter by membership in the node's tuple set: keyword nodes take
	// matching tuples, free nodes take the complement (the DISCOVER
	// partition keeps CN result sets disjoint).
	var out []*relstore.Tuple
	for _, cand := range cands {
		inKW := ev.src.TermMask(cand.ID) != 0
		if inKW != toSpec.Free {
			out = append(out, cand)
		}
	}
	return out
}

// allTermsMask is the bitmask with one bit per query term.
func (ev *Evaluator) allTermsMask() uint32 {
	return (uint32(1) << uint(len(ev.Terms))) - 1
}

// EvaluateCN produces every total and minimal joining tree of tuples for c:
// total = the bound tuples jointly contain every query term; minimal =
// removing any leaf tuple breaks coverage (the MTJNT semantics of
// DISCOVER).
func (ev *Evaluator) EvaluateCN(c *CN) []Result {
	return ev.evaluateFiltered(c, nil)
}

// EvaluateCNWith produces the results of c in which CN node driverIdx is
// bound to the given tuple — the primitive the pipelined top-k strategies
// use.
func (ev *Evaluator) EvaluateCNWith(c *CN, driverIdx int, tp *relstore.Tuple) []Result {
	return ev.EvaluateCNBound(c, map[int]*relstore.Tuple{driverIdx: tp})
}

// EvaluateCNBound produces the results of c under the given fixed node
// bindings (node index -> tuple). SPARK's probe step fixes every keyword
// node and asks whether connecting free tuples exist.
func (ev *Evaluator) EvaluateCNBound(c *CN, fixed map[int]*relstore.Tuple) []Result {
	return ev.evaluateFiltered(c, fixed)
}

func (ev *Evaluator) evaluateFiltered(c *CN, fixed map[int]*relstore.Tuple) []Result {
	if len(c.Nodes) == 0 {
		return nil
	}
	start := 0
	for n := range fixed {
		start = n
		break
	}
	// Order nodes BFS from start so each subsequent node joins an
	// already-bound one.
	adj := c.adjacency()
	order := []int{start}
	via := map[int]EdgeSpec{}
	parent := map[int]int{start: -1}
	for qi := 0; qi < len(order); qi++ {
		n := order[qi]
		for _, ei := range adj[n] {
			e := c.Edges[ei]
			other := e.A
			if other == n {
				other = e.B
			}
			if _, seen := parent[other]; seen {
				continue
			}
			parent[other] = n
			via[other] = e
			order = append(order, other)
		}
	}

	binding := make([]*relstore.Tuple, len(c.Nodes))
	var out []Result
	var rec func(oi int)
	rec = func(oi int) {
		if oi == len(order) {
			if r, ok := ev.finishRow(c, binding); ok {
				out = append(out, r)
			}
			return
		}
		node := order[oi]
		var cands []*relstore.Tuple
		if oi == 0 {
			if tp, ok := fixed[node]; ok {
				cands = []*relstore.Tuple{tp}
			} else {
				cands = ev.nodeSet(c.Nodes[node])
			}
		} else {
			cands = ev.joinCandidates(c, via[node], parent[node], binding[parent[node]])
			if want, ok := fixed[node]; ok {
				var kept []*relstore.Tuple
				for _, tp := range cands {
					if tp.ID == want.ID {
						kept = append(kept, tp)
					}
				}
				cands = kept
			}
		}
		if node == 0 {
			// The owner filter applies wherever node 0 lands in the BFS
			// order — including fixed bindings, so a driver tuple outside
			// the partition produces nothing here.
			cands = ev.filterOwned(cands)
		}
		for _, tp := range cands {
			if containsTuple(binding, tp) {
				continue // a tuple may appear once per result tree
			}
			binding[node] = tp
			rec(oi + 1)
			binding[node] = nil
		}
	}
	rec(0)
	return out
}

func containsTuple(binding []*relstore.Tuple, tp *relstore.Tuple) bool {
	for _, b := range binding {
		if b != nil && b.ID == tp.ID {
			return true
		}
	}
	return false
}

// finishRow checks totality (all terms covered) and minimality (every leaf
// contributes a needed term), then scores the row.
func (ev *Evaluator) finishRow(c *CN, binding []*relstore.Tuple) (Result, bool) {
	all := ev.allTermsMask()
	var cover uint32
	for _, tp := range binding {
		cover |= ev.src.TermMask(tp.ID)
	}
	if cover != all {
		return Result{}, false
	}
	// Minimality: dropping any keyword leaf must lose some term.
	for _, li := range c.leaves() {
		if len(c.Nodes) == 1 {
			break
		}
		var rest uint32
		for i, tp := range binding {
			if i == li {
				continue
			}
			rest |= ev.src.TermMask(tp.ID)
		}
		if rest == all {
			return Result{}, false
		}
	}
	score := 0.0
	for _, tp := range binding {
		score += ev.src.TupleScore(tp)
	}
	score /= float64(len(c.Nodes))
	tuples := make([]*relstore.Tuple, len(binding))
	copy(tuples, binding)
	return Result{CN: c, Tuples: tuples, Score: score}, true
}
