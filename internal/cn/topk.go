package cn

import (
	"container/heap"
	"context"
	"sort"
	"strconv"

	"kwsearch/internal/fmath"
	"kwsearch/internal/obs"
	"kwsearch/internal/relstore"
	"kwsearch/internal/resilience"
)

// SortResults orders by descending score, breaking ties by CN size, then
// sorted tuple IDs, then the CN's canonical string, then tuple IDs in CN
// node order. The last tie-break makes the order total even for symmetric
// CNs, where two distinct bindings can use the same tuple multiset in
// swapped positions — without it, which twin survives a top-k truncation
// would depend on production order, and the serial vs parallel execution
// paths in internal/exec could not be byte-compared.
func SortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool { return Less(rs[i], rs[j]) })
}

// Less is SortResults' comparator as a standalone strict weak order —
// the total order every top-k list in the system follows. The sharding
// coordinator's cross-shard merge uses it directly: per-shard lists
// arrive already in this order, so merging by Less reproduces the
// sorted concatenation exactly.
func Less(a, b Result) bool {
	if !fmath.Eq(a.Score, b.Score) {
		return a.Score > b.Score
	}
	if len(a.Tuples) != len(b.Tuples) {
		return len(a.Tuples) < len(b.Tuples)
	}
	if ka, kb := resultKey(a), resultKey(b); ka != kb {
		return ka < kb
	}
	if ca, cb := a.CN.Canonical(), b.CN.Canonical(); ca != cb {
		return ca < cb
	}
	for n := range a.Tuples {
		if ta, tb := a.Tuples[n].ID, b.Tuples[n].ID; ta != tb {
			return ta < tb
		}
	}
	return false
}

func resultKey(r Result) string {
	ids := make([]int, len(r.Tuples))
	for i, tp := range r.Tuples {
		ids[i] = int(tp.ID)
	}
	sort.Ints(ids)
	key := ""
	for _, id := range ids {
		key += strconv.Itoa(id) + ","
	}
	return key
}

// TopKNaive evaluates every CN fully, then sorts — the baseline of
// slide 116's Discover2 comparison.
//
//lint:ignore ctx-first serial reference baseline, kept signature-stable for the E17 comparison
func TopKNaive(ev *Evaluator, cns []*CN, k int) []Result {
	var all []Result
	for _, c := range cns {
		all = append(all, ev.EvaluateCN(c)...)
	}
	SortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Bound returns an upper bound on the score any result of c can reach:
// each keyword node is bounded by the best tuple score of its R^Q, free
// nodes contribute 0, and the sum is normalized by CN size (the score is
// monotone, so the bound is sound). The Sparse strategy and the
// internal/exec worker pool both prune with it.
func (ev *Evaluator) Bound(c *CN) float64 {
	s := 0.0
	for _, n := range c.Nodes {
		if !n.Free {
			s += ev.MaxNodeScore(n.Table)
		}
	}
	return s / float64(c.Size())
}

// TopKSparse evaluates CNs in descending upper-bound order and stops as
// soon as the current k-th score dominates every unevaluated CN's bound
// (the Sparse strategy of Hristidis et al. VLDB'03).
//
//lint:ignore ctx-first serial reference baseline, kept signature-stable for the E17 comparison
func TopKSparse(ev *Evaluator, cns []*CN, k int) []Result {
	order := append([]*CN(nil), cns...)
	sort.SliceStable(order, func(i, j int) bool {
		return ev.Bound(order[i]) > ev.Bound(order[j])
	})
	var top []Result
	for _, c := range order {
		if len(top) >= k && top[k-1].Score >= ev.Bound(c) {
			break
		}
		top = append(top, ev.EvaluateCN(c)...)
		SortResults(top)
		if len(top) > k {
			top = top[:k]
		}
	}
	return top
}

// gpState is the per-CN cursor of the global pipeline: the driver node's
// tuples sorted by descending score and a position into them.
type gpState struct {
	cn      *CN
	driver  int
	tuples  []*relstore.Tuple
	pos     int
	restMax float64 // sum of max scores of the other keyword nodes
}

func (s *gpState) bound(ev *Evaluator) float64 {
	if s.pos >= len(s.tuples) {
		return -1
	}
	return (ev.TupleScore(s.tuples[s.pos]) + s.restMax) / float64(s.cn.Size())
}

type gpHeap struct {
	ev     *Evaluator
	states []*gpState
}

func (h gpHeap) Len() int { return len(h.states) }
func (h gpHeap) Less(i, j int) bool {
	return h.states[i].bound(h.ev) > h.states[j].bound(h.ev)
}
func (h gpHeap) Swap(i, j int)       { h.states[i], h.states[j] = h.states[j], h.states[i] }
func (h *gpHeap) Push(x interface{}) { h.states = append(h.states, x.(*gpState)) }
func (h *gpHeap) Pop() interface{} {
	old := h.states
	n := len(old)
	it := old[n-1]
	h.states = old[:n-1]
	return it
}

// TopKGlobalPipeline interleaves the evaluation of all CNs: it repeatedly
// advances the CN whose next driver tuple has the highest score upper
// bound, producing only the joins needed to certify the top k (the Global
// Pipeline of Hristidis et al. VLDB'03). Requires the monotone score.
func TopKGlobalPipeline(ev *Evaluator, cns []*CN, k int) []Result {
	return TopKGlobalPipelineTraced(ev, cns, k, nil)
}

// TopKGlobalPipelineTraced is TopKGlobalPipeline recording its work onto
// sp (nil disables tracing): how many CNs entered the pipeline vs were
// pruned outright (zero bound), how many driver tuples were advanced,
// how many candidate rows the probes produced, and whether the k-th
// score certified the answer before the heap drained.
func TopKGlobalPipelineTraced(ev *Evaluator, cns []*CN, k int, sp *obs.Span) []Result {
	rs, _ := TopKGlobalPipelineCtx(context.Background(), ev, cns, k, sp)
	return rs
}

// certifiedPrefix returns the leading results whose scores strictly
// dominate bound (epsilon-safe): exactly the prefix of the full top-k a
// deadline-interrupted evaluation can still prove correct, because no
// unevaluated work can reach those scores. Results tied with bound are
// dropped — a remaining CN could produce an equal-score twin that the
// deterministic total order would rank ahead of them.
func certifiedPrefix(rs []Result, bound float64) []Result {
	i := 0
	for i < len(rs) && rs[i].Score > bound && !fmath.Eq(rs[i].Score, bound) {
		i++
	}
	return rs[:i]
}

// TopKGlobalPipelineCtx is the context-first Global Pipeline:
// cancellation and the fault injector (resilience.StagePipeline) are
// checked at every driver-tuple advance. When ctx ends mid-evaluation it
// returns the certified prefix of the top-k — the leading results whose
// scores strictly dominate every remaining bound — together with ctx's
// error, so callers can surface a sound partial answer.
func TopKGlobalPipelineCtx(ctx context.Context, ev *Evaluator, cns []*CN, k int, sp *obs.Span) ([]Result, error) {
	inj := resilience.From(ctx)
	h := &gpHeap{ev: ev}
	for _, c := range cns {
		kwNodes := c.KeywordNodes()
		if len(kwNodes) == 0 {
			continue
		}
		// Drive from the keyword node with the fewest tuples.
		driver := kwNodes[0]
		for _, n := range kwNodes[1:] {
			if len(ev.KeywordSet(c.Nodes[n].Table)) < len(ev.KeywordSet(c.Nodes[driver].Table)) {
				driver = n
			}
		}
		src := ev.KeywordSet(c.Nodes[driver].Table)
		if driver == 0 {
			// When the driver is the owner node the partition prunes its
			// tuples up front; other drivers stay unfiltered and the owner
			// filter inside EvaluateCNWith discards foreign results.
			src = ev.filterOwned(src)
		}
		tuples := append([]*relstore.Tuple(nil), src...)
		sort.SliceStable(tuples, func(i, j int) bool {
			return ev.TupleScore(tuples[i]) > ev.TupleScore(tuples[j])
		})
		rest := 0.0
		for _, n := range kwNodes {
			if n != driver {
				rest += ev.MaxNodeScore(c.Nodes[n].Table)
			}
		}
		st := &gpState{cn: c, driver: driver, tuples: tuples, restMax: rest}
		if st.bound(ev) > 0 {
			h.states = append(h.states, st)
		}
	}
	heap.Init(h)
	sp.SetAttr("cns", len(cns))
	sp.SetAttr("pipelined", h.Len())
	sp.SetAttr("pruned", len(cns)-h.Len())

	advances, produced, certified := 0, 0, false
	var top []Result
	seen := map[string]bool{}
	for h.Len() > 0 {
		st := h.states[0]
		b := st.bound(ev)
		if b < 0 {
			heap.Pop(h)
			continue
		}
		if len(top) >= k && top[k-1].Score >= b {
			certified = true
			break
		}
		err := ctx.Err()
		if err == nil {
			err = inj.At(ctx, resilience.StagePipeline)
		}
		if err != nil {
			// b is the max score any remaining work can reach, so the
			// results strictly above it are final.
			top = certifiedPrefix(top, b)
			sp.SetAttr("driver_advances", advances)
			sp.SetAttr("produced", produced)
			sp.SetAttr("certified_early", false)
			sp.SetAttr("partial", true)
			return top, err
		}
		tp := st.tuples[st.pos]
		st.pos++
		advances++
		heap.Fix(h, 0)
		for _, r := range ev.EvaluateCNWith(st.cn, st.driver, tp) {
			// The same result can be produced through different driver
			// tuples of the same CN only if the driver appears twice,
			// which the binding forbids; dedupe defensively anyway.
			key := st.cn.Canonical() + "|" + resultKey(r)
			if seen[key] {
				continue
			}
			seen[key] = true
			produced++
			top = append(top, r)
		}
		SortResults(top)
		if len(top) > k {
			top = top[:k]
		}
	}
	sp.SetAttr("driver_advances", advances)
	sp.SetAttr("produced", produced)
	sp.SetAttr("certified_early", certified)
	return top, nil
}
