package facet

import (
	"math"

	"kwsearch/internal/relstore"
)

// Node is one navigation-tree node: the rows satisfying the path
// conditions, the facet expanded beneath it, and the estimated action
// probabilities of slide 89-90.
type Node struct {
	Cond     *Condition
	Attr     string // facet attribute the children condition on ("" = leaf)
	Children []*Node
	Rows     []*relstore.Tuple
	PExpand  float64
	PShow    float64
	PProc    float64
	Cost     float64
}

// Tree is a built navigation tree with its expected cost.
type Tree struct {
	Root *Node
	Cost float64
}

// Options tunes tree construction.
type Options struct {
	// MaxNumericParts bounds numeric facet partitions (default 3).
	MaxNumericParts int
	// LeafThreshold stops expansion when a node's result set is already
	// small enough to show (default 2).
	LeafThreshold int
	// SizeSensitive switches to FACeTOR-style estimation: p(showResults)
	// grows as the result set shrinks, instead of depending on the log
	// alone (slide 93).
	SizeSensitive bool
}

func (o Options) withDefaults() Options {
	if o.MaxNumericParts <= 0 {
		o.MaxNumericParts = 3
	}
	if o.LeafThreshold <= 0 {
		o.LeafThreshold = 2
	}
	return o
}

// builder carries shared state through recursive construction.
type builder struct {
	t    *relstore.Table
	log  []LogQuery
	opts Options
	// numeric marks attributes treated as numeric facets.
	numeric map[string]bool
}

// pExpand estimates the probability the user expands the facet attr at a
// node (slide 89: high when many historical queries involve it). The
// size-sensitive variant also discounts expansion when few rows remain.
func (b *builder) pExpand(attr string, rows int) float64 {
	total, hit := 0, 0
	for _, q := range b.log {
		total += q.Count
		if q.mentions(attr) {
			hit += q.Count
		}
	}
	p := 0.5
	if total > 0 {
		p = float64(hit) / float64(total)
	}
	if b.opts.SizeSensitive {
		// Few remaining rows: the user just reads them.
		p *= 1 - 1/float64(rows+1)
	}
	return clamp(p, 0.05, 0.95)
}

// pProc estimates the probability the user processes a child condition
// (slide 90: the share of log queries whose selection overlaps it).
func (b *builder) pProc(c Condition) float64 {
	total, hit := 0, 0
	for _, q := range b.log {
		total += q.Count
		if q.overlaps(c) {
			hit += q.Count
		}
	}
	if total == 0 {
		return 0.5
	}
	return clamp(float64(hit)/float64(total), 0.02, 1)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func (b *builder) conditionsFor(attr string, rows []*relstore.Tuple) []Condition {
	if b.numeric[attr] {
		return NumericPartitions(b.t, rows, attr, b.log, b.opts.MaxNumericParts)
	}
	return CategoricalConditions(b.t, rows, attr, b.log)
}

// build recursively constructs the subtree under node, choosing for each
// level the attribute in remaining that minimizes the expected cost —
// the greedy of slide 91. With pickFirst=true the first remaining
// attribute is always used (the fixed-order baseline of E21).
func (b *builder) build(rows []*relstore.Tuple, remaining []string, pickFirst bool) *Node {
	n := &Node{Rows: rows}
	if len(remaining) == 0 || len(rows) <= b.opts.LeafThreshold {
		n.PShow = 1
		n.Cost = float64(len(rows))
		return n
	}
	bestCost := math.Inf(1)
	var bestNode *Node
	for idx, attr := range remaining {
		conds := b.conditionsFor(attr, rows)
		if len(conds) < 2 {
			continue // a facet with one value does not navigate
		}
		cand := &Node{Rows: rows, Attr: attr}
		cand.PExpand = b.pExpand(attr, len(rows))
		cand.PShow = 1 - cand.PExpand
		rest := removeIndex(remaining, idx)
		childCost := float64(len(conds)) // readNext: scanning the facet values
		for _, c := range conds {
			cc := c
			sub := b.build(filterRows(b.t, rows, c), rest, pickFirst)
			sub.Cond = &cc
			sub.PProc = b.pProc(c)
			cand.Children = append(cand.Children, sub)
			childCost += sub.PProc * sub.Cost
		}
		cand.Cost = cand.PShow*float64(len(rows)) + cand.PExpand*childCost
		if cand.Cost < bestCost {
			bestCost = cand.Cost
			bestNode = cand
		}
		if pickFirst {
			break
		}
	}
	if bestNode == nil {
		n.PShow = 1
		n.Cost = float64(len(rows))
		return n
	}
	return bestNode
}

func removeIndex(xs []string, i int) []string {
	out := make([]string, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

func filterRows(t *relstore.Table, rows []*relstore.Tuple, c Condition) []*relstore.Tuple {
	ci := t.ColumnIndex(c.Attr)
	if ci < 0 {
		return nil
	}
	var out []*relstore.Tuple
	for _, r := range rows {
		if c.Matches(r.Values[ci]) {
			out = append(out, r)
		}
	}
	return out
}

// Build constructs the cost-minimizing navigation tree over the query
// result rows using the greedy attribute choice.
func Build(t *relstore.Table, rows []*relstore.Tuple, attrs []string, numericAttrs []string, log []LogQuery, opts Options) *Tree {
	b := &builder{t: t, log: log, opts: opts.withDefaults(), numeric: toSet(numericAttrs)}
	root := b.build(rows, attrs, false)
	return &Tree{Root: root, Cost: root.Cost}
}

// BuildFixedOrder constructs the baseline tree that always expands
// attributes in the given order, for the E21 comparison.
func BuildFixedOrder(t *relstore.Table, rows []*relstore.Tuple, attrs []string, numericAttrs []string, log []LogQuery, opts Options) *Tree {
	b := &builder{t: t, log: log, opts: opts.withDefaults(), numeric: toSet(numericAttrs)}
	root := b.build(rows, attrs, true)
	return &Tree{Root: root, Cost: root.Cost}
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
