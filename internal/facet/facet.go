// Package facet implements faceted result exploration (slides 83-93):
// facet-condition derivation from data and historical queries, and
// navigation-tree construction that minimizes the user's expected
// navigation cost under the probabilistic action model of Chakrabarti et
// al. (SIGMOD'04), with the FACeTOR-style size-sensitive estimates as an
// option (Kashyap et al. CIKM'10).
package facet

import (
	"fmt"
	"math"
	"sort"

	"kwsearch/internal/relstore"
)

// Condition is one facet condition: either a categorical equality or a
// numeric interval [Lo, Hi).
type Condition struct {
	Attr    string
	Value   relstore.Value
	Numeric bool
	Lo, Hi  float64
}

// Matches reports whether v satisfies the condition.
func (c Condition) Matches(v relstore.Value) bool {
	if c.Numeric {
		f, ok := v.AsFloat()
		return ok && f >= c.Lo && f < c.Hi
	}
	return v.Equal(c.Value)
}

// String renders "state=TX" or "price∈[170,250)".
func (c Condition) String() string {
	if c.Numeric {
		return fmt.Sprintf("%s∈[%g,%g)", c.Attr, c.Lo, c.Hi)
	}
	return fmt.Sprintf("%s=%s", c.Attr, c.Value)
}

// LogQuery is one historical query: the attributes it constrained, with
// the constrained values/ranges, and a popularity count.
type LogQuery struct {
	Conds []Condition
	Count int
}

// mentions reports whether the log query constrains attr.
func (q LogQuery) mentions(attr string) bool {
	for _, c := range q.Conds {
		if c.Attr == attr {
			return true
		}
	}
	return false
}

// overlaps reports whether the log query has a condition overlapping cond.
func (q LogQuery) overlaps(cond Condition) bool {
	for _, c := range q.Conds {
		if c.Attr != cond.Attr {
			continue
		}
		if cond.Numeric && c.Numeric {
			if c.Lo < cond.Hi && cond.Lo < c.Hi {
				return true
			}
		} else if !cond.Numeric && !c.Numeric && c.Value.Equal(cond.Value) {
			return true
		}
	}
	return false
}

// CategoricalConditions derives one condition per distinct value of attr
// among rows, ordered by how many log queries hit each value (slide 85),
// ties by value.
func CategoricalConditions(t *relstore.Table, rows []*relstore.Tuple, attr string, log []LogQuery) []Condition {
	ci := t.ColumnIndex(attr)
	if ci < 0 {
		return nil
	}
	seen := map[relstore.Value]bool{}
	var conds []Condition
	for _, r := range rows {
		v := r.Values[ci]
		if v.IsNull() || seen[v] {
			continue
		}
		seen[v] = true
		conds = append(conds, Condition{Attr: attr, Value: v})
	}
	hits := func(c Condition) int {
		n := 0
		for _, q := range log {
			if q.overlaps(c) {
				n += q.Count
			}
		}
		return n
	}
	sort.SliceStable(conds, func(i, j int) bool {
		hi, hj := hits(conds[i]), hits(conds[j])
		if hi != hj {
			return hi > hj
		}
		return conds[i].Value.Less(conds[j].Value)
	})
	return conds
}

// NumericPartitions cuts attr's value range at the boundaries historical
// queries used most (slide 85: "if many queries start or end at x,
// partition at x"), capped at maxParts intervals.
func NumericPartitions(t *relstore.Table, rows []*relstore.Tuple, attr string, log []LogQuery, maxParts int) []Condition {
	ci := t.ColumnIndex(attr)
	if ci < 0 {
		return nil
	}
	min, max := math.Inf(1), math.Inf(-1)
	any := false
	for _, r := range rows {
		if f, ok := r.Values[ci].AsFloat(); ok {
			any = true
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
	}
	if !any {
		return nil
	}
	// Boundary popularity from the log.
	pop := map[float64]int{}
	for _, q := range log {
		for _, c := range q.Conds {
			if c.Attr == attr && c.Numeric {
				if c.Lo > min && c.Lo < max {
					pop[c.Lo] += q.Count
				}
				if c.Hi > min && c.Hi < max {
					pop[c.Hi] += q.Count
				}
			}
		}
	}
	type bp struct {
		x float64
		n int
	}
	var bps []bp
	for x, n := range pop {
		bps = append(bps, bp{x, n})
	}
	sort.Slice(bps, func(i, j int) bool {
		if bps[i].n != bps[j].n {
			return bps[i].n > bps[j].n
		}
		return bps[i].x < bps[j].x
	})
	if maxParts < 2 {
		maxParts = 2
	}
	nb := maxParts - 1
	if nb > len(bps) {
		nb = len(bps)
	}
	cuts := make([]float64, 0, nb+2)
	for _, b := range bps[:nb] {
		cuts = append(cuts, b.x)
	}
	if len(cuts) == 0 {
		cuts = append(cuts, (min+max)/2)
	}
	sort.Float64s(cuts)
	bounds := append([]float64{min}, cuts...)
	bounds = append(bounds, math.Nextafter(max, math.Inf(1)))
	var out []Condition
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, Condition{Attr: attr, Numeric: true, Lo: bounds[i], Hi: bounds[i+1]})
	}
	return out
}
