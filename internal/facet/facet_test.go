package facet

import (
	"strings"
	"testing"

	"kwsearch/internal/dataset"
	"kwsearch/internal/relstore"
)

func eventsSetup() (*relstore.Table, []*relstore.Tuple, []LogQuery) {
	db := dataset.EventsDB()
	t := db.Table("event")
	// Historical queries: state is constrained far more often than month.
	log := []LogQuery{
		{Conds: []Condition{{Attr: "state", Value: relstore.String("TX")}}, Count: 6},
		{Conds: []Condition{{Attr: "state", Value: relstore.String("MI")}}, Count: 5},
		{Conds: []Condition{{Attr: "month", Value: relstore.String("Dec")}}, Count: 2},
	}
	return t, t.Tuples(), log
}

func TestConditionMatching(t *testing.T) {
	c := Condition{Attr: "state", Value: relstore.String("TX")}
	if !c.Matches(relstore.String("TX")) || c.Matches(relstore.String("MI")) {
		t.Errorf("categorical matching broken")
	}
	n := Condition{Attr: "price", Numeric: true, Lo: 100, Hi: 200}
	if !n.Matches(relstore.Float(150)) || n.Matches(relstore.Float(200)) {
		t.Errorf("numeric matching broken (Hi must be exclusive)")
	}
	if n.Matches(relstore.String("x")) {
		t.Errorf("numeric condition must reject strings")
	}
	if got := n.String(); !strings.Contains(got, "price") {
		t.Errorf("String() = %q", got)
	}
}

func TestCategoricalConditionsOrderedByLogHits(t *testing.T) {
	tbl, rows, log := eventsSetup()
	conds := CategoricalConditions(tbl, rows, "state", log)
	if len(conds) != 2 {
		t.Fatalf("conds = %v", conds)
	}
	if conds[0].Value.Str != "TX" {
		t.Errorf("most-queried value first: got %v", conds[0].Value)
	}
	if got := CategoricalConditions(tbl, rows, "nosuch", log); got != nil {
		t.Errorf("unknown attr conds = %v", got)
	}
}

func TestNumericPartitionsUseLogBoundaries(t *testing.T) {
	db := relstore.NewDB()
	db.MustCreateTable(&relstore.TableSchema{
		Name: "apt",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.KindInt},
			{Name: "price", Type: relstore.KindFloat},
		},
		Key: "id",
	})
	for i, p := range []float64{120, 150, 180, 210, 260, 300} {
		db.MustInsert("apt", map[string]relstore.Value{
			"id": relstore.Int(int64(i)), "price": relstore.Float(p),
		})
	}
	tbl := db.Table("apt")
	log := []LogQuery{
		{Conds: []Condition{{Attr: "price", Numeric: true, Lo: 120, Hi: 170}}, Count: 5},
		{Conds: []Condition{{Attr: "price", Numeric: true, Lo: 170, Hi: 250}}, Count: 5},
	}
	parts := NumericPartitions(tbl, tbl.Tuples(), "price", log, 3)
	if len(parts) != 3 {
		t.Fatalf("partitions = %v", parts)
	}
	// The popular boundaries 170 and 250 become the cut points.
	if parts[0].Hi != 170 || parts[1].Hi != 250 {
		t.Errorf("cuts = %v / %v, want 170 and 250", parts[0].Hi, parts[1].Hi)
	}
	// Partitions cover every row exactly once.
	ci := tbl.ColumnIndex("price")
	for _, r := range tbl.Tuples() {
		n := 0
		for _, p := range parts {
			if p.Matches(r.Values[ci]) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("row %v covered %d times", r.Values[ci], n)
		}
	}
}

func TestBuildTreePicksInformativeAttribute(t *testing.T) {
	tbl, rows, log := eventsSetup()
	tree := Build(tbl, rows, []string{"month", "state"}, nil, log, Options{})
	if tree.Root.Attr == "" {
		t.Fatalf("root not expanded")
	}
	// The log overwhelmingly constrains state: the greedy root facet is
	// state.
	if tree.Root.Attr != "state" {
		t.Errorf("root attr = %s, want state", tree.Root.Attr)
	}
	if tree.Cost <= 0 {
		t.Errorf("cost = %v", tree.Cost)
	}
	// Children partition the rows.
	total := 0
	for _, c := range tree.Root.Children {
		total += len(c.Rows)
		if c.Cond == nil {
			t.Errorf("child without condition")
		}
	}
	if total != len(rows) {
		t.Errorf("children cover %d of %d rows", total, len(rows))
	}
}

// TestGreedyBeatsFixedOrder is the E21 shape: the greedy tree's expected
// cost is never worse than expanding attributes in a fixed (bad) order.
func TestGreedyBeatsFixedOrder(t *testing.T) {
	tbl, rows, log := eventsSetup()
	greedy := Build(tbl, rows, []string{"month", "state"}, nil, log, Options{})
	fixed := BuildFixedOrder(tbl, rows, []string{"month", "state"}, nil, log, Options{})
	if greedy.Cost > fixed.Cost+1e-9 {
		t.Errorf("greedy cost %v exceeds fixed-order cost %v", greedy.Cost, fixed.Cost)
	}
}

func TestSizeSensitiveOption(t *testing.T) {
	tbl, rows, log := eventsSetup()
	a := Build(tbl, rows, []string{"month", "state"}, nil, log, Options{})
	b := Build(tbl, rows, []string{"month", "state"}, nil, log, Options{SizeSensitive: true})
	if a.Cost <= 0 || b.Cost <= 0 {
		t.Fatalf("costs = %v, %v", a.Cost, b.Cost)
	}
	// The FACeTOR estimate discounts expansion on small sets, so the two
	// models must at least both produce valid trees (cost differs).
	if a.Root.Attr == "" || b.Root.Attr == "" {
		t.Errorf("trees not expanded")
	}
}

func TestLeafWhenFewRows(t *testing.T) {
	tbl, rows, log := eventsSetup()
	tree := Build(tbl, rows[:2], []string{"month", "state"}, nil, log, Options{LeafThreshold: 2})
	if tree.Root.Attr != "" || len(tree.Root.Children) != 0 {
		t.Errorf("small result sets should be leaves: %+v", tree.Root)
	}
	if tree.Cost != 2 {
		t.Errorf("leaf cost = %v, want |rows|", tree.Cost)
	}
}
